"""The policy zoo: every decision rule on the same system.

Not a paper figure -- an integration study putting the paper's three
algorithms side by side with every baseline the related work suggests
(static, deterministic/risk-based thresholds, periodic, trend,
never) plus a composite rule, at a low and a high load.  This is the
table a practitioner reads first: which detector family pays what,
where.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.core.composite import AllOf
from repro.core.sla import PAPER_SLO
from repro.core.spec import PolicySpec
from repro.core.sraa import SRAA
from repro.core.threshold import DeterministicThreshold
from repro.ecommerce.config import PAPER_CONFIG
from repro.ecommerce.runner import run_replications
from repro.ecommerce.spec import ArrivalSpec
from repro.exec.jobs import PolicySource
from repro.experiments.scale import Scale
from repro.experiments.tables import ExperimentResult, Series, Table

ZOO_LOADS = (0.5, 9.0)


def _threshold_and_sraa() -> AllOf:
    # Module-level (not a lambda) so the composite member pickles too.
    return AllOf(
        [DeterministicThreshold(20.0), SRAA(PAPER_SLO, 2, 2, 2)],
        memory=50,
    )


def zoo_members() -> List[Tuple[str, PolicySource]]:
    """(label, fresh-policy source) for every contender."""
    return [
        ("never", PolicySpec("never")),
        ("periodic(300)", PolicySpec("periodic", {"period": 300})),
        ("threshold(>20s)", PolicySpec("threshold", {"limit": 20.0})),
        ("static(K=5,D=3)", PolicySpec("static", {"K": 5, "D": 3})),
        ("SRAA(2,5,3)", PolicySpec.sraa(2, 5, 3)),
        ("SARAA(2,5,3)", PolicySpec.saraa(2, 5, 3)),
        ("CLTA(30,z=1.96)", PolicySpec.clta(30, z=1.96)),
        ("trend(n=5,w=12)", PolicySpec("trend", {"n": 5, "window": 12})),
        ("CUSUM(k=.5,h=5)", PolicySpec("cusum")),
        ("EWMA(lam=.2,L=3)", PolicySpec("ewma")),
        (
            "p95 > 30s (w=100)",
            PolicySpec(
                "quantile",
                {"q": 0.95, "limit": 30.0, "window": 100, "patience": 2},
            ),
        ),
        ("threshold AND sraa", _threshold_and_sraa),
    ]


def run_zoo(scale: Scale, seed: int = 0) -> ExperimentResult:
    """Run every policy at a low and a high load."""
    rt_table = Table(
        title="Policy zoo: average response time",
        x_label="load_cpus",
        y_label="avg_response_time_s",
    )
    loss_table = Table(
        title="Policy zoo: fraction of transactions lost",
        x_label="load_cpus",
        y_label="loss_fraction",
    )
    for label, policy in zoo_members():
        rt_series = Series(label=label)
        loss_series = Series(label=label)
        for load in ZOO_LOADS:
            rate = PAPER_CONFIG.arrival_rate_for_load(load)
            replicated = run_replications(
                PAPER_CONFIG,
                arrival=ArrivalSpec.poisson(rate),
                policy=policy,
                n_transactions=scale.transactions,
                replications=scale.replications,
                seed=seed,
            )
            rt_series.add(load, replicated.avg_response_time)
            loss_series.add(load, replicated.loss_fraction)
        rt_table.add_series(rt_series)
        loss_table.add_series(loss_series)
    return ExperimentResult(
        experiment_id="zoo",
        description=(
            "Every policy in the library on the Section-3 system "
            "(integration study, beyond the paper)"
        ),
        tables=[rt_table, loss_table],
        paper_expectations=[
            "expected shape: 'never' melts down at 9 CPUs; the naive "
            "threshold is burst-fragile (loss at low load); the paper's "
            "three algorithms control the RT for a few percent loss",
        ],
    )
