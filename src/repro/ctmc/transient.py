"""Transient solution of a CTMC: ``p(t) = p(0) expm(Q t)``.

Two interchangeable solvers:

* :func:`transient_uniformization` -- Jensen's uniformization.  The CTMC is
  embedded in a discrete-time chain ``P = I + Q / Lambda`` subordinated to a
  Poisson process of rate ``Lambda >= max_i |q_ii|``; the transient law is a
  Poisson-weighted average of DTMC powers.  All terms are non-negative, so
  the method is numerically benign, and truncating when the accumulated
  Poisson mass reaches ``1 - tol`` gives a rigorous L1 error bound of
  ``tol``.  This is the algorithm used by SHARPE, the tool the paper
  relies on.
* :func:`transient_expm` -- dense matrix exponential via SciPy, used as an
  independent cross-check in the tests.
"""

from __future__ import annotations

import math

import numpy as np
from scipy.linalg import expm

#: Natural log of the smallest positive normal double; weights below this
#: underflow to zero and are skipped (their mass is still tracked in log
#: space by the recurrence, so termination is unaffected).
_LOG_TINY = -745.0


def transient_expm(Q: np.ndarray, p0: np.ndarray, t: float) -> np.ndarray:
    """Transient distribution via the dense matrix exponential."""
    if t < 0:
        raise ValueError("time must be non-negative")
    return np.asarray(p0, dtype=float) @ expm(np.asarray(Q, dtype=float) * t)


def transient_uniformization(
    Q: np.ndarray,
    p0: np.ndarray,
    t: float,
    tol: float = 1e-12,
    max_terms: int = 2_000_000,
) -> np.ndarray:
    """Transient distribution via uniformization.

    Parameters
    ----------
    Q:
        Generator matrix (rows sum to zero; all-zero absorbing rows are
        allowed).
    p0:
        Initial distribution.
    t:
        Time horizon, ``t >= 0``.
    tol:
        L1 truncation error bound.
    max_terms:
        Safety cap on the number of Poisson terms.
    """
    if t < 0:
        raise ValueError("time must be non-negative")
    Q = np.asarray(Q, dtype=float)
    p = np.asarray(p0, dtype=float).copy()
    if t == 0.0:
        return p
    rates = -np.diag(Q)
    lam = float(rates.max())
    if lam <= 0.0:
        # Every state is absorbing: nothing moves.
        return p
    P = Q / lam + np.eye(Q.shape[0])
    a = lam * t
    # v_k = p0 P^k; Poisson(a) weights via the stable log-space recurrence
    # log w_k = log w_{k-1} + log(a / k), starting from log w_0 = -a.
    log_weight = -a
    accumulated = 0.0
    result = np.zeros_like(p)
    v = p
    k = 0
    while accumulated < 1.0 - tol:
        if log_weight > _LOG_TINY:
            weight = math.exp(log_weight)
            result += weight * v
            accumulated += weight
        k += 1
        if k > max_terms:
            raise ArithmeticError(
                "uniformization did not converge in "
                f"{max_terms} terms (Lambda*t = {a:.3g})"
            )
        v = v @ P
        log_weight += math.log(a / k)
    return result
