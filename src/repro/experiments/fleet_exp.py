"""Fleet experiment: rejuvenation schedulers at fleet scale.

Runs a sharded :class:`~repro.systems.fleet.FleetSystem` of Section-3
nodes at a low and a high per-node load under per-node SRAA(2,5,3) with
a 60 s restart downtime, comparing the fleet-level scheduling
disciplines of :mod:`repro.systems.schedulers`: unrestricted grants,
rolling restarts under a capacity floor, and canary-first waves.  The
deliverable is the trade-off the schedulers encode -- the floor and the
canary bound how much serving capacity rejuvenation may take away at
once (peak concurrently-down nodes), at the price of deferring some
restarts on aged nodes.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Tuple

from repro.core.spec import PolicySpec
from repro.ecommerce.config import PAPER_CONFIG
from repro.ecommerce.spec import ArrivalSpec
from repro.experiments.scale import Scale
from repro.experiments.tables import ExperimentResult, Series, Table
from repro.systems.fleet import FleetSpec
from repro.systems.schedulers import SchedulerSpec

#: Per-node offered load (CPUs): one calm point, one aging-heavy point.
FLEET_LOADS = (2.0, 9.0)

#: Restart downtime that makes scheduling decisions consequential.
DOWNTIME_S = 60.0

#: Fleet size / shard count per scale label (per-node transaction
#: budget matches the 4-node cluster experiment at the same scale).
_FLEET_SIZES = {"smoke": (24, 4), "quick": (48, 6), "paper": (96, 8)}


def _fleet_shape(scale: Scale) -> Tuple[int, int]:
    return _FLEET_SIZES.get(scale.label, _FLEET_SIZES["smoke"])


def peak_nodes_down(
    intervals: List[Tuple[float, float]], horizon_s: Optional[float] = None
) -> int:
    """The maximum number of overlapping downtime intervals.

    ``intervals`` is a list of ``(start, end)`` pairs (e.g. from a
    coordinator grant log); a plain sweep over +1/-1 events, with ends
    sorted before coincident starts so back-to-back restarts do not
    count as overlapping.
    """
    events = []
    for start, end in intervals:
        if horizon_s is not None:
            end = min(end, horizon_s)
        if end > start:
            events.append((start, 1))
            events.append((end, -1))
    peak = level = 0
    for _, delta in sorted(events, key=lambda event: (event[0], event[1])):
        level += delta
        peak = max(peak, level)
    return peak


def _run_scenario(
    label: str,
    scheduler: Optional[SchedulerSpec],
    scale: Scale,
    seed: int,
    rt_table: Table,
    loss_table: Table,
    down_table: Table,
) -> None:
    n_nodes, shards = _fleet_shape(scale)
    config = dataclasses.replace(
        PAPER_CONFIG, rejuvenation_downtime_s=DOWNTIME_S
    )
    spec = FleetSpec(n_nodes=n_nodes, shards=shards, scheduler=scheduler)
    rt_series = Series(label=label)
    loss_series = Series(label=label)
    down_series = Series(label=label)
    # Same per-node budget as the cluster experiment: scale.transactions
    # across 4 nodes there, so n_nodes/4 times that for the whole fleet.
    n_transactions = scale.transactions * n_nodes // 4
    for load in FLEET_LOADS:
        arrival = ArrivalSpec.poisson(config.arrival_rate_for_load(load))
        fleet = spec.build(
            config, arrival, PolicySpec.sraa(2, 5, 3), seed=seed
        )
        result = fleet.run(n_transactions)
        if fleet.grant_log:
            intervals = [
                (time, down_until) for time, _, down_until in fleet.grant_log
            ]
        else:
            # No coordinator in the loop: every trigger restarts freely.
            intervals = [
                (time, time + DOWNTIME_S)
                for time in result.rejuvenation_times
            ]
        rt_series.add(load, result.avg_response_time)
        loss_series.add(load, result.loss_fraction)
        down_series.add(
            load, peak_nodes_down(intervals, horizon_s=result.sim_duration_s)
        )
    rt_table.add_series(rt_series)
    loss_table.add_series(loss_series)
    down_table.add_series(down_series)


def run_fleet(scale: Scale, seed: int = 0) -> ExperimentResult:
    """The fleet scheduler grid at the scale's transaction budget."""
    n_nodes, shards = _fleet_shape(scale)
    shape = f"{n_nodes}-node / {shards}-shard fleet"
    rt_table = Table(
        title=f"{shape}: average response time",
        x_label="load_per_node_cpus",
        y_label="avg_response_time_s",
    )
    loss_table = Table(
        title=f"{shape}: fraction of transactions lost",
        x_label="load_per_node_cpus",
        y_label="loss_fraction",
    )
    down_table = Table(
        title=f"{shape}: peak nodes simultaneously in restart downtime",
        x_label="load_per_node_cpus",
        y_label="peak_nodes_down",
    )
    tables = (rt_table, loss_table, down_table)
    _run_scenario(
        "unrestricted grants", SchedulerSpec.unrestricted(),
        scale, seed, *tables,
    )
    _run_scenario(
        "rolling (floor 0.8)",
        SchedulerSpec.rolling(min_gap_s=10.0, capacity_floor=0.8),
        scale, seed, *tables,
    )
    _run_scenario(
        "canary (120s soak, floor 0.8)",
        SchedulerSpec.canary(
            canary_soak_s=120.0,
            wave_quiet_s=600.0,
            capacity_floor=0.8,
        ),
        scale, seed, *tables,
    )
    return ExperimentResult(
        experiment_id="fleet",
        description=(
            "Sharded fleet deployment: rolling and canary rejuvenation "
            "schedulers under a capacity floor (beyond the paper)"
        ),
        tables=list(tables),
        paper_expectations=[
            "not a figure of this paper; extends the cluster companion "
            "work [2] to a sharded fleet",
            "expected shape: unrestricted grants let restarts pile up "
            "(highest peak-down) at high per-node load; the capacity "
            "floor caps peak-down per shard; the canary holds the fleet "
            "back during the soak, so its peak-down is lowest and its "
            "restarts are the most deferred",
        ],
    )
