"""Statistical regression checks between ledger entries (``repro runs check``).

The comparison reuses the repo's own machinery rather than inventing new
statistics: replication-mean metrics get a two-sample z-test at the
critical value from :func:`repro.stats.normal.two_sided_z` (the same CLT
appeal the CLTA policy makes), and scalar metrics fall back to a
relative-tolerance band.  A single noisy exceedance does not flag: in
the spirit of the paper's SRAA bucket-persistence parameter ``D``, a
check only *flags* after ``persistence`` consecutive exceeding runs
against the same baseline, with the streak stored in the ledger's
``check_state.json``.

Outcome per check: ``ok`` (exit 0), ``exceeded`` (exit 1, streak grows),
``flagged`` (exit 2, streak reached persistence).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.obs.ledger.diff import spec_drift
from repro.stats.normal import two_sided_z

#: Default SRAA-style persistence: flag on the 2nd consecutive exceedance.
DEFAULT_PERSISTENCE = 2

#: Default relative-tolerance band for scalar (non-replicated) metrics.
DEFAULT_TOLERANCE = 0.05

#: The per-replication vectors compared for ``simulate`` runs.
SIMULATE_METRICS = (
    "avg_response_time",
    "loss_fraction",
    "rejuvenations",
    "gc_count",
)

#: The robustness-score fields compared for ``faults`` runs.
FAULTS_METRICS = (
    "missed_rate",
    "mean_detection_latency_s",
    "false_alarms_per_healthy_hour",
    "mean_loss_fraction",
    "mean_rejuvenations",
    "mean_response_time_s",
)


@dataclass
class MetricCheck:
    """One metric's verdict: baseline vs candidate."""

    metric: str
    baseline: float
    candidate: float
    method: str  # "welch-z" | "relative" | "hash"
    statistic: Optional[float] = None
    threshold: Optional[float] = None
    exceeded: bool = False

    @property
    def relative_delta(self) -> float:
        denom = max(abs(self.baseline), abs(self.candidate))
        if denom == 0.0:
            return 0.0
        return (self.candidate - self.baseline) / denom


@dataclass
class CheckReport:
    """The full verdict of one ``repro runs check`` invocation."""

    baseline_id: str
    candidate_id: str
    manifest_match: bool
    drift: List[str] = field(default_factory=list)
    checks: List[MetricCheck] = field(default_factory=list)
    persistence: int = DEFAULT_PERSISTENCE
    streak: int = 0

    @property
    def exceeded(self) -> bool:
        return bool(self.drift) or any(c.exceeded for c in self.checks)

    @property
    def flagged(self) -> bool:
        return self.exceeded and self.streak >= self.persistence

    @property
    def exit_code(self) -> int:
        if self.flagged:
            return 2
        if self.exceeded:
            return 1
        return 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "baseline_id": self.baseline_id,
            "candidate_id": self.candidate_id,
            "manifest_match": self.manifest_match,
            "drift": list(self.drift),
            "checks": [
                {
                    "metric": c.metric,
                    "baseline": c.baseline,
                    "candidate": c.candidate,
                    "method": c.method,
                    "statistic": c.statistic,
                    "threshold": c.threshold,
                    "relative_delta": c.relative_delta,
                    "exceeded": c.exceeded,
                }
                for c in self.checks
            ],
            "exceeded": self.exceeded,
            "streak": self.streak,
            "persistence": self.persistence,
            "flagged": self.flagged,
            "exit_code": self.exit_code,
        }


# ---------------------------------------------------------------------------
# Per-metric checks
# ---------------------------------------------------------------------------
def welch_check(
    metric: str,
    baseline_values: Sequence[float],
    candidate_values: Sequence[float],
    confidence: float = 0.95,
    tolerance: float = DEFAULT_TOLERANCE,
) -> MetricCheck:
    """Two-sample z-test on replication means (Welch variance).

    Falls back to the relative band when either side has fewer than two
    replications or both sides are degenerate (zero variance) -- the
    z statistic is undefined there, and smoke runs with one replication
    are the common case.
    """
    nb, nc = len(baseline_values), len(candidate_values)
    mb = sum(baseline_values) / nb
    mc = sum(candidate_values) / nc
    if nb < 2 or nc < 2:
        return relative_check(metric, mb, mc, tolerance)
    vb = sum((x - mb) ** 2 for x in baseline_values) / (nb - 1)
    vc = sum((x - mc) ** 2 for x in candidate_values) / (nc - 1)
    sem = math.sqrt(vb / nb + vc / nc)
    if sem == 0.0:
        return relative_check(metric, mb, mc, tolerance)
    z = (mc - mb) / sem
    critical = two_sided_z(confidence)
    return MetricCheck(
        metric=metric,
        baseline=mb,
        candidate=mc,
        method="welch-z",
        statistic=z,
        threshold=critical,
        exceeded=abs(z) > critical,
    )


def relative_check(
    metric: str,
    baseline: float,
    candidate: float,
    tolerance: float = DEFAULT_TOLERANCE,
) -> MetricCheck:
    """Scalar comparison: exceed when |relative delta| > tolerance."""
    check = MetricCheck(
        metric=metric,
        baseline=float(baseline),
        candidate=float(candidate),
        method="relative",
        threshold=tolerance,
    )
    check.statistic = check.relative_delta
    check.exceeded = abs(check.relative_delta) > tolerance
    return check


# ---------------------------------------------------------------------------
# Per-kind outcome comparison
# ---------------------------------------------------------------------------
def compare_outcomes(
    kind: str,
    baseline: Mapping[str, Any],
    candidate: Mapping[str, Any],
    confidence: float = 0.95,
    tolerance: float = DEFAULT_TOLERANCE,
) -> List[MetricCheck]:
    """Metric checks appropriate to the run kind's outcome schema."""
    if kind == "simulate":
        return _compare_simulate(baseline, candidate, confidence, tolerance)
    if kind == "experiment":
        return _compare_experiment(baseline, candidate, tolerance)
    if kind == "faults":
        return _compare_faults(baseline, candidate, tolerance)
    raise ValueError(f"unknown run kind {kind!r}")


def _compare_simulate(
    baseline: Mapping[str, Any],
    candidate: Mapping[str, Any],
    confidence: float,
    tolerance: float,
) -> List[MetricCheck]:
    checks = []
    base = baseline.get("per_replication", {})
    cand = candidate.get("per_replication", {})
    for metric in SIMULATE_METRICS:
        if metric in base and metric in cand:
            checks.append(
                welch_check(
                    metric, base[metric], cand[metric], confidence, tolerance
                )
            )
    return checks


def _compare_experiment(
    baseline: Mapping[str, Any],
    candidate: Mapping[str, Any],
    tolerance: float,
) -> List[MetricCheck]:
    # Bit-identical reproduction short-circuits everything.
    if baseline.get("result_hash") == candidate.get("result_hash"):
        check = MetricCheck(
            metric="result_hash",
            baseline=0.0,
            candidate=0.0,
            method="hash",
            exceeded=False,
        )
        return [check]
    checks = []
    base_series = {
        (t["title"], s["label"]): s
        for t in baseline.get("tables", ())
        for s in t["series"]
    }
    for table in candidate.get("tables", ()):
        for series in table["series"]:
            key = (table["title"], series["label"])
            if key not in base_series:
                continue
            checks.append(
                relative_check(
                    f"{key[0]}/{key[1]}:mean",
                    base_series[key]["mean"],
                    series["mean"],
                    tolerance,
                )
            )
    return checks


def _compare_faults(
    baseline: Mapping[str, Any],
    candidate: Mapping[str, Any],
    tolerance: float,
) -> List[MetricCheck]:
    checks = []
    base_scores = {
        (s["scenario"], s["policy"]): s
        for s in baseline.get("scores", ())
    }
    for score in candidate.get("scores", ()):
        key = (score["scenario"], score["policy"])
        if key not in base_scores:
            continue
        for metric in FAULTS_METRICS:
            if metric not in score or metric not in base_scores[key]:
                continue
            checks.append(
                relative_check(
                    f"{key[0]}/{key[1]}:{metric}",
                    base_scores[key][metric],
                    score[metric],
                    tolerance,
                )
            )
    return checks


# ---------------------------------------------------------------------------
# The full check, with persistence
# ---------------------------------------------------------------------------
def run_check(
    ledger: Any,
    baseline_entry: Mapping[str, Any],
    candidate_entry: Mapping[str, Any],
    confidence: float = 0.95,
    tolerance: float = DEFAULT_TOLERANCE,
    persistence: int = DEFAULT_PERSISTENCE,
    update_state: bool = True,
) -> CheckReport:
    """Compare candidate against baseline and advance the streak state.

    Manifest drift (differing hashed identity -- e.g. a doubled service
    time changes the config spec) is itself a finding: the drifting
    paths are listed and the run counts as exceeding, *and* the outcome
    metrics are still compared so the report shows how much the drift
    moved them.  The streak is keyed by the baseline's manifest hash in
    ``check_state.json``; a clean check resets it, an exceedance grows
    it, and ``persistence`` consecutive exceedances flag.
    """
    if persistence < 1:
        raise ValueError("persistence must be >= 1")
    base_hash = baseline_entry["manifest"]["manifest_hash"]
    cand_hash = candidate_entry["manifest"]["manifest_hash"]
    match = base_hash == cand_hash
    drift = [] if match else spec_drift(baseline_entry, candidate_entry)
    if not match and not drift:
        # Hashes differ but no flattened path does (should not happen;
        # keep the report honest rather than silently passing).
        drift = ["manifest.manifest_hash"]
    kind = candidate_entry["kind"]
    checks: List[MetricCheck] = []
    if kind == baseline_entry["kind"]:
        checks = compare_outcomes(
            kind,
            baseline_entry.get("outcomes", {}),
            candidate_entry.get("outcomes", {}),
            confidence,
            tolerance,
        )
    else:
        drift = ["manifest.kind"] + drift
    report = CheckReport(
        baseline_id=baseline_entry["id"],
        candidate_id=candidate_entry["id"],
        manifest_match=match,
        drift=drift,
        checks=checks,
        persistence=persistence,
    )
    state = ledger.check_state() if ledger is not None else {}
    streak = int(state.get(base_hash, {}).get("streak", 0))
    report.streak = streak + 1 if report.exceeded else 0
    if ledger is not None and update_state:
        state[base_hash] = {
            "streak": report.streak,
            "last_candidate": candidate_entry["id"],
        }
        ledger.save_check_state(state)
    return report
