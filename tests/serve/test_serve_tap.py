"""ServeTap: tracer-protocol compliance, publishing, pure observation.

The acceptance pin lives here: a simulation with a ``ServeTap``
publishing into a broker (with a subscriber attached) produces
bit-identical results to the same simulation with no tap at all.
"""

import pickle

import pytest

from repro.core.spec import PolicySpec
from repro.ecommerce.config import PAPER_CONFIG
from repro.ecommerce.runner import run_replications
from repro.ecommerce.spec import ArrivalSpec
from repro.exec.backends import SerialBackend
from repro.faults.campaign import run_campaign
from repro.faults.zoo import get_scenario
from repro.obs.live import LiveSpec, RecorderSpec
from repro.serve import EventBroker, ServeSpec, ServeTap


def make_tap(**kwargs):
    return ServeSpec(**kwargs).build()


class TestProtocol:
    def test_is_a_live_tap(self):
        tap = make_tap()
        assert tap.spans and tap.decisions
        assert not tap.engine and not tap.lifecycle
        assert tap.events == ()

    def test_build_without_broker_degrades_gracefully(self):
        tap = make_tap()
        tap.emit(1.0, "fault.injected", "campaign", kind="surge")
        assert tap.aggregator.snapshot()["faults"] == 1

    def test_spec_with_broker_is_unpicklable_on_purpose(self):
        spec = ServeSpec(broker=EventBroker())
        with pytest.raises(Exception):
            pickle.dumps(spec)  # keeps serve jobs in the parent process


class TestPublishing:
    def test_incident_types_forwarded_in_order(self):
        broker = EventBroker()
        subscription = broker.subscribe()
        tap = make_tap(broker=broker, run_tag="r1")
        tap.emit(1.0, "fault.injected", "campaign", kind="surge")
        tap.emit(2.0, "request.complete", "system", response_time=0.5)
        tap.emit(3.0, "policy.trigger", "policy:sraa", level=2)
        tap.emit(4.0, "system.rejuvenation", "node0", lost=1)
        tap.emit(5.0, "fault.cleared", "campaign", kind="surge")
        kinds = [subscription.get(timeout=1.0)["event"] for _ in range(4)]
        assert kinds == [
            "fault.injected",
            "policy.trigger",
            "system.rejuvenation",
            "fault.cleared",
        ]

    def test_payload_carries_ts_source_data_and_run_tag(self):
        broker = EventBroker()
        subscription = broker.subscribe()
        tap = make_tap(broker=broker, run_tag="job-0007")
        tap.emit(4.5, "fault.injected", "campaign", kind="surge", x=2)
        data = subscription.get(timeout=1.0)["data"]
        assert data["ts"] == 4.5
        assert data["source"] == "campaign"
        assert data["kind"] == "surge"
        assert data["x"] == 2
        assert data["run"] == "job-0007"

    def test_request_traffic_not_forwarded_as_incidents(self):
        broker = EventBroker()
        subscription = broker.subscribe()
        tap = make_tap(broker=broker)
        for i in range(10):
            tap.emit(float(i), "request.complete", "system",
                     response_time=0.1)
        import queue

        with pytest.raises(queue.Empty):
            subscription.get(timeout=0.01)

    def test_snapshot_published_every_n_completions(self):
        broker = EventBroker()
        subscription = broker.subscribe()
        tap = make_tap(broker=broker, snapshot_every=5)
        for i in range(12):
            tap.emit(float(i), "request.complete", "system",
                     response_time=0.1)
        first = subscription.get(timeout=1.0)
        second = subscription.get(timeout=1.0)
        assert first["event"] == second["event"] == "live.snapshot"
        assert first["data"]["completed"] == 5
        assert second["data"]["completed"] == 10
        assert broker.latest_snapshot["completed"] == 10

    def test_flight_dump_notices(self):
        broker = EventBroker()
        subscription = broker.subscribe()
        tap = make_tap(
            broker=broker, recorder=RecorderSpec(cooldown_s=0.0)
        )
        tap.emit(1.0, "request.complete", "system", response_time=1.0)
        tap.emit(2.0, "system.rejuvenation", "node0", lost=0)
        rejuvenation = subscription.get(timeout=1.0)
        dump = subscription.get(timeout=1.0)
        assert rejuvenation["event"] == "system.rejuvenation"
        assert dump["event"] == "flight.dump"
        assert dump["data"]["reason"] == "system.rejuvenation"
        assert dump["data"]["records"] >= 1

    def test_freeze_publishes_final_snapshot(self):
        broker = EventBroker()
        tap = make_tap(broker=broker, snapshot_every=10 ** 9)
        tap.emit(1.0, "request.complete", "system", response_time=0.5)
        assert broker.latest_snapshot is None
        tap.freeze()
        assert broker.latest_snapshot["completed"] == 1

    def test_snapshot_payload_slo_fields(self):
        tap = make_tap(recorder=RecorderSpec(slo_s=0.2, cooldown_s=0.0))
        tap.emit(1.0, "request.complete", "system", response_time=0.5)
        payload = tap.snapshot_payload()
        assert payload["slo_s"] == 0.2
        assert payload["slo_breaches"] == 1
        assert payload["flight_dumps"] == 1

    def test_clear_resets_publish_counters(self):
        broker = EventBroker()
        tap = make_tap(broker=broker, snapshot_every=2)
        tap.emit(1.0, "request.complete", "system", response_time=0.1)
        tap.clear()
        tap.emit(2.0, "request.complete", "system", response_time=0.1)
        assert broker.latest_snapshot is None  # counter restarted


def _result_key(run):
    return (
        run.arrivals,
        run.completed,
        run.lost,
        run.avg_response_time,
        run.rt_std,
        run.max_response_time,
        run.loss_fraction,
        run.gc_count,
        run.rejuvenations,
        run.sim_duration_s,
        run.rejuvenation_times,
    )


def _replicate(live):
    return run_replications(
        PAPER_CONFIG,
        arrival=ArrivalSpec.poisson(
            PAPER_CONFIG.arrival_rate_for_load(9.0)
        ),
        policy=PolicySpec.sraa(2, 5, 3),
        n_transactions=400,
        replications=2,
        seed=20,
        backend=SerialBackend(),
        live=live,
    )


class TestPureObserver:
    """ISSUE acceptance: serving must never perturb the simulation."""

    def test_replications_bit_identical_with_and_without_tap(self):
        broker = EventBroker()
        broker.subscribe()  # a live subscriber, never drained
        unserved = _replicate(live=None)
        served = _replicate(
            live=ServeSpec(
                broker=broker,
                run_tag="pin",
                snapshot_every=50,
                recorder=RecorderSpec(slo_s=30.0, cooldown_s=0.0),
            )
        )
        assert [_result_key(r) for r in unserved.runs] == [
            _result_key(r) for r in served.runs
        ]
        assert broker.published > 0  # the tap really was publishing

    def test_served_tap_matches_plain_live_tap_state(self):
        base = _replicate(live=LiveSpec())
        served = _replicate(live=ServeSpec(broker=EventBroker()))
        a, b = base.merged_live(), served.merged_live()
        assert a.snapshot() == b.snapshot()

    def test_campaign_scores_bit_identical_under_serving(self):
        scenario = get_scenario("aging_onset", 300.0)
        policies = {"SRAA": PolicySpec.sraa(2, 5, 3)}
        broker = EventBroker()
        broker.subscribe()
        unserved = run_campaign(
            scenarios=[scenario], policies=policies, replications=2,
            seed=3, backend=SerialBackend(),
        )
        served = run_campaign(
            scenarios=[scenario], policies=policies, replications=2,
            seed=3, backend=SerialBackend(),
            live=ServeSpec(broker=broker, run_tag="c"),
        )
        assert unserved.scores == served.scores
