"""``repro serve``: the HTTP observability plane.

One stdlib-only server (:class:`ReproServer`) exposes the run ledger
as a JSON API, streams live telemetry over Server-Sent Events through
an :class:`EventBroker` fed by a :class:`ServeTap` (the tracer-protocol
sink attached to background runs), launches fault campaigns via a
:class:`JobManager`, and renders a self-contained HTML dashboard.
"""

from repro.serve.app import DEFAULT_HOST, DEFAULT_PORT, ReproServer
from repro.serve.broker import EventBroker, Subscription
from repro.serve.dashboard import render_dashboard
from repro.serve.jobs import Job, JobCancelled, JobManager
from repro.serve.tap import ServeSpec, ServeTap

__all__ = [
    "DEFAULT_HOST",
    "DEFAULT_PORT",
    "EventBroker",
    "Job",
    "JobCancelled",
    "JobManager",
    "ReproServer",
    "ServeSpec",
    "ServeTap",
    "Subscription",
    "render_dashboard",
]
