"""Fault-injection campaign: robustness scores + campaign overhead.

Two pins.  First, the `faults` registry experiment regenerates the
robustness table over the whole scenario zoo and the shape assertions
check the design intent: SRAA at paper defaults misses no genuine
degradation on the acceptance scenarios while CLTA pays in false
alarms on the false-aging blips.  Second, the campaign plumbing
(scenario payload pickling, injection arming, ground-truth scoring)
must not materially slow execution down: the same jobs run with an
empty scenario attached are compared against plain jobs with no faults
payload, with bit-identical results and bounded overhead.
"""

import time
from dataclasses import replace

from conftest import BENCH_SEED, assertions_enabled, regenerate

from repro.ecommerce.spec import ArrivalSpec
from repro.exec.backends import SerialBackend
from repro.faults.campaign import DEFAULT_POLICIES, campaign_jobs
from repro.faults.scenario import FaultScenario
from repro.faults.zoo import BASE_CONFIG, HIGH_LOAD_RATE, scenario_names
from repro.exec.jobs import execute_job

#: Zoo presentation order gives each scenario its x index in the tables.
X = {name: float(i) for i, name in enumerate(scenario_names())}


def test_faults_campaign(benchmark):
    result = regenerate(benchmark, "faults")
    if not assertions_enabled():
        return
    latency, alarms, cost = result.tables
    sraa_alarms = alarms.get_series("SRAA")
    clta_alarms = alarms.get_series("CLTA")
    # The acceptance scenario: 15 s hang blips cross CLTA's single-test
    # threshold but cannot climb SRAA's bucket chain.
    assert sraa_alarms.value_at(X["false_aging"]) == 0.0
    assert clta_alarms.value_at(X["false_aging"]) > 0.0
    # Burst tolerance: the 1.6x surge and the 6->9 load step are
    # healthy operating points; SRAA must not fire on either.
    assert sraa_alarms.value_at(X["traffic_surge"]) == 0.0
    assert sraa_alarms.value_at(X["workload_shift"]) == 0.0
    # Every policy detects the clean x3 slowdown (a latency point
    # exists only when something was detected).
    for label in ("SRAA", "SARAA", "CLTA"):
        assert latency.get_series(label).value_at(X["aging_onset"]) > 0.0
    # Triggering costs transactions: whoever rejuvenates pays a
    # bounded, non-zero loss on the genuine-aging scenario.
    for label in ("SRAA", "SARAA", "CLTA"):
        assert 0.0 < cost.get_series(label).value_at(X["aging_onset"]) < 0.5


def test_campaign_overhead_vs_plain_sweep():
    """The faults payload must ride along nearly for free.

    An *empty* scenario (no injections, no ground truth) makes the
    simulated work identical to a plain replication sweep, so any
    wall-clock difference is pure campaign machinery: scenario
    pickling, arming, tag bookkeeping.  Results must be bit-identical
    and the overhead bounded.
    """
    scenario = FaultScenario(
        name="baseline",
        description="no injections -- plain sweep in campaign clothing",
        config=BASE_CONFIG,
        arrival=ArrivalSpec.poisson(HIGH_LOAD_RATE),
        n_transactions=5_000,
        horizon_s=5_000 / HIGH_LOAD_RATE,
    )
    jobs = campaign_jobs(
        [scenario], DEFAULT_POLICIES, replications=3, seed=BENCH_SEED
    )
    plain_jobs = [replace(job, faults=None) for job in jobs]
    backend = SerialBackend()

    started = time.perf_counter()
    plain = backend.map(execute_job, plain_jobs)
    plain_s = time.perf_counter() - started

    started = time.perf_counter()
    campaign = backend.map(execute_job, jobs)
    campaign_s = time.perf_counter() - started

    assert campaign == plain  # the empty scenario changes nothing
    overhead = campaign_s / plain_s
    print(
        f"\nplain {plain_s:.2f}s vs campaign {campaign_s:.2f}s "
        f"({overhead:.2f}x)"
    )
    # Generous bound: the arming loop is O(#injections) at run start
    # and the payload pickles once per job.
    assert overhead < 1.5
