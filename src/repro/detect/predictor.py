"""Trend-projection detection: trigger on the *predicted* breach.

The learning line of aging work (Sumathi & Raju's neural predictors)
forecasts the monitored statistic and rejuvenates when the forecast --
not the current value -- violates the SLA.  This detector keeps that
spirit dependency-free with Holt double-exponential smoothing: an
incremental level/trend model over batch means, O(1) state, updated
per batch.  It triggers when the projected trajectory

    ``level + lookahead * trend``

crosses the SLA bound within the lookahead horizon while the trend is
genuinely upward, sustained for ``patience`` consecutive batches.  On
clean aging this fires *before* the raw signal reaches the bound
(latency is its strength); on saturation ramps the projection chases
the workload and pays in false alarms -- the trade the ``detectors``
robustness table quantifies.
"""

from __future__ import annotations

from typing import Optional

from repro.core.base import BatchBuffer, RejuvenationPolicy
from repro.core.sla import ServiceLevelObjective


class TrendProjectionPolicy(RejuvenationPolicy):
    """Holt-smoothed trend projection against an SLA bound.

    Parameters
    ----------
    slo:
        Supplies the default bound (``slo.shift_threshold(4)``, the
        top of the paper's escalation ladder).
    sample_size:
        Batch size ``n`` over which means are smoothed.
    alpha / beta:
        Holt smoothing weights for the level and the trend.
    lookahead:
        Projection horizon, in batches.
    bound:
        The SLA bound the projection is tested against.
    warmup:
        Batches before the model is trusted (nothing triggers before).
    patience:
        Consecutive projected breaches required to trigger.
    """

    name = "predictor"

    def __init__(
        self,
        slo: ServiceLevelObjective,
        sample_size: int = 5,
        alpha: float = 0.3,
        beta: float = 0.1,
        lookahead: int = 12,
        bound: Optional[float] = None,
        warmup: int = 10,
        patience: int = 3,
    ) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must lie in (0, 1]")
        if not 0.0 < beta <= 1.0:
            raise ValueError("beta must lie in (0, 1]")
        if lookahead < 1:
            raise ValueError("lookahead must be >= 1")
        if warmup < 2:
            raise ValueError("warmup must be >= 2")
        if patience < 1:
            raise ValueError("patience must be >= 1")
        self.slo = slo
        self.buffer = BatchBuffer(sample_size)
        self.alpha = float(alpha)
        self.beta = float(beta)
        self.lookahead = int(lookahead)
        self.bound = (
            slo.shift_threshold(4) if bound is None else float(bound)
        )
        self.warmup = int(warmup)
        self.patience = int(patience)
        self.level: Optional[float] = None
        self.trend = 0.0
        self.batches = 0
        self.streak = 0

    # ------------------------------------------------------------------
    @property
    def projection(self) -> Optional[float]:
        """The forecast ``lookahead`` batches out (``None`` pre-model)."""
        if self.level is None:
            return None
        return self.level + self.lookahead * self.trend

    def observe(self, value: float) -> bool:
        batch_mean = self.buffer.push(value)
        if batch_mean is None:
            return False
        return self._observe_batch(batch_mean)

    def _observe_batch(self, batch_mean: float) -> bool:
        if self.level is None:
            self.level = batch_mean
            self.trend = 0.0
        else:
            previous = self.level
            self.level = self.alpha * batch_mean + (1.0 - self.alpha) * (
                previous + self.trend
            )
            self.trend = (
                self.beta * (self.level - previous)
                + (1.0 - self.beta) * self.trend
            )
        self.batches += 1
        projected = self.level + self.lookahead * self.trend
        breach = (
            self.batches >= self.warmup
            and self.trend > 0.0
            and projected >= self.bound
        )
        listener = self._listener
        if listener is not None and listener.wants_batches:
            listener.on_batch(
                self, batch_mean, self.bound, self.buffer.size, breach
            )
        if not breach:
            self.streak = 0
            return False
        self.streak += 1
        if self.streak < self.patience:
            return False
        cause = {
            "kind": "trend-projection",
            "projected": projected,
            "bound": self.bound,
            "holt_level": self.level,
            "holt_trend": self.trend,
            "lookahead": self.lookahead,
            "batch_mean": batch_mean,
            "streak": self.streak,
            "sample_size": self.buffer.size,
        }
        self._clear_model()
        if listener is not None:
            listener.on_trigger_cause(self, cause)
        return True

    def _clear_model(self) -> None:
        self.buffer.clear()
        self.level = None
        self.trend = 0.0
        self.batches = 0
        self.streak = 0

    def reset(self) -> None:
        """Forget the fitted model entirely (a rejuvenation or crash
        invalidates the trajectory it was fitted to)."""
        self._clear_model()
        if self._listener is not None:
            self._listener.on_reset(self)

    def describe(self) -> str:
        return (
            f"TrendProjection(n={self.buffer.size}, "
            f"alpha={self.alpha:g}, beta={self.beta:g}, "
            f"H={self.lookahead}, bound={self.bound:g})"
        )
