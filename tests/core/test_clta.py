"""CLTA: Fig. 8 semantics and the false-alarm calibration."""

import math

import numpy as np
import pytest

from repro.core.clta import CLTA
from repro.core.sla import ServiceLevelObjective

SLO = ServiceLevelObjective(mean=5.0, std=5.0)


class TestThreshold:
    def test_paper_threshold(self):
        policy = CLTA(SLO, sample_size=30, z=1.96)
        assert policy.threshold == pytest.approx(
            5.0 + 1.96 * 5.0 / math.sqrt(30)
        )

    def test_larger_n_tightens_threshold(self):
        loose = CLTA(SLO, sample_size=15, z=1.96)
        tight = CLTA(SLO, sample_size=60, z=1.96)
        assert tight.threshold < loose.threshold

    def test_from_false_alarm_rate(self):
        policy = CLTA.from_false_alarm_rate(
            SLO, sample_size=30, false_alarm_rate=0.025
        )
        assert policy.z == pytest.approx(1.959964, abs=1e-5)

    def test_from_false_alarm_rate_validation(self):
        with pytest.raises(ValueError):
            CLTA.from_false_alarm_rate(SLO, 30, false_alarm_rate=0.0)


class TestTriggering:
    def test_single_large_batch_mean_triggers(self):
        policy = CLTA(SLO, sample_size=3, z=1.96)
        assert policy.observe(100.0) is False
        assert policy.observe(100.0) is False
        assert policy.observe(100.0) is True

    def test_single_spike_smoothed_out(self):
        policy = CLTA(SLO, sample_size=30, z=1.96)
        values = [100.0] + [1.0] * 29  # mean 4.3 < 6.79
        assert policy.observe_many(values) == []

    def test_no_bucket_memory(self):
        # Unlike SRAA, history of near-threshold batches is irrelevant.
        policy = CLTA(SLO, sample_size=2, z=1.96)
        near = [6.0, 6.0] * 50  # each batch mean 6 < 11.93
        assert policy.observe_many(near) == []

    def test_trigger_clears_buffer(self):
        policy = CLTA(SLO, sample_size=2, z=1.96)
        policy.observe(50.0)
        assert policy.observe(50.0) is True
        assert policy.buffer.pending == 0

    def test_reset(self):
        policy = CLTA(SLO, sample_size=3, z=1.96)
        policy.observe(50.0)
        policy.reset()
        assert policy.buffer.pending == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            CLTA(SLO, sample_size=0)

    def test_describe(self):
        assert CLTA(SLO, 30, 1.96).describe() == "CLTA(n=30, z=1.96)"


class TestFalseAlarmRate:
    def test_empirical_rate_on_normal_data(self):
        # On truly normal data the false-alarm rate is the nominal one.
        rng = np.random.default_rng(7)
        policy = CLTA(SLO, sample_size=25, z=1.96)
        batches = 4_000
        values = rng.normal(5.0, 5.0, size=batches * 25)
        triggers = len(policy.observe_many(values))
        assert triggers / batches == pytest.approx(0.025, abs=0.008)

    def test_empirical_rate_on_exponential_data_is_inflated(self):
        # Skewed data inflates the rate above nominal (Section 4.1).
        rng = np.random.default_rng(8)
        policy = CLTA(SLO, sample_size=15, z=1.96)
        batches = 4_000
        values = rng.exponential(5.0, size=batches * 15)
        triggers = len(policy.observe_many(values))
        assert triggers / batches > 0.028

    def test_shifted_distribution_detected_quickly(self):
        rng = np.random.default_rng(9)
        policy = CLTA(SLO, sample_size=30, z=1.96)
        # A 2-sigma shift: mean 15; P(batch mean < 6.79) is tiny.
        values = rng.exponential(15.0, size=300)
        triggers = policy.observe_many(values)
        assert triggers and triggers[0] < 90
