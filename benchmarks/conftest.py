"""Shared benchmark helpers.

Every benchmark regenerates one of the paper's tables/figures through
the experiment registry, times the regeneration, prints the table the
paper's figure would be plotted from, and asserts the paper's *shape*
claims (who wins where) on the freshly produced numbers.

Scale control: set ``REPRO_SCALE=smoke|quick|paper`` (default ``quick``).
The shape assertions are written to hold from ``quick`` upwards; at
``smoke`` they are skipped (too noisy) and only the regeneration runs.
"""

from __future__ import annotations

import os
import sys
import time

import pytest

from repro.experiments.registry import run_experiment
from repro.experiments.scale import Scale
from repro.experiments.tables import ExperimentResult

#: Master seed for all benchmark runs (reproducible output).
BENCH_SEED = 2006


def bench_scale() -> Scale:
    """The scale benchmarks run at (env-controlled, default quick)."""
    return Scale.from_env(default=os.environ.get("REPRO_SCALE", "quick"))


def assertions_enabled() -> bool:
    """Shape assertions need at least quick scale to be reliable."""
    return bench_scale().label != "smoke"


def regenerate(benchmark, experiment_id: str) -> ExperimentResult:
    """Time one experiment regeneration and print its tables.

    Besides the pytest-benchmark stats, the measured wall-clock is
    appended as one point to the experiment's ``BENCH_*.json``
    trajectory (``repro runs bench`` lists them; ``REPRO_BENCH_DIR``
    relocates the files), so performance history accumulates across
    sessions alongside the run ledger.
    """
    scale = bench_scale()
    started = time.perf_counter()
    result = benchmark.pedantic(
        run_experiment,
        args=(experiment_id, scale),
        kwargs={"seed": BENCH_SEED},
        rounds=1,
        iterations=1,
    )
    elapsed = time.perf_counter() - started
    _record_point(experiment_id, scale, elapsed)
    print()
    print(result.format_text())
    return result


def _record_point(experiment_id: str, scale: Scale, elapsed: float) -> None:
    """Append the trajectory point; never fails the benchmark."""
    try:
        from repro.obs.ledger import record_bench_point

        record_bench_point(
            f"{experiment_id}_{scale.label}", elapsed, units="s",
            seed=BENCH_SEED,
        )
    except Exception as error:  # pragma: no cover - diagnostics only
        print(f"bench trajectory not recorded: {error}", file=sys.stderr)


def series_mean(series, loads) -> float:
    """Mean of a curve over the given x values (missing points skipped)."""
    values = [series.points[x] for x in loads if x in series.points]
    if not values:
        raise AssertionError(f"series {series.label!r} has no points in {loads}")
    return sum(values) / len(values)


def high_loads(result_table) -> list:
    """The x values at or above 8 CPUs present in the table."""
    return [x for x in result_table.xs() if x >= 8.0]


def low_loads(result_table) -> list:
    """The x values at or below 2 CPUs present in the table."""
    return [x for x in result_table.xs() if x <= 2.0]
