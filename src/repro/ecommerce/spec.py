"""Declarative arrival-process specifications.

An :class:`ArrivalSpec` is the picklable counterpart of the old
``lambda: PoissonArrivals(rate)`` factories: plain data (process kind +
parameters) from which a *fresh* arrival process is built per
replication.  Arrival processes are stateful (MMPP phase, periodic
clock, trace cursor), so every replication must get its own instance;
building from plain data is what lets the job cross process boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Sequence, Type

from repro.ecommerce.workload import (
    ArrivalProcess,
    MMPPArrivals,
    PeriodicArrivals,
    PoissonArrivals,
    TraceArrivals,
)

#: Spec kind -> arrival-process class.
ARRIVAL_KINDS: Dict[str, Type[ArrivalProcess]] = {
    "poisson": PoissonArrivals,
    "mmpp": MMPPArrivals,
    "periodic": PeriodicArrivals,
    "trace": TraceArrivals,
}


@dataclass(frozen=True)
class ArrivalSpec:
    """An arrival process as plain data: ``kind`` + constructor params.

    Examples
    --------
    >>> ArrivalSpec.poisson(1.6).build()
    PoissonArrivals(rate=1.6)
    """

    kind: str
    params: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in ARRIVAL_KINDS:
            raise ValueError(
                f"unknown arrival kind {self.kind!r}; available: "
                f"{', '.join(sorted(ARRIVAL_KINDS))}"
            )
        object.__setattr__(self, "params", dict(self.params))

    def build(self) -> ArrivalProcess:
        """A fresh arrival process in its initial state."""
        return ARRIVAL_KINDS[self.kind](**self.params)

    # ------------------------------------------------------------------
    # Constructors, one per process family
    # ------------------------------------------------------------------
    @classmethod
    def poisson(cls, rate: float) -> "ArrivalSpec":
        """Homogeneous Poisson arrivals (the paper's workload)."""
        return cls(kind="poisson", params={"rate": float(rate)})

    @classmethod
    def mmpp(
        cls,
        base_rate: float,
        burst_rate: float,
        mean_quiet_s: float,
        mean_burst_s: float,
    ) -> "ArrivalSpec":
        """Two-state Markov-modulated Poisson arrivals (bursty)."""
        return cls(
            kind="mmpp",
            params={
                "base_rate": float(base_rate),
                "burst_rate": float(burst_rate),
                "mean_quiet_s": float(mean_quiet_s),
                "mean_burst_s": float(mean_burst_s),
            },
        )

    @classmethod
    def periodic(
        cls, base_rate: float, amplitude: float, period_s: float
    ) -> "ArrivalSpec":
        """Sinusoidally modulated Poisson arrivals (daily cycle)."""
        return cls(
            kind="periodic",
            params={
                "base_rate": float(base_rate),
                "amplitude": float(amplitude),
                "period_s": float(period_s),
            },
        )

    @classmethod
    def trace(cls, interarrivals: Sequence[float]) -> "ArrivalSpec":
        """Replay of a recorded inter-arrival sequence."""
        return cls(
            kind="trace",
            params={"interarrivals": tuple(float(x) for x in interarrivals)},
        )
