"""Control-chart detectors: CUSUM and the EWMA chart.

The bucket chain is, structurally, a discretised change detector; the
statistical-process-control literature the run-length analysis of
:mod:`repro.core.arl` borrows from has two canonical continuous
counterparts, included here as baselines:

* **CUSUM** (Page 1954): accumulate one-sided deviations above a
  reference value, trigger when the cumulative sum crosses a decision
  interval.  Optimal (in the Lorden sense) for detecting a sustained
  mean shift of known size.
* **EWMA chart** (Roberts 1959): an exponentially weighted moving
  average with control limits scaled by its asymptotic standard
  deviation; favours small persistent shifts.

Both are one-sided here (only *increases* of a response time are
degradations) and self-reset on trigger like every policy in this
library.
"""

from __future__ import annotations

import math

from repro.core.base import RejuvenationPolicy
from repro.core.sla import ServiceLevelObjective


class CUSUMPolicy(RejuvenationPolicy):
    """One-sided CUSUM on the monitored metric.

    The statistic ``S`` follows ``S <- max(0, S + (x - mu - k))`` and a
    trigger fires when ``S > h``.  The reference offset ``k`` is
    conventionally half the shift one wants to detect quickly
    (``k = delta/2`` in sigma units); the decision interval ``h`` sets
    the in-control ARL.

    Parameters
    ----------
    slo:
        Healthy-behaviour mean and standard deviation.
    k_sigmas:
        Reference offset in standard deviations (default 0.5: tuned for
        a one-sigma shift).
    h_sigmas:
        Decision interval in standard deviations (default 5, the
        textbook choice).

    Examples
    --------
    >>> from repro.core.sla import PAPER_SLO
    >>> policy = CUSUMPolicy(PAPER_SLO)
    >>> any(policy.observe(50.0) for _ in range(10))
    True
    """

    name = "cusum"

    def __init__(
        self,
        slo: ServiceLevelObjective,
        k_sigmas: float = 0.5,
        h_sigmas: float = 5.0,
    ) -> None:
        if k_sigmas < 0:
            raise ValueError("reference offset must be non-negative")
        if h_sigmas <= 0:
            raise ValueError("decision interval must be positive")
        self.slo = slo
        self.reference = slo.mean + k_sigmas * slo.std
        self.decision_interval = h_sigmas * slo.std
        self.statistic = 0.0

    def observe(self, value: float) -> bool:
        self.statistic = max(0.0, self.statistic + value - self.reference)
        statistic = self.statistic
        triggered = statistic > self.decision_interval
        listener = self._listener
        if listener is not None and listener.wants_batches:
            # For control charts the "batch mean" slot carries the
            # chart statistic: that is what gets compared to the limit.
            listener.on_batch(
                self, statistic, self.decision_interval, 1, triggered
            )
        if triggered:
            self.statistic = 0.0
            if listener is not None:
                listener.on_trigger(
                    self, statistic, self.decision_interval, 0, 1
                )
            return True
        return False

    def reset(self) -> None:
        """Zero the cumulative sum."""
        self.statistic = 0.0
        if self._listener is not None:
            self._listener.on_reset(self)

    def describe(self) -> str:
        return (
            f"CUSUM(ref={self.reference:g}, h={self.decision_interval:g})"
        )


class EWMAPolicy(RejuvenationPolicy):
    """One-sided EWMA control chart.

    ``z <- lam * x + (1 - lam) * z`` starting at ``mu``; a trigger fires
    when ``z`` exceeds the upper control limit
    ``mu + L * sigma * sqrt(lam / (2 - lam))`` (the asymptotic standard
    deviation of the EWMA under i.i.d. observations).

    Parameters
    ----------
    slo:
        Healthy-behaviour mean and standard deviation.
    lam:
        Smoothing weight in (0, 1]; small values favour small shifts.
    L_sigmas:
        Control-limit width (default 3, the textbook choice).
    """

    name = "ewma"

    def __init__(
        self,
        slo: ServiceLevelObjective,
        lam: float = 0.2,
        L_sigmas: float = 3.0,
    ) -> None:
        if not 0.0 < lam <= 1.0:
            raise ValueError("smoothing weight must lie in (0, 1]")
        if L_sigmas <= 0:
            raise ValueError("control-limit width must be positive")
        self.slo = slo
        self.lam = float(lam)
        self.limit = slo.mean + L_sigmas * slo.std * math.sqrt(
            lam / (2.0 - lam)
        )
        self.statistic = slo.mean

    def observe(self, value: float) -> bool:
        self.statistic = self.lam * value + (1.0 - self.lam) * self.statistic
        statistic = self.statistic
        triggered = statistic > self.limit
        listener = self._listener
        if listener is not None and listener.wants_batches:
            listener.on_batch(self, statistic, self.limit, 1, triggered)
        if triggered:
            self.statistic = self.slo.mean
            if listener is not None:
                listener.on_trigger(self, statistic, self.limit, 0, 1)
            return True
        return False

    def reset(self) -> None:
        """Re-centre the average on the healthy mean."""
        self.statistic = self.slo.mean
        if self._listener is not None:
            self._listener.on_reset(self)

    def describe(self) -> str:
        return f"EWMA(lam={self.lam:g}, limit={self.limit:g})"
