"""Eroding-capacity substrate (ref. [3], beyond the paper)."""

from conftest import assertions_enabled, regenerate

FAST = 60.0
SLOW = 600.0


def test_degradation_substrate(benchmark):
    result = regenerate(benchmark, "degradation")
    if not assertions_enabled():
        return
    rt, loss = result.tables
    unmanaged = rt.get_series("none")
    # Unmanaged drift blows up, and faster erosion is worse.
    assert unmanaged.value_at(FAST) > unmanaged.value_at(SLOW)
    assert unmanaged.value_at(FAST) > 50.0
    # Every detector family controls the drift at every erosion speed.
    for label in ("SRAA(2,3,3)", "trend(10,10)", "CUSUM(.5,5)"):
        series = rt.get_series(label)
        for period in (FAST, SLOW):
            assert series.value_at(period) < unmanaged.value_at(period) / 2
            assert series.value_at(period) < 15.0
        # ... and pays a bounded loss for it.
        loss_series = loss.get_series(label)
        assert 0.0 < loss_series.value_at(FAST) < 0.3
    # No policy, no loss.
    assert all(v == 0.0 for v in loss.get_series("none").points.values())
