"""repro.obs -- structured tracing, decision audit, and metrics export.

The observability layer the paper's industrial story was missing: the
field outage persisted because operators watched the wrong signals, so
this package makes every signal of the reproduction inspectable:

* :mod:`~repro.obs.events` -- the typed trace record and the event
  taxonomy (request lifecycle spans, policy decisions, GC/rejuvenation
  system events).
* :mod:`~repro.obs.tracer` -- the per-replication event buffer with a
  near-free disabled path (one ``None`` check in the hot loops).
* :mod:`~repro.obs.listener` -- adapts the
  :class:`~repro.core.base.DecisionListener` hooks every policy calls
  into decision trace events (batch boundary, bucket ball, trigger
  cause).
* :mod:`~repro.obs.metrics` -- counters/gauges/bucketed-latency
  histograms with deterministic submission-order merging.
* :mod:`~repro.obs.exporters` -- JSONL, Chrome ``trace_event``
  (Perfetto-loadable) and Prometheus-textfile outputs.
* :mod:`~repro.obs.session` -- collects traces across replications and
  backends (``repro run --trace`` installs one).
* :mod:`~repro.obs.explain` -- the ``repro explain`` timeline: names,
  for every rejuvenation, the bucket/threshold/batch-mean that caused
  it.
* :mod:`~repro.obs.live` -- constant-memory live telemetry: streaming
  sketches, the flight recorder, the DES profiler, and the
  ``repro report`` / ``repro top`` renderers.
"""

from repro.obs.events import TraceEvent, category_of
from repro.obs.explain import explain_records, explain_trace
from repro.obs.exporters import (
    chrome_trace_records,
    read_jsonl,
    write_chrome_trace,
    write_jsonl,
    write_prometheus,
)
from repro.obs.listener import TracingDecisionListener
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    registry_for_runs,
)
from repro.obs.session import (
    TraceSession,
    TracedRun,
    active_trace_level,
    current_session,
    use_tracing,
)
from repro.obs.tracer import TRACE_LEVELS, Tracer, make_tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "TRACE_LEVELS",
    "TraceEvent",
    "TraceSession",
    "TracedRun",
    "Tracer",
    "TracingDecisionListener",
    "active_trace_level",
    "category_of",
    "chrome_trace_records",
    "current_session",
    "explain_records",
    "explain_trace",
    "make_tracer",
    "read_jsonl",
    "registry_for_runs",
    "use_tracing",
    "write_chrome_trace",
    "write_jsonl",
    "write_prometheus",
]
