"""Alert rule families: SLO burn rate and cross-run regression.

Rules are small state machines that consume observations and emit
:class:`Signal` objects; the :class:`~repro.obs.sentinel.engine.AlertEngine`
turns signal transitions into incidents.  Both families re-apply the
paper's core discipline -- never page on one noisy observation:

* :class:`BurnRateRule` implements multi-window SLO burn-rate alerting
  over the live ``live.snapshot`` stream (cumulative completion /
  SLO-bad counters published by the serve tap, or replayed offline from
  a trace).  The burn rate is the fraction of requests over the SLO in
  a window divided by the error budget ``1 - objective``; the rule
  fires only when **both** the long and the short window burn at or
  above ``factor`` with at least ``min_count`` completions in the long
  window -- the short window gates noise, the long window gates
  flapping, exactly the Google SRE multi-window construction.
* :class:`RegressionRule` re-applies the SRAA-style persistence filter
  to the Welch z-test machinery behind ``repro runs check``: each new
  ledger entry is compared against a pinned baseline label, and the
  rule fires only after ``persistence`` *consecutive* exceeding runs.
  It keeps its own streak and never writes the run ledger's
  ``check_state.json`` -- watching must not perturb what it watches.

Everything here is deterministic: state advances only on observations,
and identical observation sequences produce identical signals.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Mapping, Optional, Tuple

from repro.obs.explain import event_record
from repro.obs.ledger.regress import (
    DEFAULT_PERSISTENCE,
    DEFAULT_TOLERANCE,
    run_check,
)

__all__ = ["BurnRateRule", "RegressionRule", "Signal", "rules_from_dict"]

#: Default SLO objective: 95% of requests within the SLO.
DEFAULT_OBJECTIVE = 0.95

#: Default burn-rate factor: budget consumed 4x too fast.
DEFAULT_FACTOR = 4.0


@dataclass
class Signal:
    """One rule's verdict after one observation."""

    rule: str
    kind: str
    target: str
    firing: bool
    ts: float
    summary: str
    observed: Dict[str, Any] = field(default_factory=dict)
    evidence: List[Dict[str, Any]] = field(default_factory=list)


@dataclass
class _Point:
    ts: float
    completed: int
    bad: int


class _BurnWindow:
    """Cumulative-counter ring for one run target."""

    __slots__ = ("points",)

    def __init__(self) -> None:
        self.points: Deque[_Point] = deque()

    def add(self, ts: float, completed: int, bad: int) -> None:
        if self.points and completed < self.points[-1].completed:
            # Counter went backwards: a new replication started under
            # the same tag.  Restart the ring rather than alert on a
            # negative delta.
            self.points.clear()
        self.points.append(_Point(ts, completed, bad))

    def evict(self, now: float, window_s: float) -> None:
        # Keep one point at or before the window edge as the delta base.
        while (
            len(self.points) >= 2
            and self.points[1].ts <= now - window_s
        ):
            self.points.popleft()

    def deltas(self, now: float, window_s: float) -> Tuple[int, int]:
        """(completions, bad) accumulated inside the trailing window."""
        if not self.points:
            return 0, 0
        head = self.points[-1]
        base: Optional[_Point] = None
        for point in self.points:
            if point.ts <= now - window_s:
                base = point
            else:
                break
        if base is None:
            # Window opens before the first retained point; counters
            # are cumulative from run start, so the origin is (0, 0).
            return head.completed, head.bad
        return head.completed - base.completed, head.bad - base.bad


class BurnRateRule:
    """Multi-window SLO burn-rate alerting over live snapshots."""

    kind = "burn_rate"

    def __init__(
        self,
        name: str,
        slo_s: Optional[float] = None,
        objective: float = DEFAULT_OBJECTIVE,
        factor: float = DEFAULT_FACTOR,
        long_window_s: float = 600.0,
        short_window_s: float = 120.0,
        min_count: int = 50,
    ):
        if not 0.0 < objective < 1.0:
            raise ValueError("objective must be in (0, 1)")
        if factor <= 0:
            raise ValueError("factor must be positive")
        if short_window_s <= 0 or long_window_s < short_window_s:
            raise ValueError(
                "windows must satisfy 0 < short_window_s <= long_window_s"
            )
        if min_count < 1:
            raise ValueError("min_count must be >= 1")
        self.name = name
        self.slo_s = slo_s
        self.objective = objective
        self.budget = 1.0 - objective
        self.factor = factor
        self.long_window_s = long_window_s
        self.short_window_s = short_window_s
        self.min_count = min_count
        self._windows: Dict[str, _BurnWindow] = {}

    def describe(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "kind": self.kind,
            "slo_s": self.slo_s,
            "objective": self.objective,
            "factor": self.factor,
            "long_window_s": self.long_window_s,
            "short_window_s": self.short_window_s,
            "min_count": self.min_count,
        }

    # ------------------------------------------------------------------
    def observe_snapshot(
        self, snapshot: Mapping[str, Any]
    ) -> Optional[Signal]:
        completed = snapshot.get("completed")
        bad = snapshot.get("slo_bad")
        ts = snapshot.get("ts")
        if completed is None or bad is None or ts is None:
            return None
        target = str(snapshot.get("run", "live"))
        window = self._windows.get(target)
        if window is None:
            window = self._windows[target] = _BurnWindow()
        window.add(float(ts), int(completed), int(bad))
        window.evict(float(ts), self.long_window_s)
        done_long, bad_long = window.deltas(float(ts), self.long_window_s)
        done_short, bad_short = window.deltas(float(ts), self.short_window_s)
        burn_long = self._burn(bad_long, done_long)
        burn_short = self._burn(bad_short, done_short)
        firing = (
            done_long >= self.min_count
            and burn_long >= self.factor
            and burn_short >= self.factor
        )
        slo_s = snapshot.get("slo_s", self.slo_s)
        observed = {
            "burn_long": burn_long,
            "burn_short": burn_short,
            "factor": self.factor,
            "objective": self.objective,
            "budget": self.budget,
            "slo_s": slo_s,
            "long_window_s": self.long_window_s,
            "short_window_s": self.short_window_s,
            "completed": int(completed),
            "slo_bad": int(bad),
            "window_completed": done_long,
            "window_bad": bad_long,
        }
        summary = (
            f"burn {burn_long:.1f}x/{burn_short:.1f}x of budget "
            f"{self.budget:.3f} (slo {slo_s}s, factor {self.factor:g})"
        )
        return Signal(
            rule=self.name,
            kind=self.kind,
            target=target,
            firing=firing,
            ts=float(ts),
            summary=summary,
            observed=observed,
            evidence=[
                event_record(
                    float(ts),
                    "live.snapshot",
                    {
                        "completed": int(completed),
                        "slo_bad": int(bad),
                        "burn_long": burn_long,
                        "burn_short": burn_short,
                    },
                    run=target,
                )
            ],
        )

    def _burn(self, bad: int, done: int) -> float:
        if done <= 0:
            return 0.0
        return (bad / done) / self.budget

    def forget(self, target: str) -> None:
        """Drop burn state for a finished run tag."""
        self._windows.pop(target, None)


class RegressionRule:
    """Persistence-filtered cross-run regression against a baseline."""

    kind = "regression"

    def __init__(
        self,
        name: str,
        baseline: str,
        persistence: int = DEFAULT_PERSISTENCE,
        confidence: float = 0.95,
        tolerance: float = DEFAULT_TOLERANCE,
    ):
        if persistence < 1:
            raise ValueError("persistence must be >= 1")
        self.name = name
        self.baseline = baseline
        self.persistence = persistence
        self.confidence = confidence
        self.tolerance = tolerance
        self._streak = 0

    def describe(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "kind": self.kind,
            "baseline": self.baseline,
            "persistence": self.persistence,
            "confidence": self.confidence,
            "tolerance": self.tolerance,
        }

    # ------------------------------------------------------------------
    def observe_entry(
        self, entry: Mapping[str, Any], ledger: Any
    ) -> Optional[Signal]:
        if ledger is None:
            return None
        try:
            baseline_entry = ledger.baseline_entry(self.baseline)
        except LookupError:
            return None
        if entry["id"] == baseline_entry["id"]:
            return None
        if entry["kind"] != baseline_entry["kind"]:
            return None
        report = run_check(
            None,
            baseline_entry,
            entry,
            confidence=self.confidence,
            tolerance=self.tolerance,
            persistence=self.persistence,
            update_state=False,
        )
        # The rule owns its streak -- watching never writes the run
        # ledger's check_state.json.
        self._streak = self._streak + 1 if report.exceeded else 0
        report.streak = self._streak
        firing = report.exceeded and self._streak >= self.persistence
        exceeded_metrics = [
            check.metric for check in report.checks if check.exceeded
        ]
        observed = {
            "baseline_id": report.baseline_id,
            "candidate_id": report.candidate_id,
            "streak": self._streak,
            "persistence": self.persistence,
            "exceeded": report.exceeded,
            "drift": list(report.drift),
            "exceeded_metrics": exceeded_metrics,
            "confidence": self.confidence,
            "tolerance": self.tolerance,
        }
        if report.exceeded:
            what = ", ".join(exceeded_metrics or report.drift) or "outcomes"
            summary = (
                f"run {entry['id']} exceeds baseline "
                f"{self.baseline!r} ({what}); streak "
                f"{self._streak}/{self.persistence}"
            )
        else:
            summary = (
                f"run {entry['id']} within baseline {self.baseline!r}; "
                "streak reset"
            )
        return Signal(
            rule=self.name,
            kind=self.kind,
            target=self.baseline,
            firing=firing,
            ts=0.0,
            summary=summary,
            observed=observed,
            evidence=[
                event_record(
                    0.0,
                    "runs.check",
                    report.to_dict(),
                    run=str(entry["id"]),
                )
            ],
        )


def rules_from_dict(config: Mapping[str, Any]) -> List[Any]:
    """Build rule objects from a JSON-ish config.

    Shape (both keys optional)::

        {"burn_rate": [{"slo_s": 2.0, "objective": 0.95, ...}],
         "regression": [{"baseline": "prod", "persistence": 2, ...}]}
    """
    if not isinstance(config, Mapping):
        raise ValueError("rules config must be a JSON object")
    unknown = set(config) - {"burn_rate", "regression"}
    if unknown:
        raise ValueError(f"unknown rule famil(ies): {sorted(unknown)}")
    rules: List[Any] = []
    for index, spec in enumerate(config.get("burn_rate", ())):
        spec = dict(spec)
        name = spec.pop("name", f"burn-rate-{index + 1}")
        rules.append(BurnRateRule(name, **spec))
    for index, spec in enumerate(config.get("regression", ())):
        spec = dict(spec)
        name = spec.pop("name", f"regression-{index + 1}")
        if "baseline" not in spec:
            raise ValueError("regression rule needs a 'baseline' label")
        rules.append(RegressionRule(name, **spec))
    return rules
