"""``repro explain`` cause formatting: classic and free-form shapes."""

from repro.obs.explain import _format_cause, explain_records


def _trigger(data, ts=120.0, source="policy:x"):
    return {
        "run": 0,
        "ts": ts,
        "type": "policy.trigger",
        "source": source,
        "data": data,
    }


class TestFormatCause:
    def test_classic_shape_keeps_historical_phrasing(self):
        text = _format_cause(
            {
                "level": 3,
                "batch_mean": 12.345,
                "threshold": 10.0,
                "sample_size": 2,
            }
        )
        assert text == (
            "bucket 3 overflowed; batch mean 12.345s > "
            "threshold 10.000s (n=2)"
        )

    def test_classic_shape_appends_batch_seq(self):
        text = _format_cause(
            {
                "level": 1,
                "batch_mean": 8.0,
                "threshold": 7.0,
                "sample_size": 5,
                "batch_seq": 42,
            }
        )
        assert text.endswith("(n=5, batch #42)")

    def test_free_form_cause_renders_sorted_key_values(self):
        text = _format_cause(
            {
                "kind": "entropy-shift",
                "entropy": 0.25,
                "reference": 1.75,
                "streak": 16,
                "batch_seq": 99,
            }
        )
        assert text == (
            "entropy=0.250, kind=entropy-shift, reference=1.750, streak=16"
        )
        assert "batch_seq" not in text

    def test_empty_cause_has_a_placeholder(self):
        assert _format_cause({}) == "(no cause data)"


class TestExplainRecords:
    def test_detector_trigger_line_shows_its_evidence(self):
        text = explain_records(
            [
                _trigger(
                    {
                        "kind": "trend-projection",
                        "projected": 55.2,
                        "bound": 50.0,
                        "holt_trend": 1.5,
                    },
                    source="policy:predictor",
                )
            ]
        )
        assert "trigger #1 by policy:predictor" in text
        assert "projected=55.200" in text
        assert "bound=50.000" in text

    def test_classic_trigger_line_unchanged(self):
        text = explain_records(
            [
                _trigger(
                    {
                        "level": 4,
                        "batch_mean": 26.0,
                        "threshold": 25.0,
                        "sample_size": 2,
                    },
                    source="policy:sraa",
                )
            ]
        )
        assert "bucket 4 overflowed" in text
        assert "batch mean 26.000s > threshold 25.000s" in text
