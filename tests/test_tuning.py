"""Parameter advisor (the paper's future-work extension)."""

import pytest

from repro.core.sla import PAPER_SLO
from repro.tuning import ParameterAdvisor, default_grid
from repro.ecommerce.config import PAPER_CONFIG


@pytest.fixture(scope="module")
def advisor() -> ParameterAdvisor:
    return ParameterAdvisor(
        PAPER_CONFIG,
        PAPER_SLO,
        transactions=1_500,
        replications=1,
        seed=5,
    )


class TestGrid:
    def test_default_grid_products(self):
        grid = default_grid(30)
        assert all(n * K * D == 30 for n, K, D in grid)
        # All the paper's Fig. 11/14/15 configurations are in the frame.
        assert (2, 5, 3) in grid
        assert (30, 1, 1) in grid
        assert (3, 2, 5) in grid

    def test_grid_has_no_duplicates(self):
        grid = default_grid(12)
        assert len(grid) == len(set(grid))

    def test_grid_validation(self):
        with pytest.raises(ValueError):
            default_grid(0)


class TestScoring:
    def test_score_fields(self, advisor):
        score = advisor.score(2, 5, 3)
        assert score.label == "sraa(n=2, K=5, D=3)"
        assert score.high_load_rt > 0
        assert 0.0 <= score.low_load_loss <= 1.0
        assert score.score == pytest.approx(
            score.high_load_rt + 1_000.0 * score.low_load_loss
        )

    def test_score_grid_sorted(self, advisor):
        scores = advisor.score_grid([(2, 5, 3), (30, 1, 1), (15, 2, 1)])
        values = [s.score for s in scores]
        assert values == sorted(values)

    def test_saraa_supported(self, advisor):
        score = advisor.score(2, 5, 3, algorithm="saraa")
        assert score.algorithm == "saraa"

    def test_unknown_algorithm(self, advisor):
        with pytest.raises(ValueError):
            advisor.score(2, 5, 3, algorithm="magic")

    def test_recommend_prefers_balance(self, advisor):
        # The paper's conclusion: balanced small values beat investing
        # everything in one dimension.  At minimum, the recommendation
        # must beat the extreme (30,1,1) under the combined objective.
        candidates = [(2, 5, 3), (3, 2, 5), (30, 1, 1), (1, 10, 3)]
        best = advisor.recommend(candidates)
        extreme = advisor.score(30, 1, 1)
        assert best.score <= extreme.score

    def test_validation(self):
        with pytest.raises(ValueError):
            ParameterAdvisor(PAPER_CONFIG, PAPER_SLO, transactions=10)
        with pytest.raises(ValueError):
            ParameterAdvisor(PAPER_CONFIG, PAPER_SLO, replications=0)
        with pytest.raises(ValueError):
            ParameterAdvisor(PAPER_CONFIG, PAPER_SLO, loss_penalty=-1.0)
