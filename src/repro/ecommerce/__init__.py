"""The simulated e-commerce system of Section 3.

A 16-CPU Java system with a 3 GB heap whose two degradation mechanisms
-- kernel overhead above 50 concurrent threads, and 60-second
stop-the-world garbage collections forced by leaked per-transaction
allocations -- reproduce the performance behaviour of the industrial
system the paper studied.
"""

from repro.ecommerce.config import PAPER_CONFIG, SystemConfig
from repro.ecommerce.metrics import ReplicatedResult, RunResult
from repro.ecommerce.runner import (
    replication_jobs,
    run_once,
    run_replications,
    simulate_mmc_response_times,
)
from repro.ecommerce.spec import ARRIVAL_KINDS, ArrivalSpec
from repro.ecommerce.system import ECommerceSystem
from repro.ecommerce.telemetry import (
    TELEMETRY_COLUMNS,
    Telemetry,
    TelemetrySample,
    write_telemetry_csv,
)
from repro.ecommerce.trace import (
    RecordingArrivals,
    ReplayReport,
    load_trace,
    replay_policy,
    save_trace,
)
from repro.ecommerce.workload import (
    ArrivalProcess,
    MMPPArrivals,
    PeriodicArrivals,
    PoissonArrivals,
    TraceArrivals,
)

__all__ = [
    "ARRIVAL_KINDS",
    "ArrivalProcess",
    "ArrivalSpec",
    "ECommerceSystem",
    "MMPPArrivals",
    "PAPER_CONFIG",
    "PeriodicArrivals",
    "PoissonArrivals",
    "RecordingArrivals",
    "ReplayReport",
    "ReplicatedResult",
    "RunResult",
    "SystemConfig",
    "TELEMETRY_COLUMNS",
    "Telemetry",
    "TelemetrySample",
    "TraceArrivals",
    "load_trace",
    "replay_policy",
    "replication_jobs",
    "run_once",
    "run_replications",
    "save_trace",
    "simulate_mmc_response_times",
    "write_telemetry_csv",
]
