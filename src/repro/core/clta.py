"""CLTA -- the central-limit-theorem rejuvenation algorithm (Fig. 8).

CLTA applies the CLT directly: the mean of ``n`` observations is treated
as a draw from ``N(mu_X, sigma_X^2 / n)``, and rejuvenation triggers on
the *first* batch mean beyond ``mu_X + z * sigma_X / sqrt(n)`` where
``z`` is a standard-normal quantile chosen from the acceptable
false-alarm rate.  Both the number of buckets and the bucket depth are
implicitly one.

The paper cautions (Section 4.1) that the normal approximation inflates
the real false-alarm rate -- for ``z = 1.96`` (nominal 2.5 %) the exact
probabilities are 3.69 % at ``n = 15`` and 3.37 % at ``n = 30`` -- and
:func:`repro.ctmc.sample_mean.clt_false_alarm_probability` computes the
exact value for any configuration.
"""

from __future__ import annotations

from repro.core.base import BatchBuffer, RejuvenationPolicy
from repro.core.sla import ServiceLevelObjective
from repro.stats.normal import normal_quantile


class CLTA(RejuvenationPolicy):
    """Central-limit-theorem-based rejuvenation.

    Parameters
    ----------
    slo:
        Healthy-behaviour mean and standard deviation.
    sample_size:
        ``n`` -- should be large enough for the normal approximation
        (the paper uses 30; Fig. 5 suggests 15 is already reasonable).
    z:
        The multiplier ``N`` of Fig. 8 -- a standard-normal quantile,
        e.g. ``1.96`` for a nominal 2.5 % false-alarm rate.

    Examples
    --------
    >>> from repro.core.sla import PAPER_SLO
    >>> policy = CLTA(PAPER_SLO, sample_size=30, z=1.96)
    >>> round(policy.threshold, 3)
    6.789
    """

    name = "clta"

    def __init__(
        self,
        slo: ServiceLevelObjective,
        sample_size: int = 30,
        z: float = 1.96,
    ) -> None:
        if sample_size < 1:
            raise ValueError("sample size must be >= 1")
        self.slo = slo
        self.sample_size = int(sample_size)
        self.z = float(z)
        self.threshold = slo.sampling_threshold(self.z, self.sample_size)
        self.buffer = BatchBuffer(self.sample_size)

    @classmethod
    def from_false_alarm_rate(
        cls,
        slo: ServiceLevelObjective,
        sample_size: int = 30,
        false_alarm_rate: float = 0.025,
    ) -> "CLTA":
        """Choose ``z`` as the ``1 - rate`` standard-normal quantile."""
        if not 0.0 < false_alarm_rate < 1.0:
            raise ValueError("false-alarm rate must lie in (0, 1)")
        return cls(slo, sample_size, z=normal_quantile(1.0 - false_alarm_rate))

    def observe(self, value: float) -> bool:
        """Feed one raw observation; trigger on the first large batch mean."""
        batch_mean = self.buffer.push(value)
        if batch_mean is None:
            return False
        exceeded = batch_mean > self.threshold
        listener = self._listener
        if listener is not None and listener.wants_batches:
            listener.on_batch(
                self, batch_mean, self.threshold, self.sample_size, exceeded
            )
        if exceeded:
            self.buffer.clear()
            if listener is not None:
                # CLTA has a single implicit bucket: level is always 0.
                listener.on_trigger(
                    self, batch_mean, self.threshold, 0, self.sample_size
                )
            return True
        return False

    def reset(self) -> None:
        """Drop any partial batch (CLTA keeps no other state)."""
        self.buffer.clear()
        if self._listener is not None:
            self._listener.on_reset(self)

    def describe(self) -> str:
        return f"CLTA(n={self.sample_size}, z={self.z:g})"
