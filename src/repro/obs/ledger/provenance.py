"""Provenance capture: which code, interpreter and machine produced a run.

A manifest without provenance cannot answer "did the *code* drift?" --
the whole point of the ledger is that two entries with the same
manifest hash but different outcomes indict the code between their git
SHAs.  Everything here is best-effort and non-fatal: a missing ``git``
binary or a tarball checkout degrades to ``None`` fields, never to a
failed run.

Environment overrides (useful for hermetic tests and CI):

``REPRO_GIT_SHA``
    Use this SHA instead of asking ``git`` (dirty flag forced clean).
"""

from __future__ import annotations

import os
import platform
import subprocess
import sys
from typing import Any, Dict, Optional, Tuple

#: Fallback version when package metadata is unavailable (running from
#: a source tree via PYTHONPATH rather than an installed distribution).
_SOURCE_VERSION = "1.0.0+src"

#: Environment override for the git revision (hermetic tests, CI).
GIT_SHA_ENV = "REPRO_GIT_SHA"


def package_version() -> str:
    """The installed ``repro`` distribution version, or a source marker."""
    try:
        from importlib.metadata import PackageNotFoundError, version

        try:
            return version("repro")
        except PackageNotFoundError:
            return _SOURCE_VERSION
    except Exception:  # pragma: no cover - importlib.metadata is stdlib
        return _SOURCE_VERSION


def _git(args: Tuple[str, ...], cwd: Optional[str]) -> Optional[str]:
    try:
        completed = subprocess.run(
            ("git",) + args,
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=5.0,
            check=False,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if completed.returncode != 0:
        return None
    return completed.stdout.strip()


def git_revision(
    cwd: Optional[str] = None,
) -> Tuple[Optional[str], Optional[bool]]:
    """``(sha, dirty)`` of the working tree, or ``(None, None)``.

    ``cwd`` defaults to the directory of this source file, so the SHA
    describes the *library* checkout even when the CLI runs elsewhere.
    """
    override = os.environ.get(GIT_SHA_ENV, "").strip()
    if override:
        return override, False
    if cwd is None:
        cwd = os.path.dirname(os.path.abspath(__file__))
    sha = _git(("rev-parse", "HEAD"), cwd)
    if sha is None:
        return None, None
    status = _git(("status", "--porcelain"), cwd)
    dirty = None if status is None else bool(status)
    return sha, dirty


def environment_info() -> Dict[str, Any]:
    """The informational (never hashed) provenance block of a manifest."""
    sha, dirty = git_revision()
    return {
        "version": package_version(),
        "git_sha": sha,
        "git_dirty": dirty,
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": sys.platform,
        "machine": platform.machine(),
    }


def version_string() -> str:
    """The ``repro --version`` line: package version plus git SHA."""
    sha, dirty = git_revision()
    if sha is None:
        return f"repro {package_version()}"
    suffix = "-dirty" if dirty else ""
    return f"repro {package_version()} (git {sha[:12]}{suffix})"
