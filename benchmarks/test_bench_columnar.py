"""Columnar trace pipeline: query speedup and write-path overhead.

Two acceptance pins from the columnar-store issue:

* **Query speedup** -- ``repro report`` + offline re-scoring over a
  >=1M-event trace must run at least 5x faster from the columnar file
  than from the equivalent JSONL, with identical output.  The trace is
  the deterministic synthetic campaign (scripted ground truth), so the
  scores are also checked against their known values, not just against
  each other.
* **Tap overhead** -- collecting a full ``level="all"`` trace through
  ``ColumnarTap`` (typed-array batches) must stay within 10% of the
  same workload collected through the dict-based ``Tracer``.  Paired
  rounds, best pair, small absolute slack -- the same methodology as
  ``test_bench_serve_overhead``.
"""

import os
import time

from conftest import BENCH_SEED, assertions_enabled, bench_scale

from repro.core.spec import PolicySpec
from repro.ecommerce.config import PAPER_CONFIG
from repro.ecommerce.runner import run_replications
from repro.ecommerce.spec import ArrivalSpec
from repro.faults.campaign import score_records
from repro.obs.columnar.io import write_columnar
from repro.obs.columnar.query import load_query
from repro.obs.columnar.synth import synth_campaign_trace
from repro.obs.ledger import record_bench_point
from repro.obs.live.report import render_report
from repro.obs.session import TraceSession, use_tracing

#: Acceptance: columnar consume >= 5x faster than JSONL consume.
SPEEDUP_FLOOR = 5.0

#: Paired dict-tracer/columnar-tap rounds; the pin takes the quietest.
ROUNDS = 7

#: Acceptance: ColumnarTap within 10% of the dict Tracer.
OVERHEAD_FACTOR = 1.10

#: Absolute slack (s) against timer quantisation on small baselines.
ABSOLUTE_SLACK_S = 0.015


def _events_per_run() -> int:
    # >=1M completions total at quick scale and above; tiny at smoke.
    return 250_000 if assertions_enabled() else 5_000


def _consume(path):
    """What `repro report` + re-scoring actually do to a trace file."""
    query = load_query(path)
    html = render_report(query)
    scores = score_records(query)
    return html, scores


def _timed(fn):
    started = time.perf_counter()
    result = fn()
    return time.perf_counter() - started, result


def test_columnar_query_speedup(benchmark, tmp_path):
    runs = 4
    events_per_run = _events_per_run()
    trace = synth_campaign_trace(
        runs=runs,
        events_per_run=events_per_run,
        seed=BENCH_SEED,
        detection_delay_s=30.0,
        false_alarms_per_run=1,
    )

    jsonl = str(tmp_path / "trace.jsonl")
    with open(jsonl, "w", encoding="utf-8") as handle:
        for line in trace.to_jsonl_lines():
            handle.write(line + "\n")
    rcol = str(tmp_path / "trace.rcol")
    write_columnar(trace, rcol)

    # Warm-up on the columnar side (imports, allocator).
    _consume(rcol)

    columnar_s, (columnar_html, columnar_scores) = _timed(
        lambda: _consume(rcol)
    )
    jsonl_s, (jsonl_html, jsonl_scores) = _timed(lambda: _consume(jsonl))

    # Identical consumer output from both formats.
    assert columnar_html == jsonl_html
    assert columnar_scores == jsonl_scores
    # ... and correct against the scripted ground truth.
    for score in columnar_scores:
        assert score.detected == score.replications
        assert score.missed == 0
        assert abs(score.mean_detection_latency_s - 30.0) < 1e-9
        assert score.false_alarms == score.replications

    speedup = jsonl_s / columnar_s if columnar_s else float("inf")
    total_events = runs * events_per_run
    benchmark.extra_info["events"] = total_events
    benchmark.extra_info["jsonl_s"] = round(jsonl_s, 4)
    benchmark.extra_info["columnar_s"] = round(columnar_s, 4)
    benchmark.extra_info["speedup_x"] = round(speedup, 2)
    benchmark.extra_info["jsonl_mb"] = round(
        os.path.getsize(jsonl) / 1e6, 1
    )
    benchmark.extra_info["rcol_mb"] = round(
        os.path.getsize(rcol) / 1e6, 1
    )
    print(
        f"\nreport+rescore over {total_events} events: jsonl "
        f"{jsonl_s:.2f}s, columnar {columnar_s:.2f}s "
        f"({speedup:.1f}x); file sizes "
        f"{os.path.getsize(jsonl) / 1e6:.0f}MB vs "
        f"{os.path.getsize(rcol) / 1e6:.0f}MB"
    )
    record_bench_point(
        f"columnar_{bench_scale().label}",
        round(speedup, 2),
        units="x",
        seed=BENCH_SEED,
    )

    if assertions_enabled():
        assert speedup >= SPEEDUP_FLOOR, (
            f"columnar consume only {speedup:.1f}x faster than JSONL "
            f"over {total_events} events -- below the "
            f"{SPEEDUP_FLOOR:.0f}x acceptance floor"
        )

    # Keep pytest-benchmark's timing machinery fed with the fast path.
    benchmark.pedantic(_consume, args=(rcol,), rounds=1, iterations=1)


def _workload(trace_session):
    scale = bench_scale()
    n = max(2_000, scale.transactions // 10)
    with use_tracing(trace_session):
        return run_replications(
            PAPER_CONFIG,
            arrival=ArrivalSpec.poisson(1.8),
            policy=PolicySpec.sraa(2, 5, 3),
            n_transactions=n,
            replications=2,
            seed=BENCH_SEED,
        )


def test_columnar_tap_overhead(benchmark):
    # Warm-up both paths outside the timings.
    _workload(TraceSession("all"))
    _workload(TraceSession("all", trace_format="columnar"))

    pairs = []
    for _ in range(ROUNDS):
        dict_s, dict_result = _timed(
            lambda: _workload(TraceSession("all"))
        )
        columnar_s, columnar_result = _timed(
            lambda: _workload(
                TraceSession("all", trace_format="columnar")
            )
        )
        pairs.append((dict_s, columnar_s))
    dict_s, columnar_s = min(pairs, key=lambda pair: pair[1] / pair[0])

    # The tap must not perturb the simulation.
    assert [r.completed for r in columnar_result.runs] == [
        r.completed for r in dict_result.runs
    ]

    overhead = columnar_s / dict_s if dict_s else float("nan")
    benchmark.extra_info["dict_tracer_s"] = round(dict_s, 4)
    benchmark.extra_info["columnar_tap_s"] = round(columnar_s, 4)
    benchmark.extra_info["tap_overhead_factor"] = round(overhead, 4)
    print(
        f"\nbest pair of {ROUNDS}: dict tracer {dict_s:.3f}s, "
        f"columnar tap {columnar_s:.3f}s ({overhead:.2%} of baseline)"
    )

    if assertions_enabled():
        bound = dict_s * OVERHEAD_FACTOR + ABSOLUTE_SLACK_S
        assert columnar_s <= bound, (
            f"columnar tap costs {columnar_s:.3f}s vs dict tracer "
            f"{dict_s:.3f}s on the quietest of {ROUNDS} paired rounds "
            "-- beyond the 10% acceptance bound"
        )

    # Keep pytest-benchmark's timing machinery fed with the cheap path.
    benchmark.pedantic(
        _workload, args=(TraceSession("spans"),), rounds=1, iterations=1
    )
