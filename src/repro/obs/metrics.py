"""Counters, gauges and bucketed-latency histograms, with merging.

A :class:`MetricsRegistry` aggregates what a run *did* -- requests
completed and lost, GCs, rejuvenations, policy triggers, and bucketed
response-time distributions (HDR-style: fixed logarithmic bucket
boundaries, so merging across replications is exact) -- and renders a
Prometheus-style textfile snapshot.

Determinism contract: registries built per replication are merged **in
job submission order** by the session layer, never in completion order,
so the snapshot is bit-identical between the serial and process-pool
backends.  (Counter and histogram merges commute, but gauges are
last-write-wins -- ordering the merge makes even those deterministic.)

The counter names are unified with the
:class:`~repro.ecommerce.telemetry.TelemetrySample` column schema: a
telemetry column ``completed`` becomes the metric
``repro_completed_total``, and so on -- one vocabulary across the CSV
export and the metrics snapshot.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.obs.events import (
    POLICY_BATCH,
    POLICY_TRIGGER,
    REQUEST_COMPLETE,
    REQUEST_LOSS,
    SYSTEM_GC,
    SYSTEM_REJUVENATION,
    TraceEvent,
)

#: Telemetry columns mirrored as counters (``repro_<column>_total``).
TELEMETRY_COUNTER_COLUMNS: Tuple[str, ...] = (
    "completed",
    "lost",
    "rejuvenations",
    "gc_count",
)

#: Default latency bucket boundaries, seconds (1-2.5-5 ladder; the
#: paper's response times live between ~5 s healthy and ~100 s degraded).
LATENCY_BOUNDS_S: Tuple[float, ...] = (
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0,
    100.0, 250.0, 500.0, 1000.0, 2500.0,
)

LabelItems = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, Any]) -> LabelItems:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _render_labels(labels: LabelItems, extra: str = "") -> str:
    parts = [f'{key}="{value}"' for key, value in labels]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


class Counter:
    """A monotonically increasing count."""

    kind = "counter"

    def __init__(self) -> None:
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount

    def merge(self, other: "Counter") -> None:
        self.value += other.value


class Gauge:
    """A point-in-time value (merge is last-write-wins)."""

    kind = "gauge"

    def __init__(self) -> None:
        self.value: float = 0.0
        self._written = False

    def set(self, value: float) -> None:
        self.value = float(value)
        self._written = True

    def merge(self, other: "Gauge") -> None:
        if other._written:
            self.value = other.value
            self._written = True


class Histogram:
    """Fixed-boundary bucketed distribution (exact under merging).

    Parameters
    ----------
    bounds:
        Ascending upper bucket boundaries; an implicit ``+Inf`` bucket
        catches the overflow.  Fixed boundaries (rather than adaptive
        ones) are what make cross-replication merges exact, the same
        trade HDR histograms make.
    """

    kind = "histogram"

    def __init__(self, bounds: Sequence[float] = LATENCY_BOUNDS_S) -> None:
        bounds = tuple(float(b) for b in bounds)
        if not bounds:
            raise ValueError("need at least one bucket boundary")
        if list(bounds) != sorted(bounds):
            raise ValueError("bucket boundaries must be ascending")
        self.bounds = bounds
        self.counts: List[int] = [0] * (len(bounds) + 1)
        self.sum = 0.0
        self.count = 0
        self.minimum = float("inf")
        self.maximum = float("-inf")

    def observe(self, value: float) -> None:
        value = float(value)
        self.sum += value
        self.count += 1
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def merge(self, other: "Histogram") -> None:
        if self.bounds != other.bounds:
            raise ValueError(
                "cannot merge histograms with different boundaries"
            )
        for i, count in enumerate(other.counts):
            self.counts[i] += count
        self.sum += other.sum
        self.count += other.count
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)

    def cumulative(self) -> List[Tuple[float, int]]:
        """Prometheus-style cumulative ``(le, count)`` pairs, +Inf last."""
        pairs: List[Tuple[float, int]] = []
        running = 0
        for bound, count in zip(self.bounds, self.counts):
            running += count
            pairs.append((bound, running))
        pairs.append((float("inf"), running + self.counts[-1]))
        return pairs


class MetricsRegistry:
    """Name/label-addressed metrics with deterministic merging.

    Examples
    --------
    >>> registry = MetricsRegistry()
    >>> registry.counter("repro_completed_total").inc(3)
    >>> registry.histogram("repro_response_time_seconds").observe(4.2)
    >>> "repro_completed_total 3" in registry.to_prometheus()
    True
    """

    def __init__(self) -> None:
        #: (name, labels) -> metric, in first-registration order.
        self._metrics: Dict[Tuple[str, LabelItems], Any] = {}

    # ------------------------------------------------------------------
    # Registration / lookup
    # ------------------------------------------------------------------
    def _get(self, name: str, labels: Dict[str, Any], factory) -> Any:
        key = (name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = factory()
            self._metrics[key] = metric
        return metric

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get(name, labels, Counter)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get(name, labels, Gauge)

    def histogram(
        self,
        name: str,
        bounds: Sequence[float] = LATENCY_BOUNDS_S,
        **labels: Any,
    ) -> Histogram:
        return self._get(name, labels, lambda: Histogram(bounds))

    def __len__(self) -> int:
        return len(self._metrics)

    # ------------------------------------------------------------------
    # Merging and ingestion
    # ------------------------------------------------------------------
    def merge(self, other: "MetricsRegistry") -> None:
        """Fold ``other`` into this registry (call in submission order)."""
        for (name, labels), metric in other._metrics.items():
            key = (name, labels)
            mine = self._metrics.get(key)
            if mine is None:
                # Fresh copy so later merges cannot alias other's state.
                if isinstance(metric, Histogram):
                    mine = Histogram(metric.bounds)
                else:
                    mine = type(metric)()
                self._metrics[key] = mine
            if type(mine) is not type(metric):
                raise TypeError(
                    f"metric {name!r} registered as {mine.kind} and "
                    f"{metric.kind}"
                )
            mine.merge(metric)

    def add_events(self, events: Iterable[TraceEvent]) -> None:
        """Fold one replication's trace events into the registry."""
        for event in events:
            self.counter("repro_trace_events_total", type=event.etype).inc()
            if event.etype == REQUEST_COMPLETE:
                self.histogram("repro_response_time_seconds").observe(
                    event.data["response_time"]
                )
            elif event.etype == REQUEST_LOSS:
                self.counter(
                    "repro_request_losses_total",
                    reason=event.data.get("reason", "unknown"),
                ).inc()
            elif event.etype == SYSTEM_GC:
                self.counter("repro_gc_pause_seconds_total").inc(
                    event.data.get("pause_s", 0.0)
                )
            elif event.etype == SYSTEM_REJUVENATION:
                self.counter("repro_rejuvenation_lost_jobs_total").inc(
                    event.data.get("lost", 0)
                )
            elif event.etype == POLICY_TRIGGER:
                self.counter(
                    "repro_policy_triggers_total", policy=event.source
                ).inc()
            elif event.etype == POLICY_BATCH:
                self.histogram("repro_batch_mean_seconds").observe(
                    event.data["batch_mean"]
                )

    def add_run(self, run: Any) -> None:
        """Fold one :class:`~repro.ecommerce.metrics.RunResult` in.

        Counter names mirror the telemetry column schema
        (:data:`TELEMETRY_COUNTER_COLUMNS`), so the CSV export and the
        metrics snapshot speak the same vocabulary.
        """
        self.counter("repro_replications_total").inc()
        self.counter("repro_arrivals_total").inc(run.arrivals)
        for column in TELEMETRY_COUNTER_COLUMNS:
            self.counter(f"repro_{column}_total").inc(getattr(run, column))
        self.histogram("repro_replication_avg_response_time_seconds").observe(
            run.avg_response_time
        )
        self.gauge("repro_sim_duration_seconds").set(run.sim_duration_s)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """Plain-dict view (for tests and programmatic consumers)."""
        out: Dict[str, Any] = {}
        for (name, labels), metric in self._metrics.items():
            key = name + _render_labels(labels)
            if isinstance(metric, Histogram):
                out[key] = {
                    "count": metric.count,
                    "sum": metric.sum,
                    "mean": metric.mean,
                    "buckets": dict(
                        zip([*metric.bounds, float("inf")], metric.counts)
                    ),
                }
            else:
                out[key] = metric.value
        return out

    def to_prometheus(self) -> str:
        """The Prometheus text exposition format (one snapshot)."""
        by_name: Dict[str, List[Tuple[LabelItems, Any]]] = {}
        for (name, labels), metric in self._metrics.items():
            by_name.setdefault(name, []).append((labels, metric))
        lines: List[str] = []
        for name, entries in by_name.items():
            lines.append(f"# TYPE {name} {entries[0][1].kind}")
            for labels, metric in entries:
                if isinstance(metric, Histogram):
                    for bound, cumulative in metric.cumulative():
                        le = "+Inf" if bound == float("inf") else f"{bound:g}"
                        rendered = _render_labels(labels, f'le="{le}"')
                        lines.append(f"{name}_bucket{rendered} {cumulative}")
                    suffix = _render_labels(labels)
                    lines.append(f"{name}_sum{suffix} {metric.sum:g}")
                    lines.append(f"{name}_count{suffix} {metric.count}")
                else:
                    value = metric.value
                    rendered = _render_labels(labels)
                    lines.append(f"{name}{rendered} {value:g}")
        return "\n".join(lines) + "\n"


def registry_for_runs(
    runs: Sequence[Any],
    events_per_run: Optional[Sequence[Iterable[TraceEvent]]] = None,
) -> MetricsRegistry:
    """One registry over replications, merged in submission order.

    ``runs`` are :class:`~repro.ecommerce.metrics.RunResult` objects in
    job submission order (which both backends guarantee); optional
    ``events_per_run`` adds the per-event metrics (latency histograms,
    per-type counts) when the runs were traced.
    """
    registry = MetricsRegistry()
    for index, run in enumerate(runs):
        per_run = MetricsRegistry()
        per_run.add_run(run)
        if events_per_run is not None:
            per_run.add_events(events_per_run[index])
        registry.merge(per_run)
    return registry
