"""The paper's contribution: rejuvenation-triggering decision rules.

Three algorithms from the paper --

* :class:`~repro.core.sraa.SRAA` -- static rejuvenation with averaging
  (Fig. 6); with ``sample_size=1`` it degenerates to the original static
  algorithm of [1], exposed as
  :class:`~repro.core.sraa.StaticRejuvenation`.
* :class:`~repro.core.saraa.SARAA` -- sampling-acceleration rejuvenation
  with averaging (Fig. 7).
* :class:`~repro.core.clta.CLTA` -- the central-limit-theorem rule
  (Fig. 8).

-- plus the baselines the literature suggests (Bobbio-style thresholds,
periodic, never), all behind the common
:class:`~repro.core.base.RejuvenationPolicy` streaming interface.
"""

from repro.core.base import BatchBuffer, DecisionListener, RejuvenationPolicy
from repro.core.baselines import NeverRejuvenate, PeriodicRejuvenation
from repro.core.buckets import BucketChain, Transition
from repro.core.clta import CLTA
from repro.core.composite import AllOf, AnyOf, MajorityOf
from repro.core.control_charts import CUSUMPolicy, EWMAPolicy
from repro.core.factory import available_policies, make_policy
from repro.core.proactive import ResourceExhaustionPolicy
from repro.core.quantile import QuantilePolicy
from repro.core.saraa import (
    SARAA,
    geometric_acceleration,
    linear_acceleration,
    no_acceleration,
)
from repro.core.sla import PAPER_SLO, ServiceLevelObjective
from repro.core.spec import NO_POLICY, PolicySpec
from repro.core.sraa import SRAA, StaticRejuvenation
from repro.core.threshold import DeterministicThreshold, RiskBasedThreshold
from repro.core.trend import TrendPolicy

__all__ = [
    "AllOf",
    "AnyOf",
    "BatchBuffer",
    "BucketChain",
    "CLTA",
    "CUSUMPolicy",
    "DecisionListener",
    "EWMAPolicy",
    "MajorityOf",
    "DeterministicThreshold",
    "NO_POLICY",
    "NeverRejuvenate",
    "PAPER_SLO",
    "PolicySpec",
    "PeriodicRejuvenation",
    "QuantilePolicy",
    "RejuvenationPolicy",
    "ResourceExhaustionPolicy",
    "RiskBasedThreshold",
    "SARAA",
    "SRAA",
    "ServiceLevelObjective",
    "StaticRejuvenation",
    "Transition",
    "TrendPolicy",
    "available_policies",
    "geometric_acceleration",
    "linear_acceleration",
    "make_policy",
    "no_acceleration",
]
