"""The columnar tracer: buffer raw tuples, ship typed columns.

:class:`ColumnarTap` satisfies the tracer protocol (the ``spans`` /
``decisions`` / ``engine`` / ``lifecycle`` flags plus ``emit``), so
every instrumented call site works unchanged.  The difference is what
crosses the process boundary: instead of a tuple of
:class:`~repro.obs.events.TraceEvent` dataclasses, ``payload()``
returns a :class:`ColumnarRun` -- the run's events already encoded
into one :class:`~repro.obs.columnar.store.EventBatch` of numpy
arrays.  Pickling arrays is a buffer copy, so a million-event
replication returns to the parent without a million object
serializations, and the parent-side merge is array concatenation
(:meth:`~repro.obs.columnar.store.ColumnarTrace.from_batches`) rather
than re-parsing.

``emit`` itself appends one plain tuple -- the same discipline as the
flight recorder's ring, which the paired-round overhead benchmark
already pins at write-path cost; encoding happens once, at
``payload()`` time.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.obs.events import TraceEvent
from repro.obs.tracer import Tracer

from .store import ColumnarTrace, EventBatch, encode_events


class ColumnarRun:
    """One run's trace as a picklable column batch.

    Iterating yields :class:`TraceEvent` (decoded on demand), so
    consumers written against the tuple-of-events payload -- metrics
    aggregation, the Chrome exporter -- keep working; fast consumers
    take :attr:`batch` and stay columnar.
    """

    __slots__ = ("batch", "_trace")

    def __init__(self, batch: EventBatch) -> None:
        self.batch = batch
        self._trace: Optional[ColumnarTrace] = None

    def __getstate__(self) -> EventBatch:
        return self.batch

    def __setstate__(self, batch: EventBatch) -> None:
        self.batch = batch
        self._trace = None

    def __len__(self) -> int:
        return len(self.batch)

    @property
    def trace(self) -> ColumnarTrace:
        """The batch consolidated into a queryable single-segment trace."""
        if self._trace is None:
            self._trace = ColumnarTrace.from_batches([self.batch])
        return self._trace

    def __iter__(self) -> Iterator[TraceEvent]:
        for record in self.trace.iter_records():
            yield TraceEvent(
                record["ts"],
                record["type"],
                record["source"],
                record["data"],
            )


class ColumnarTap(Tracer):
    """A tracer whose buffer is destined for column encoding.

    The emit hot path appends one ``(ts, type, source, data)`` tuple;
    no event object is constructed.  ``payload()`` encodes the buffer
    into an :class:`EventBatch` (run index 0 -- the session assigns the
    real index at ingest) and returns it wrapped in a
    :class:`ColumnarRun`.
    """

    __slots__ = ("_buffer",)

    def __init__(self, level: str = "all") -> None:
        super().__init__(level)
        self._buffer: List[Tuple[float, str, str, Dict[str, Any]]] = []

    def emit(self, ts: float, etype: str, source: str, **data: Any) -> None:
        self._buffer.append((ts, etype, source, data))

    def clear(self) -> None:
        self._buffer.clear()
        self.events.clear()

    def __len__(self) -> int:
        return len(self._buffer)

    def payload(self) -> ColumnarRun:
        return ColumnarRun(encode_events(self._buffer))

    def raw_events(self) -> Tuple[Tuple[float, str, str, Dict[str, Any]], ...]:
        """The unencoded emit tuples (test/debug hook)."""
        return tuple(self._buffer)
