"""Fidelity: the Section-5 quoted numbers, measured live."""

from conftest import assertions_enabled, regenerate
from repro.experiments.paper_values import QUOTED_VALUES


def test_fidelity_against_quoted_values(benchmark):
    result = regenerate(benchmark, "fidelity")
    if not assertions_enabled():
        return
    ratios = result.tables[0].get_series("measured/paper")
    checked = 0
    for index, quoted in enumerate(QUOTED_VALUES):
        if quoted.diverges or quoted.metric != "avg_rt_s":
            continue
        ratio = ratios.value_at(index)
        # Response-time quotes land within a small factor; the D2
        # regime (deep-bucket configs beyond 9 CPUs) allows up to ~4x.
        assert 0.3 < ratio < 4.0, f"{quoted.key}: ratio {ratio}"
        checked += 1
    assert checked >= 12
    # The majority of RT quotes land much tighter.
    tight = sum(
        1
        for index, quoted in enumerate(QUOTED_VALUES)
        if quoted.metric == "avg_rt_s"
        and not quoted.diverges
        and 0.5 < ratios.value_at(index) < 1.5
    )
    assert tight >= 10
    # The CLTA low-load loss lands in the paper's order of magnitude.
    clta_loss_index = next(
        i for i, q in enumerate(QUOTED_VALUES) if q.key == "clta-30@0.5-loss"
    )
    assert 0.1 < ratios.value_at(clta_loss_index) < 10.0
