"""CTMC construction, validation, steady state, transient solutions."""

import numpy as np
import pytest

from repro.ctmc.chain import CTMC


@pytest.fixture
def onoff() -> CTMC:
    return CTMC([[-1.0, 1.0], [2.0, -2.0]], state_names=("on", "off"))


class TestValidation:
    def test_rows_must_sum_to_zero(self):
        with pytest.raises(ValueError):
            CTMC([[-1.0, 0.5], [0.0, 0.0]])

    def test_off_diagonal_non_negative(self):
        with pytest.raises(ValueError):
            CTMC([[1.0, -1.0], [2.0, -2.0]])

    def test_must_be_square(self):
        with pytest.raises(ValueError):
            CTMC([[-1.0, 1.0]])

    def test_state_names_must_match(self):
        with pytest.raises(ValueError):
            CTMC([[-1.0, 1.0], [1.0, -1.0]], state_names=("a",))

    def test_state_names_must_be_unique(self):
        with pytest.raises(ValueError):
            CTMC([[-1.0, 1.0], [1.0, -1.0]], state_names=("a", "a"))

    def test_absorbing_rows_allowed(self):
        chain = CTMC([[-1.0, 1.0], [0.0, 0.0]])
        assert chain.absorbing_states() == (1,)


class TestLookup:
    def test_state_index(self, onoff):
        assert onoff.state_index("off") == 1

    def test_unknown_state(self, onoff):
        with pytest.raises(KeyError):
            onoff.state_index("nope")

    def test_default_names(self):
        chain = CTMC([[-1.0, 1.0], [1.0, -1.0]])
        assert chain.state_names == ("0", "1")


class TestSteadyState:
    def test_onoff_balance(self, onoff):
        pi = onoff.steady_state()
        # Balance: pi_on * 1 = pi_off * 2.
        assert pi[0] == pytest.approx(2.0 / 3.0)
        assert pi[1] == pytest.approx(1.0 / 3.0)

    def test_birth_death_matches_geometric(self):
        # M/M/1-like truncated chain.
        lam, mu, n = 1.0, 2.0, 6
        chain = CTMC.from_rates(
            n,
            [(i, i + 1, lam) for i in range(n - 1)]
            + [(i + 1, i, mu) for i in range(n - 1)],
        )
        pi = chain.steady_state()
        expected = np.array([(lam / mu) ** k for k in range(n)])
        expected /= expected.sum()
        assert np.allclose(pi, expected)

    def test_absorbing_chain_rejected(self):
        chain = CTMC([[-1.0, 1.0], [0.0, 0.0]])
        with pytest.raises(ValueError):
            chain.steady_state()


class TestTransient:
    def test_t_zero_returns_initial(self, onoff):
        p = onoff.transient([0.3, 0.7], 0.0)
        assert np.allclose(p, [0.3, 0.7])

    def test_two_state_closed_form(self, onoff):
        # p_on(t) = pi_on + (1 - pi_on) exp(-(a+b) t) from state on.
        t = 0.8
        p = onoff.transient([1.0, 0.0], t)
        pi_on = 2.0 / 3.0
        expected = pi_on + (1 - pi_on) * np.exp(-3.0 * t)
        assert p[0] == pytest.approx(expected, abs=1e-10)

    def test_methods_agree(self, onoff):
        for t in (0.1, 1.0, 10.0):
            uni = onoff.transient([1.0, 0.0], t, method="uniformization")
            exp = onoff.transient([1.0, 0.0], t, method="expm")
            assert np.allclose(uni, exp, atol=1e-9)

    def test_converges_to_steady_state(self, onoff):
        p = onoff.transient([0.0, 1.0], 100.0)
        assert np.allclose(p, onoff.steady_state(), atol=1e-10)

    def test_distribution_preserved(self, onoff):
        p = onoff.transient([0.5, 0.5], 2.7)
        assert p.sum() == pytest.approx(1.0, abs=1e-10)
        assert np.all(p >= 0)

    def test_unknown_method_rejected(self, onoff):
        with pytest.raises(ValueError):
            onoff.transient([1.0, 0.0], 1.0, method="magic")

    def test_bad_initial_rejected(self, onoff):
        with pytest.raises(ValueError):
            onoff.transient([0.5, 0.6], 1.0)
        with pytest.raises(ValueError):
            onoff.transient([1.0], 1.0)


class TestFromRates:
    def test_builds_expected_generator(self):
        chain = CTMC.from_rates(3, [(0, 1, 2.0), (1, 2, 3.0), (2, 0, 1.0)])
        assert chain.Q[0, 1] == 2.0
        assert chain.Q[0, 0] == -2.0
        assert chain.Q[1, 1] == -3.0

    def test_parallel_edges_accumulate(self):
        chain = CTMC.from_rates(2, [(0, 1, 1.0), (0, 1, 2.0)])
        assert chain.Q[0, 1] == 3.0

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            CTMC.from_rates(2, [(0, 0, 1.0)])

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            CTMC.from_rates(2, [(0, 1, -1.0)])
