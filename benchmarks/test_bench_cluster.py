"""Cluster deployment (beyond the paper; companion work [2])."""

from conftest import assertions_enabled, regenerate

UNMANAGED = "no rejuvenation / RR"
SRAA_RR = "SRAA(2,5,3) / RR"
SRAA_JSQ = "SRAA(2,5,3) / JSQ"
ROLLING = "SRAA + 30s downtime / rolling"
HIGH = 9.0
LOW = 2.0


def test_cluster_deployment(benchmark):
    result = regenerate(benchmark, "cluster")
    if not assertions_enabled():
        return
    rt, loss = result.tables
    # The unmanaged cluster melts down at high per-node load; per-node
    # SRAA controls it.
    assert rt.get_series(UNMANAGED).value_at(HIGH) > 3 * rt.get_series(
        SRAA_RR
    ).value_at(HIGH)
    # Managed clusters pay a bounded loss for that control.
    assert 0.0 < loss.get_series(SRAA_RR).value_at(HIGH) < 0.2
    assert loss.get_series(UNMANAGED).value_at(HIGH) == 0.0
    # JSQ never hurts much relative to round-robin.
    assert rt.get_series(SRAA_JSQ).value_at(HIGH) <= 1.3 * rt.get_series(
        SRAA_RR
    ).value_at(HIGH)
    # At low load everything behaves and nothing is lost (multi-bucket
    # burst tolerance carries over to the cluster).
    for label in (SRAA_RR, SRAA_JSQ):
        assert rt.get_series(label).value_at(LOW) < 8.0
        assert loss.get_series(label).value_at(LOW) < 0.005
    # Rolling restarts with downtime still control the response time.
    assert rt.get_series(ROLLING).value_at(HIGH) < rt.get_series(
        UNMANAGED
    ).value_at(HIGH)
