"""The execution layer's core guarantee: backend choice never changes
results.  Serial and process-pool runs of the same seeded scenario must
be bit-identical (the ISSUE's acceptance criterion)."""

from repro.core.spec import PolicySpec
from repro.ecommerce.config import PAPER_CONFIG
from repro.ecommerce.runner import run_replications
from repro.ecommerce.spec import ArrivalSpec
from repro.exec.backends import ProcessPoolBackend, SerialBackend
from repro.experiments.scale import Scale
from repro.experiments.sweep import sraa_config, sweep_policies


def _replicate(backend):
    return run_replications(
        PAPER_CONFIG,
        arrival=ArrivalSpec.poisson(PAPER_CONFIG.arrival_rate_for_load(6.0)),
        policy=PolicySpec.sraa(2, 5, 3),
        n_transactions=300,
        replications=3,
        seed=42,
        backend=backend,
    )


class TestRunReplicationsDeterminism:
    def test_serial_and_pool_bit_identical(self):
        serial = _replicate(SerialBackend())
        pooled = _replicate(ProcessPoolBackend(workers=2))
        assert serial == pooled  # every field of every RunResult

    def test_serial_is_reproducible(self):
        assert _replicate(SerialBackend()) == _replicate(SerialBackend())


class TestWithoutDegradationRoundTrip:
    """SystemConfig.without_degradation() through picklable job specs.

    The derived config (GC, overhead and downtime disabled) must
    produce the same results whether the job is executed in-process or
    pickled into a worker -- i.e. the derived dataclass survives the
    round trip field-exactly.  The fault-scenario zoo runs entirely on
    this config, so a drift here would silently change every campaign.
    """

    def _replicate(self, backend):
        config = PAPER_CONFIG.without_degradation()
        return run_replications(
            config,
            arrival=ArrivalSpec.poisson(
                PAPER_CONFIG.arrival_rate_for_load(6.0)
            ),
            policy=PolicySpec.sraa(2, 5, 3),
            n_transactions=300,
            replications=3,
            seed=11,
            backend=backend,
        )

    def test_config_pickle_round_trip_is_identity(self):
        import pickle

        config = PAPER_CONFIG.without_degradation()
        assert pickle.loads(pickle.dumps(config)) == config
        assert not config.enable_gc
        assert not config.enable_overhead
        assert config.rejuvenation_downtime_s == 0.0

    def test_serial_and_pool_bit_identical(self):
        serial = self._replicate(SerialBackend())
        pooled = self._replicate(ProcessPoolBackend(workers=2))
        assert serial == pooled

    def test_degradation_actually_disabled_in_workers(self):
        pooled = self._replicate(ProcessPoolBackend(workers=2))
        assert all(run.gc_count == 0 for run in pooled.runs)


class TestSweepDeterminism:
    def test_serial_and_pool_bit_identical(self):
        scale = Scale(
            transactions=150, replications=2, loads=(0.5, 6.0), label="tiny"
        )
        configs = (sraa_config(2, 5, 3), sraa_config(5, 3, 1))

        def sweep(backend):
            return sweep_policies(configs, scale, seed=7, backend=backend)

        serial = sweep(SerialBackend())
        pooled = sweep(ProcessPoolBackend(workers=2))
        assert serial.loads == pooled.loads == (0.5, 6.0)
        assert list(serial.results) == [c.label for c in configs]
        # Dict-of-dict-of-ReplicatedResult equality is field-exact.
        assert serial.results == pooled.results
