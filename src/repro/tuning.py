"""Parameter selection for the bucket algorithms (the paper's future work).

The conclusions state: "we plan to consider statistical estimation
techniques to determine optimal algorithm parameters in real-time" and
observe that good configurations "use small values of each of the
parameters" rather than investing in one dimension.  This module
provides the offline half of that programme: score a grid of
``(n, K, D)`` configurations against the paper's two assessment axes --
average response time at a high load and transaction loss at a low load
-- and recommend the best trade-off.

The scoring objective is a scalarisation::

    score = avg_RT(high_load) + loss_penalty * loss_fraction(low_load)

with ``loss_penalty`` expressed in seconds of response time per unit of
low-load loss fraction (default 1000: losing 1 % of healthy-load
transactions is as bad as 10 s of high-load response time).  Lower is
better.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

from repro.core.sla import ServiceLevelObjective
from repro.core.spec import PolicySpec
from repro.ecommerce.config import SystemConfig
from repro.ecommerce.runner import run_replications
from repro.ecommerce.spec import ArrivalSpec


@dataclass(frozen=True)
class ParameterScore:
    """Assessment of one ``(n, K, D)`` configuration."""

    n: int
    K: int
    D: int
    algorithm: str
    high_load_rt: float
    low_load_loss: float
    score: float

    @property
    def label(self) -> str:
        """The paper-style curve label."""
        return f"{self.algorithm}(n={self.n}, K={self.K}, D={self.D})"


def default_grid(product: int = 30) -> List[Tuple[int, int, int]]:
    """All ``(n, K, D)`` with ``n * K * D == product`` (the paper's frame)."""
    if product < 1:
        raise ValueError("product must be >= 1")
    configs = []
    for n in range(1, product + 1):
        if product % n:
            continue
        rest = product // n
        for K in range(1, rest + 1):
            if rest % K:
                continue
            configs.append((n, K, rest // K))
    return configs


class ParameterAdvisor:
    """Grid scoring of bucket-algorithm configurations by simulation.

    Parameters
    ----------
    system_config, slo:
        The system under management and its healthy-behaviour SLO.
    low_load, high_load:
        The paper's two assessment points, in offered-load CPUs
        (defaults 0.5 and 9.0).
    transactions, replications, seed:
        Simulation budget per (configuration, load) cell.
    loss_penalty:
        Seconds of high-load RT one unit of low-load loss is worth.
    """

    def __init__(
        self,
        system_config: SystemConfig,
        slo: ServiceLevelObjective,
        low_load: float = 0.5,
        high_load: float = 9.0,
        transactions: int = 8_000,
        replications: int = 2,
        seed: int = 0,
        loss_penalty: float = 1_000.0,
    ) -> None:
        if transactions < 100:
            raise ValueError("need at least 100 transactions per cell")
        if replications < 1:
            raise ValueError("need at least one replication")
        if loss_penalty < 0:
            raise ValueError("loss penalty must be non-negative")
        self.system_config = system_config
        self.slo = slo
        self.low_load = low_load
        self.high_load = high_load
        self.transactions = transactions
        self.replications = replications
        self.seed = seed
        self.loss_penalty = loss_penalty

    # ------------------------------------------------------------------
    def _policy_spec(
        self, algorithm: str, n: int, K: int, D: int
    ) -> PolicySpec:
        if algorithm == "sraa":
            return PolicySpec.sraa(n, K, D, slo=self.slo)
        if algorithm == "saraa":
            return PolicySpec.saraa(n, K, D, slo=self.slo)
        raise ValueError(
            f"unknown algorithm {algorithm!r}; expected 'sraa' or 'saraa'"
        )

    def _measure(self, spec: PolicySpec, load: float) -> Tuple[float, float]:
        rate = self.system_config.arrival_rate_for_load(load)
        replicated = run_replications(
            self.system_config,
            arrival=ArrivalSpec.poisson(rate),
            policy=spec,
            n_transactions=self.transactions,
            replications=self.replications,
            seed=self.seed,
        )
        return replicated.avg_response_time, replicated.loss_fraction

    def score(
        self, n: int, K: int, D: int, algorithm: str = "sraa"
    ) -> ParameterScore:
        """Assess one configuration."""
        spec = self._policy_spec(algorithm, n, K, D)
        high_rt, _ = self._measure(spec, self.high_load)
        _, low_loss = self._measure(spec, self.low_load)
        return ParameterScore(
            n=n,
            K=K,
            D=D,
            algorithm=algorithm,
            high_load_rt=high_rt,
            low_load_loss=low_loss,
            score=high_rt + self.loss_penalty * low_loss,
        )

    def score_grid(
        self,
        configs: Iterable[Tuple[int, int, int]],
        algorithm: str = "sraa",
    ) -> List[ParameterScore]:
        """Assess a grid; returns scores sorted best-first."""
        scores = [self.score(n, K, D, algorithm) for n, K, D in configs]
        return sorted(scores, key=lambda s: s.score)

    def recommend(
        self,
        configs: Sequence[Tuple[int, int, int]] = (),
        algorithm: str = "sraa",
    ) -> ParameterScore:
        """The best configuration on the grid (default: n*K*D = 30)."""
        grid = list(configs) if configs else default_grid(30)
        return self.score_grid(grid, algorithm)[0]
