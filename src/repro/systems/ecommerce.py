"""The single-node Section-3 substrate behind the ``System`` protocol.

The default -- and the identity baseline: a job with ``system=None``
(or ``system="ecommerce"``) runs through this spec and must produce
bit-identical results to the pre-protocol job runner, which is what
keeps every CRN seed-protocol and backend bit-identity test, and every
committed ledger baseline, valid across the refactor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.systems.protocol import (
    ObsSpec,
    SystemRun,
    SystemSpec,
    register_system,
)


@register_system
@dataclass(frozen=True)
class EcommerceSpec(SystemSpec):
    """One Section-3 e-commerce node (the paper's own substrate)."""

    kind = "ecommerce"

    def build(
        self,
        config: Any,
        arrival: Any,
        policy: Any,
        seed: Optional[int] = None,
        obs: Optional[ObsSpec] = None,
        faults: Any = None,
    ) -> SystemRun:
        from repro.ecommerce.system import ECommerceSystem
        from repro.exec.jobs import build_arrival, build_policy

        sinks = (obs if obs is not None else ObsSpec()).build()
        system = ECommerceSystem(
            config,
            build_arrival(arrival),
            policy=build_policy(policy),
            seed=seed,
            telemetry=sinks.telemetry,
            tracer=sinks.sink,
            faults=faults,
            profiler=sinks.profiler,
        )
        return SystemRun(system, sinks)
