"""Multi-million-event coverage: correctness does not bend at scale.

The synthetic campaign generator scripts its ground truth (one
degraded interval per run, detection exactly ``detection_delay_s``
after injection, a fixed number of false alarms), so scoring a
million-event trace has exact expected numbers -- not just "it ran".
"""

import pytest

from repro.faults.campaign import score_records
from repro.obs.columnar.query import ColumnarQuery
from repro.obs.columnar.synth import synth_campaign_trace
from repro.obs.live.report import render_report

RUNS = 4
EVENTS_PER_RUN = 250_000
HORIZON_S = 3600.0
DETECTION_DELAY_S = 30.0
FALSE_ALARMS = 1


@pytest.fixture(scope="module")
def big_trace():
    """~1M completions across 4 runs (2 scenarios x 2 policies grid)."""
    return synth_campaign_trace(
        runs=RUNS,
        events_per_run=EVENTS_PER_RUN,
        horizon_s=HORIZON_S,
        seed=2006,
        detection_delay_s=DETECTION_DELAY_S,
        false_alarms_per_run=FALSE_ALARMS,
    )


class TestShape:
    def test_record_count(self, big_trace):
        # Per run: meta + completions + inject/trigger/rejuv/clear +
        # false alarms.
        per_run = 1 + EVENTS_PER_RUN + 4 + FALSE_ALARMS
        assert len(big_trace) == RUNS * per_run

    def test_runs_split_cleanly(self, big_trace):
        views = ColumnarQuery(big_trace).run_views()
        assert [v.run_id for v in views] == list(range(RUNS))
        for view in views:
            assert view.meta is not None
            assert view.counts()["request.complete"] == EVENTS_PER_RUN

    def test_timestamps_sorted_within_runs(self, big_trace):
        import numpy as np

        for view in ColumnarQuery(big_trace).run_views():
            times, _values = view.completions()
            times = np.asarray(times)
            assert bool(np.all(np.diff(times) >= 0.0))


class TestScoring:
    def test_scores_match_scripted_ground_truth(self, big_trace):
        scores = score_records(big_trace)
        assert {s.policy for s in scores} == {"SRAA", "SARAA"}
        for score in scores:
            assert score.replications == RUNS // 2
            assert score.detected == score.replications
            assert score.missed == 0
            assert score.missed_rate == 0.0
            assert score.mean_detection_latency_s == pytest.approx(
                DETECTION_DELAY_S
            )
            assert score.false_alarms == FALSE_ALARMS * score.replications

    def test_time_window_filtering_at_scale(self, big_trace):
        query = ColumnarQuery(big_trace)
        # The degraded interval is scripted at [0.4, 0.7] * horizon.
        healthy = query.filtered(until=0.3 * HORIZON_S)
        counts = healthy.counts()
        assert counts["run.meta"] == RUNS  # metas always survive
        assert 0 < counts["request.complete"] < RUNS * EVENTS_PER_RUN
        assert "fault.injected" not in counts


class TestReport:
    def test_report_renders_scores_from_columnar(self, big_trace):
        html = render_report(ColumnarQuery(big_trace))
        assert "SRAA" in html and "SARAA" in html
        assert "synthetic" in html
        # The robustness section must carry the scripted latency.
        assert "30.0" in html
