"""Command-line interface: ``repro`` / ``python -m repro``.

Subcommands
-----------

``repro list``
    Show every registered experiment with its description.
``repro run EXPERIMENT [--scale quick|smoke|paper] [--seed N]
[--workers N] [--backend serial|process|auto]``
    Run one experiment, a comma-separated list, or ``all``, and print
    its tables.  With ``--workers N > 1`` the replication jobs of each
    experiment fan out over a process pool; when several experiments
    are requested, the independent experiments themselves are
    dispatched concurrently.  ``REPRO_WORKERS`` / ``REPRO_BACKEND``
    are the environment equivalents.
``repro mmc --load CPUS``
    Print the analytical M/M/16 response-time facts at one load.
``repro policies``
    List the policy names the factory accepts.
``repro simulate [--policy NAME] [--workers N] [--telemetry-csv PATH]``
    One-off simulation of the Section-3 system under a policy.
``repro explain TRACE [--since TS] [--until TS] [--kind KIND]``
    Human-readable timeline from a ``--trace`` file (JSONL or columnar,
    plain or ``.gz``): names the bucket, batch mean and threshold
    behind every rejuvenation.  ``--since``/``--until`` window the
    narration by simulation time; ``--kind`` (repeatable) restricts it
    to exact event types or dotted prefixes (``policy`` matches
    ``policy.trigger``).
``repro faults list|run|score``
    The fault-injection subsystem: list the built-in adversarial
    scenarios, run a (scenario x policy x replication) campaign with
    robustness scoring (``--workers``, ``--trace``, ``--csv``), or
    re-score an existing campaign trace.
``repro report TRACE [-o PATH]``
    Render a trace (JSONL or columnar, plain or ``.gz``) as a
    self-contained HTML dashboard: RT percentiles over time, bucket
    levels, fault intervals, decisions.
``repro trace convert IN OUT [--to jsonl|columnar]``
    Convert a trace between JSONL and the columnar ``.rcol`` store
    (either direction, ``.gz`` aware; the output format is inferred
    from the extension unless ``--to`` forces it).  The round trip is
    lossless: JSONL -> columnar -> JSONL is byte-identical.
``repro top [simulate options]``
    Run a simulation with a live-refreshing terminal snapshot
    (equivalent to ``repro simulate --top``).
``repro runs list|show|diff|baseline|check|bench``
    The cross-run ledger: every ``simulate`` / ``run`` / ``faults run``
    invocation appends a provenance manifest plus its deterministic
    outcomes to ``.repro/ledger/runs.jsonl`` (``REPRO_LEDGER_DIR``
    overrides the directory, ``REPRO_LEDGER=0`` or ``--no-ledger``
    disables recording).  ``diff`` compares two entries field by field,
    ``baseline`` pins one, and ``check`` statistically compares a run
    against a pinned baseline (z-test on replication means, with an
    SRAA-style persistence filter before flagging).  ``bench`` lists
    the ``BENCH_*.json`` benchmark trajectories.

``repro run`` and ``repro simulate`` both accept ``--trace PATH``
(``--trace-format jsonl|columnar`` picks the encoding),
``--trace-level spans|decisions|all``, ``--trace-chrome PATH``
(Chrome/Perfetto ``trace_event`` JSON) and ``--metrics PATH``
(Prometheus textfile snapshot).  ``repro simulate``, ``repro top`` and
``repro faults run`` additionally accept the live-telemetry options:
``--live`` (constant-memory streaming summary), ``--top`` (live
terminal panel), ``--flight PATH`` (flight-recorder dump JSONL),
``--slo SECONDS`` (SLO-breach dump trigger) and ``--profile``
(per-subsystem DES attribution).
"""

from __future__ import annotations

import argparse
import contextlib
import json
import os
import sys
from typing import List, Optional, Tuple

from repro.exec.backends import (
    ExecutionBackend,
    SerialBackend,
    make_backend,
)
from repro.exec.progress import ProgressPrinter, StageTimer
from repro.experiments.registry import (
    describe,
    experiment_ids,
    run_experiment,
)
from repro.experiments.scale import Scale
from repro.experiments.tables import ExperimentResult
from repro.queueing.mmc import MMcModel


class _VersionAction(argparse.Action):
    """``--version`` without paying the git subprocess on every parse."""

    def __init__(self, option_strings, dest, **kwargs):
        super().__init__(option_strings, dest, nargs=0, **kwargs)

    def __call__(self, parser, namespace, values, option_string=None):
        from repro.obs.ledger.provenance import version_string

        print(version_string())
        parser.exit()


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Performance Assurance via Software "
            "Rejuvenation' (DSN 2006)"
        ),
    )
    parser.add_argument(
        "--version",
        action=_VersionAction,
        help="print the package version and git revision",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list registered experiments")
    policies = sub.add_parser(
        "policies", help="list available policy names"
    )
    policies.add_argument(
        "--params",
        action="store_true",
        help="also show each policy's parameters (the '-p name=value' "
        "spellings and their defaults)",
    )

    run = sub.add_parser("run", help="run an experiment and print its tables")
    run.add_argument(
        "experiment",
        help=(
            "experiment id from 'repro list', a comma-separated list "
            "of ids, or 'all'"
        ),
    )
    run.add_argument(
        "--scale",
        choices=("smoke", "quick", "paper"),
        default=None,
        help="simulation scale (default: REPRO_SCALE env or 'quick')",
    )
    run.add_argument("--seed", type=int, default=0, help="master seed")
    run.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also write the result(s) as JSON (directory when "
        "running several experiments, file otherwise)",
    )
    run.add_argument(
        "--csv",
        metavar="DIR",
        default=None,
        help="also write each table as CSV into this directory",
    )
    _add_backend_options(run)
    _add_trace_options(run)
    _add_ledger_option(run)

    mmc = sub.add_parser("mmc", help="analytical M/M/16 facts at one load")
    mmc.add_argument(
        "--load", type=float, required=True, help="offered load in CPUs"
    )
    mmc.add_argument("--servers", type=int, default=16)
    mmc.add_argument("--service-rate", type=float, default=0.2)

    simulate = sub.add_parser(
        "simulate",
        help="one-off simulation of the Section-3 system under a policy",
    )
    _add_simulate_options(simulate)

    top = sub.add_parser(
        "top",
        help="simulate with a live-refreshing terminal snapshot "
        "(repro simulate --top)",
    )
    _add_simulate_options(top)
    top.add_argument(
        "--follow",
        type=float,
        default=None,
        metavar="SECONDS",
        help="do not simulate; re-render every SECONDS from a running "
        "'repro serve' (see --url) until interrupted",
    )
    top.add_argument(
        "--url",
        default=None,
        metavar="URL",
        help="snapshot source for --follow: a 'repro serve' base URL "
        "or /api/live endpoint, or a JSON file path "
        "(default http://127.0.0.1:8765/api/live)",
    )
    top.add_argument(
        "--frames",
        type=int,
        default=None,
        metavar="N",
        help="stop --follow after N frames (default: follow forever)",
    )

    explain = sub.add_parser(
        "explain",
        help="explain every rejuvenation in a --trace file",
    )
    explain.add_argument(
        "trace",
        help="path to a trace file (JSONL or columnar, plain or .gz)",
    )
    explain.add_argument(
        "--since",
        type=float,
        default=None,
        metavar="SECONDS",
        help="only narrate events at or after this simulated time",
    )
    explain.add_argument(
        "--until",
        type=float,
        default=None,
        metavar="SECONDS",
        help="only narrate events at or before this simulated time",
    )
    explain.add_argument(
        "--kind",
        action="append",
        default=None,
        metavar="TYPE",
        help="only narrate events of this type or dotted prefix "
        "(e.g. 'fault' keeps fault.injected and fault.cleared; "
        "repeatable)",
    )
    explain.add_argument(
        "--json",
        action="store_true",
        help="emit the timeline as machine-readable JSON records "
        "(the same evidence format the sentinel alert engine attaches "
        "to incidents) instead of prose",
    )

    trace_cmd = sub.add_parser(
        "trace",
        help="trace-file utilities (JSONL <-> columnar conversion)",
    )
    trace_sub = trace_cmd.add_subparsers(dest="trace_command", required=True)
    trace_convert = trace_sub.add_parser(
        "convert",
        help="losslessly convert a trace between JSONL and the "
        "columnar container",
    )
    trace_convert.add_argument(
        "input",
        help="source trace (JSONL or columnar, plain or .gz; the "
        "format is sniffed from the file's bytes)",
    )
    trace_convert.add_argument(
        "output",
        help="destination path (a '.gz' suffix gzips; '.jsonl'/'.rcol' "
        "name the format, otherwise the opposite of the input is "
        "written)",
    )
    trace_convert.add_argument(
        "--to",
        choices=("jsonl", "columnar"),
        default=None,
        help="force the output format (default: inferred from the "
        "output path)",
    )

    report = sub.add_parser(
        "report",
        help="render a trace as a self-contained HTML dashboard",
    )
    report.add_argument(
        "trace",
        help="path to a trace file (JSONL or columnar, plain or .gz)",
    )
    report.add_argument(
        "-o",
        "--out",
        metavar="PATH",
        default=None,
        help="output HTML path (default: TRACE with a .html suffix)",
    )
    report.add_argument(
        "--title", default=None, help="dashboard title (default: the path)"
    )
    report.add_argument(
        "--max-runs",
        type=int,
        default=None,
        help="per-run detail sections to render (default 12)",
    )

    faults = sub.add_parser(
        "faults",
        help="fault-injection scenarios and robustness campaigns",
    )
    faults_sub = faults.add_subparsers(dest="faults_command", required=True)

    faults_list = faults_sub.add_parser(
        "list", help="list the built-in adversarial scenarios"
    )
    _add_horizon_option(faults_list)

    faults_run = faults_sub.add_parser(
        "run",
        help="run a (scenario x policy x replication) campaign "
        "and print the robustness scores",
    )
    faults_run.add_argument(
        "scenarios",
        nargs="?",
        default="all",
        help="comma-separated scenario names from 'repro faults list', "
        "or 'all' (default)",
    )
    faults_run.add_argument(
        "--scenario-file",
        metavar="PATH",
        default=None,
        help="also run a scenario loaded from a YAML/JSON file "
        "(see docs/faults.md for the schema)",
    )
    faults_run.add_argument(
        "--policies",
        default="SRAA,SARAA,CLTA",
        help="comma-separated policy names (factory names or the "
        "default labels SRAA/SARAA/CLTA at paper parameters)",
    )
    faults_run.add_argument(
        "--replications",
        type=int,
        default=5,
        help="replications per (scenario, policy) cell (default 5)",
    )
    faults_run.add_argument("--seed", type=int, default=0)
    faults_run.add_argument(
        "--csv",
        metavar="PATH",
        default=None,
        help="also write the scores as CSV",
    )
    _add_horizon_option(faults_run)
    _add_backend_options(faults_run)
    _add_trace_options(faults_run)
    _add_live_options(faults_run)
    _add_ledger_option(faults_run)
    _add_system_options(faults_run)

    faults_score = faults_sub.add_parser(
        "score",
        help="re-score a 'repro faults run --trace' JSONL file "
        "against the built-in ground truth",
    )
    faults_score.add_argument("trace", help="path to a campaign trace")
    faults_score.add_argument(
        "--csv",
        metavar="PATH",
        default=None,
        help="also write the scores as CSV",
    )
    _add_horizon_option(faults_score)

    runs = sub.add_parser(
        "runs",
        help="cross-run ledger: list, show, diff, pin and check runs",
    )
    runs_sub = runs.add_subparsers(dest="runs_command", required=True)

    runs_list = runs_sub.add_parser("list", help="list recorded runs")
    runs_list.add_argument(
        "--kind",
        choices=("simulate", "experiment", "faults"),
        default=None,
        help="only runs of this kind",
    )
    runs_list.add_argument(
        "-n",
        "--last",
        type=int,
        default=None,
        metavar="N",
        help="only the N most recent runs",
    )
    runs_list.add_argument(
        "--json",
        action="store_true",
        help="print the listing as JSON (the same payload "
        "'repro serve' returns from GET /api/runs)",
    )
    _add_ledger_dir_option(runs_list)

    runs_show = runs_sub.add_parser(
        "show", help="show one run's manifest and outcomes"
    )
    runs_show.add_argument(
        "ref", help="entry id, unique id prefix, or 'latest'"
    )
    runs_show.add_argument(
        "--json",
        action="store_true",
        help="print the raw ledger entry as JSON",
    )
    _add_ledger_dir_option(runs_show)

    runs_diff = runs_sub.add_parser(
        "diff", help="field-by-field comparison of two runs"
    )
    runs_diff.add_argument("left", help="baseline-side ref")
    runs_diff.add_argument("right", help="candidate-side ref")
    runs_diff.add_argument(
        "--limit",
        type=int,
        default=40,
        help="differences to display (0 = all; default 40)",
    )
    _add_ledger_dir_option(runs_diff)

    runs_baseline = runs_sub.add_parser(
        "baseline", help="pin a run as a named baseline (no ref: list pins)"
    )
    runs_baseline.add_argument(
        "ref",
        nargs="?",
        default=None,
        help="entry id, unique id prefix, or 'latest'",
    )
    runs_baseline.add_argument(
        "--label",
        default="default",
        help="baseline name (default 'default')",
    )
    _add_ledger_dir_option(runs_baseline)

    runs_check = runs_sub.add_parser(
        "check",
        help="statistically compare a run against a pinned baseline",
    )
    runs_check.add_argument(
        "candidate",
        nargs="?",
        default="latest",
        help="candidate ref (default 'latest')",
    )
    runs_check.add_argument(
        "--baseline",
        default="default",
        help="pinned baseline name (default 'default')",
    )
    runs_check.add_argument(
        "--against",
        metavar="PATH",
        default=None,
        help="compare against a ledger entry exported to a JSON file "
        "('repro runs show REF --json') instead of a pinned baseline",
    )
    runs_check.add_argument(
        "--confidence",
        type=float,
        default=0.95,
        help="z-test confidence for replication-mean metrics "
        "(default 0.95)",
    )
    runs_check.add_argument(
        "--tolerance",
        type=float,
        default=0.05,
        help="relative band for scalar metrics (default 0.05)",
    )
    runs_check.add_argument(
        "--persistence",
        type=int,
        default=2,
        help="consecutive exceedances before flagging, like the "
        "SRAA bucket-persistence D (default 2)",
    )
    runs_check.add_argument(
        "--warn-only",
        action="store_true",
        help="always exit 0 (report only); for CI gates that warn",
    )
    runs_check.add_argument(
        "--json",
        action="store_true",
        help="print the check report as JSON",
    )
    _add_ledger_dir_option(runs_check)

    runs_bench = runs_sub.add_parser(
        "bench", help="list the BENCH_*.json benchmark trajectories"
    )
    runs_bench.add_argument(
        "--dir",
        dest="bench_dir",
        metavar="DIR",
        default=None,
        help="trajectory directory (default: REPRO_BENCH_DIR or "
        ".repro/bench)",
    )

    serve = sub.add_parser(
        "serve",
        help="HTTP observability plane: JSON API over the run ledger, "
        "live SSE telemetry, campaign launches, HTML dashboard",
    )
    serve.add_argument(
        "--host",
        default=None,
        help="bind address (default 127.0.0.1)",
    )
    serve.add_argument(
        "--port",
        type=int,
        default=None,
        help="bind port (default 8765; 0 picks a free port)",
    )
    serve.add_argument(
        "--bench-dir",
        dest="bench_dir",
        metavar="DIR",
        default=None,
        help="benchmark trajectory directory served at /api/bench "
        "(default: REPRO_BENCH_DIR or .repro/bench)",
    )
    serve.add_argument(
        "--watch",
        metavar="RULES.json",
        default=None,
        help="alert rules file evaluated continuously while serving "
        "(see docs/observability.md: burn_rate / regression families)",
    )
    serve.add_argument(
        "--alerts",
        dest="alerts_dir",
        metavar="DIR",
        default=None,
        help="append incident transitions to DIR/alerts.jsonl "
        "(default: REPRO_ALERTS_DIR when set, else not persisted)",
    )
    serve.add_argument(
        "--schedule-tick",
        dest="schedule_tick",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="wall-clock scheduler tick period (default 1.0; 0 "
        "disables the ticker so POST /api/schedules/tick drives a "
        "virtual clock)",
    )
    _add_ledger_dir_option(serve)

    watch = sub.add_parser(
        "watch",
        help="continuous assurance: evaluate alert rules over recorded "
        "runs (--tick) or tail a serve process's alert stream "
        "(--follow)",
    )
    mode = watch.add_mutually_exclusive_group()
    mode.add_argument(
        "--tick",
        action="store_true",
        help="one-shot evaluation: replay --trace / walk the ledger, "
        "print incidents, exit 1 if any is open (default mode)",
    )
    mode.add_argument(
        "--follow",
        action="store_true",
        help="attach to a 'repro serve' SSE stream and print alerts "
        "as they fire (reconnects with Last-Event-ID + backoff)",
    )
    watch.add_argument(
        "--rules",
        metavar="RULES.json",
        default=None,
        help="alert rules file ({'burn_rate': [...], "
        "'regression': [...]})",
    )
    watch.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="trace file (JSONL or .rcol) replayed through the "
        "burn-rate rules in --tick mode",
    )
    watch.add_argument(
        "--slo",
        type=float,
        default=None,
        metavar="SECONDS",
        help="convenience burn-rate rule: response-time SLO "
        "(equivalent to a one-rule --rules file)",
    )
    watch.add_argument(
        "--objective",
        type=float,
        default=0.95,
        help="SLO objective for --slo (default 0.95)",
    )
    watch.add_argument(
        "--factor",
        type=float,
        default=4.0,
        help="burn-rate factor for --slo (default 4.0)",
    )
    watch.add_argument(
        "--long-window",
        dest="long_window",
        type=float,
        default=600.0,
        metavar="SECONDS",
        help="burn-rate long window for --slo (default 600)",
    )
    watch.add_argument(
        "--short-window",
        dest="short_window",
        type=float,
        default=120.0,
        metavar="SECONDS",
        help="burn-rate short window for --slo (default 120)",
    )
    watch.add_argument(
        "--min-count",
        dest="min_count",
        type=int,
        default=50,
        help="minimum long-window completions for --slo (default 50)",
    )
    watch.add_argument(
        "--baseline",
        default=None,
        metavar="LABEL",
        help="convenience regression rule: compare every ledger entry "
        "against this pinned baseline label",
    )
    watch.add_argument(
        "--persistence",
        type=int,
        default=None,
        help="consecutive exceedances before a regression fires "
        "(default 2, the paper's SRAA discipline)",
    )
    watch.add_argument(
        "--snapshot-every",
        dest="snapshot_every",
        type=int,
        default=500,
        metavar="N",
        help="completions between synthetic snapshots when replaying "
        "a trace (default 500)",
    )
    watch.add_argument(
        "--alerts",
        dest="alerts_dir",
        metavar="DIR",
        default=None,
        help="append incident transitions to DIR/alerts.jsonl",
    )
    watch.add_argument(
        "--sink",
        action="append",
        default=None,
        metavar="SPEC",
        help="alert sink: stdout, file:PATH, or webhook:URL "
        "(repeatable)",
    )
    watch.add_argument(
        "--json",
        action="store_true",
        help="print the incident table as JSON (--tick mode)",
    )
    watch.add_argument(
        "--url",
        default=None,
        help="serve base URL for --follow "
        "(default http://127.0.0.1:8765)",
    )
    watch.add_argument(
        "--max-events",
        dest="max_events",
        type=int,
        default=None,
        metavar="N",
        help="stop --follow after printing N events",
    )
    watch.add_argument(
        "--timeout",
        dest="timeout_s",
        type=float,
        default=None,
        metavar="SECONDS",
        help="stop --follow after this many seconds",
    )
    _add_ledger_dir_option(watch)
    return parser


def _add_ledger_dir_option(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--ledger",
        dest="ledger_dir",
        metavar="DIR",
        default=None,
        help="ledger directory (default: REPRO_LEDGER_DIR or "
        ".repro/ledger)",
    )


def _add_ledger_option(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--no-ledger",
        action="store_true",
        help="do not record this run in the ledger "
        "(REPRO_LEDGER=0 is the environment equivalent)",
    )


def _add_system_options(parser: argparse.ArgumentParser) -> None:
    """Substrate selection (see repro.systems and docs/systems.md)."""
    parser.add_argument(
        "--system",
        choices=("ecommerce", "cluster", "fleet"),
        default="ecommerce",
        help="substrate to run against: the single Section-3 node "
        "(default), a balanced cluster, or a sharded fleet",
    )
    parser.add_argument(
        "--nodes",
        type=int,
        default=None,
        help="node count for --system cluster/fleet "
        "(defaults: 4 / 100)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        help="shard count for --system fleet (default 4)",
    )
    parser.add_argument(
        "--balancer",
        default="round_robin",
        help="load balancer for cluster/fleet "
        "(round_robin, random, jsq; default round_robin)",
    )
    parser.add_argument(
        "--scheduler",
        choices=("rolling", "canary", "unrestricted"),
        default=None,
        help="fleet rejuvenation scheduler (default: independent "
        "per-node triggers)",
    )
    parser.add_argument(
        "--capacity-floor",
        type=float,
        default=None,
        help="fraction of nodes that must stay up per scheduling "
        "domain (e.g. 0.8)",
    )
    parser.add_argument(
        "--max-nodes-down",
        type=int,
        default=None,
        help="absolute cap on concurrently rejuvenating nodes",
    )
    parser.add_argument(
        "--pod-size",
        type=int,
        default=None,
        help="blast-radius pod size (consecutive global node indices)",
    )
    parser.add_argument(
        "--max-down-per-pod",
        type=int,
        default=1,
        help="concurrently-down cap within one pod (default 1)",
    )
    parser.add_argument(
        "--min-gap",
        type=float,
        default=0.0,
        help="minimum simulated seconds between grants (default 0)",
    )
    parser.add_argument(
        "--canary-soak",
        type=float,
        default=0.0,
        help="canary scheduler: soak seconds after the canary's "
        "downtime before the wave opens",
    )


def _make_system_spec(args: argparse.Namespace):
    """The ``--system`` options as a SystemSpec (None = single node)."""
    if args.system == "ecommerce":
        return None
    from repro.systems import ClusterSpec, FleetSpec, SchedulerSpec

    try:
        scheduler = None
        if args.scheduler is not None:
            scheduler = SchedulerSpec(
                kind=args.scheduler,
                min_gap_s=args.min_gap,
                max_nodes_down=args.max_nodes_down,
                capacity_floor=args.capacity_floor,
                pod_size=args.pod_size,
                max_down_per_pod=args.max_down_per_pod,
                canary_soak_s=args.canary_soak,
            )
        if args.system == "cluster":
            kwargs = {"balancer": args.balancer, "scheduler": scheduler}
            if args.nodes is not None:
                kwargs["n_nodes"] = args.nodes
            return ClusterSpec(**kwargs)
        kwargs = {"balancer": args.balancer, "scheduler": scheduler}
        if args.nodes is not None:
            kwargs["n_nodes"] = args.nodes
        if args.shards is not None:
            kwargs["shards"] = args.shards
        return FleetSpec(**kwargs)
    except ValueError as error:
        raise SystemExit(f"--system: {error}") from None


def _add_simulate_options(parser: argparse.ArgumentParser) -> None:
    """The shared ``simulate`` / ``top`` option set."""
    parser.add_argument(
        "--policy",
        default="sraa",
        help="policy name from 'repro policies', or 'none'",
    )
    parser.add_argument(
        "-p",
        "--param",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="policy parameter (repeatable), e.g. -p n=2 -p K=5 -p D=3",
    )
    parser.add_argument(
        "--load", type=float, default=9.0, help="offered load in CPUs"
    )
    parser.add_argument("--transactions", type=int, default=20_000)
    parser.add_argument("--replications", type=int, default=1)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--warmup", type=int, default=0, help="transactions excluded from stats"
    )
    parser.add_argument(
        "--telemetry-csv",
        metavar="PATH",
        default=None,
        help="write fixed-interval telemetry samples of every "
        "replication as CSV (schema: replication + telemetry columns)",
    )
    parser.add_argument(
        "--telemetry-interval",
        type=float,
        default=100.0,
        metavar="SECONDS",
        help="simulated seconds between telemetry samples "
        "(with --telemetry-csv; default 100)",
    )
    _add_backend_options(parser)
    _add_trace_options(parser)
    _add_live_options(parser)
    _add_ledger_option(parser)


def _add_live_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--live",
        action="store_true",
        help="constant-memory streaming telemetry: print merged "
        "quantile-sketch / rate / window statistics at the end",
    )
    parser.add_argument(
        "--top",
        action="store_true",
        help="live-refreshing terminal snapshot while the run executes "
        "(implies --live)",
    )
    parser.add_argument(
        "--flight",
        metavar="PATH",
        default=None,
        help="write the flight-recorder dumps (the last events before "
        "each rejuvenation / fault / SLO breach) as JSONL",
    )
    parser.add_argument(
        "--slo",
        type=float,
        default=None,
        metavar="SECONDS",
        help="response-time SLO; a breach triggers a flight-recorder "
        "dump (implies --live)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="attribute wall-clock and event counts per DES subsystem "
        "and print the table",
    )


def _make_live_spec(args: argparse.Namespace):
    """A LiveSpec when any live-telemetry option was requested."""
    if not (
        args.live or args.top or args.flight is not None
        or args.slo is not None
    ):
        return None
    from repro.obs.live import LiveDisplay, LiveSpec, RecorderSpec

    # --flight/--slo alone run the cheapest always-on configuration:
    # ring + dumps, no streaming aggregators.  --live/--top add them.
    return LiveSpec(
        aggregate=bool(args.live or args.top),
        recorder=RecorderSpec(slo_s=args.slo),
        display=LiveDisplay() if args.top else None,
    )


def _write_live_outputs(result_runs, merged_live, args) -> None:
    """Flight-dump file plus the end-of-run live summary."""
    if args.flight is not None:
        from repro.obs.live import write_flight_jsonl

        dumps = write_flight_jsonl(
            args.flight, [getattr(run, "flight", None) or () for run in result_runs]
        )
        print(f"wrote {args.flight} ({dumps} flight dumps)")
    if merged_live is None or not (args.live or args.top):
        # Flight-only runs skip aggregation; there is nothing to print.
        return
    snapshot = merged_live.snapshot()
    quantiles = "  ".join(
        f"{name}={value:.3f}s"
        for name, value in sorted(snapshot["rt_quantiles"].items())
    )
    print(
        f"live              : {snapshot['completed']} completed, "
        f"{snapshot['lost']} lost, {snapshot['rejuvenations']} "
        f"rejuvenations, {snapshot['faults']} faults"
    )
    if quantiles:
        print(f"live rt sketch    : {quantiles} (eps-rank error bound)")
    print(
        f"live rt window    : mean {snapshot['window_mean']:.3f} s, "
        f"lag-1 autocorr {snapshot['window_autocorr']:+.3f}, "
        f"rate {snapshot['rate_per_s']:.2f}/s"
    )


def _add_horizon_option(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--horizon",
        type=float,
        default=900.0,
        metavar="SECONDS",
        help="scenario timeline horizon in simulated seconds "
        "(default 900; the study scale is 3600)",
    )


def _add_trace_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="write a trace of every replication "
        "(inspect with 'repro explain PATH')",
    )
    parser.add_argument(
        "--trace-level",
        choices=("spans", "decisions", "all"),
        default="all",
        help="what to record: request spans, policy decisions, or "
        "everything including engine events (default: all)",
    )
    parser.add_argument(
        "--trace-format",
        choices=("jsonl", "columnar"),
        default="jsonl",
        help="trace representation: one JSON record per line, or the "
        "columnar container (smaller, loads vectorized; convert "
        "either way with 'repro trace convert'; default: jsonl)",
    )
    parser.add_argument(
        "--trace-chrome",
        metavar="PATH",
        default=None,
        help="write a Chrome/Perfetto trace_event JSON "
        "(load in chrome://tracing or ui.perfetto.dev)",
    )
    parser.add_argument(
        "--metrics",
        metavar="PATH",
        default=None,
        help="write a Prometheus-style textfile metrics snapshot",
    )


def _maybe_tracing(session):
    """``use_tracing(session)``, or a no-op context when tracing is off."""
    if session is None:
        return contextlib.nullcontext()
    from repro.obs.session import use_tracing

    return use_tracing(session)


def _make_trace_session(args: argparse.Namespace):
    """A TraceSession when any trace/metrics output was requested."""
    if not (args.trace or args.trace_chrome or args.metrics):
        return None
    from repro.obs.session import TraceSession

    return TraceSession(
        level=args.trace_level,
        trace_format=getattr(args, "trace_format", "jsonl"),
    )


def _write_trace_outputs(session, args: argparse.Namespace) -> None:
    if args.trace is not None:
        lines = session.write_trace(args.trace)
        print(f"wrote {args.trace} ({lines} records)")
    if args.trace_chrome is not None:
        count = session.write_chrome(args.trace_chrome)
        print(f"wrote {args.trace_chrome} ({count} trace_event records)")
    if args.metrics is not None:
        session.write_metrics(args.metrics)
        print(f"wrote {args.metrics}")


def _add_backend_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="parallel worker processes (default: REPRO_WORKERS env or 1)",
    )
    parser.add_argument(
        "--backend",
        choices=("auto", "serial", "process"),
        default=None,
        help="execution backend (default: REPRO_BACKEND env or 'auto'; "
        "'auto' picks 'process' when more than one worker is requested)",
    )


def _record_ledger(
    args: Optional[argparse.Namespace],
    manifest,
    outcomes: dict,
    timing: Optional[dict] = None,
) -> None:
    """Append a ledger entry for a CLI run (best-effort, optional)."""
    if args is not None and getattr(args, "no_ledger", False):
        return
    from repro.obs.ledger import ledger_enabled, record_run

    if not ledger_enabled():
        return
    artifacts = None
    if args is not None and getattr(args, "trace", None):
        artifacts = {"trace": os.path.abspath(args.trace)}
    entry = record_run(manifest, outcomes, timing, artifacts=artifacts)
    if entry is not None:
        print(f"ledger            : recorded {entry['id']}")


def _resolve_scale(name: Optional[str]) -> Scale:
    if name is None:
        return Scale.from_env()
    return {"smoke": Scale.smoke, "quick": Scale.quick, "paper": Scale.paper}[
        name
    ]()


def _resolve_backend(args: argparse.Namespace) -> ExecutionBackend:
    if args.workers is not None and args.workers < 1:
        raise SystemExit("--workers must be >= 1")
    return make_backend(
        args.backend,
        args.workers,
        progress=ProgressPrinter(label="exec"),
    )


def _cmd_list() -> int:
    width = max(len(eid) for eid in experiment_ids())
    for eid in experiment_ids():
        print(f"{eid.ljust(width)}  {describe(eid)}")
    return 0


def _cmd_policies(show_params: bool = False) -> int:
    from repro.core.factory import policy_schema

    for entry in policy_schema():
        print(f"{entry['name']:<16} {entry['summary']}")
        if show_params:
            for param in entry["params"]:
                print(
                    f"    -p {param['name']}=<{param['type']}>"
                    f"  (default {param['default']}) -- {param['doc']}"
                )
    return 0


def _resolve_run_targets(experiment: str) -> Tuple[str, ...]:
    if experiment == "all":
        return experiment_ids()
    return tuple(
        name.strip() for name in experiment.split(",") if name.strip()
    )


def _run_one(spec: Tuple[str, Scale, int]) -> ExperimentResult:
    """Run one registry experiment serially (picklable dispatch target)."""
    eid, scale, seed = spec
    return run_experiment(eid, scale, seed, backend=SerialBackend())


def _cmd_run(
    experiment: str,
    scale: Scale,
    seed: int,
    backend: ExecutionBackend,
    json_path: Optional[str] = None,
    csv_dir: Optional[str] = None,
    trace_args: Optional[argparse.Namespace] = None,
) -> int:
    from repro.experiments.io import save_csv, save_json

    session = (
        _make_trace_session(trace_args) if trace_args is not None else None
    )

    targets = _resolve_run_targets(experiment)
    if not targets:
        raise SystemExit(f"no experiment ids in {experiment!r}")
    many = len(targets) > 1
    timer = StageTimer()
    # Tracing forces the sequential per-experiment path: the installed
    # TraceSession lives in this process only, so experiments dispatched
    # to pool workers could not ingest into it (their replication jobs
    # still fan out through the backend).
    parallel_experiments = (
        many and getattr(backend, "workers", 1) > 1 and session is None
    )
    if parallel_experiments:
        # Independent experiments dispatched concurrently; each runs
        # its own jobs serially (no nested pools).  Results come back
        # in registry order regardless of completion order.
        with timer.stage("all experiments"):
            results = backend.map(
                _run_one, [(eid, scale, seed) for eid in targets]
            )
    else:
        results = []
        with _maybe_tracing(session):
            for eid in targets:
                with timer.stage(eid):
                    results.append(
                        run_experiment(eid, scale, seed, backend=backend)
                    )
    from repro.obs.ledger import (
        experiment_manifest,
        experiment_outcomes,
        timing_block,
    )

    for eid, result in zip(targets, results):
        print(result.format_text())
        print()
        if json_path is not None:
            if many:
                os.makedirs(json_path, exist_ok=True)
                destination = os.path.join(json_path, f"{eid}.json")
            else:
                destination = json_path
            save_json(result, destination)
            print(f"wrote {destination}")
        if csv_dir is not None:
            for path in save_csv(result, csv_dir):
                print(f"wrote {path}")
    if session is not None:
        _write_trace_outputs(session, trace_args)
    print(f"wall-clock per stage ({backend.name} backend):")
    print(timer.report())
    # Recorded after the tables so stdout stays comparable across
    # backends up to the timing footer (the entry id is sequential).
    for eid, result in zip(targets, results):
        _record_ledger(
            trace_args,
            experiment_manifest(eid, scale, seed, backend=backend),
            experiment_outcomes(result),
            timing_block(timer.stages.get(eid)),
        )
    return 0


def _cmd_mmc(load: float, servers: int, service_rate: float) -> int:
    model = MMcModel.from_offered_load(load, service_rate, servers)
    if not model.is_stable:
        print(
            f"load {load} CPUs on {servers} servers is unstable "
            f"(rho = {model.traffic_intensity:.3f} >= 1)"
        )
        return 1
    print(f"offered load        : {load} CPUs (lambda = {model.arrival_rate:g}/s)")
    print(f"traffic intensity   : {model.traffic_intensity:.4f}")
    print(f"W_c (no-wait prob.) : {model.wc():.6f}")
    print(f"E[RT]   (eq. 2)     : {model.response_time_mean():.4f} s")
    print(f"sd[RT]  (eq. 3)     : {model.response_time_std():.4f} s")
    print(f"P(RT > 10 s)        : {1.0 - model.response_time_cdf(10.0):.6f}")
    return 0


def _parse_params(pairs: List[str]) -> dict:
    """``KEY=VALUE`` pairs to a params dict (ints preferred to floats).

    Accepts anything Python parses as a number, including scientific
    notation (``mu=1e-3``) and infinities -- not just digits-and-dots.
    """
    params = {}
    for pair in pairs:
        key, sep, value = pair.partition("=")
        if not sep or not key:
            raise SystemExit(f"bad --param {pair!r}; expected KEY=VALUE")
        try:
            params[key] = int(value)
        except ValueError:
            try:
                params[key] = float(value)
            except ValueError:
                raise SystemExit(
                    f"bad --param value {value!r}; expected a number"
                ) from None
    return params


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.core.spec import PolicySpec
    from repro.ecommerce.config import PAPER_CONFIG
    from repro.ecommerce.runner import run_replications
    from repro.ecommerce.spec import ArrivalSpec

    params = _parse_params(args.param)
    if args.policy == "none":
        policy = PolicySpec.none()
    else:
        policy = PolicySpec(args.policy, params)
    description = policy.describe()
    rate = PAPER_CONFIG.arrival_rate_for_load(args.load)
    arrival = ArrivalSpec.poisson(rate)
    backend = _resolve_backend(args)
    session = _make_trace_session(args)
    live_spec = _make_live_spec(args)
    telemetry_interval = (
        args.telemetry_interval if args.telemetry_csv is not None else None
    )
    timer = StageTimer()
    with timer.stage("simulate"), _maybe_tracing(session):
        result = run_replications(
            PAPER_CONFIG,
            arrival=arrival,
            policy=policy,
            n_transactions=args.transactions,
            replications=args.replications,
            seed=args.seed,
            warmup=args.warmup,
            backend=backend,
            telemetry_interval_s=telemetry_interval,
            live=live_spec,
            profile=args.profile,
        )
    if args.telemetry_csv is not None:
        from repro.ecommerce.telemetry import write_telemetry_csv

        rows = write_telemetry_csv(
            args.telemetry_csv,
            [run.telemetry or () for run in result.runs],
        )
        print(f"wrote {args.telemetry_csv} ({rows} samples)")
    if session is not None:
        _write_trace_outputs(session, args)
    if live_spec is not None:
        _write_live_outputs(result.runs, result.merged_live(), args)
    if args.profile:
        profile = result.merged_profile()
        if profile is not None:
            print(profile.format_table())
    from repro.obs.ledger import (
        replicated_outcomes,
        simulate_manifest,
        timing_block,
    )

    _record_ledger(
        args,
        simulate_manifest(
            PAPER_CONFIG,
            arrival,
            policy,
            args.transactions,
            args.replications,
            args.seed,
            warmup=args.warmup,
            backend=backend,
        ),
        replicated_outcomes(result),
        timing_block(
            timer.total_s,
            result.merged_profile() if args.profile else None,
        ),
    )
    rt_mean, rt_low, rt_high = result.response_time_interval()
    loss_mean, loss_low, loss_high = result.loss_interval()
    print(f"policy            : {description}")
    print(
        f"load              : {args.load} CPUs (lambda = {rate:g}/s), "
        f"{args.replications} x {args.transactions} transactions"
    )
    print(
        f"avg response time : {rt_mean:.3f} s "
        f"[{rt_low:.3f}, {rt_high:.3f}]"
    )
    print(
        f"loss fraction     : {loss_mean:.5f} "
        f"[{loss_low:.5f}, {loss_high:.5f}]"
    )
    print(f"rejuvenations     : {result.rejuvenations:g} per replication")
    print(f"garbage collections: {result.gc_count:g} per replication")
    print(f"wall-clock        : {timer.total_s:.2f} s")
    return 0


def _cmd_faults(args: argparse.Namespace) -> int:
    from repro.faults.zoo import builtin_scenarios

    if args.faults_command == "list":
        for scenario in builtin_scenarios(args.horizon).values():
            print(scenario.describe())
        return 0
    if args.faults_command == "run":
        return _cmd_faults_run(args)
    if args.faults_command == "score":
        return _cmd_faults_score(args)
    raise AssertionError(
        f"unhandled faults command {args.faults_command!r}"
    )


def _resolve_campaign_policies(spec: str):
    """``--policies`` CSV to an ordered ``label -> PolicySpec`` dict."""
    from repro.faults.campaign import resolve_policies

    try:
        return resolve_policies(spec)
    except ValueError as error:
        raise SystemExit(f"--policies: {error}") from None


def _cmd_faults_run(args: argparse.Namespace) -> int:
    from repro.faults.campaign import run_campaign
    from repro.faults.scenario import load_scenario
    from repro.faults.score import write_scores_csv
    from repro.faults.zoo import builtin_scenarios

    zoo = builtin_scenarios(args.horizon)
    if args.scenarios == "all":
        scenarios = list(zoo.values())
    else:
        scenarios = []
        for name in (part.strip() for part in args.scenarios.split(",")):
            if not name:
                continue
            if name not in zoo:
                raise SystemExit(
                    f"unknown scenario {name!r}; see 'repro faults list'"
                )
            scenarios.append(zoo[name])
    if args.scenario_file is not None:
        scenarios.append(load_scenario(args.scenario_file))
    if not scenarios:
        raise SystemExit(f"no scenarios in {args.scenarios!r}")
    policies = _resolve_campaign_policies(args.policies)
    backend = _resolve_backend(args)
    session = _make_trace_session(args)
    live_spec = _make_live_spec(args)
    system = _make_system_spec(args)
    timer = StageTimer()
    with timer.stage("campaign"), _maybe_tracing(session):
        campaign = run_campaign(
            scenarios=scenarios,
            policies=policies,
            replications=args.replications,
            seed=args.seed,
            backend=backend,
            live=live_spec,
            profile=args.profile,
            system=system,
        )
    from repro.obs.ledger import (
        campaign_manifest,
        campaign_outcomes,
        timing_block,
    )

    _record_ledger(
        args,
        campaign_manifest(
            scenarios,
            policies,
            args.replications,
            args.seed,
            backend=backend,
            system=system,
        ),
        campaign_outcomes(campaign),
        timing_block(
            timer.total_s,
            campaign.merged_profile() if args.profile else None,
        ),
    )
    print(campaign.format_table())
    if args.csv is not None:
        rows = write_scores_csv(args.csv, campaign.scores)
        print(f"wrote {args.csv} ({rows} score rows)")
    if session is not None:
        _write_trace_outputs(session, args)
    if live_spec is not None:
        all_runs = [run for _, cell in campaign.runs for run in cell]
        _write_live_outputs(all_runs, campaign.merged_live(), args)
    if args.profile:
        profile = campaign.merged_profile()
        if profile is not None:
            print(profile.format_table())
    print(f"wall-clock: {timer.total_s:.2f} s")
    return 0


def _cmd_faults_score(args: argparse.Namespace) -> int:
    from repro.faults.campaign import score_trace
    from repro.faults.score import format_scores, write_scores_csv

    if not os.path.exists(args.trace):
        raise SystemExit(f"no such trace file: {args.trace}")
    scores = score_trace(args.trace, horizon_s=args.horizon)
    print(format_scores(scores))
    if args.csv is not None:
        rows = write_scores_csv(args.csv, scores)
        print(f"wrote {args.csv} ({rows} score rows)")
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    from repro.obs.explain import explain_trace, timeline_from_trace

    if not os.path.exists(args.trace):
        raise SystemExit(f"no such trace file: {args.trace}")
    if args.json:
        records = timeline_from_trace(
            args.trace,
            since=args.since,
            until=args.until,
            kinds=args.kind,
        )
        print(json.dumps(records, indent=2, sort_keys=True))
        return 0
    print(
        explain_trace(
            args.trace,
            since=args.since,
            until=args.until,
            kinds=args.kind,
        ),
        end="",
    )
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    if args.trace_command == "convert":
        from repro.obs.columnar.convert import convert_trace

        if not os.path.exists(args.input):
            raise SystemExit(f"no such trace file: {args.input}")
        in_format, out_format, records = convert_trace(
            args.input, args.output, to=args.to
        )
        print(
            f"wrote {args.output} "
            f"({in_format} -> {out_format}, {records} records)"
        )
        return 0
    raise AssertionError(
        f"unhandled trace command {args.trace_command!r}"
    )


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.obs.live.report import DEFAULT_MAX_RUNS, write_report

    if not os.path.exists(args.trace):
        raise SystemExit(f"no such trace file: {args.trace}")
    out = args.out
    if out is None:
        base = args.trace
        for suffix in (".gz", ".jsonl", ".json"):
            if base.endswith(suffix):
                base = base[: -len(suffix)]
        out = base + ".html"
    records = write_report(
        args.trace,
        out,
        title=args.title,
        max_runs=(
            args.max_runs if args.max_runs is not None else DEFAULT_MAX_RUNS
        ),
    )
    print(f"wrote {out} ({records} trace records)")
    return 0


def _cmd_runs(args: argparse.Namespace) -> int:
    handlers = {
        "list": _cmd_runs_list,
        "show": _cmd_runs_show,
        "diff": _cmd_runs_diff,
        "baseline": _cmd_runs_baseline,
        "check": _cmd_runs_check,
        "bench": _cmd_runs_bench,
    }
    try:
        handler = handlers[args.runs_command]
    except KeyError:
        raise AssertionError(
            f"unhandled runs command {args.runs_command!r}"
        ) from None
    try:
        return handler(args)
    except LookupError as error:
        # Bad refs / missing baselines are user errors, not tracebacks.
        raise SystemExit(str(error)) from None


def _open_ledger(args: argparse.Namespace):
    from repro.obs.ledger import Ledger

    return Ledger(args.ledger_dir)


def _cmd_runs_list(args: argparse.Namespace) -> int:
    ledger = _open_ledger(args)
    entries = ledger.entries()
    if args.json:
        # The exact GET /api/runs payload (shared serializer), so
        # scripts can swap the CLI and the serve API freely.
        import json as json_module

        from repro.obs.ledger import runs_payload

        total = sum(
            1
            for e in entries
            if args.kind is None or e["kind"] == args.kind
        )
        offset = (
            max(0, total - args.last) if args.last is not None else 0
        )
        payload = runs_payload(
            entries,
            ledger.baselines(),
            kind=args.kind,
            limit=args.last,
            offset=offset,
        )
        print(json_module.dumps(payload, indent=2, sort_keys=True))
        return 0
    if args.kind is not None:
        entries = [e for e in entries if e["kind"] == args.kind]
    if args.last is not None:
        entries = entries[-args.last :]
    if not entries:
        print(f"no recorded runs in {ledger.directory}")
        return 0
    pinned = {
        pin["id"]: label for label, pin in ledger.baselines().items()
    }
    for entry in entries:
        mark = f"  [baseline:{pinned[entry['id']]}]" if entry[
            "id"
        ] in pinned else ""
        print(
            f"{entry['id']}  {entry['created_utc']}  "
            f"{entry['label']}{mark}"
        )
    return 0


def _cmd_runs_show(args: argparse.Namespace) -> int:
    import json as json_module

    entry = _open_ledger(args).get(args.ref)
    if args.json:
        print(json_module.dumps(entry, indent=2, sort_keys=True))
        return 0
    manifest = entry["manifest"]
    environment = manifest["environment"]
    execution = manifest["execution"]
    seeds = manifest["seed_protocol"]
    print(f"id            : {entry['id']}")
    print(f"created       : {entry['created_utc']}")
    print(f"kind          : {entry['kind']}")
    print(f"label         : {entry['label']}")
    print(f"manifest hash : {manifest['manifest_hash']}")
    dirty = "-dirty" if environment.get("git_dirty") else ""
    print(
        f"provenance    : repro {environment.get('version')} "
        f"(git {str(environment.get('git_sha'))[:12]}{dirty}), "
        f"python {environment.get('python')} on "
        f"{environment.get('platform')}/{environment.get('machine')}"
    )
    print(
        f"execution     : {execution.get('backend')} backend, "
        f"{execution.get('workers')} worker(s)"
    )
    print(
        f"seed protocol : master {seeds.get('master')}, "
        f"rule '{seeds.get('rule')}'"
    )
    from repro.obs.ledger import flatten

    for path, value in sorted(flatten(entry["outcomes"]).items()):
        print(f"outcome {path} = {value}")
    wall = entry.get("timing", {}).get("wall_clock_s")
    if wall is not None:
        print(f"wall-clock    : {wall:.2f} s")
    return 0


def _cmd_runs_diff(args: argparse.Namespace) -> int:
    from repro.obs.ledger import diff_entries, format_diff

    ledger = _open_ledger(args)
    left = ledger.get(args.left)
    right = ledger.get(args.right)
    differences = diff_entries(left, right)
    if not differences:
        print(f"{left['id']} and {right['id']} are identical")
        return 0
    print(f"{left['id']} vs {right['id']}: {len(differences)} differences")
    rows = format_diff(differences, args.limit)
    width = max(len(path) for path, _ in rows)
    for path, text in rows:
        print(f"  {path.ljust(width)}  {text}")
    return 1


def _cmd_runs_baseline(args: argparse.Namespace) -> int:
    ledger = _open_ledger(args)
    if args.ref is None:
        pins = ledger.baselines()
        if not pins:
            print("no baselines pinned")
            return 0
        for label in sorted(pins):
            pin = pins[label]
            print(
                f"{label}: {pin['id']} "
                f"(hash {pin['manifest_hash'][:12]}, "
                f"pinned {pin['pinned_utc']})"
            )
        return 0
    entry = ledger.get(args.ref)
    ledger.set_baseline(args.label, entry)
    print(f"pinned {entry['id']} as baseline '{args.label}'")
    return 0


def _cmd_runs_check(args: argparse.Namespace) -> int:
    import json as json_module

    from repro.obs.ledger import run_check

    ledger = _open_ledger(args)
    if args.against is not None:
        if not os.path.exists(args.against):
            raise SystemExit(f"no such baseline file: {args.against}")
        with open(args.against, encoding="utf-8") as handle:
            baseline = json_module.load(handle)
    else:
        try:
            baseline = ledger.baseline_entry(args.baseline)
        except LookupError as error:
            raise SystemExit(str(error)) from None
    try:
        candidate = ledger.get(args.candidate)
    except LookupError as error:
        raise SystemExit(str(error)) from None
    report = run_check(
        ledger,
        baseline,
        candidate,
        confidence=args.confidence,
        tolerance=args.tolerance,
        persistence=args.persistence,
    )
    if args.json:
        print(json_module.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        _print_check_report(report)
    if args.warn_only:
        return 0
    return report.exit_code


def _print_check_report(report) -> int:
    print(
        f"check {report.candidate_id} against {report.baseline_id} "
        f"(persistence {report.streak}/{report.persistence})"
    )
    if report.manifest_match:
        print("  manifest      : match")
    else:
        print(
            f"  manifest      : DRIFT in {len(report.drift)} field(s)"
        )
        for path in report.drift[:10]:
            print(f"    {path}")
        if len(report.drift) > 10:
            print(f"    ... {len(report.drift) - 10} more")
    for check in report.checks:
        verdict = "EXCEEDED" if check.exceeded else "ok"
        detail = f"{check.baseline:g} -> {check.candidate:g}"
        if check.method == "welch-z":
            detail += (
                f", z = {check.statistic:+.2f} "
                f"(|z| > {check.threshold:.2f} flags)"
            )
        elif check.method == "relative":
            detail += (
                f", delta = {check.relative_delta:+.2%} "
                f"(tolerance {check.threshold:.0%})"
            )
        else:
            detail = "result hashes identical"
        print(f"  {check.metric.ljust(28)} {verdict.ljust(8)} {detail}")
    if report.flagged:
        print(
            "verdict: FLAGGED (exceeded on "
            f"{report.streak} consecutive checks)"
        )
    elif report.exceeded:
        print(
            "verdict: exceeded (streak "
            f"{report.streak}/{report.persistence}; not yet persistent)"
        )
    else:
        print("verdict: ok")
    return 0


def _cmd_runs_bench(args: argparse.Namespace) -> int:
    from repro.obs.ledger import (
        list_trajectories,
        load_trajectory,
        validate_trajectory,
    )

    names = list_trajectories(args.bench_dir)
    if not names:
        print("no benchmark trajectories recorded")
        return 0
    status = 0
    for name in names:
        trajectory = load_trajectory(name, args.bench_dir)
        problems = validate_trajectory(trajectory)
        points = trajectory.get("points", [])
        latest = points[-1] if points else None
        if problems:
            status = 1
            print(f"{name}: INVALID ({'; '.join(problems)})")
        elif latest is not None:
            print(
                f"{name}: {len(points)} point(s), latest "
                f"{latest['value']:g} {latest['units']} "
                f"at {latest['timestamp']}"
            )
    return status


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    try:
        return _dispatch(_build_parser().parse_args(argv))
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; that is not an error.
        # Point stdout at devnull so interpreter shutdown does not try
        # (and fail) to flush the closed descriptor.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


def _cmd_top_follow(args: argparse.Namespace) -> int:
    from repro.obs.live import follow_snapshots

    source = args.url or "http://127.0.0.1:8765/api/live"
    if source.startswith(("http://", "https://")) and "/api/" not in source:
        source = source.rstrip("/") + "/api/live"
    follow_snapshots(
        source, interval_s=args.follow, frames=args.frames
    )
    return 0


def _load_rules_file(path: str):
    from repro.obs.sentinel import rules_from_dict

    if not os.path.exists(path):
        raise SystemExit(f"no such rules file: {path}")
    with open(path, encoding="utf-8") as handle:
        try:
            config = json.load(handle)
        except json.JSONDecodeError as error:
            raise SystemExit(f"bad rules file {path}: {error}") from None
    try:
        return rules_from_dict(config)
    except (TypeError, ValueError) as error:
        raise SystemExit(f"bad rules file {path}: {error}") from None


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve import DEFAULT_HOST, DEFAULT_PORT, ReproServer

    rules = _load_rules_file(args.watch) if args.watch else None
    server = ReproServer(
        host=args.host if args.host is not None else DEFAULT_HOST,
        port=args.port if args.port is not None else DEFAULT_PORT,
        ledger_dir=args.ledger_dir,
        bench_dir=args.bench_dir,
        rules=rules,
        alerts_dir=args.alerts_dir,
    )
    if args.schedule_tick > 0:
        server.start_ticker(args.schedule_tick)
    print(
        f"repro serve on {server.url}  "
        f"(ledger {server.ledger().directory}; Ctrl-C stops)"
    )
    print(f"  dashboard  {server.url}/")
    print(f"  API        {server.url}/api/health")
    print(f"  events     {server.url}/api/events")
    if rules:
        print(f"  alerts     {server.url}/api/alerts  ({len(rules)} rule(s))")
    if args.schedule_tick > 0:
        print(f"  schedules  tick every {args.schedule_tick:g}s")
    else:
        print("  schedules  virtual clock (POST /api/schedules/tick)")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.close()
    return 0


def _watch_rules(args: argparse.Namespace):
    """Assemble the rule set from --rules and/or convenience flags."""
    from repro.obs.sentinel import BurnRateRule, RegressionRule

    rules = list(_load_rules_file(args.rules)) if args.rules else []
    if args.slo is not None:
        rules.append(
            BurnRateRule(
                "slo-burn",
                slo_s=args.slo,
                objective=args.objective,
                factor=args.factor,
                long_window_s=args.long_window,
                short_window_s=args.short_window,
                min_count=args.min_count,
            )
        )
    if args.baseline is not None:
        from repro.obs.ledger.regress import DEFAULT_PERSISTENCE

        rules.append(
            RegressionRule(
                "baseline-regression",
                baseline=args.baseline,
                persistence=(
                    args.persistence
                    if args.persistence is not None
                    else DEFAULT_PERSISTENCE
                ),
            )
        )
    return rules


def _cmd_watch(args: argparse.Namespace) -> int:
    from repro.obs.sentinel import AlertLedger, sinks_from_specs
    from repro.obs.sentinel.watch import follow_alerts, watch_tick

    if args.follow:
        url = args.url or "http://127.0.0.1:8765"
        follow_alerts(
            url,
            max_events=args.max_events,
            timeout_s=args.timeout_s,
        )
        return 0
    rules = _watch_rules(args)
    if not rules:
        raise SystemExit(
            "watch --tick needs rules: --rules FILE, --slo S, "
            "or --baseline LABEL"
        )
    if args.trace is not None and not os.path.exists(args.trace):
        raise SystemExit(f"no such trace file: {args.trace}")
    ledger = None
    if args.baseline is not None or args.ledger_dir is not None or (
        args.rules and any(r.kind == "regression" for r in rules)
    ):
        from repro.obs.ledger import Ledger

        ledger = Ledger(args.ledger_dir)
    try:
        sinks = sinks_from_specs(args.sink or ())
    except ValueError as error:
        raise SystemExit(str(error)) from None
    alerts = (
        AlertLedger(args.alerts_dir) if args.alerts_dir is not None else None
    )
    return watch_tick(
        rules,
        trace=args.trace,
        ledger=ledger,
        alerts=alerts,
        sinks=sinks,
        snapshot_every=args.snapshot_every,
        json_out=args.json,
    )


def _dispatch(args: argparse.Namespace) -> int:
    if args.command == "list":
        return _cmd_list()
    if args.command == "policies":
        return _cmd_policies(args.params)
    if args.command == "run":
        return _cmd_run(
            args.experiment,
            _resolve_scale(args.scale),
            args.seed,
            _resolve_backend(args),
            json_path=args.json,
            csv_dir=args.csv,
            trace_args=args,
        )
    if args.command == "mmc":
        return _cmd_mmc(args.load, args.servers, args.service_rate)
    if args.command == "simulate":
        return _cmd_simulate(args)
    if args.command == "top":
        if args.follow is not None:
            return _cmd_top_follow(args)
        args.top = True
        return _cmd_simulate(args)
    if args.command == "explain":
        return _cmd_explain(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "report":
        return _cmd_report(args)
    if args.command == "faults":
        return _cmd_faults(args)
    if args.command == "runs":
        return _cmd_runs(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "watch":
        return _cmd_watch(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
