"""Streaming quantile estimation (the P-squared algorithm).

Modern service-level objectives are stated on percentiles ("p95 latency
under 10 s"), not means.  Tracking a percentile over an unbounded
stream without storing it needs a streaming estimator; this module
implements Jain & Chlamtac's P² algorithm (CACM 1985) from scratch:
five markers whose heights approximate the quantile via piecewise-
parabolic interpolation, O(1) memory and time per observation.

Used by :class:`repro.core.quantile.QuantilePolicy` and usable on its
own for telemetry summaries.
"""

from __future__ import annotations

import math
from typing import List


class P2Quantile:
    """P² estimator of a single quantile over a stream.

    Parameters
    ----------
    quantile:
        The target probability ``p`` in (0, 1), e.g. 0.95.

    Examples
    --------
    >>> import numpy as np
    >>> rng = np.random.default_rng(0)
    >>> estimator = P2Quantile(0.5)
    >>> for value in rng.normal(10.0, 2.0, size=20_000):
    ...     estimator.update(float(value))
    >>> abs(estimator.value() - 10.0) < 0.15
    True
    """

    def __init__(self, quantile: float) -> None:
        if not 0.0 < quantile < 1.0:
            raise ValueError("quantile must lie in (0, 1)")
        self.quantile = float(quantile)
        self._initial: List[float] = []
        # Marker state after initialisation.
        self._heights: List[float] = []
        self._positions: List[float] = []
        self._desired: List[float] = []
        self._increments: List[float] = []
        self.count = 0

    # ------------------------------------------------------------------
    def update(self, value: float) -> None:
        """Fold one observation into the estimate."""
        value = float(value)
        if not math.isfinite(value):
            raise ValueError(
                f"observation must be finite, got {value!r}"
            )
        self.count += 1
        if self._heights:
            self._update_markers(value)
            return
        self._initial.append(value)
        if len(self._initial) == 5:
            self._initialise()

    def _initialise(self) -> None:
        p = self.quantile
        self._heights = sorted(self._initial)
        self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
        self._desired = [
            1.0,
            1.0 + 2.0 * p,
            1.0 + 4.0 * p,
            3.0 + 2.0 * p,
            5.0,
        ]
        self._increments = [0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0]
        self._initial = []

    def _update_markers(self, value: float) -> None:
        heights = self._heights
        positions = self._positions
        # Locate the cell and update the extreme markers.
        if value < heights[0]:
            heights[0] = value
            cell = 0
        elif value >= heights[4]:
            heights[4] = value
            cell = 3
        else:
            cell = 0
            while value >= heights[cell + 1]:
                cell += 1
        for i in range(cell + 1, 5):
            positions[i] += 1.0
        for i in range(5):
            self._desired[i] += self._increments[i]
        # Adjust the three interior markers.
        for i in (1, 2, 3):
            drift = self._desired[i] - positions[i]
            step_up = positions[i + 1] - positions[i]
            step_down = positions[i - 1] - positions[i]
            if (drift >= 1.0 and step_up > 1.0) or (
                drift <= -1.0 and step_down < -1.0
            ):
                direction = 1.0 if drift >= 1.0 else -1.0
                candidate = self._parabolic(i, direction)
                if heights[i - 1] < candidate < heights[i + 1]:
                    heights[i] = candidate
                else:
                    heights[i] = self._linear(i, direction)
                positions[i] += direction

    def _parabolic(self, i: int, direction: float) -> float:
        h, n = self._heights, self._positions
        return h[i] + direction / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + direction)
            * (h[i + 1] - h[i])
            / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - direction)
            * (h[i] - h[i - 1])
            / (n[i] - n[i - 1])
        )

    def _linear(self, i: int, direction: float) -> float:
        h, n = self._heights, self._positions
        j = i + int(direction)
        return h[i] + direction * (h[j] - h[i]) / (n[j] - n[i])

    # ------------------------------------------------------------------
    def value(self) -> float:
        """The current quantile estimate.

        Before five observations have arrived, falls back to the exact
        order statistic of what has been seen (and raises if empty).
        """
        if self._heights:
            return self._heights[2]
        if not self._initial:
            raise ValueError("no observations yet")
        ordered = sorted(self._initial)
        rank = min(
            len(ordered) - 1,
            max(0, math.ceil(self.quantile * len(ordered)) - 1),
        )
        return ordered[rank]

    def reset(self) -> None:
        """Forget everything."""
        self._initial = []
        self._heights = []
        self._positions = []
        self._desired = []
        self._increments = []
        self.count = 0
