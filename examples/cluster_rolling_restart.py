"""Rejuvenation in a cluster: balancing, coordination, rolling restarts.

The companion paper ([2]) extends the single-server algorithms to
clusters of hosts.  This example runs a 4-node cluster of the Section-3
system at a high per-node load and shows three operational questions:

1. Does the dispatching policy matter? (round-robin vs join-shortest-queue)
2. What does per-node SRAA monitoring buy over no rejuvenation?
3. When rejuvenation has real downtime, what does a rolling-restart
   coordinator cost/buy versus uncoordinated restarts?

Run:  python examples/cluster_rolling_restart.py
"""

import dataclasses

from repro.cluster import (
    ClusterSystem,
    JoinShortestQueue,
    RollingCoordinator,
    RoundRobin,
)
from repro.core import SRAA, PAPER_SLO
from repro.ecommerce import PAPER_CONFIG, PoissonArrivals

N_NODES = 4
RATE_PER_NODE = 1.8  # offered load 9 CPUs per node
TRANSACTIONS = 20_000


def run(label, config=PAPER_CONFIG, policy=True, balancer=None,
        coordinator=None, seed=7):
    cluster = ClusterSystem(
        config,
        N_NODES,
        PoissonArrivals(N_NODES * RATE_PER_NODE),
        policy_factory=(
            (lambda: SRAA(PAPER_SLO, 2, 5, 3)) if policy else (lambda: None)
        ),
        balancer=balancer,
        coordinator=coordinator,
        seed=seed,
    )
    result = cluster.run(TRANSACTIONS)
    denied = cluster.coordinator.denied
    print(
        f"{label:<38} {result.avg_response_time:>8.2f} "
        f"{result.loss_fraction:>8.4f} {result.rejuvenations:>6d} "
        f"{result.refused:>8d} {denied:>7d}"
    )
    return result


def main() -> None:
    print(
        f"{N_NODES}-node cluster, {RATE_PER_NODE}/s per node "
        f"({TRANSACTIONS} transactions)\n"
    )
    header = (
        f"{'scenario':<38} {'avg RT':>8} {'loss':>8} {'rejuv':>6} "
        f"{'refused':>8} {'denied':>7}"
    )
    print(header)
    print("-" * len(header))

    run("no rejuvenation, round-robin", policy=False)
    run("SRAA per node, round-robin", balancer=RoundRobin())
    run("SRAA per node, join-shortest-queue", balancer=JoinShortestQueue())

    downtime = dataclasses.replace(
        PAPER_CONFIG, rejuvenation_downtime_s=30.0
    )
    run("SRAA + 30 s downtime, uncoordinated", config=downtime)
    run(
        "SRAA + 30 s downtime, rolling (gap 30 s)",
        config=downtime,
        coordinator=RollingCoordinator(min_gap_s=30.0, max_nodes_down=1),
    )
    run(
        "SRAA + 30 s downtime, rolling (gap 120 s)",
        config=downtime,
        coordinator=RollingCoordinator(min_gap_s=120.0, max_nodes_down=1),
    )

    print(
        "\nReading: per-node monitoring rescues the cluster from the "
        "GC-driven soft failure;\njoin-shortest-queue absorbs the "
        "transient imbalance that rejuvenations create.\nWith real "
        "restart downtime, a modest rolling gap halves the loss of the "
        "uncoordinated\ncluster by never taking two nodes out at once -- "
        "but over-throttling (120 s gap)\nstarves the detectors and "
        "lets the aging win: coordination is a tuning knob, not a\n"
        "free lunch."
    )


if __name__ == "__main__":
    main()
