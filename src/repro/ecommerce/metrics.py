"""Result containers for simulation runs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.stats.intervals import mean_confidence_interval


@dataclass(frozen=True)
class RunResult:
    """Outcome of one simulation replication.

    ``avg_response_time`` and ``rt_std`` cover *completed* transactions
    after the warm-up cut; ``loss_fraction`` is lost transactions over all
    measured transactions -- the paper's rejuvenation cost metric.

    ``trace`` carries the run's buffered
    :class:`~repro.obs.events.TraceEvent` records when tracing was on and
    ``telemetry`` the fixed-interval
    :class:`~repro.ecommerce.telemetry.TelemetrySample` probes when a
    telemetry probe was installed; both stay ``None`` otherwise.  They
    ride inside the (picklable) result so traces survive the trip back
    from process-pool workers.

    ``rejuvenation_times`` records the simulation clock of every policy
    trigger -- the signal the fault-campaign scorer compares against a
    scenario's ground-truth degradation intervals.

    The live-telemetry fields are populated by the matching job
    options: ``live`` carries the run's final constant-memory
    :class:`~repro.obs.live.LiveAggregator`, ``flight`` the
    severity-triggered :class:`~repro.obs.live.FlightDump` snapshots,
    and ``profile`` the per-subsystem
    :class:`~repro.obs.live.Profile` attribution -- all picklable, so
    they too survive the trip back from pool workers.
    """

    arrivals: int
    completed: int
    lost: int
    avg_response_time: float
    rt_std: float
    max_response_time: float
    loss_fraction: float
    gc_count: int
    rejuvenations: int
    sim_duration_s: float
    response_times: Optional[Tuple[float, ...]] = None
    trace: Optional[Tuple[object, ...]] = None
    telemetry: Optional[Tuple[object, ...]] = None
    rejuvenation_times: Optional[Tuple[float, ...]] = None
    live: Optional[object] = None
    flight: Optional[Tuple[object, ...]] = None
    profile: Optional[object] = None
    #: Arrivals refused because every node was in downtime -- always 0
    #: on the single-node system (refusals are counted as losses with
    #: reason ``downtime``); cluster/fleet substrates report them here
    #: as well as in ``lost``.
    refused: int = 0
    #: Per-node stats (``repro.cluster.metrics.NodeStats``) on cluster
    #: and fleet substrates; ``None`` on the single-node system.
    nodes: Optional[Tuple[object, ...]] = None

    @property
    def throughput(self) -> float:
        """Completed transactions per second of simulated time."""
        if self.sim_duration_s <= 0.0:
            return 0.0
        return self.completed / self.sim_duration_s


@dataclass(frozen=True)
class ReplicatedResult:
    """Aggregate over independent replications of the same scenario."""

    runs: Tuple[RunResult, ...]

    def __post_init__(self) -> None:
        if not self.runs:
            raise ValueError("need at least one replication")

    @property
    def n_replications(self) -> int:
        return len(self.runs)

    @property
    def avg_response_time(self) -> float:
        """Mean over replications of the per-replication average RT."""
        return sum(r.avg_response_time for r in self.runs) / len(self.runs)

    @property
    def loss_fraction(self) -> float:
        """Mean over replications of the per-replication loss fraction."""
        return sum(r.loss_fraction for r in self.runs) / len(self.runs)

    @property
    def rejuvenations(self) -> float:
        """Mean rejuvenation count per replication."""
        return sum(r.rejuvenations for r in self.runs) / len(self.runs)

    @property
    def gc_count(self) -> float:
        """Mean GC count per replication."""
        return sum(r.gc_count for r in self.runs) / len(self.runs)

    def response_time_interval(
        self, confidence: float = 0.95
    ) -> Tuple[float, float, float]:
        """``(mean, low, high)`` t-interval over replication average RTs."""
        return mean_confidence_interval(
            [r.avg_response_time for r in self.runs], confidence
        )

    def loss_interval(
        self, confidence: float = 0.95
    ) -> Tuple[float, float, float]:
        """``(mean, low, high)`` t-interval over replication loss fractions."""
        return mean_confidence_interval(
            [r.loss_fraction for r in self.runs], confidence
        )

    def merged_live(self):
        """Per-run live aggregators folded in replication order.

        ``None`` when no run carried live telemetry.  Submission-order
        folding keeps the merged sketch bit-identical between serial
        and process-pool backends.
        """
        from repro.obs.live import merge_live

        return merge_live(run.live for run in self.runs)

    def merged_profile(self):
        """Per-run DES profiles folded in replication order (or None)."""
        from repro.obs.live import merge_profiles

        return merge_profiles(run.profile for run in self.runs)
