"""Campaign jobs behind POST /api/campaigns: validation, determinism.

The serve path must record into the ledger exactly what the CLI
records for the same campaign: same manifest hash, same outcome
block.  Same seed through the HTTP surface twice -> identical hashes.
"""

import pytest

from repro.serve.jobs import DONE, FAILED, JobManager

#: A campaign small enough for test wall-clocks.
CAMPAIGN = {
    "scenarios": "aging_onset",
    "policies": "SRAA",
    "replications": 1,
    "seed": 3,
    "horizon": 300,
}


class TestValidation:
    def test_rejects_unknown_parameter(self):
        with pytest.raises(ValueError, match="unknown campaign"):
            JobManager()._validate_campaign({"scenario": "typo"})

    def test_rejects_unknown_scenario(self):
        with pytest.raises(ValueError, match="no_such_zoo_entry"):
            JobManager()._validate_campaign(
                {"scenarios": "no_such_zoo_entry"}
            )

    def test_rejects_unknown_policy(self):
        with pytest.raises(ValueError):
            JobManager().submit_campaign({"policies": "NOPOLICY"})

    def test_rejects_bad_counts(self):
        with pytest.raises(ValueError, match="replications"):
            JobManager()._validate_campaign({"replications": 0})
        with pytest.raises(ValueError, match="horizon"):
            JobManager()._validate_campaign({"horizon": -1})

    def test_scenarios_all_expands_to_the_zoo(self):
        from repro.faults.zoo import scenario_names

        normalised = JobManager()._validate_campaign({})
        assert normalised["scenarios"] == list(scenario_names())
        assert normalised["policies"] == "SRAA,SARAA,CLTA"

    def test_accepts_lists_as_well_as_csv(self):
        normalised = JobManager()._validate_campaign(
            {"scenarios": ["node_crash"], "policies": ["SRAA", "CLTA"]}
        )
        assert normalised["scenarios"] == ["node_crash"]
        assert normalised["policies"] == "SRAA,CLTA"

    def test_failed_validation_creates_no_job(self):
        manager = JobManager()
        with pytest.raises(ValueError):
            manager.submit_campaign({"scenarios": "bogus"})
        assert manager.jobs() == []


class TestExecution:
    def test_campaign_records_into_the_ledger(self):
        from repro.obs.ledger import Ledger

        manager = JobManager()
        job = manager.submit_campaign(dict(CAMPAIGN))
        assert job["status"] in ("queued", "running")
        done = manager.wait(job["id"], timeout_s=120.0)
        assert done["status"] == DONE, done["error"]
        entry = Ledger().get(done["entry_id"])
        assert entry["kind"] == "faults"
        assert (
            entry["manifest"]["manifest_hash"] == done["manifest_hash"]
        )
        scores = done["summary"]["scores"]
        assert scores[0]["scenario"] == "aging_onset"
        assert scores[0]["policy"] == "SRAA"
        assert "aging_onset" in done["summary"]["table"]

    def test_same_seed_same_manifest_and_outcomes(self):
        from repro.obs.ledger import Ledger

        manager = JobManager()
        first = manager.wait(
            manager.submit_campaign(dict(CAMPAIGN))["id"],
            timeout_s=120.0,
        )
        second = manager.wait(
            manager.submit_campaign(dict(CAMPAIGN))["id"],
            timeout_s=120.0,
        )
        assert first["status"] == second["status"] == DONE
        assert first["manifest_hash"] == second["manifest_hash"]
        assert first["summary"] == second["summary"]
        ledger = Ledger()
        left = ledger.get(first["entry_id"])
        right = ledger.get(second["entry_id"])
        assert left["outcomes"] == right["outcomes"]

    def test_serve_campaign_matches_cli_campaign_hash(self, capsys):
        """The HTTP path and the CLI path are the same campaign."""
        from repro.cli import main
        from repro.obs.ledger import Ledger

        assert main([
            "faults", "run", "aging_onset",
            "--policies", "SRAA",
            "--replications", "1",
            "--seed", "3",
            "--horizon", "300",
            "--backend", "serial",
        ]) == 0
        cli_entry = Ledger().get("latest")
        manager = JobManager()
        done = manager.wait(
            manager.submit_campaign(dict(CAMPAIGN))["id"],
            timeout_s=120.0,
        )
        assert done["status"] == DONE, done["error"]
        served_entry = Ledger().get(done["entry_id"])
        assert (
            served_entry["manifest"]["manifest_hash"]
            == cli_entry["manifest"]["manifest_hash"]
        )
        # The serve job rides a live tap, so its outcomes carry an
        # extra "live" block; the scored results must be identical.
        assert (
            served_entry["outcomes"]["scores"]
            == cli_entry["outcomes"]["scores"]
        )

    def test_failure_is_reported_not_raised(self, monkeypatch):
        manager = JobManager()
        job = manager.submit_campaign(dict(CAMPAIGN))
        # Corrupt the validated params after validation: the runner
        # thread must catch and report, not kill the server.
        with manager._lock:
            manager._jobs[0].params["scenarios"] = ["exploded"]
        done = manager.wait(job["id"], timeout_s=120.0)
        assert done["status"] in (DONE, FAILED)
