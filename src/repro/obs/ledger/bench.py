"""Benchmark trajectory points: ``BENCH_<name>.json`` files.

Each benchmark in ``benchmarks/`` appends one *point* per run to its
trajectory file, so performance history accumulates across sessions the
same way the run ledger accumulates simulation history.  A point is
``{value, units, seed, git_sha, timestamp}``; the file keeps the whole
trajectory, newest last.

Environment overrides:

``REPRO_BENCH_DIR``
    Where trajectory files live (default ``.repro/bench``).
``REPRO_BENCH_TIMESTAMP``
    Inject a fixed timestamp (hermetic tests; CI stamps the build time).
"""

from __future__ import annotations

import json
import os
import re
from datetime import datetime, timezone
from typing import Any, Dict, List, Optional

from repro.obs.ledger.provenance import git_revision

#: Schema version of a trajectory file.
BENCH_SCHEMA_VERSION = 1

#: Environment variable overriding the trajectory directory.
BENCH_DIR_ENV = "REPRO_BENCH_DIR"
#: Environment variable injecting a fixed point timestamp.
BENCH_TIMESTAMP_ENV = "REPRO_BENCH_TIMESTAMP"
#: Default directory, relative to the current working directory.
DEFAULT_BENCH_DIR = os.path.join(".repro", "bench")

_POINT_KEYS = {"value", "units", "seed", "git_sha", "timestamp"}


def bench_dir(directory: Optional[str] = None) -> str:
    if directory is not None:
        return directory
    return os.environ.get(BENCH_DIR_ENV, "").strip() or DEFAULT_BENCH_DIR


def _slug(name: str) -> str:
    slug = re.sub(r"[^A-Za-z0-9_.-]+", "_", name).strip("_")
    if not slug:
        raise ValueError(f"benchmark name {name!r} has no usable characters")
    return slug


def trajectory_path(name: str, directory: Optional[str] = None) -> str:
    return os.path.join(bench_dir(directory), f"BENCH_{_slug(name)}.json")


def _timestamp() -> str:
    injected = os.environ.get(BENCH_TIMESTAMP_ENV, "").strip()
    if injected:
        return injected
    return datetime.now(timezone.utc).isoformat(timespec="seconds")


def record_bench_point(
    name: str,
    value: float,
    units: str = "s",
    seed: Optional[int] = None,
    directory: Optional[str] = None,
) -> Dict[str, Any]:
    """Append one point to ``BENCH_<name>.json``; returns the point."""
    path = trajectory_path(name, directory)
    if os.path.exists(path):
        trajectory = load_trajectory(name, directory)
    else:
        trajectory = {
            "schema_version": BENCH_SCHEMA_VERSION,
            "name": name,
            "units": units,
            "points": [],
        }
    sha, _ = git_revision()
    point = {
        "value": float(value),
        "units": units,
        "seed": seed,
        "git_sha": sha,
        "timestamp": _timestamp(),
    }
    trajectory["points"].append(point)
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(trajectory, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return point


def load_trajectory(
    name: str, directory: Optional[str] = None
) -> Dict[str, Any]:
    path = trajectory_path(name, directory)
    with open(path, encoding="utf-8") as handle:
        return json.load(handle)


def validate_trajectory(trajectory: Dict[str, Any]) -> List[str]:
    """Schema problems of a trajectory dict (empty list == valid)."""
    problems: List[str] = []
    if trajectory.get("schema_version") != BENCH_SCHEMA_VERSION:
        problems.append(
            f"schema_version is {trajectory.get('schema_version')!r}, "
            f"expected {BENCH_SCHEMA_VERSION}"
        )
    if not trajectory.get("name"):
        problems.append("missing name")
    points = trajectory.get("points")
    if not isinstance(points, list) or not points:
        problems.append("points must be a non-empty list")
        return problems
    for index, point in enumerate(points):
        missing = _POINT_KEYS - set(point)
        if missing:
            problems.append(
                f"points[{index}] missing {sorted(missing)}"
            )
            continue
        if not isinstance(point["value"], (int, float)) or isinstance(
            point["value"], bool
        ):
            problems.append(f"points[{index}].value is not a number")
        elif point["value"] < 0:
            problems.append(f"points[{index}].value is negative")
        if not point["timestamp"]:
            problems.append(f"points[{index}].timestamp is empty")
    return problems


def list_trajectories(directory: Optional[str] = None) -> List[str]:
    """Benchmark names with a trajectory file, sorted."""
    root = bench_dir(directory)
    if not os.path.isdir(root):
        return []
    names = []
    for filename in os.listdir(root):
        if filename.startswith("BENCH_") and filename.endswith(".json"):
            names.append(filename[len("BENCH_") : -len(".json")])
    return sorted(names)
