"""``repro report``: a self-contained HTML dashboard from a trace.

Renders one static HTML file -- no external scripts, stylesheets,
fonts or network fetches -- from a JSONL (or ``.jsonl.gz``) trace
written by ``--trace``.  Per replication it shows the paper's story at
a glance: response-time percentiles over simulated time (the
customer-affecting metric), the detector's bucket-level staircase,
shaded fault-injection intervals (the scripted ground truth), and
rejuvenation markers -- plus the ``repro explain`` decision table.

Charts are inline SVG.  Color follows the role, not the rank: p50 is
always blue, p95 always orange, bucket level violet, faults a shaded
band, rejuvenations red markers; the palette is embedded as CSS custom
properties with selected light and dark values, and native ``<title>``
tooltips plus a per-run data table keep every number readable without
color.
"""

from __future__ import annotations

import html
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.obs.events import (
    FAULT_CLEARED,
    FAULT_INJECTED,
    POLICY_LEVEL,
    POLICY_TRIGGER,
    SYSTEM_REJUVENATION,
)

#: Detail charts rendered per run before folding into the note below
#: the summary table (campaign traces can hold hundreds of runs).
DEFAULT_MAX_RUNS = 12

#: Time bins per percentile chart.
_BINS = 60

# Chart geometry (viewBox units).
_W, _H = 720, 220
_ML, _MR, _MT, _MB = 56, 16, 16, 34

_CSS = """
:root {
  color-scheme: light;
  --surface: #fcfcfb; --panel: #f0efec;
  --ink: #0b0b0b; --ink-2: #52514e; --grid: #d9d8d4;
  --p50: #2a78d6; --p95: #eb6834; --level: #4a3aa7;
  --fault: #eda100; --rejuv: #e34948;
}
@media (prefers-color-scheme: dark) {
  :root {
    color-scheme: dark;
    --surface: #1a1a19; --panel: #252524;
    --ink: #ffffff; --ink-2: #c3c2b7; --grid: #3a3a38;
    --p50: #3987e5; --p95: #d95926; --level: #9085e9;
    --fault: #c98500; --rejuv: #e66767;
  }
}
body { background: var(--surface); color: var(--ink);
  font: 14px/1.5 system-ui, sans-serif; margin: 2rem auto;
  max-width: 820px; padding: 0 1rem; }
h1 { font-size: 1.4rem; } h2 { font-size: 1.1rem; margin-top: 2rem; }
h3 { font-size: 0.95rem; color: var(--ink-2); }
table { border-collapse: collapse; width: 100%; font-size: 13px;
  font-variant-numeric: tabular-nums; }
th, td { text-align: right; padding: 3px 8px;
  border-bottom: 1px solid var(--grid); }
th:first-child, td:first-child { text-align: left; }
th { color: var(--ink-2); font-weight: 600; }
svg { display: block; max-width: 100%; height: auto; }
.legend { display: flex; gap: 1.2rem; font-size: 12px;
  color: var(--ink-2); margin: 0.3rem 0 0.2rem; flex-wrap: wrap; }
.legend span::before { content: ""; display: inline-block;
  width: 10px; height: 10px; border-radius: 2px;
  margin-right: 5px; background: var(--swatch); }
.note { color: var(--ink-2); font-size: 13px; }
.chart { background: var(--panel); border-radius: 6px;
  padding: 8px; margin: 0.5rem 0 1rem; }
"""


# ---------------------------------------------------------------------------
# Data extraction (routed through the shared trace-query layer; the
# record-list path computes the identical statistics it always did)
# ---------------------------------------------------------------------------
def _fault_intervals(
    records: Sequence[Dict[str, Any]], horizon: float
) -> List[Tuple[float, float, str]]:
    """``(start, end, kind)`` bands from fault.injected/cleared pairs."""
    intervals: List[Tuple[float, float, str]] = []
    open_faults: Dict[str, float] = {}
    for record in records:
        kind = record.get("data", {}).get("kind", "?")
        if record["type"] == FAULT_INJECTED:
            open_faults.setdefault(kind, record["ts"])
        elif record["type"] == FAULT_CLEARED and kind in open_faults:
            intervals.append((open_faults.pop(kind), record["ts"], kind))
    for kind, start in sorted(open_faults.items()):
        intervals.append((start, horizon, kind))
    return intervals


# ---------------------------------------------------------------------------
# SVG primitives
# ---------------------------------------------------------------------------
def _ticks(limit: float, n: int = 5) -> List[float]:
    if limit <= 0.0:
        return [0.0]
    step = limit / n
    return [step * i for i in range(n + 1)]


class _Scale:
    """Linear data -> pixel mapping for one chart."""

    def __init__(self, x_max: float, y_max: float) -> None:
        self.x_max = x_max or 1.0
        self.y_max = y_max or 1.0

    def x(self, value: float) -> float:
        return _ML + (value / self.x_max) * (_W - _ML - _MR)

    def y(self, value: float) -> float:
        return _H - _MB - (value / self.y_max) * (_H - _MT - _MB)


def _axes(scale: _Scale, y_label: str) -> List[str]:
    parts = []
    for tick in _ticks(scale.x_max):
        x = scale.x(tick)
        parts.append(
            f'<line x1="{x:.1f}" y1="{_MT}" x2="{x:.1f}" '
            f'y2="{_H - _MB}" stroke="var(--grid)" stroke-width="1"/>'
        )
        parts.append(
            f'<text x="{x:.1f}" y="{_H - _MB + 16}" text-anchor="middle" '
            f'fill="var(--ink-2)" font-size="11">{tick:g}</text>'
        )
    for tick in _ticks(scale.y_max, 4):
        y = scale.y(tick)
        parts.append(
            f'<line x1="{_ML}" y1="{y:.1f}" x2="{_W - _MR}" '
            f'y2="{y:.1f}" stroke="var(--grid)" stroke-width="1"/>'
        )
        parts.append(
            f'<text x="{_ML - 6}" y="{y + 4:.1f}" text-anchor="end" '
            f'fill="var(--ink-2)" font-size="11">{tick:g}</text>'
        )
    parts.append(
        f'<text x="{_ML}" y="{_MT - 4}" fill="var(--ink-2)" '
        f'font-size="11">{html.escape(y_label)}</text>'
    )
    parts.append(
        f'<text x="{_W - _MR}" y="{_H - 6}" text-anchor="end" '
        f'fill="var(--ink-2)" font-size="11">simulated time (s)</text>'
    )
    return parts


def _polyline(
    points: Sequence[Tuple[float, float]],
    scale: _Scale,
    color_var: str,
    label: str,
) -> str:
    if not points:
        return ""
    path = " ".join(
        f"{scale.x(x):.1f},{scale.y(y):.1f}" for x, y in points
    )
    end_x, end_y = points[-1]
    return (
        f'<polyline points="{path}" fill="none" stroke="var({color_var})" '
        f'stroke-width="2" stroke-linejoin="round"/>'
        f'<text x="{min(scale.x(end_x) + 4, _W - 2):.1f}" '
        f'y="{scale.y(end_y) + 4:.1f}" fill="var({color_var})" '
        f'font-size="11">{html.escape(label)}</text>'
    )


def _svg(body: List[str]) -> str:
    # Inline SVG in an HTML document needs no xmlns -- and omitting it
    # keeps the report free of URLs of any kind (self-containment is
    # asserted as "no http(s):// anywhere" in the tests).
    return (
        f'<svg viewBox="0 0 {_W} {_H}" role="img">'
        + "".join(body)
        + "</svg>"
    )


# ---------------------------------------------------------------------------
# Per-run sections
# ---------------------------------------------------------------------------
def _rt_chart(
    series: List[Tuple[float, float, float]],
    faults: List[Tuple[float, float, str]],
    rejuvenations: List[float],
    horizon: float,
) -> str:
    y_max = max(
        max((p95 for _, _, p95 in series), default=1.0), 1e-9
    )
    scale = _Scale(horizon, y_max * 1.1)
    parts = []
    for start, end, kind in faults:
        x0, x1 = scale.x(start), scale.x(max(end, start))
        parts.append(
            f'<rect x="{x0:.1f}" y="{_MT}" width="{max(x1 - x0, 1):.1f}" '
            f'height="{_H - _MT - _MB}" fill="var(--fault)" '
            f'opacity="0.18"><title>fault: {html.escape(str(kind))} '
            f"[{start:.0f}s, {end:.0f}s]</title></rect>"
        )
    parts.extend(_axes(scale, "response time (s)"))
    for ts in rejuvenations:
        x = scale.x(ts)
        parts.append(
            f'<line x1="{x:.1f}" y1="{_MT}" x2="{x:.1f}" y2="{_H - _MB}" '
            f'stroke="var(--rejuv)" stroke-width="2" '
            f'stroke-dasharray="3,3"><title>rejuvenation @ {ts:.1f}s'
            "</title></line>"
        )
    parts.append(
        _polyline([(t, p50) for t, p50, _ in series], scale, "--p50", "p50")
    )
    parts.append(
        _polyline([(t, p95) for t, _, p95 in series], scale, "--p95", "p95")
    )
    for t, p50, p95 in series:
        parts.append(
            f'<circle cx="{scale.x(t):.1f}" cy="{scale.y(p95):.1f}" r="4" '
            f'fill="var(--p95)" opacity="0"><title>t={t:.0f}s  '
            f"p50={p50:.2f}s  p95={p95:.2f}s</title></circle>"
        )
    return _svg(parts)


def _level_chart(
    levels: List[Tuple[float, float]], horizon: float
) -> str:
    y_max = max(max((lv for _, lv in levels), default=1.0), 1.0)
    scale = _Scale(horizon, y_max * 1.15)
    steps: List[Tuple[float, float]] = []
    previous = 0.0
    for ts, level in levels:
        steps.append((ts, previous))
        steps.append((ts, level))
        previous = level
    steps.append((horizon, previous))
    parts = _axes(scale, "bucket level")
    parts.append(_polyline(steps, scale, "--level", "level"))
    return _svg(parts)


def _legend(entries: List[Tuple[str, str]]) -> str:
    spans = "".join(
        f'<span style="--swatch: var({var})">{html.escape(label)}</span>'
        for label, var in entries
    )
    return f'<div class="legend">{spans}</div>'


def _summary_table(views: List[Any]) -> str:
    head = (
        "<tr><th>run</th><th>tag</th><th>seed</th><th>arrivals</th>"
        "<th>completed</th><th>lost</th><th>avg RT (s)</th><th>GCs</th>"
        "<th>rejuvenations</th></tr>"
    )
    rows = []
    for view in views:
        run_id = view.run_id
        meta = view.meta
        summary = (meta or {}).get("data", {})
        tag = ", ".join(str(p) for p in (meta or {}).get("tag") or ())
        rows.append(
            "<tr>"
            f"<td>{html.escape(str(run_id))}</td>"
            f"<td>{html.escape(tag)}</td>"
            f"<td>{html.escape(str((meta or {}).get('seed', '')))}</td>"
            f"<td>{summary.get('arrivals', '')}</td>"
            f"<td>{summary.get('completed', '')}</td>"
            f"<td>{summary.get('lost', '')}</td>"
            f"<td>{summary.get('avg_response_time', 0.0):.3f}</td>"
            f"<td>{summary.get('gc_count', '')}</td>"
            f"<td>{summary.get('rejuvenations', '')}</td>"
            "</tr>"
        )
    return f"<table>{head}{''.join(rows)}</table>"


def _decision_rows(records: List[Dict[str, Any]]) -> List[str]:
    from repro.obs.explain import _format_cause

    rows = []
    for record in records:
        if record["type"] != POLICY_TRIGGER:
            continue
        data = record.get("data", {})
        classic = "batch_mean" in data and "threshold" in data
        rows.append(
            "<tr>"
            f"<td>{record['ts']:.1f}</td>"
            f"<td>{html.escape(str(record.get('source', '')))}</td>"
            f"<td>{data.get('level', '&mdash;')}</td>"
            + (
                f"<td>{data.get('batch_mean', 0.0):.3f}</td>"
                f"<td>{data.get('threshold', 0.0):.3f}</td>"
                if classic
                else "<td>&mdash;</td><td>&mdash;</td>"
            )
            + f"<td>{data.get('sample_size', '&mdash;')}</td>"
            + (
                "<td></td>"
                if classic
                else f"<td>{html.escape(_format_cause(data))}</td>"
            )
            + "</tr>"
        )
    return rows


def _run_section(view: Any) -> str:
    run_id = view.run_id
    meta = view.meta
    summary = (meta or {}).get("data", {})
    horizon = float(summary.get("sim_duration_s", 0.0)) or view.max_ts()
    tag = ", ".join(str(p) for p in (meta or {}).get("tag") or ())
    title = f"run {run_id}" + (f" ({tag})" if tag else "")
    parts = [f"<h2>{html.escape(title)}</h2>"]

    series = view.binned_percentiles(horizon, _BINS)
    faults = _fault_intervals(
        view.records(types=(FAULT_INJECTED, FAULT_CLEARED)), horizon
    )
    rejuvenations = view.ts_of(SYSTEM_REJUVENATION)
    if series:
        legend = [("p50", "--p50"), ("p95", "--p95")]
        if rejuvenations:
            legend.append(("rejuvenation", "--rejuv"))
        if faults:
            legend.append(("fault interval", "--fault"))
        parts.append("<h3>response-time percentiles over time</h3>")
        parts.append(_legend(legend))
        parts.append(
            '<div class="chart">'
            + _rt_chart(series, faults, rejuvenations, horizon)
            + "</div>"
        )
    else:
        parts.append(
            '<p class="note">no request spans in this run&rsquo;s trace '
            "(re-run with <code>--trace-level spans</code> or "
            "<code>all</code> to chart percentiles).</p>"
        )

    levels = [
        (r["ts"], float(r["data"].get("level", 0)))
        for r in view.records(types=(POLICY_LEVEL,))
    ]
    if levels:
        parts.append("<h3>detector bucket level</h3>")
        parts.append(
            '<div class="chart">'
            + _level_chart(levels, horizon)
            + "</div>"
        )

    decisions = _decision_rows(view.records(types=(POLICY_TRIGGER,)))
    if decisions:
        parts.append("<h3>rejuvenation decisions</h3>")
        parts.append(
            "<table><tr><th>t (s)</th><th>policy</th><th>bucket</th>"
            "<th>batch mean (s)</th><th>threshold (s)</th><th>n</th>"
            "<th>cause</th></tr>"
            + "".join(decisions)
            + "</table>"
        )
    if series:
        parts.append(
            "<details><summary class='note'>data table "
            f"({len(series)} bins)</summary><table>"
            "<tr><th>t (s)</th><th>p50 (s)</th><th>p95 (s)</th></tr>"
            + "".join(
                f"<tr><td>{t:.0f}</td><td>{p50:.3f}</td>"
                f"<td>{p95:.3f}</td></tr>"
                for t, p50, p95 in series
            )
            + "</table></details>"
        )
    return "".join(parts)


# ---------------------------------------------------------------------------
# Campaign robustness
# ---------------------------------------------------------------------------
def _robustness_section(query: Any) -> str:
    """The campaign robustness table, or ``""`` for non-campaign traces.

    When the trace holds ``("faults", scenario, policy, rep)``-tagged
    replications, every cell is re-scored against ground truth derived
    from its own aging fault events
    (:func:`repro.faults.campaign.score_records`), so the detector
    head-to-head's headline numbers -- detection latency, misses, false
    alarms per healthy hour, recovery cost -- appear right in the
    dashboard.
    """
    from repro.faults.campaign import score_records

    try:
        scores = score_records(query)
    except ValueError:
        return ""  # malformed / partial runs: skip, keep the charts
    if not scores:
        return ""
    rows = []
    for s in scores:
        latency = (
            f"{s.mean_detection_latency_s:.1f}"
            if s.mean_detection_latency_s is not None
            else "&mdash;"
        )
        rows.append(
            "<tr>"
            f"<td>{html.escape(s.scenario)}</td>"
            f"<td>{html.escape(s.policy)}</td>"
            f"<td>{s.replications}</td>"
            f"<td>{s.detected}/{s.detected + s.missed}</td>"
            f"<td>{s.missed_rate:.2f}</td>"
            f"<td>{latency}</td>"
            f"<td>{s.false_alarms}</td>"
            f"<td>{s.false_alarms_per_healthy_hour:.2f}</td>"
            f"<td>{s.mean_loss_fraction:.5f}</td>"
            f"<td>{s.mean_rejuvenations:.1f}</td>"
            "</tr>"
        )
    return (
        "<h2>campaign robustness</h2>"
        '<p class="note">per (scenario, policy) cell, scored against '
        "ground truth recovered from each run&rsquo;s own aging fault "
        "events (workload shifts, surges, crashes and hangs count as "
        "healthy time).</p>"
        "<table><tr><th>scenario</th><th>policy</th><th>reps</th>"
        "<th>detected</th><th>miss rate</th><th>latency (s)</th>"
        "<th>FA</th><th>FA/healthy h</th><th>loss</th>"
        "<th>rejuv</th></tr>" + "".join(rows) + "</table>"
    )


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------
def render_report(
    records: Any,
    title: str = "repro trace report",
    max_runs: int = DEFAULT_MAX_RUNS,
) -> str:
    """The full self-contained HTML document for a loaded trace.

    ``records`` is a list of JSONL record dicts (the historical
    interface) or any trace query
    (:func:`repro.obs.columnar.query.as_query`); both representations
    of the same trace render byte-identical documents.
    """
    from repro.obs.columnar.query import as_query

    query = as_query(records)
    views = query.run_views()
    parts = [
        "<!DOCTYPE html>",
        '<html lang="en"><head><meta charset="utf-8">',
        f"<title>{html.escape(title)}</title>",
        f"<style>{_CSS}</style></head><body>",
        f"<h1>{html.escape(title)}</h1>",
        f'<p class="note">{query.n_records} trace records across '
        f"{len(views)} run(s).</p>",
        "<h2>replications</h2>",
        _summary_table(views),
        _robustness_section(query),
    ]
    for view in views[:max_runs]:
        parts.append(_run_section(view))
    if len(views) > max_runs:
        parts.append(
            f'<p class="note">detail charts shown for the first '
            f"{max_runs} of {len(views)} runs; raise --max-runs to "
            "render more.</p>"
        )
    parts.append("</body></html>")
    return "".join(parts)


def write_report(
    trace_path: str,
    out_path: str,
    title: Optional[str] = None,
    max_runs: int = DEFAULT_MAX_RUNS,
) -> int:
    """Render ``trace_path`` (JSONL or columnar, optionally gzipped)
    to ``out_path``.

    Returns the number of trace records rendered.
    """
    from repro.obs.columnar.query import load_query

    query = load_query(trace_path)
    document = render_report(
        query,
        title=title or f"repro trace report — {trace_path}",
        max_runs=max_runs,
    )
    with open(out_path, "w", encoding="utf-8") as handle:
        handle.write(document)
    return query.n_records
