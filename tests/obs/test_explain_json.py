"""``repro explain --json``: the machine-readable decision timeline.

The JSON timeline is the same evidence format the alert engine embeds
in incidents (``{"record": "event", ...}`` via
:func:`repro.obs.explain.event_record`), so anything consuming alert
evidence can consume explain output and vice versa.  Both trace
formats must produce the identical timeline.
"""

import json

import pytest

from repro.cli import main
from repro.obs.columnar.convert import convert_trace
from repro.obs.explain import (
    event_record,
    timeline_from_trace,
    timeline_records,
)

SIMULATE = [
    "simulate",
    "--policy", "sraa",
    "-p", "n=2", "-p", "K=5", "-p", "D=3",
    "--load", "9",
    "--transactions", "2000",
    "--seed", "3",
]


class TestEventRecord:
    def test_shape(self):
        record = event_record(
            12.5, "policy.trigger", {"level": 3}, run=0, source="policy"
        )
        assert record == {
            "record": "event",
            "ts": 12.5,
            "kind": "policy.trigger",
            "detail": {"level": 3},
            "run": 0,
            "source": "policy",
        }

    def test_optional_fields_are_omitted(self):
        record = event_record(0.0, "runs.check")
        assert record == {
            "record": "event",
            "ts": 0.0,
            "kind": "runs.check",
            "detail": {},
        }

    def test_matches_alert_evidence(self):
        # The burn-rate rule's evidence is literally this format.
        from repro.obs.sentinel import BurnRateRule

        rule = BurnRateRule("slo", slo_s=0.2, min_count=1)
        signal = rule.observe_snapshot(
            {"ts": 5.0, "completed": 10, "slo_bad": 10, "run": "r1"}
        )
        evidence = signal.evidence[0]
        assert evidence["record"] == "event"
        assert set(evidence) == {
            "record", "ts", "kind", "detail", "run",
        }


class TestTimeline:
    @pytest.fixture(scope="class")
    def traces(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("timeline")
        jsonl = str(root / "t.jsonl")
        assert main(SIMULATE + ["--trace", jsonl]) == 0
        rcol = str(root / "t.rcol")
        convert_trace(jsonl, rcol)
        return jsonl, rcol

    def test_formats_produce_identical_timelines(self, traces):
        jsonl, rcol = traces
        assert timeline_from_trace(jsonl) == timeline_from_trace(rcol)

    def test_timeline_structure(self, traces):
        jsonl, _ = traces
        records = timeline_from_trace(jsonl)
        header = records[0]
        assert header["record"] == "run"
        assert header["seed"] == 3
        assert "avg_response_time" in header["summary"]
        kinds = [
            r["kind"] for r in records if r["record"] == "event"
        ]
        assert "policy.trigger" in kinds
        assert "system.rejuvenation" in kinds
        # Events arrive in trace order with non-decreasing timestamps.
        times = [r["ts"] for r in records if r["record"] == "event"]
        assert times == sorted(times)

    def test_filters_apply(self, traces):
        jsonl, _ = traces
        only_rejuv = timeline_from_trace(
            jsonl, kinds=["system.rejuvenation"]
        )
        kinds = {
            r["kind"] for r in only_rejuv if r["record"] == "event"
        }
        assert kinds <= {"system.rejuvenation"}
        windowed = timeline_from_trace(jsonl, until=100.0)
        assert all(
            r["ts"] <= 100.0
            for r in windowed
            if r["record"] == "event"
        )

    def test_synthetic_trace_timeline(self):
        from repro.obs.columnar.query import as_query
        from repro.obs.columnar.synth import synth_campaign_trace

        trace = synth_campaign_trace(runs=2, events_per_run=50, seed=7)
        records = timeline_records(as_query(trace))
        headers = [r for r in records if r["record"] == "run"]
        assert len(headers) == 2
        assert headers[0]["tag"] == ["faults", "synthetic", "SRAA", 0]

    def test_cli_json_flag_prints_parseable_json(self, traces, capsys):
        jsonl, rcol = traces
        assert main(["explain", "--json", jsonl]) == 0
        from_jsonl = capsys.readouterr().out
        parsed = json.loads(from_jsonl)
        assert parsed[0]["record"] == "run"
        assert main(["explain", "--json", rcol]) == 0
        assert json.loads(capsys.readouterr().out) == parsed

    def test_cli_json_respects_filters(self, traces, capsys):
        jsonl, _ = traces
        assert main(
            ["explain", "--json", jsonl, "--kind", "policy.trigger"]
        ) == 0
        parsed = json.loads(capsys.readouterr().out)
        kinds = {
            r["kind"] for r in parsed if r["record"] == "event"
        }
        assert kinds == {"policy.trigger"}
