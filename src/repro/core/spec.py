"""Declarative policy specifications.

A :class:`PolicySpec` is the picklable counterpart of the old
``lambda: SRAA(...)`` factories: plain data (policy name, parameters,
SLO) from which :func:`repro.core.factory.make_policy` builds a *fresh*
policy instance per replication, so no detection state leaks between
replications and the spec can cross a process boundary.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.core.base import RejuvenationPolicy
from repro.core.factory import available_policies, make_policy
from repro.core.sla import PAPER_SLO, ServiceLevelObjective

#: Spec name meaning "no rejuvenation policy at all".
NO_POLICY = "none"


@dataclass(frozen=True)
class PolicySpec:
    """A policy as plain data: ``name`` + ``params`` + ``slo``.

    ``name`` is one of :func:`repro.core.factory.available_policies`
    or ``"none"`` (build returns ``None`` -- rejuvenation disabled);
    ``params`` uses the paper's parameter letters exactly as
    :func:`~repro.core.factory.make_policy` does.

    Examples
    --------
    >>> PolicySpec.sraa(2, 5, 3).build().describe()
    'SRAA(n=2, K=5, D=3)'
    >>> PolicySpec.none().build() is None
    True
    """

    name: str
    params: Dict[str, Any] = field(default_factory=dict)
    slo: ServiceLevelObjective = PAPER_SLO

    def __post_init__(self) -> None:
        known = available_policies() + (NO_POLICY,)
        if self.name not in known:
            raise ValueError(
                f"unknown policy {self.name!r}; available: "
                f"{', '.join(known)}"
            )
        # Defensive copy so a shared params dict cannot mutate the spec.
        object.__setattr__(self, "params", dict(self.params))

    def build(self) -> Optional[RejuvenationPolicy]:
        """A fresh policy instance (``None`` for the "none" spec)."""
        if self.name == NO_POLICY:
            return None
        return make_policy(self.name, self.slo, **self.params)

    def describe(self) -> str:
        """Human-readable description of the policy this spec builds."""
        built = self.build()
        return "no rejuvenation" if built is None else built.describe()

    # ------------------------------------------------------------------
    # Common configurations
    # ------------------------------------------------------------------
    @classmethod
    def none(cls) -> "PolicySpec":
        """Rejuvenation disabled."""
        return cls(name=NO_POLICY)

    @classmethod
    def sraa(
        cls, n: int, K: int, D: int, slo: ServiceLevelObjective = PAPER_SLO
    ) -> "PolicySpec":
        """SRAA with the paper's ``(n, K, D)`` parameters."""
        return cls(name="sraa", params={"n": n, "K": K, "D": D}, slo=slo)

    @classmethod
    def saraa(
        cls, n: int, K: int, D: int, slo: ServiceLevelObjective = PAPER_SLO
    ) -> "PolicySpec":
        """SARAA with the paper's ``(n, K, D)`` parameters."""
        return cls(name="saraa", params={"n": n, "K": K, "D": D}, slo=slo)

    @classmethod
    def clta(
        cls,
        n: int,
        z: float = 1.96,
        slo: ServiceLevelObjective = PAPER_SLO,
    ) -> "PolicySpec":
        """CLTA with sample size ``n`` and normal quantile ``z``."""
        return cls(name="clta", params={"n": n, "z": z}, slo=slo)
