"""The shipped examples stay runnable.

Every example must at least compile; the fast ones are executed
end-to-end (the slower, simulation-heavy ones are exercised implicitly
by the experiment tests, which cover the same code paths at reduced
scale).
"""

import pathlib
import py_compile
import runpy
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"


def example_paths():
    return sorted(EXAMPLES_DIR.glob("*.py"))


class TestExamples:
    def test_examples_exist(self):
        names = {path.name for path in example_paths()}
        assert "quickstart.py" in names
        assert len(names) >= 3  # the deliverable floor

    @pytest.mark.parametrize(
        "path", example_paths(), ids=lambda p: p.name
    )
    def test_compiles(self, path):
        py_compile.compile(str(path), doraise=True)

    @pytest.mark.parametrize(
        "path", example_paths(), ids=lambda p: p.name
    )
    def test_has_main_guard(self, path):
        source = path.read_text()
        assert 'if __name__ == "__main__":' in source
        assert "def main()" in source

    def test_quickstart_runs(self, capsys):
        runpy.run_path(
            str(EXAMPLES_DIR / "quickstart.py"), run_name="__main__"
        )
        out = capsys.readouterr().out
        assert "rejuvenation triggered" in out

    def test_admission_control_runs(self, capsys):
        runpy.run_path(
            str(EXAMPLES_DIR / "admission_control.py"), run_name="__main__"
        )
        out = capsys.readouterr().out
        assert "P(block)" in out
