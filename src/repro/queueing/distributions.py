"""Phase-type distributions.

A phase-type (PH) distribution is the law of the time to absorption in a
finite continuous-time Markov chain with one absorbing state (Neuts 1981).
The paper represents the M/M/c response time as the PH distribution of
Fig. 2/3 -- a probabilistic mixture of an exponential and a two-stage
hypoexponential -- and builds the distribution of the *sample mean* of ``n``
response times by concatenating ``n`` copies of that chain (Fig. 4).

The representation used here is the standard ``(alpha, T)`` pair:

* ``alpha`` -- row vector of initial probabilities over the transient
  states (its entries may sum to less than one, the remainder being an
  atom at zero);
* ``T`` -- the subgenerator: the restriction of the CTMC generator to the
  transient states.  The absorption-rate vector is ``t0 = -T @ 1``.

Closed-form facts used below (see e.g. Trivedi 2001, ch. 5):

* survival  ``S(x)  = alpha @ expm(T x) @ 1``
* density   ``f(x)  = alpha @ expm(T x) @ t0``
* moments   ``E[X^k] = (-1)^k k! alpha @ T^{-k} @ 1``
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np
from scipy.linalg import expm, solve


def _as_probability_vector(alpha: Sequence[float]) -> np.ndarray:
    vec = np.asarray(alpha, dtype=float).reshape(-1)
    if np.any(vec < -1e-12):
        raise ValueError("initial vector has negative entries")
    total = float(vec.sum())
    if total > 1.0 + 1e-9:
        raise ValueError(f"initial probabilities sum to {total} > 1")
    return np.clip(vec, 0.0, None)


def _validate_subgenerator(T: np.ndarray) -> np.ndarray:
    mat = np.asarray(T, dtype=float)
    if mat.ndim != 2 or mat.shape[0] != mat.shape[1]:
        raise ValueError("subgenerator must be a square matrix")
    diagonal = np.diag(mat)
    if np.any(diagonal > 1e-12):
        raise ValueError("subgenerator diagonal must be non-positive")
    off = mat - np.diag(diagonal)
    if np.any(off < -1e-12):
        raise ValueError("subgenerator off-diagonal must be non-negative")
    row_sums = mat.sum(axis=1)
    if np.any(row_sums > 1e-9):
        raise ValueError("subgenerator rows must sum to <= 0")
    return mat


class PhaseType:
    """A continuous phase-type distribution ``PH(alpha, T)``.

    Parameters
    ----------
    alpha:
        Initial probability (row) vector over the transient states.  If it
        sums to ``p < 1``, the distribution has an atom of mass ``1 - p``
        at zero.
    T:
        Subgenerator matrix over the transient states.

    Examples
    --------
    An exponential with rate 0.2 (the paper's service time law):

    >>> dist = exponential(0.2)
    >>> round(dist.mean(), 10)
    5.0
    >>> round(dist.var(), 10)
    25.0
    """

    def __init__(self, alpha: Sequence[float], T: Sequence[Sequence[float]]):
        self.alpha = _as_probability_vector(alpha)
        self.T = _validate_subgenerator(np.asarray(T, dtype=float))
        if self.alpha.shape[0] != self.T.shape[0]:
            raise ValueError("alpha and T dimensions disagree")
        self.t0 = -self.T @ np.ones(self.T.shape[0])

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def order(self) -> int:
        """Number of transient phases."""
        return self.T.shape[0]

    @property
    def atom_at_zero(self) -> float:
        """Probability mass at exactly zero."""
        return max(0.0, 1.0 - float(self.alpha.sum()))

    # ------------------------------------------------------------------
    # Moments
    # ------------------------------------------------------------------
    def moment(self, k: int) -> float:
        """The ``k``-th raw moment ``E[X^k]``."""
        if k < 0:
            raise ValueError("moment order must be non-negative")
        if k == 0:
            return 1.0
        # E[X^k] = (-1)^k k! alpha T^{-k} 1, computed by repeated solves to
        # avoid forming the inverse explicitly.
        vec = np.ones(self.order)
        for _ in range(k):
            vec = solve(self.T, vec)
        sign = 1.0 if k % 2 == 0 else -1.0
        return float(sign * math.factorial(k) * self.alpha @ vec)

    def mean(self) -> float:
        """Expected value."""
        return self.moment(1)

    def var(self) -> float:
        """Variance."""
        first = self.moment(1)
        return self.moment(2) - first * first

    def std(self) -> float:
        """Standard deviation."""
        return float(np.sqrt(self.var()))

    def skewness(self) -> float:
        """Standardised third central moment.

        Used by the CLT diagnostics: the skewness of the mean of ``n``
        iid copies decays as ``1/sqrt(n)``, which is the leading error term
        of the normal approximation in the paper's Fig. 5.
        """
        m1, m2, m3 = self.moment(1), self.moment(2), self.moment(3)
        variance = m2 - m1 * m1
        central3 = m3 - 3.0 * m1 * m2 + 2.0 * m1**3
        return float(central3 / variance**1.5)

    # ------------------------------------------------------------------
    # Distribution functions
    # ------------------------------------------------------------------
    def sf(self, x: float) -> float:
        """Survival function ``P(X > x)``."""
        if x < 0:
            return 1.0
        return float(self.alpha @ expm(self.T * x) @ np.ones(self.order))

    def cdf(self, x: float) -> float:
        """Cumulative distribution function ``P(X <= x)``."""
        return 1.0 - self.sf(x)

    def pdf(self, x: float) -> float:
        """Density of the absolutely continuous part at ``x >= 0``."""
        if x < 0:
            return 0.0
        return float(self.alpha @ expm(self.T * x) @ self.t0)

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def sample(self, rng: np.random.Generator, size: int = 1) -> np.ndarray:
        """Draw ``size`` variates by simulating the underlying chain."""
        if size < 0:
            raise ValueError("size must be non-negative")
        n_states = self.order
        exit_rates = -np.diag(self.T)
        # Jump probabilities from each transient state: to other transient
        # states or to absorption.
        jump = np.zeros((n_states, n_states + 1))
        for i in range(n_states):
            if exit_rates[i] <= 0.0:
                raise ValueError(f"state {i} has no outgoing rate")
            jump[i, :n_states] = self.T[i] / exit_rates[i]
            jump[i, i] = 0.0
            jump[i, n_states] = self.t0[i] / exit_rates[i]
        start_probs = np.append(self.alpha, self.atom_at_zero)
        out = np.empty(size)
        for j in range(size):
            state = int(rng.choice(n_states + 1, p=start_probs))
            total = 0.0
            while state != n_states:
                total += rng.exponential(1.0 / exit_rates[state])
                state = int(rng.choice(n_states + 1, p=jump[state]))
            out[j] = total
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PhaseType(order={self.order}, mean={self.mean():.6g})"


# ----------------------------------------------------------------------
# Constructors
# ----------------------------------------------------------------------
def exponential(rate: float) -> PhaseType:
    """Exponential distribution with hazard ``rate``."""
    if rate <= 0:
        raise ValueError("rate must be positive")
    return PhaseType([1.0], [[-rate]])


def erlang(stages: int, rate: float) -> PhaseType:
    """Erlang distribution: ``stages`` sequential exponentials of ``rate``."""
    if stages < 1:
        raise ValueError("stages must be >= 1")
    return hypoexponential([rate] * stages)


def hypoexponential(rates: Sequence[float]) -> PhaseType:
    """Series combination of exponentials with the given rates.

    The second branch of the paper's Fig. 2 is the two-stage case with
    rates ``(mu, c*mu - lambda)``.
    """
    rate_list = [float(r) for r in rates]
    if not rate_list:
        raise ValueError("at least one stage is required")
    if any(r <= 0 for r in rate_list):
        raise ValueError("all rates must be positive")
    n = len(rate_list)
    T = np.zeros((n, n))
    for i, r in enumerate(rate_list):
        T[i, i] = -r
        if i + 1 < n:
            T[i, i + 1] = r
    alpha = np.zeros(n)
    alpha[0] = 1.0
    return PhaseType(alpha, T)


def hyperexponential(probs: Sequence[float], rates: Sequence[float]) -> PhaseType:
    """Probabilistic mixture of exponentials (parallel combination)."""
    p = np.asarray(probs, dtype=float)
    r = np.asarray(rates, dtype=float)
    if p.shape != r.shape or p.ndim != 1 or p.size == 0:
        raise ValueError("probs and rates must be equal-length vectors")
    if abs(float(p.sum()) - 1.0) > 1e-9:
        raise ValueError("mixture probabilities must sum to 1")
    if np.any(r <= 0):
        raise ValueError("all rates must be positive")
    return PhaseType(p, np.diag(-r))
