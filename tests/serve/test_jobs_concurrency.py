"""Job manager concurrency: serialisation, cancellation, overlap ticks.

The run lock must keep two submitted campaigns from ever simulating at
the same time; cancellation must be honoured both while queued (the
job never starts) and mid-campaign (the progress hook aborts between
replication jobs, and nothing is ledger-recorded).
"""

import time

from repro.obs.ledger import Ledger
from repro.obs.sentinel import ScheduleSpec, Scheduler
from repro.serve.jobs import (
    CANCELLED,
    DONE,
    QUEUED,
    RUNNING,
    JobManager,
)

#: Fast single-cell campaign.
QUICK = {
    "scenarios": "aging_onset",
    "policies": "SRAA",
    "replications": 1,
    "seed": 3,
    "horizon": 300,
}

#: Several replications, so cancellation has job boundaries to land on.
LONG = dict(QUICK, replications=6, horizon=900)


def wait_for(predicate, timeout_s=60.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return False


class TestSerialisation:
    def test_only_one_job_runs_at_a_time(self):
        manager = JobManager()
        first = manager.submit_campaign(dict(QUICK))
        second = manager.submit_campaign(dict(QUICK, seed=4))
        saw_running = False
        while True:
            statuses = [j["status"] for j in manager.jobs()]
            assert statuses.count(RUNNING) <= 1
            if RUNNING in statuses:
                saw_running = True
            if all(s == DONE for s in statuses):
                break
            time.sleep(0.005)
        assert saw_running
        done_first = manager.get(first["id"])
        done_second = manager.get(second["id"])
        assert done_first["status"] == done_second["status"] == DONE
        assert done_first["entry_id"] != done_second["entry_id"]

    def test_overlapping_launches_all_complete(self):
        manager = JobManager()
        jobs = [
            manager.submit_campaign(dict(QUICK, seed=seed))
            for seed in range(3)
        ]
        finals = [manager.wait(j["id"], timeout_s=180.0) for j in jobs]
        assert [f["status"] for f in finals] == [DONE] * 3
        # Serialised execution keeps ledger entries sequential.
        entries = Ledger().entries()
        assert len(entries) == 3


class TestCancellation:
    def test_cancel_queued_job_never_runs(self):
        manager = JobManager()
        blocker = manager.submit_campaign(dict(LONG))
        queued = manager.submit_campaign(dict(QUICK, seed=9))
        assert queued["status"] == QUEUED
        snapshot = manager.cancel(queued["id"])
        assert snapshot["status"] in (QUEUED, CANCELLED)
        final = manager.wait(queued["id"], timeout_s=180.0)
        assert final["status"] == CANCELLED
        assert final["entry_id"] is None
        assert final["started_utc"] is None  # never simulated
        manager.cancel(blocker["id"])
        manager.wait(blocker["id"], timeout_s=180.0)

    def test_cancel_running_campaign_discards_results(self):
        manager = JobManager()
        job = manager.submit_campaign(dict(LONG))
        assert wait_for(
            lambda: manager.get(job["id"])["status"] == RUNNING
        )
        manager.cancel(job["id"])
        final = manager.wait(job["id"], timeout_s=180.0)
        assert final["status"] == CANCELLED
        assert final["entry_id"] is None
        assert final["summary"] is None
        # Cancelled campaigns are never ledger-recorded.
        assert Ledger().entries() == []

    def test_cancel_unknown_job_raises(self):
        import pytest

        with pytest.raises(LookupError):
            JobManager().cancel("job-9999")

    def test_cancel_finished_job_is_a_no_op(self):
        manager = JobManager()
        job = manager.submit_campaign(dict(QUICK))
        final = manager.wait(job["id"], timeout_s=180.0)
        assert final["status"] == DONE
        snapshot = manager.cancel(job["id"])
        assert snapshot["status"] == DONE  # terminal states stay put

    def test_job_finished_event_for_cancelled_job_has_no_entry(self):
        from repro.serve.broker import EventBroker

        broker = EventBroker()
        subscription = broker.subscribe()
        manager = JobManager(broker=broker)
        blocker = manager.submit_campaign(dict(LONG))
        victim = manager.submit_campaign(dict(QUICK, seed=9))
        manager.cancel(victim["id"])
        manager.cancel(blocker["id"])
        manager.wait(victim["id"], timeout_s=180.0)
        manager.wait(blocker["id"], timeout_s=180.0)
        finished = []
        while True:
            try:
                event = subscription.get(timeout=1.0)
            except Exception:
                break
            if event["event"] == "job.finished":
                finished.append(event["data"])
            if len(finished) >= 2:
                break
        assert {f["status"] for f in finished} == {CANCELLED}
        assert all(f["entry_id"] is None for f in finished)
        subscription.close()


class TestTicksDuringRunningJobs:
    def schedule(self, on_overlap):
        return ScheduleSpec(
            name="recurring",
            campaign=dict(LONG),
            every_s=10.0,
            on_overlap=on_overlap,
        )

    def test_skip_policy_skips_while_previous_job_is_active(self):
        manager = JobManager()
        scheduler = Scheduler(manager)
        scheduler.add(self.schedule("skip"), now=0.0)
        launched = scheduler.tick(10.0)
        assert len(launched) == 1
        # The campaign is far from done; the next two due ticks skip.
        assert scheduler.tick(20.0) == []
        assert scheduler.tick(30.0) == []
        state = scheduler.get("recurring")
        assert state["skipped"] == 2
        assert state["runs"] == 1
        manager.cancel(launched[0]["id"])
        manager.wait(launched[0]["id"], timeout_s=180.0)

    def test_queue_policy_lets_the_run_lock_serialise(self):
        manager = JobManager()
        scheduler = Scheduler(manager)
        scheduler.add(self.schedule("queue"), now=0.0)
        first = scheduler.tick(10.0)
        second = scheduler.tick(20.0)
        assert len(first) == len(second) == 1
        # The second launch waits on the run lock rather than overlap.
        assert second[0]["status"] in (QUEUED, RUNNING)
        state = scheduler.get("recurring")
        assert state["runs"] == 2
        assert state["skipped"] == 0
        for job in first + second:
            manager.cancel(job["id"])
            assert manager.wait(job["id"], timeout_s=180.0)["status"] == (
                CANCELLED
            )
