"""Trace sessions: collecting per-replication traces across a whole run.

Tracing has to survive the execution layer: replication jobs may run in
pool worker processes, where a tracer's in-memory buffer is useless to
the parent.  The contract is therefore:

1. The CLI (or any caller) installs a :class:`TraceSession` with
   :func:`use_tracing` around the work.
2. Job builders (:func:`repro.ecommerce.runner.replication_jobs`,
   :func:`repro.experiments.sweep.sweep_jobs`) consult
   :func:`current_session` and stamp the session's trace level onto
   each :class:`~repro.exec.jobs.ReplicationJob` -- a picklable string.
3. :func:`~repro.exec.jobs.execute_job` builds a worker-local
   :class:`~repro.obs.tracer.Tracer` and returns the events *inside*
   the :class:`~repro.ecommerce.metrics.RunResult`, which already
   crosses the process boundary.
4. Back in the parent, the harness calls :meth:`TraceSession.ingest`
   with the jobs and results **in submission order** -- the same order
   for every backend, so trace files and metrics snapshots are
   bit-identical between serial and process-pool runs.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.obs.events import RUN_META, TraceEvent
from repro.obs.exporters import (
    write_chrome_trace,
    write_jsonl,
    write_prometheus,
)
from repro.obs.metrics import MetricsRegistry, registry_for_runs
from repro.obs.tracer import validate_level


#: Accepted trace buffer representations.
TRACE_FORMATS: Tuple[str, ...] = ("jsonl", "columnar")


def validate_format(trace_format: str) -> str:
    """Return ``trace_format`` if valid, raise ``ValueError`` otherwise."""
    if trace_format not in TRACE_FORMATS:
        raise ValueError(
            f"unknown trace format {trace_format!r}; "
            f"expected one of {TRACE_FORMATS}"
        )
    return trace_format


@dataclass(frozen=True)
class TracedRun:
    """One replication's bookkeeping plus its trace events.

    ``events`` is either a tuple of :class:`TraceEvent` (the JSONL
    path) or a :class:`~repro.obs.columnar.tap.ColumnarRun` (an encoded
    column batch, iterable as events on demand).
    """

    index: int
    tag: Tuple[Any, ...]
    seed: Optional[int]
    summary: Dict[str, Any]
    events: Any


def _run_summary(run: Any) -> Dict[str, Any]:
    """The ``run.meta`` payload for one RunResult."""
    return {
        "arrivals": run.arrivals,
        "completed": run.completed,
        "lost": run.lost,
        "avg_response_time": run.avg_response_time,
        "loss_fraction": run.loss_fraction,
        "gc_count": run.gc_count,
        "rejuvenations": run.rejuvenations,
        "sim_duration_s": run.sim_duration_s,
    }


class TraceSession:
    """Accumulates traced replications and writes the export formats.

    Parameters
    ----------
    level:
        Trace level stamped onto jobs built while this session is
        installed (``spans`` / ``decisions`` / ``all``).
    """

    def __init__(
        self, level: str = "all", trace_format: str = "jsonl"
    ) -> None:
        self.level = validate_level(level)
        self.trace_format = validate_format(trace_format)
        self.runs: List[TracedRun] = []
        #: Per-run DES profiles (submission order) for runs that carried
        #: one; only their deterministic event counts reach metrics.
        self.profiles: List[Any] = []

    # ------------------------------------------------------------------
    # Collection
    # ------------------------------------------------------------------
    def ingest(self, jobs: Sequence[Any], runs: Sequence[Any]) -> None:
        """Absorb one ``backend.map`` worth of results.

        ``jobs`` and ``runs`` are parallel sequences in submission
        order; each run's trace (if any) was carried back on
        ``RunResult.trace``.
        """
        from repro.obs.columnar.tap import ColumnarRun

        if len(jobs) != len(runs):
            raise ValueError("jobs and runs must be parallel sequences")
        for job, run in zip(jobs, runs):
            events = getattr(run, "trace", None) or ()
            if isinstance(events, ColumnarRun):
                # Worker batches are encoded with run index 0; stamp
                # the submission-order index the parent assigns.
                events = ColumnarRun(
                    events.batch.with_run(len(self.runs))
                )
            else:
                events = tuple(events)
            self.runs.append(
                TracedRun(
                    index=len(self.runs),
                    tag=tuple(getattr(job, "tag", ())),
                    seed=getattr(job, "seed", None),
                    summary=_run_summary(run),
                    events=events,
                )
            )
            profile = getattr(run, "profile", None)
            if profile is not None:
                self.profiles.append(profile)

    @property
    def n_events(self) -> int:
        """Trace events collected so far (excluding run.meta records)."""
        return sum(len(run.events) for run in self.runs)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    @staticmethod
    def _meta_record(run: TracedRun) -> Dict[str, Any]:
        return {
            "run": run.index,
            "tag": list(run.tag),
            "seed": run.seed,
            "ts": 0.0,
            "type": RUN_META,
            "source": "session",
            "data": dict(run.summary),
        }

    def records(self) -> Iterator[Dict[str, Any]]:
        """Flat JSONL records: one ``run.meta`` per run, then its events."""
        from repro.obs.columnar.tap import ColumnarRun

        for run in self.runs:
            yield self._meta_record(run)
            events = run.events
            if isinstance(events, ColumnarRun):
                # Decoded on demand; run indices were stamped at ingest.
                yield from events.trace.iter_records()
                continue
            for event in events:
                record = event.to_dict()
                record["run"] = run.index
                yield record

    def columnar_trace(self) -> "Any":
        """The whole session as one consolidated columnar trace.

        Runs traced columnar contribute their worker-encoded batches
        as-is (no re-parse); dict-path runs are encoded here.  Each
        run becomes two segments -- its ``run.meta`` record, then its
        events -- in submission order, so the segment index maps
        directly onto runs.
        """
        from repro.obs.columnar.store import (
            ColumnarTrace,
            encode_events,
            encode_records,
        )
        from repro.obs.columnar.tap import ColumnarRun

        batches = []
        for run in self.runs:
            batches.append(encode_records([self._meta_record(run)]))
            events = run.events
            if isinstance(events, ColumnarRun):
                if len(events):
                    batches.append(events.batch)
            elif events:
                batches.append(
                    encode_events(
                        [
                            (event.ts, event.etype, event.source, event.data)
                            for event in events
                        ],
                        run=run.index,
                    )
                )
        return ColumnarTrace.from_batches(batches)

    def registry(self) -> MetricsRegistry:
        """Metrics over all ingested runs, merged in submission order."""
        registry = MetricsRegistry()
        for run in self.runs:
            per_run = MetricsRegistry()
            per_run.counter("repro_replications_total").inc()
            for key, value in run.summary.items():
                if key in ("avg_response_time", "loss_fraction"):
                    continue
                if key == "sim_duration_s":
                    per_run.gauge("repro_sim_duration_seconds").set(value)
                    continue
                per_run.counter(f"repro_{key}_total").inc(value)
            per_run.histogram(
                "repro_replication_avg_response_time_seconds"
            ).observe(run.summary["avg_response_time"])
            per_run.add_events(run.events)
            registry.merge(per_run)
        for profile in self.profiles:
            profile.to_registry(registry)
        return registry

    def write_jsonl(self, path: str) -> int:
        """Write the JSONL trace; return the line count."""
        return write_jsonl(path, self.records())

    def write_columnar(self, path: str) -> int:
        """Write the columnar trace container; return the record count."""
        from repro.obs.columnar.io import write_columnar

        trace = self.columnar_trace()
        write_columnar(trace, path)
        return len(trace)

    def write_trace(self, path: str) -> int:
        """Write the trace in this session's format; return records."""
        if self.trace_format == "columnar":
            return self.write_columnar(path)
        return self.write_jsonl(path)

    def write_chrome(self, path: str) -> int:
        """Write the Chrome/Perfetto trace; return the record count."""
        return write_chrome_trace(path, self.records())

    def write_metrics(self, path: str) -> None:
        """Write the Prometheus textfile snapshot."""
        write_prometheus(path, self.registry())


# ---------------------------------------------------------------------------
# The installed-session stack (mirrors repro.exec.use_backend)
# ---------------------------------------------------------------------------
_SESSION_STACK: List[TraceSession] = []


@contextmanager
def use_tracing(session: TraceSession) -> Iterator[TraceSession]:
    """Install ``session`` as the active trace session in this block."""
    _SESSION_STACK.append(session)
    try:
        yield session
    finally:
        _SESSION_STACK.pop()


def current_session() -> Optional[TraceSession]:
    """The innermost installed session, or ``None`` (tracing off)."""
    return _SESSION_STACK[-1] if _SESSION_STACK else None


def active_trace_level() -> Optional[str]:
    """The level jobs should be stamped with, or ``None``."""
    session = current_session()
    return session.level if session is not None else None


def active_trace_format() -> Optional[str]:
    """The trace format jobs should be stamped with, or ``None``."""
    session = current_session()
    return session.trace_format if session is not None else None


__all__ = [
    "TRACE_FORMATS",
    "TraceSession",
    "TracedRun",
    "active_trace_format",
    "active_trace_level",
    "current_session",
    "registry_for_runs",
    "use_tracing",
    "validate_format",
]
