"""The alert engine: rule signals in, incident lifecycle out.

An :class:`AlertEngine` owns a rule set and a table of open incidents
keyed by ``(rule, target)``.  Rules emit a :class:`Signal` per
observation; the engine records only the *transitions*:

* not-firing -> firing: an incident **opens** (fresh ``inc-NNNN`` id,
  opening signal's summary/observed/evidence attached).
* firing while open: the incident's latest observation is refreshed in
  place -- no new ledger record, alerts do not spam.
* firing -> not-firing: the incident **closes** (``resolved`` reason,
  or ``run_ended`` when the watched run finished while still burning).

Every transition is appended to the
:class:`~repro.obs.sentinel.alerts.AlertLedger`, pushed through every
sink, and published as an SSE ``alert`` event when a broker is
attached.  Incident ids, order, and contents are a pure function of
the observation sequence -- no wall clock ever enters an incident
(the alert ledger stamps its own envelope timestamps), so fixed
fixtures replay to byte-identical incident tables.

The engine rides the serve broker as a synchronous tap
(:meth:`AlertEngine.attach`): ``live.snapshot`` events feed burn-rate
rules, ``job.finished`` events feed regression rules with the job's
freshly-recorded ledger entry and resolve that run's burn state.
:func:`replay_trace` drives the same rule set offline from a recorded
trace (JSONL or ``.rcol``) for ``repro watch --tick``.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

from repro.obs.sentinel.rules import BurnRateRule, RegressionRule, Signal

__all__ = ["AlertEngine", "Incident", "replay_trace"]


class Incident:
    """One alert with an open/close lifecycle and full provenance."""

    __slots__ = (
        "id",
        "rule",
        "rule_kind",
        "target",
        "status",
        "opened_ts",
        "closed_ts",
        "close_reason",
        "summary",
        "observed",
        "evidence",
        "runs",
        "updates",
        "last_ts",
    )

    def __init__(self, incident_id: str, signal: Signal):
        self.id = incident_id
        self.rule = signal.rule
        self.rule_kind = signal.kind
        self.target = signal.target
        self.status = "open"
        self.opened_ts = signal.ts
        self.closed_ts: Optional[float] = None
        self.close_reason: Optional[str] = None
        self.summary = signal.summary
        self.observed = dict(signal.observed)
        self.evidence = [dict(r) for r in signal.evidence]
        self.runs = self._runs_of(signal)
        #: Refreshes received while open (firing signals after the first).
        self.updates = 0
        self.last_ts = signal.ts

    @staticmethod
    def _runs_of(signal: Signal) -> List[str]:
        runs = []
        for record in signal.evidence:
            run = record.get("run")
            if run is not None and str(run) not in runs:
                runs.append(str(run))
        observed = signal.observed
        for key in ("baseline_id", "candidate_id"):
            value = observed.get(key)
            if value is not None and str(value) not in runs:
                runs.append(str(value))
        return runs

    def refresh(self, signal: Signal) -> None:
        self.updates += 1
        self.summary = signal.summary
        self.observed = dict(signal.observed)
        self.last_ts = signal.ts
        for run in self._runs_of(signal):
            if run not in self.runs:
                self.runs.append(run)

    def close(self, ts: float, reason: str) -> None:
        self.status = "closed"
        self.closed_ts = ts
        self.close_reason = reason

    def to_dict(self) -> Dict[str, Any]:
        return {
            "id": self.id,
            "rule": self.rule,
            "rule_kind": self.rule_kind,
            "target": self.target,
            "status": self.status,
            "opened_ts": self.opened_ts,
            "closed_ts": self.closed_ts,
            "close_reason": self.close_reason,
            "summary": self.summary,
            "observed": self.observed,
            "evidence": self.evidence,
            "runs": list(self.runs),
            "updates": self.updates,
        }


class AlertEngine:
    """Evaluate rules over observations; maintain the incident table."""

    def __init__(
        self,
        rules: Iterable[Any] = (),
        ledger: Any = None,
        alerts: Any = None,
        sinks: Iterable[Any] = (),
        broker: Any = None,
    ):
        self.rules = list(rules)
        #: Run ledger handle for regression rules (may be ``None``).
        self.ledger = ledger
        #: Alert ledger (``alerts.jsonl``); transitions are appended.
        self.alerts = alerts
        self.sinks = list(sinks)
        self.broker = broker
        self._lock = threading.Lock()
        self._open: Dict[Tuple[str, str], Incident] = {}
        self._closed: List[Incident] = []
        self._counter = 0
        #: Ledger entry ids already evaluated (regression rules must
        #: see each run exactly once, whatever feeds the engine).
        self._seen_entries: set = set()

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach(self, broker: Any) -> None:
        """Ride a serve broker as a synchronous event tap."""
        self.broker = broker
        broker.add_tap(self.observe_event)

    def observe_event(self, event: Mapping[str, Any]) -> None:
        """Broker tap: route stamped events to the rule families."""
        etype = event.get("event")
        data = event.get("data", {})
        if etype == "live.snapshot":
            self.observe_snapshot(data)
        elif etype == "job.finished":
            run = data.get("job")
            entry_id = data.get("entry_id")
            if entry_id is not None and self.ledger is not None:
                try:
                    entry = self.ledger.get(entry_id)
                except LookupError:
                    entry = None
                if entry is not None:
                    self.observe_entry(entry)
            if run is not None:
                self.resolve_target(str(run), reason="run_ended")

    # ------------------------------------------------------------------
    # Observations
    # ------------------------------------------------------------------
    def observe_snapshot(self, snapshot: Mapping[str, Any]) -> None:
        for rule in self.rules:
            if isinstance(rule, BurnRateRule):
                self._apply(rule.observe_snapshot(snapshot))

    def observe_entry(self, entry: Mapping[str, Any]) -> None:
        entry_id = entry.get("id")
        with self._lock:
            if entry_id in self._seen_entries:
                return
            self._seen_entries.add(entry_id)
        for rule in self.rules:
            if isinstance(rule, RegressionRule):
                self._apply(rule.observe_entry(entry, self.ledger))

    def resolve_target(self, target: str, reason: str = "run_ended") -> None:
        """Close any open incidents for a finished run tag."""
        to_close = []
        with self._lock:
            for key, incident in list(self._open.items()):
                if incident.target == target:
                    incident.close(incident.last_ts, reason)
                    self._closed.append(incident)
                    del self._open[key]
                    to_close.append(incident)
        for rule in self.rules:
            if isinstance(rule, BurnRateRule):
                rule.forget(target)
        for incident in to_close:
            self._record("close", incident)

    # ------------------------------------------------------------------
    # Transitions
    # ------------------------------------------------------------------
    def _apply(self, signal: Optional[Signal]) -> None:
        if signal is None:
            return
        key = (signal.rule, signal.target)
        opened = closed = None
        with self._lock:
            incident = self._open.get(key)
            if signal.firing and incident is None:
                self._counter += 1
                incident = Incident(f"inc-{self._counter:04d}", signal)
                self._open[key] = incident
                opened = incident
            elif signal.firing and incident is not None:
                incident.refresh(signal)
            elif not signal.firing and incident is not None:
                incident.refresh(signal)
                incident.close(signal.ts, "resolved")
                self._closed.append(incident)
                del self._open[key]
                closed = incident
        if opened is not None:
            self._record("open", opened)
        if closed is not None:
            self._record("close", closed)

    def _record(self, action: str, incident: Incident) -> None:
        record = {"action": action, "incident": incident.to_dict()}
        if self.alerts is not None:
            self.alerts.append(record)
        for sink in self.sinks:
            try:
                sink.emit(record)
            except Exception:  # noqa: BLE001 - a broken sink never pages out
                pass
        if self.broker is not None:
            self.broker.publish("alert", record)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def incidents(self, include_closed: bool = True) -> List[Dict[str, Any]]:
        """All incidents in id order (open and, optionally, closed)."""
        with self._lock:
            items = list(self._open.values())
            if include_closed:
                items.extend(self._closed)
        return [i.to_dict() for i in sorted(items, key=lambda i: i.id)]

    @property
    def open_count(self) -> int:
        with self._lock:
            return len(self._open)

    def to_payload(self) -> Dict[str, Any]:
        """The ``GET /api/alerts`` body."""
        incidents = self.incidents()
        return {
            "open": sum(1 for i in incidents if i["status"] == "open"),
            "closed": sum(1 for i in incidents if i["status"] == "closed"),
            "incidents": incidents,
            "rules": [rule.describe() for rule in self.rules],
        }


def replay_trace(
    source: Any,
    engine: AlertEngine,
    snapshot_every: int = 500,
    slo_s: Optional[float] = None,
) -> List[str]:
    """Drive an engine's burn-rate rules from a recorded trace.

    Rebuilds the cumulative completion / SLO-bad counters the serve tap
    would have published -- one synthetic snapshot per
    ``snapshot_every`` completions plus a final one per run -- so
    offline evaluation (``repro watch --tick``) sees the same stream a
    live server would, deterministically.  Returns the run labels
    replayed.  ``source`` is a trace path or a prebuilt query.
    """
    from repro.obs.columnar.query import as_query, load_query

    query = (
        load_query(source) if isinstance(source, str) else as_query(source)
    )
    slo = slo_s
    if slo is None:
        for rule in engine.rules:
            if isinstance(rule, BurnRateRule) and rule.slo_s is not None:
                slo = rule.slo_s
                break
    if slo is None:
        raise ValueError(
            "replay needs an SLO: set slo_s on a burn-rate rule or pass it"
        )
    every = max(1, int(snapshot_every))
    labels: List[str] = []
    for view in query.run_views():
        meta = view.meta
        tag = meta.get("tag") if meta else None
        label = (
            "/".join(str(part) for part in tag)
            if tag
            else f"run-{view.run_id}"
        )
        labels.append(label)
        ts_list, rt_list = view.completions()
        completed = bad = 0
        last_ts = None
        for ts, rt in zip(ts_list, rt_list):
            completed += 1
            if rt > slo:
                bad += 1
            last_ts = ts
            if completed % every == 0:
                engine.observe_snapshot(
                    {
                        "ts": float(ts),
                        "completed": completed,
                        "slo_bad": bad,
                        "slo_s": slo,
                        "run": label,
                    }
                )
        if completed and completed % every != 0 and last_ts is not None:
            engine.observe_snapshot(
                {
                    "ts": float(last_ts),
                    "completed": completed,
                    "slo_bad": bad,
                    "slo_s": slo,
                    "run": label,
                }
            )
        engine.resolve_target(label, reason="run_ended")
    return labels
