"""Campaign acceptance: CRN seeds, backend bit-identity, robustness.

The headline test is the ISSUE's acceptance criterion: a campaign over
four built-in scenarios x {SRAA, SARAA, CLTA} x five replications is
bit-identical between the serial and the process-pool backends, and on
the ``false_aging`` blip scenario SRAA at paper-default parameters
misses nothing while the policies separate cleanly on false-alarm
rate.
"""

import pytest

from repro.exec.backends import ProcessPoolBackend, SerialBackend
from repro.faults.campaign import (
    DEFAULT_POLICIES,
    campaign_jobs,
    run_campaign,
    score_trace,
)
from repro.faults.zoo import builtin_scenarios, get_scenario

HORIZON_S = 600.0
REPLICATIONS = 5
SCENARIO_NAMES = (
    "aging_onset",
    "workload_shift",
    "traffic_surge",
    "false_aging",
)


def _scenarios():
    return [get_scenario(name, HORIZON_S) for name in SCENARIO_NAMES]


@pytest.fixture(scope="module")
def serial_campaign():
    return run_campaign(
        scenarios=_scenarios(),
        replications=REPLICATIONS,
        seed=0,
        backend=SerialBackend(),
    )


class TestCampaignJobs:
    def test_crn_seed_protocol(self):
        scenarios = _scenarios()[:2]
        jobs = campaign_jobs(
            scenarios, DEFAULT_POLICIES, replications=3, seed=7
        )
        assert len(jobs) == 2 * 3 * 3
        by_cell = {}
        for job in jobs:
            _, scenario, policy, rep = job.tag
            by_cell.setdefault((scenario, policy), []).append(job.seed)
            assert rep == len(by_cell[(scenario, policy)]) - 1
        # Every policy sees the same seeds on the same scenario (CRN).
        for s_index, scenario in enumerate(scenarios):
            expected = [7 + 1000 * s_index + i for i in range(3)]
            for label in DEFAULT_POLICIES:
                assert by_cell[(scenario.name, label)] == expected

    def test_jobs_carry_their_scenario(self):
        scenarios = _scenarios()[:1]
        jobs = campaign_jobs(
            scenarios, DEFAULT_POLICIES, replications=1, seed=0
        )
        assert all(job.faults == scenarios[0] for job in jobs)
        assert all(
            job.n_transactions == scenarios[0].n_transactions
            for job in jobs
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            campaign_jobs(_scenarios(), DEFAULT_POLICIES, replications=0)
        with pytest.raises(ValueError):
            campaign_jobs([], DEFAULT_POLICIES, replications=1)
        with pytest.raises(ValueError):
            campaign_jobs(_scenarios(), {}, replications=1)


class TestAcceptance:
    def test_serial_and_pool_campaigns_bit_identical(self, serial_campaign):
        pool = run_campaign(
            scenarios=_scenarios(),
            replications=REPLICATIONS,
            seed=0,
            backend=ProcessPoolBackend(workers=2),
        )
        assert pool.scores == serial_campaign.scores
        assert pool.runs == serial_campaign.runs

    def test_every_cell_scored(self, serial_campaign):
        assert len(serial_campaign.scores) == len(SCENARIO_NAMES) * len(
            DEFAULT_POLICIES
        )
        for score in serial_campaign.scores:
            assert score.replications == REPLICATIONS

    def test_false_aging_sraa_misses_nothing(self, serial_campaign):
        scores = {
            (s.scenario, s.policy): s for s in serial_campaign.scores
        }
        sraa = scores[("false_aging", "SRAA")]
        assert sraa.missed == 0
        assert sraa.detected == REPLICATIONS
        assert sraa.false_alarms == 0

    def test_false_aging_separates_policies_by_false_alarms(
        self, serial_campaign
    ):
        scores = {
            (s.scenario, s.policy): s for s in serial_campaign.scores
        }
        sraa = scores[("false_aging", "SRAA")]
        clta = scores[("false_aging", "CLTA")]
        # The 15 s blips cross CLTA's single-test threshold but cannot
        # climb SRAA's bucket chain: the false-alarm column separates
        # the designs.
        assert clta.false_alarms > sraa.false_alarms
        assert (
            clta.false_alarms_per_healthy_hour
            > sraa.false_alarms_per_healthy_hour
        )

    def test_genuine_aging_detected_by_every_policy(self, serial_campaign):
        for score in serial_campaign.scores:
            if score.scenario == "aging_onset":
                assert score.missed == 0
                assert score.mean_detection_latency_s is not None

    def test_runs_for_lookup(self, serial_campaign):
        cell = serial_campaign.runs_for("false_aging", "SRAA")
        assert len(cell) == REPLICATIONS
        with pytest.raises(KeyError):
            serial_campaign.runs_for("false_aging", "NONESUCH")

    def test_format_table_lists_every_cell(self, serial_campaign):
        table = serial_campaign.format_table()
        for name in SCENARIO_NAMES:
            assert name in table


class TestScoreTrace:
    def test_rescoring_a_trace_matches_direct_scores(self, tmp_path):
        from repro.obs.session import TraceSession, use_tracing

        scenarios = [get_scenario("false_aging", HORIZON_S)]
        session = TraceSession("spans")
        with use_tracing(session):
            campaign = run_campaign(
                scenarios=scenarios,
                replications=2,
                seed=0,
                backend=SerialBackend(),
            )
        path = str(tmp_path / "campaign.jsonl")
        session.write_jsonl(path)
        rescored = score_trace(path, horizon_s=HORIZON_S)
        assert rescored == campaign.scores

    def test_non_campaign_trace_rejected(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(ValueError, match="no campaign replications"):
            score_trace(str(path))


class TestDefaults:
    def test_default_campaign_covers_the_zoo(self):
        # Job construction only -- no simulation.
        scenarios = list(builtin_scenarios(HORIZON_S).values())
        jobs = campaign_jobs(
            scenarios, DEFAULT_POLICIES, replications=1, seed=0
        )
        names = {job.tag[1] for job in jobs}
        assert names == set(builtin_scenarios(HORIZON_S))

    def test_default_policies_are_the_papers_contenders(self):
        assert set(DEFAULT_POLICIES) == {"SRAA", "SARAA", "CLTA"}
