"""Figure 15 (Section 5.5): SARAA against SRAA at ``n * K * D = 30``.

The paper runs SARAA at four multi-bucket configurations and finds it
improves the high-load response time over SRAA while keeping the
negligible low-load loss of multi-bucket configurations.  We sweep both
algorithms at the same configurations so the per-configuration deltas
quoted in Section 5.5 can be read off directly.
"""

from __future__ import annotations

from typing import Tuple

from repro.core.spec import PolicySpec
from repro.experiments.scale import Scale
from repro.experiments.sweep import PolicyConfig, sraa_config, sweep_policies
from repro.experiments.tables import ExperimentResult

#: The four configurations of Fig. 15.
CONFIGS_FIG15: Tuple[Tuple[int, int, int], ...] = (
    (2, 3, 5), (2, 5, 3), (6, 5, 1), (10, 3, 1),
)


def saraa_config(n: int, K: int, D: int) -> PolicyConfig:
    """A SARAA configuration labelled like the paper's curves."""
    return PolicyConfig(
        label=f"SARAA (n={n}, K={K}, D={D})",
        policy=PolicySpec.saraa(n, K, D),
    )


def run_fig15(scale: Scale, seed: int = 0) -> ExperimentResult:
    """Figure 15 plus the SRAA twins used for the Section-5.5 deltas."""
    configs = [saraa_config(n, K, D) for n, K, D in CONFIGS_FIG15]
    configs += [sraa_config(n, K, D) for n, K, D in CONFIGS_FIG15]
    sweep = sweep_policies(configs, scale, seed=seed)
    return ExperimentResult(
        experiment_id="fig15",
        description="SARAA vs SRAA response times, n*K*D = 30 (Fig. 15)",
        tables=[
            sweep.response_time_table(
                "Fig. 15: SARAA average response time (with SRAA twins)"
            ),
            sweep.loss_table("SARAA/SRAA loss fractions, n*K*D = 30"),
        ],
        paper_expectations=[
            "SARAA improves response time over SRAA at high loads while "
            "keeping negligible loss at low loads",
            "paper deltas at 9.0 CPUs: (2,5,3) 11.94 -> 10.5 s; (2,3,5) "
            "11.05 -> 9.8 s; (6,5,1) 14.3 -> 11 s",
        ],
    )
