"""EventBroker semantics: ordering, fan-out, backpressure."""

import queue

import pytest

from repro.serve import EventBroker


class TestPublish:
    def test_sequence_is_monotonic_from_one(self):
        broker = EventBroker()
        events = [broker.publish("x", {"i": i}) for i in range(5)]
        assert [e["seq"] for e in events] == [1, 2, 3, 4, 5]

    def test_fan_out_to_every_subscriber_in_order(self):
        broker = EventBroker()
        a, b = broker.subscribe(), broker.subscribe()
        for i in range(3):
            broker.publish("x", {"i": i})
        for subscription in (a, b):
            got = [subscription.get(timeout=1.0) for _ in range(3)]
            assert [e["data"]["i"] for e in got] == [0, 1, 2]
            assert [e["seq"] for e in got] == [1, 2, 3]

    def test_publish_without_subscribers_is_fine(self):
        broker = EventBroker()
        broker.publish("x", {})
        assert broker.published == 1
        assert broker.subscriber_count == 0

    def test_latest_snapshot_register(self):
        broker = EventBroker()
        assert broker.latest_snapshot is None
        broker.publish("fault.injected", {"ts": 1.0})
        assert broker.latest_snapshot is None  # only live.snapshot
        broker.publish("live.snapshot", {"completed": 7})
        broker.publish("live.snapshot", {"completed": 9})
        assert broker.latest_snapshot == {"completed": 9}


class TestBackpressure:
    def test_slow_subscriber_drops_oldest_never_blocks(self):
        broker = EventBroker()
        slow = broker.subscribe(maxsize=3)
        for i in range(10):
            broker.publish("x", {"i": i})
        # The three newest survive; seven oldest were dropped.
        kept = [slow.get(timeout=0.1)["data"]["i"] for _ in range(3)]
        assert kept == [7, 8, 9]
        assert slow.dropped == 7
        with pytest.raises(queue.Empty):
            slow.get(timeout=0.01)

    def test_fast_subscriber_unaffected_by_slow_one(self):
        broker = EventBroker()
        slow = broker.subscribe(maxsize=1)
        fast = broker.subscribe(maxsize=100)
        for i in range(5):
            broker.publish("x", {"i": i})
        assert [fast.get(timeout=0.1)["data"]["i"] for _ in range(5)] == [
            0, 1, 2, 3, 4,
        ]
        assert slow.dropped == 4


class TestSubscription:
    def test_close_is_idempotent_and_removes(self):
        broker = EventBroker()
        subscription = broker.subscribe()
        assert broker.subscriber_count == 1
        subscription.close()
        subscription.close()
        assert broker.subscriber_count == 0

    def test_context_manager_unsubscribes(self):
        broker = EventBroker()
        with broker.subscribe() as subscription:
            broker.publish("x", {"i": 0})
            assert subscription.get(timeout=1.0)["data"]["i"] == 0
        assert broker.subscriber_count == 0
        broker.publish("x", {"i": 1})  # goes nowhere, still fine
        assert broker.published == 2
