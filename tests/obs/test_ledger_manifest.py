"""Run manifests: deterministic identity, backend/observability invariance.

The acceptance pin for the whole ledger: the same spec+seed must
produce identical manifest hashes AND identical outcome blocks whether
executed serially or on the process pool, and whether or not
observability (tracing, live taps) watched the run.
"""

import pytest

from repro.core.spec import PolicySpec
from repro.ecommerce.config import SystemConfig
from repro.ecommerce.runner import replication_jobs, run_replications
from repro.ecommerce.spec import ArrivalSpec
from repro.exec.backends import ProcessPoolBackend, SerialBackend
from repro.exec.jobs import ReplicationJob
from repro.obs.ledger import (
    campaign_manifest,
    experiment_manifest,
    manifest_from_jobs,
    replicated_outcomes,
    simulate_manifest,
)
from repro.obs.live import LiveSpec


CONFIG = SystemConfig()
ARRIVAL = ArrivalSpec.poisson(1.8)
POLICY = PolicySpec.sraa(2, 5, 3)


def _manifest(backend=None, **overrides):
    kwargs = dict(
        config=CONFIG,
        arrival=ARRIVAL,
        policy=POLICY,
        n_transactions=1000,
        replications=2,
        seed=7,
        backend=backend,
    )
    kwargs.update(overrides)
    return simulate_manifest(**kwargs)


class TestManifestHash:
    def test_backend_never_hashed(self):
        serial = _manifest(backend=SerialBackend())
        pooled = _manifest(backend=ProcessPoolBackend(4))
        assert serial.manifest_hash == pooled.manifest_hash
        assert serial.execution != pooled.execution

    def test_environment_never_hashed(self, monkeypatch):
        before = _manifest()
        monkeypatch.setenv("REPRO_GIT_SHA", "deadbeef" * 5)
        after = _manifest()
        assert before.manifest_hash == after.manifest_hash
        assert after.environment["git_sha"] == "deadbeef" * 5

    def test_spec_changes_hash(self):
        assert _manifest().manifest_hash != _manifest(seed=8).manifest_hash
        assert (
            _manifest().manifest_hash
            != _manifest(n_transactions=2000).manifest_hash
        )

    def test_seed_protocol_recorded(self):
        manifest = _manifest()
        assert manifest.seed_protocol == {
            "master": 7,
            "rule": "seed + i",
            "seeds": [7, 8],
        }

    def test_to_dict_carries_hash_and_schema(self):
        payload = _manifest().to_dict()
        assert payload["schema_version"] == 1
        assert payload["manifest_hash"] == _manifest().manifest_hash
        assert payload["kind"] == "simulate"


class TestJobManifestDict:
    def test_observability_fields_excluded(self):
        base = ReplicationJob(
            config=CONFIG,
            arrival=ARRIVAL,
            policy=POLICY,
            n_transactions=500,
            seed=3,
        )
        traced = ReplicationJob(
            config=CONFIG,
            arrival=ARRIVAL,
            policy=POLICY,
            n_transactions=500,
            seed=3,
            trace_level="all",
            telemetry_interval_s=50.0,
            live=LiveSpec(),
            profile=True,
            collect_response_times=True,
            tag=("replication", 0),
        )
        assert base.manifest_dict() == traced.manifest_dict()

    def test_manifest_from_jobs_strips_per_job_seed(self):
        jobs = replication_jobs(
            CONFIG,
            arrival=ARRIVAL,
            policy=POLICY,
            n_transactions=500,
            replications=3,
            seed=5,
        )
        manifest = manifest_from_jobs(
            "simulate", "simulate:sraa", jobs, master_seed=5
        )
        assert "seed" not in manifest.spec
        assert manifest.seed_protocol["seeds"] == [5, 6, 7]

    def test_manifest_from_jobs_requires_jobs(self):
        with pytest.raises(ValueError, match="at least one job"):
            manifest_from_jobs("simulate", "empty", [], master_seed=0)


class TestExperimentManifest:
    def test_alias_resolved_to_canonical_id(self):
        from repro.experiments.scale import Scale

        scale = Scale.smoke()
        alias = experiment_manifest("sraa", scale, seed=0)
        canonical = experiment_manifest("fig09_10", scale, seed=0)
        assert alias.manifest_hash == canonical.manifest_hash
        assert alias.spec["experiment"] == "fig09_10"

    def test_scale_changes_hash(self):
        from repro.experiments.scale import Scale

        smoke = experiment_manifest("fig16", Scale.smoke(), seed=0)
        quick = experiment_manifest("fig16", Scale.quick(), seed=0)
        assert smoke.manifest_hash != quick.manifest_hash


class TestCampaignManifest:
    def test_policy_label_order_irrelevant(self):
        from repro.faults.zoo import builtin_scenarios

        scenarios = list(builtin_scenarios(300.0).values())[:1]
        sraa, clta = PolicySpec.sraa(2, 5, 3), PolicySpec.clta(30)
        forward = campaign_manifest(
            scenarios, {"SRAA": sraa, "CLTA": clta}, 2, seed=0
        )
        backward = campaign_manifest(
            scenarios, {"CLTA": clta, "SRAA": sraa}, 2, seed=0
        )
        assert forward.manifest_hash == backward.manifest_hash


class TestOutcomeDeterminism:
    """Same spec+seed => identical outcomes, serial vs process pool."""

    @pytest.fixture(scope="class")
    def run_kwargs(self):
        return dict(
            config=CONFIG,
            arrival=ARRIVAL,
            policy=POLICY,
            n_transactions=1500,
            replications=2,
            seed=11,
            live=LiveSpec(),
        )

    def test_outcome_block_identical_across_backends(self, run_kwargs):
        serial = run_replications(backend=SerialBackend(), **run_kwargs)
        pooled = run_replications(
            backend=ProcessPoolBackend(2), **run_kwargs
        )
        assert replicated_outcomes(serial) == replicated_outcomes(pooled)

    def test_outcome_block_shape(self, run_kwargs):
        outcomes = replicated_outcomes(
            run_replications(backend=SerialBackend(), **run_kwargs)
        )
        assert outcomes["replications"] == 2
        per_rep = outcomes["per_replication"]
        assert len(per_rep["avg_response_time"]) == 2
        assert set(outcomes["response_time"]) == {"mean", "low", "high"}
        live = outcomes["live"]
        assert live["completed"] + live["lost"] > 0
        assert live["sketch"]["count"] == live["completed"]
