"""A cluster of Section-3 nodes behind a load balancer.

Arrivals hit a front-end balancer which dispatches each transaction to
one node; each node runs the full Section-3 mechanics (its own CPUs,
heap, GC clock) and has its *own* rejuvenation policy watching its own
response times -- the deployment studied in the companion paper [2].
A :class:`~repro.cluster.coordinator.RollingCoordinator` arbitrates
triggers so restarts roll through the cluster.

Transactions arriving while every node is down (only possible with a
positive rejuvenation downtime) are refused and counted lost.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from repro.core.base import RejuvenationPolicy
from repro.cluster.balancer import LoadBalancer, RoundRobin
from repro.cluster.coordinator import RollingCoordinator, UnrestrictedCoordinator
from repro.cluster.metrics import ClusterResult, NodeStats
from repro.des.engine import Simulator
from repro.des.random_streams import RandomStreams
from repro.ecommerce.config import SystemConfig
from repro.ecommerce.node import Job, ProcessingNode
from repro.ecommerce.workload import ArrivalProcess
from repro.stats.running import OnlineMoments

PolicyFactory = Callable[[], Optional[RejuvenationPolicy]]


class _NodeAccounting:
    """Mutable per-node counters (frozen into NodeStats at the end)."""

    __slots__ = ("dispatched", "completed", "lost", "moments", "down_until")

    def __init__(self) -> None:
        self.dispatched = 0
        self.completed = 0
        self.lost = 0
        self.moments = OnlineMoments()
        self.down_until = 0.0


class ClusterSystem:
    """N e-commerce nodes behind a balancer with per-node policies.

    Parameters
    ----------
    config:
        Per-node system parameters -- one ``SystemConfig`` applied to
        every node (the homogeneous cluster of [2]), or a sequence of
        ``n_nodes`` configs for a heterogeneous cluster (e.g. one node
        with a smaller heap that ages faster, paired with a
        :class:`~repro.cluster.balancer.WeightedRoundRobin` matching
        the capacities).
    n_nodes:
        Cluster size.
    arrivals:
        The aggregate arrival process hitting the front end.
    policy_factory:
        Builds one fresh policy per node (or returns ``None``).
    balancer:
        Dispatching strategy; defaults to round-robin.
    coordinator:
        Trigger arbitration; defaults to unrestricted (independent
        nodes).
    seed:
        Master seed; each node gets an independent service stream.

    Examples
    --------
    >>> from repro.core import SRAA, PAPER_SLO
    >>> from repro.ecommerce import PAPER_CONFIG, PoissonArrivals
    >>> cluster = ClusterSystem(
    ...     PAPER_CONFIG,
    ...     n_nodes=4,
    ...     arrivals=PoissonArrivals(rate=4 * 1.6),
    ...     policy_factory=lambda: SRAA(PAPER_SLO, 2, 5, 3),
    ...     seed=1,
    ... )
    >>> result = cluster.run(4_000)
    >>> result.completed + result.lost
    4000
    """

    def __init__(
        self,
        config: "SystemConfig | Sequence[SystemConfig]",
        n_nodes: int,
        arrivals: ArrivalProcess,
        policy_factory: PolicyFactory,
        balancer: Optional[LoadBalancer] = None,
        coordinator: Optional[RollingCoordinator] = None,
        seed: Optional[int] = None,
    ) -> None:
        if n_nodes < 1:
            raise ValueError("a cluster needs at least one node")
        if isinstance(config, SystemConfig):
            self.node_configs: List[SystemConfig] = [config] * n_nodes
        else:
            self.node_configs = list(config)
            if len(self.node_configs) != n_nodes:
                raise ValueError(
                    f"got {len(self.node_configs)} configs for "
                    f"{n_nodes} nodes"
                )
        self.arrivals = arrivals
        self.balancer = balancer if balancer is not None else RoundRobin()
        self.coordinator = (
            coordinator if coordinator is not None else UnrestrictedCoordinator()
        )
        self.streams = RandomStreams(seed)
        self.sim = Simulator()
        self.nodes: List[ProcessingNode] = []
        self.policies: List[Optional[RejuvenationPolicy]] = []
        self._accounting: List[_NodeAccounting] = []
        for i in range(n_nodes):
            node = ProcessingNode(
                self.node_configs[i],
                self.sim,
                self.streams[f"service.{i}"],
                on_complete=lambda job, rt, i=i: self._on_complete(i, job, rt),
                on_loss=lambda job, i=i: self._on_loss(i, job),
                name=f"node{i}",
            )
            self.nodes.append(node)
            self.policies.append(policy_factory())
            self._accounting.append(_NodeAccounting())
        self._reset_counters()

    # ------------------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        return len(self.nodes)

    def _reset_counters(self) -> None:
        self._arrivals_generated = 0
        self._n_target = 0
        self._completed = 0
        self._lost = 0
        self._refused = 0
        self._warmup = 0
        self._measured_lost = 0
        self._moments = OnlineMoments()

    def _eligible_nodes(self) -> List[int]:
        now = self.sim.now
        return [
            i
            for i, acc in enumerate(self._accounting)
            if acc.down_until <= now
        ]

    # ------------------------------------------------------------------
    # Event handlers
    # ------------------------------------------------------------------
    def _schedule_next_arrival(self) -> None:
        if self._arrivals_generated >= self._n_target:
            return
        gap = self.arrivals.interarrival(self.streams["arrivals"])
        self.sim.schedule(gap, self._on_arrival, kind="arrival")

    def _on_arrival(self) -> None:
        now = self.sim.now
        index = self._arrivals_generated
        self._arrivals_generated += 1
        self._schedule_next_arrival()
        eligible = self._eligible_nodes()
        if not eligible:
            # Whole cluster in downtime: the request is refused.
            self._refused += 1
            self._count_loss(index, node_index=None)
            return
        target = self.balancer.select(self.nodes, eligible, self.streams["lb"])
        if target not in eligible:
            raise AssertionError(
                f"balancer picked ineligible node {target}"
            )  # pragma: no cover - balancer contract
        self._accounting[target].dispatched += 1
        self.nodes[target].submit(Job(now, index))

    def _on_complete(self, node_index: int, job: Job, response_time: float):
        accounting = self._accounting[node_index]
        accounting.completed += 1
        accounting.moments.push(response_time)
        self._completed += 1
        if job.index >= self._warmup:
            self._moments.push(response_time)
        policy = self.policies[node_index]
        if policy is not None and policy.observe(response_time):
            self._request_rejuvenation(node_index)

    def _on_loss(self, node_index: int, job: Job) -> None:
        self._count_loss(job.index, node_index)

    def _count_loss(self, index: int, node_index: Optional[int]) -> None:
        self._lost += 1
        if node_index is not None:
            self._accounting[node_index].lost += 1
        if index >= self._warmup:
            self._measured_lost += 1

    def _request_rejuvenation(self, node_index: int) -> None:
        now = self.sim.now
        downtime = self.node_configs[node_index].rejuvenation_downtime_s
        if not self.coordinator.request(node_index, now, downtime):
            return
        self.nodes[node_index].rejuvenate()
        if downtime > 0.0:
            self._accounting[node_index].down_until = now + downtime

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    def run(self, n_transactions: int, warmup: int = 0) -> ClusterResult:
        """Generate ``n_transactions`` arrivals; run until all resolve."""
        if n_transactions < 1:
            raise ValueError("need at least one transaction")
        if not 0 <= warmup < n_transactions:
            raise ValueError("warmup must lie in [0, n_transactions)")
        self.sim.reset()
        self.arrivals.reset()
        self.balancer.reset()
        self.coordinator.reset()
        for i, node in enumerate(self.nodes):
            node.reset()
            policy = self.policies[i]
            if policy is not None:
                policy.reset()
            self._accounting[i] = _NodeAccounting()
        self._reset_counters()
        self._warmup = warmup
        self._n_target = n_transactions
        self._schedule_next_arrival()
        self.sim.run()
        resolved = self._completed + self._lost
        if resolved != n_transactions:  # pragma: no cover - invariant
            raise AssertionError(
                f"cluster run resolved {resolved} of {n_transactions}"
            )
        node_stats = tuple(
            NodeStats(
                name=node.name,
                dispatched=acc.dispatched,
                completed=acc.completed,
                lost=acc.lost,
                avg_response_time=acc.moments.mean if acc.moments.count else 0.0,
                rejuvenations=node.rejuvenations,
                gc_count=node.gc_count,
            )
            for node, acc in zip(self.nodes, self._accounting)
        )
        measured_total = n_transactions - warmup
        return ClusterResult(
            arrivals=self._arrivals_generated,
            completed=self._completed,
            lost=self._lost,
            refused=self._refused,
            avg_response_time=self._moments.mean if self._moments.count else 0.0,
            rt_std=self._moments.std,
            loss_fraction=self._measured_lost / measured_total,
            rejuvenations=sum(node.rejuvenations for node in self.nodes),
            gc_count=sum(node.gc_count for node in self.nodes),
            sim_duration_s=self.sim.now,
            nodes=node_stats,
        )
