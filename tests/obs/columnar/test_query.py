"""RecordsQuery vs ColumnarQuery: one semantics, two engines.

Every query-layer operation the consumers (report, explain, scoring,
serve) rely on must return identical results whether the trace lives
as a list of dicts or as a columnar structured array.
"""

import pytest

from repro.obs.columnar.query import (
    ColumnarQuery,
    RecordsQuery,
    as_query,
    exact_percentile,
    load_query,
)
from repro.obs.columnar.store import ColumnarTrace, compact_json

import numpy as np

RECORDS = [
    {
        "run": 0,
        "tag": ["faults", "aging_onset", "SRAA", 0],
        "seed": 11,
        "ts": 0.0,
        "type": "run.meta",
        "source": "session",
        "data": {"arrivals": 3, "avg_response_time": 0.5},
    },
    {
        "ts": 10.0,
        "type": "request.complete",
        "source": "system",
        "data": {"response_time": 0.2},
        "run": 0,
    },
    {
        "ts": 20.0,
        "type": "fault.injected",
        "source": "scenario",
        "data": {"kind": "aging"},
        "run": 0,
    },
    {
        "ts": 30.0,
        "type": "request.complete",
        "source": "system",
        "data": {"response_time": 0.8},
        "run": 0,
    },
    {
        "ts": 40.0,
        "type": "system.rejuvenation",
        "source": "system",
        "data": {"cause": "policy"},
        "run": 0,
    },
    {
        "run": 1,
        "tag": ["faults", "traffic_surge", "SARAA", 0],
        "seed": 12,
        "ts": 0.0,
        "type": "run.meta",
        "source": "session",
        "data": {"arrivals": 1, "avg_response_time": 0.1},
    },
    {
        "ts": 15.0,
        "type": "request.complete",
        "source": "system",
        "data": {"response_time": 0.4},
        "run": 1,
    },
    # A flight dump record (no "type"): survives time filters, never
    # kind filters.
    {"run": 1, "reason": "slo_breach", "ts": 25.0, "events": []},
]


def _queries():
    return [
        RecordsQuery(RECORDS),
        ColumnarQuery(ColumnarTrace.from_records(RECORDS)),
    ]


@pytest.fixture(params=["records", "columnar"])
def query(request):
    if request.param == "records":
        return RecordsQuery(RECORDS)
    return ColumnarQuery(ColumnarTrace.from_records(RECORDS))


class TestBasics:
    def test_n_records(self, query):
        assert query.n_records == len(RECORDS)

    def test_records_round_trip(self, query):
        assert query.records() == RECORDS

    def test_counts(self, query):
        counts = query.counts()
        assert counts["request.complete"] == 3
        assert counts["run.meta"] == 2
        assert counts["system.rejuvenation"] == 1

    def test_response_times(self, query):
        # RecordsQuery yields a list, ColumnarQuery an ndarray; the
        # values (and order) must agree.
        assert list(query.response_times()) == [0.2, 0.8, 0.4]


class TestRunViews:
    def test_views_split_by_run(self, query):
        views = query.run_views()
        assert [v.run_id for v in views] == [0, 1]
        assert views[0].n_records == 5
        assert views[1].n_records == 3

    def test_meta_and_counts(self, query):
        view = query.run_views()[0]
        assert view.meta["seed"] == 11
        assert tuple(view.meta["tag"]) == ("faults", "aging_onset", "SRAA", 0)
        assert view.counts()["request.complete"] == 2

    def test_ts_of(self, query):
        view = query.run_views()[0]
        assert view.ts_of("system.rejuvenation") == [40.0]
        assert view.ts_of("request.complete") == [10.0, 30.0]

    def test_completions(self, query):
        times, values = query.run_views()[0].completions()
        assert list(times) == [10.0, 30.0]
        assert list(values) == [0.2, 0.8]

    def test_flight_dumps(self, query):
        views = query.run_views()
        assert views[0].flight_dumps() == []
        dumps = views[1].flight_dumps()
        assert len(dumps) == 1 and dumps[0]["reason"] == "slo_breach"

    def test_max_ts(self, query):
        assert query.run_views()[0].max_ts() == 40.0

    def test_records_filtered_by_type(self, query):
        view = query.run_views()[0]
        picked = view.records(types=("fault.injected", "system.rejuvenation"))
        assert [r["type"] for r in picked] == [
            "fault.injected",
            "system.rejuvenation",
        ]


class TestFiltered:
    def test_time_window(self, query):
        sub = query.filtered(since=15.0, until=35.0)
        # run.meta records are always kept; the typeless dump at 25.0
        # survives a pure time filter.
        kept = sub.records()
        types = [r.get("type") for r in kept]
        assert types.count("run.meta") == 2
        assert "fault.injected" in types
        assert None in types  # the flight dump
        assert all(
            r.get("type") == "run.meta" or 15.0 <= r["ts"] <= 35.0
            for r in kept
        )

    def test_kind_exact_and_prefix(self, query):
        exact = query.filtered(kinds=["request.complete"])
        assert exact.counts() == {"run.meta": 2, "request.complete": 3}
        prefix = query.filtered(kinds=["request"])
        assert prefix.counts() == {"run.meta": 2, "request.complete": 3}
        # "req" is not a dotted prefix -- matches nothing.
        none = query.filtered(kinds=["req"])
        assert none.counts() == {"run.meta": 2}

    def test_kind_filter_drops_typeless(self, query):
        sub = query.filtered(kinds=["fault"])
        assert all("type" in r for r in sub.records())

    def test_combined(self, query):
        sub = query.filtered(since=5.0, until=25.0, kinds=["request.complete"])
        times = [r["ts"] for r in sub.records() if r.get("type") != "run.meta"]
        assert times == [10.0, 15.0]


class TestParity:
    def test_engines_agree_everywhere(self):
        rq, cq = _queries()
        assert rq.records() == cq.records()
        assert rq.counts() == cq.counts()
        assert list(rq.response_times()) == list(cq.response_times())
        for filters in (
            {},
            {"since": 12.0},
            {"until": 28.0},
            {"kinds": ["system", "fault.injected"]},
            {"since": 5.0, "until": 45.0, "kinds": ["request"]},
        ):
            assert (
                rq.filtered(**filters).records()
                == cq.filtered(**filters).records()
            ), filters

    def test_binned_percentiles_agree(self):
        rq, cq = _queries()
        for rv, cv in zip(rq.run_views(), cq.run_views()):
            assert rv.binned_percentiles(60.0, bins=6) == cv.binned_percentiles(
                60.0, bins=6
            )


class TestHelpers:
    def test_as_query_wraps_records(self):
        assert isinstance(as_query(RECORDS), RecordsQuery)

    def test_as_query_passes_queries_through(self):
        rq = RecordsQuery(RECORDS)
        assert as_query(rq) is rq

    def test_as_query_wraps_columnar_trace(self):
        trace = ColumnarTrace.from_records(RECORDS)
        assert isinstance(as_query(trace), ColumnarQuery)

    def test_load_query_sniffs_both_formats(self, tmp_path):
        from repro.obs.columnar.io import write_columnar

        jsonl = tmp_path / "t.jsonl"
        jsonl.write_text(
            "".join(compact_json(r) + "\n" for r in RECORDS),
            encoding="utf-8",
        )
        rcol = tmp_path / "t.rcol"
        write_columnar(ColumnarTrace.from_records(RECORDS), str(rcol))
        a = load_query(str(jsonl))
        b = load_query(str(rcol))
        assert isinstance(a, RecordsQuery)
        assert isinstance(b, ColumnarQuery)
        assert a.records() == b.records()

    def test_exact_percentile_matches_sorted_rank(self):
        values = np.asarray([5.0, 1.0, 3.0, 2.0, 4.0])
        ordered = np.sort(values)
        for q in (0.0, 0.25, 0.5, 0.9, 0.95, 1.0):
            rank = max(0, min(len(ordered) - 1, round(q * (len(ordered) - 1))))
            assert exact_percentile(ordered, q) == ordered[rank]
