"""Policy interface helpers: the batch buffer and observe_many."""

import pytest

from repro.core.base import BatchBuffer
from repro.core.clta import CLTA
from repro.core.sla import ServiceLevelObjective


class TestBatchBuffer:
    def test_emits_mean_when_full(self):
        buffer = BatchBuffer(3)
        assert buffer.push(1.0) is None
        assert buffer.push(2.0) is None
        assert buffer.push(6.0) == pytest.approx(3.0)

    def test_resets_between_batches(self):
        buffer = BatchBuffer(2)
        buffer.push(1.0)
        buffer.push(3.0)
        assert buffer.push(10.0) is None
        assert buffer.push(20.0) == pytest.approx(15.0)
        assert buffer.batches_completed == 2

    def test_size_one_emits_every_value(self):
        buffer = BatchBuffer(1)
        assert buffer.push(4.2) == pytest.approx(4.2)

    def test_pending_counter(self):
        buffer = BatchBuffer(3)
        buffer.push(1.0)
        assert buffer.pending == 1
        buffer.push(1.0)
        buffer.push(1.0)
        assert buffer.pending == 0

    def test_resize_discards_partial_by_default(self):
        buffer = BatchBuffer(4)
        buffer.push(100.0)
        buffer.resize(2)
        assert buffer.pending == 0
        buffer.push(1.0)
        assert buffer.push(3.0) == pytest.approx(2.0)

    def test_resize_carry_partial_keeps_observations(self):
        buffer = BatchBuffer(4)
        buffer.push(2.0)
        buffer.push(4.0)
        buffer.resize(3, carry_partial=True)
        assert buffer.pending == 2
        assert buffer.push(6.0) == pytest.approx(4.0)

    def test_resize_smaller_than_pending_completes_on_next_push(self):
        buffer = BatchBuffer(5)
        for value in (1.0, 2.0, 3.0):
            buffer.push(value)
        buffer.resize(2, carry_partial=True)
        # Four observations accumulated; mean over the actual count.
        assert buffer.push(6.0) == pytest.approx(3.0)

    def test_clear(self):
        buffer = BatchBuffer(3)
        buffer.push(1.0)
        buffer.clear()
        assert buffer.pending == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            BatchBuffer(0)
        with pytest.raises(ValueError):
            BatchBuffer(2).resize(0)


class TestObserveMany:
    def test_returns_trigger_indices(self):
        slo = ServiceLevelObjective(mean=5.0, std=5.0)
        policy = CLTA(slo, sample_size=2, z=1.96)
        # Threshold: 5 + 1.96*5/sqrt(2) = 11.93.
        values = [1.0, 1.0, 20.0, 20.0, 1.0, 1.0, 30.0, 30.0]
        assert policy.observe_many(values) == [3, 7]

    def test_no_triggers(self):
        slo = ServiceLevelObjective(mean=5.0, std=5.0)
        policy = CLTA(slo, sample_size=2, z=1.96)
        assert policy.observe_many([1.0] * 10) == []
