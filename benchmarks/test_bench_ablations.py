"""Ablations -- sensitivity of the reproduction to modelling choices."""

from conftest import assertions_enabled, regenerate


def _series(table, label):
    return table.get_series(label)


def test_ablations(benchmark):
    result = regenerate(benchmark, "ablations")
    if not assertions_enabled():
        return
    (
        queue_table,
        gc_table,
        downtime_table,
        schedule_table,
        service_table,
    ) = result.tables
    # Dropping queued transactions at rejuvenation raises the high-load
    # loss fraction (each trigger discards the whole backlog).
    kept = _series(queue_table, "queue survives (default) loss").value_at(9.0)
    dropped = _series(queue_table, "queue dropped loss").value_at(9.0)
    assert dropped > kept
    # A fully stop-the-world GC can only worsen the high-load RT.
    default_rt = _series(
        gc_table, "running threads only (default) RT"
    ).value_at(9.0)
    frozen_rt = _series(gc_table, "freezes new threads too RT").value_at(9.0)
    assert frozen_rt >= default_rt * 0.9  # noisy, but never much better
    # A 60 s downtime adds refused arrivals to the loss at high load.
    instant = _series(
        downtime_table, "instantaneous (default) loss"
    ).value_at(9.0)
    slow = _series(
        downtime_table, "60 s downtime, arrivals refused loss"
    ).value_at(9.0)
    assert slow > instant
    # The acceleration schedules all keep the system under control.
    for label in ("linear (paper) RT", "none RT", "geometric RT"):
        assert _series(schedule_table, label).value_at(9.0) < 60.0
    # D1 probe: CLTA's high-load advantage persists under every
    # service-time law -- memorylessness is not what causes the
    # divergence from the paper's Fig. 16 ordering.
    for prefix in ("exp", "det", "lognormal-cv3"):
        clta_rt = _series(service_table, f"{prefix}/CLTA RT").value_at(9.0)
        sraa_rt = _series(service_table, f"{prefix}/SRAA RT").value_at(9.0)
        assert clta_rt < sraa_rt * 1.1
