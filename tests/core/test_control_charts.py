"""CUSUM and EWMA control-chart baselines."""

import numpy as np
import pytest

from repro.core.control_charts import CUSUMPolicy, EWMAPolicy
from repro.core.sla import ServiceLevelObjective

SLO = ServiceLevelObjective(mean=5.0, std=5.0)


class TestCUSUM:
    def test_healthy_mean_keeps_statistic_at_zero(self):
        policy = CUSUMPolicy(SLO, k_sigmas=0.5, h_sigmas=5.0)
        # Values at the reference or below never accumulate.
        for _ in range(100):
            assert policy.observe(7.5) is False
        assert policy.statistic == 0.0

    def test_sustained_shift_detected(self):
        policy = CUSUMPolicy(SLO, k_sigmas=0.5, h_sigmas=5.0)
        # Shift to 15 (2 sigma): accumulates 7.5 per observation; the
        # interval h = 25 is crossed on the 4th, and the self-reset
        # re-detects every 4 observations while the shift persists.
        triggers = policy.observe_many([15.0] * 10)
        assert triggers == [3, 7]

    def test_single_spike_absorbed_if_below_h(self):
        policy = CUSUMPolicy(SLO, k_sigmas=0.5, h_sigmas=5.0)
        assert policy.observe(30.0) is False  # S = 22.5 < 25
        # Quiet traffic drains the statistic back to zero.
        for _ in range(20):
            policy.observe(2.0)
        assert policy.statistic == 0.0

    def test_huge_spike_triggers_immediately(self):
        policy = CUSUMPolicy(SLO)
        assert policy.observe(100.0) is True
        assert policy.statistic == 0.0  # self-reset

    def test_false_alarm_rate_small_on_healthy_traffic(self):
        rng = np.random.default_rng(0)
        policy = CUSUMPolicy(SLO, k_sigmas=1.0, h_sigmas=8.0)
        triggers = policy.observe_many(rng.exponential(5.0, size=20_000))
        # Exponential tails make some alarms unavoidable; they must be
        # rare.
        assert len(triggers) < 60

    def test_detects_faster_with_larger_shift(self):
        def delay(shift_mean):
            policy = CUSUMPolicy(SLO)
            for index in range(1_000):
                if policy.observe(shift_mean):
                    return index
            return None

        assert delay(40.0) < delay(12.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            CUSUMPolicy(SLO, k_sigmas=-0.1)
        with pytest.raises(ValueError):
            CUSUMPolicy(SLO, h_sigmas=0.0)

    def test_describe(self):
        assert "CUSUM" in CUSUMPolicy(SLO).describe()


class TestEWMA:
    def test_limit_formula(self):
        policy = EWMAPolicy(SLO, lam=0.2, L_sigmas=3.0)
        expected = 5.0 + 3.0 * 5.0 * np.sqrt(0.2 / 1.8)
        assert policy.limit == pytest.approx(expected)

    def test_starts_at_mean(self):
        assert EWMAPolicy(SLO).statistic == 5.0

    def test_sustained_shift_detected(self):
        policy = EWMAPolicy(SLO, lam=0.2, L_sigmas=3.0)
        triggers = policy.observe_many([20.0] * 50)
        assert triggers
        assert triggers[0] < 10

    def test_lam_one_is_shewhart(self):
        # lam = 1: the EWMA is the raw observation, limit mu + L sigma.
        policy = EWMAPolicy(SLO, lam=1.0, L_sigmas=3.0)
        assert policy.limit == pytest.approx(20.0)
        assert policy.observe(19.9) is False
        assert policy.observe(20.1) is True

    def test_small_lam_smooths_spikes(self):
        policy = EWMAPolicy(SLO, lam=0.05, L_sigmas=3.0)
        # A 2-sigma spike barely moves a slow EWMA (0.05*15 + 0.95*5 =
        # 5.5, well under the 7.4 limit), where a Shewhart chart with
        # the same width would wobble.
        assert policy.observe(15.0) is False
        assert policy.statistic < policy.limit

    def test_false_alarm_rate_small_on_healthy_traffic(self):
        rng = np.random.default_rng(1)
        policy = EWMAPolicy(SLO, lam=0.1, L_sigmas=4.0)
        triggers = policy.observe_many(rng.exponential(5.0, size=20_000))
        assert len(triggers) < 40

    def test_reset_recentres(self):
        policy = EWMAPolicy(SLO, lam=0.5)
        policy.observe(15.0)
        policy.reset()
        assert policy.statistic == 5.0

    def test_validation(self):
        with pytest.raises(ValueError):
            EWMAPolicy(SLO, lam=0.0)
        with pytest.raises(ValueError):
            EWMAPolicy(SLO, lam=1.5)
        with pytest.raises(ValueError):
            EWMAPolicy(SLO, L_sigmas=0.0)

    def test_describe(self):
        assert "EWMA" in EWMAPolicy(SLO).describe()


class TestComparisonWithBuckets:
    def test_all_detectors_catch_severe_degradation(self):
        from repro.core.sraa import SRAA

        rng = np.random.default_rng(2)
        degraded = rng.exponential(35.0, size=2_000)
        for policy in (
            CUSUMPolicy(SLO),
            EWMAPolicy(SLO),
            SRAA(SLO, 2, 5, 3),
        ):
            assert policy.observe_many(list(degraded))


class TestEdgeCases:
    def test_cusum_empty_stream_statistic_is_zero(self):
        policy = CUSUMPolicy(SLO)
        assert policy.statistic == 0.0
        assert policy.observe_many([]) == []

    def test_cusum_single_sample_below_reference(self):
        policy = CUSUMPolicy(SLO, k_sigmas=0.5, h_sigmas=5.0)
        assert policy.observe(SLO.mean) is False
        assert policy.statistic == 0.0

    def test_cusum_constant_series_at_reference_never_triggers(self):
        # Exactly at mu + k*sigma the increments are zero: the chart
        # must hold at zero variance forever, not drift or trigger.
        policy = CUSUMPolicy(SLO, k_sigmas=0.5, h_sigmas=5.0)
        reference = SLO.mean + 0.5 * SLO.std
        assert policy.observe_many([reference] * 500) == []
        assert policy.statistic == 0.0

    def test_cusum_deterministic_after_rejuvenation_reset(self):
        trace = [15.0] * 10 + [2.0] * 5 + [30.0] * 10
        veteran = CUSUMPolicy(SLO)
        veteran.observe_many(trace)
        veteran.reset()
        fresh = CUSUMPolicy(SLO)
        assert veteran.observe_many(trace) == fresh.observe_many(trace)

    def test_ewma_constant_series_at_mean_never_triggers(self):
        policy = EWMAPolicy(SLO, lam=0.2)
        assert policy.observe_many([SLO.mean] * 500) == []
        assert policy.statistic == pytest.approx(SLO.mean)

    def test_ewma_deterministic_after_rejuvenation_reset(self):
        trace = [12.0, 18.0, 25.0, 3.0] * 10
        veteran = EWMAPolicy(SLO, lam=0.3)
        veteran.observe_many(trace)
        veteran.reset()
        fresh = EWMAPolicy(SLO, lam=0.3)
        assert veteran.observe_many(trace) == fresh.observe_many(trace)
