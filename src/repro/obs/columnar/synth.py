"""Synthetic trace generation for scale tests and benchmarks.

Builds campaign-shaped traces -- ``("faults", scenario, policy, rep)``
tagged runs with ``run.meta`` records, dense ``request.complete``
streams, and scripted fault/trigger/rejuvenation events -- directly as
column arrays, so a multi-million-event trace materializes in well
under a second.  The scripted events make ground truth exact: each run
injects one aging fault at ``0.4 * horizon``, clears it at ``0.7 *
horizon``, and rejuvenates ``detection_delay_s`` after the injection,
so the expected detection latency, miss count, and false-alarm count
of the re-scored trace are known by construction (see
``tests/obs/columnar/test_scale.py``).

Everything derives deterministically from ``seed`` via
``numpy.random.default_rng``; the JSONL twin of a synthetic trace is
just ``trace.iter_records()`` serialized, which keeps paired
JSONL-vs-columnar benchmarks honest (same records, both formats).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.obs.events import (
    FAULT_CLEARED,
    FAULT_INJECTED,
    POLICY_TRIGGER,
    RUN_META,
    SYSTEM_REJUVENATION,
)

from .store import (
    ColumnarTrace,
    EventBatch,
    encode_records,
    merge_batches_sorted,
)

#: The payload shape of every dense completion event.
_COMPLETION_SHAPE = ("event", (("response_time", "f"),))


def _completion_batch(
    run: int, ts: np.ndarray, rt: np.ndarray
) -> EventBatch:
    """A dense ``request.complete`` batch built straight from arrays."""
    n = int(ts.shape[0])
    zero_off = np.zeros(n, dtype=np.uint32)
    return EventBatch(
        run=np.full(n, run, dtype=np.int64),
        ts=np.ascontiguousarray(ts, dtype=np.float64),
        type_id=np.zeros(n, dtype=np.uint32),
        source_id=np.zeros(n, dtype=np.uint32),
        shape_id=np.zeros(n, dtype=np.uint32),
        ints_off=zero_off,
        floats_off=np.arange(n, dtype=np.uint32),
        strs_off=zero_off,
        jsons_off=zero_off,
        ints=np.zeros(0, dtype=np.int64),
        floats=np.ascontiguousarray(rt, dtype=np.float64),
        strs=np.zeros(0, dtype=np.uint32),
        jsons=np.zeros(0, dtype=np.uint32),
        types=["request.complete"],
        sources=["system"],
        strings=[],
        fragments=[],
        shapes=[_COMPLETION_SHAPE],
    )


def synth_campaign_trace(
    runs: int = 4,
    events_per_run: int = 1000,
    horizon_s: float = 3600.0,
    seed: int = 2006,
    scenarios: Sequence[str] = ("synthetic",),
    policies: Sequence[str] = ("SRAA", "SARAA"),
    detection_delay_s: float = 30.0,
    false_alarms_per_run: int = 0,
) -> ColumnarTrace:
    """A deterministic campaign-shaped columnar trace.

    ``runs`` replications are distributed round-robin over the
    ``(scenario, policy)`` grid; each holds ``events_per_run`` dense
    completions plus the scripted fault story.  Ground truth per run:
    one degraded interval ``[0.4 h, 0.7 h]``, detected at ``0.4 h +
    detection_delay_s``, plus ``false_alarms_per_run`` triggers in
    healthy time at ``0.1 h`` onward (spaced 60 s).
    """
    rng = np.random.default_rng(seed)
    grid = [
        (scenario, policy)
        for scenario in scenarios
        for policy in policies
    ]
    batches: List[EventBatch] = []
    for run in range(runs):
        scenario, policy = grid[run % len(grid)]
        rep = run // len(grid)
        inject_ts = 0.4 * horizon_s
        clear_ts = 0.7 * horizon_s
        rejuv_ts = inject_ts + detection_delay_s

        ts = np.sort(
            rng.uniform(1.0, horizon_s, size=events_per_run)
        )
        rt = rng.gamma(2.0, 0.03, size=events_per_run)
        degraded = (ts >= inject_ts) & (ts <= clear_ts)
        rt = rt + degraded * rng.gamma(2.0, 0.12, size=events_per_run)

        sparse = [
            {
                "ts": float(inject_ts),
                "type": FAULT_INJECTED,
                "source": "scenario",
                "data": {"kind": "aging", "factor": 3.0},
                "run": run,
            },
            {
                "ts": float(rejuv_ts),
                "type": POLICY_TRIGGER,
                "source": f"policy:{policy.lower()}",
                "data": {
                    "level": 3,
                    "batch_mean": 0.31,
                    "threshold": 0.25,
                    "sample_size": 40,
                },
                "run": run,
            },
            {
                "ts": float(rejuv_ts),
                "type": SYSTEM_REJUVENATION,
                "source": "system",
                "data": {"downtime_s": 30.0},
                "run": run,
            },
            {
                "ts": float(clear_ts),
                "type": FAULT_CLEARED,
                "source": "scenario",
                "data": {"kind": "aging"},
                "run": run,
            },
        ]
        for alarm in range(false_alarms_per_run):
            alarm_ts = 0.1 * horizon_s + 60.0 * alarm
            sparse.append(
                {
                    "ts": float(alarm_ts),
                    "type": SYSTEM_REJUVENATION,
                    "source": "system",
                    "data": {"downtime_s": 30.0},
                    "run": run,
                }
            )
        meta = {
            "run": run,
            "tag": ["faults", scenario, policy, rep],
            "seed": int(seed + run),
            "ts": 0.0,
            "type": RUN_META,
            "source": "session",
            "data": {
                "arrivals": events_per_run,
                "completed": events_per_run,
                "lost": 0,
                "avg_response_time": float(np.mean(rt)),
                "loss_fraction": 0.0,
                "gc_count": 0,
                "rejuvenations": 1 + false_alarms_per_run,
                "sim_duration_s": float(horizon_s),
            },
        }
        events = merge_batches_sorted(
            [
                encode_records(sparse),
                _completion_batch(run, ts, rt),
            ]
        )
        batches.append(encode_records([meta]))
        batches.append(events)
    return ColumnarTrace.from_batches(batches)
