"""CLI behaviour through the public main() entry point."""

import json

import pytest

from repro.cli import main
from repro.experiments.io import load_json, result_to_dict
from repro.experiments.registry import run_experiment
from repro.experiments.scale import Scale


class TestList:
    def test_lists_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig16" in out
        assert "fig09_10" in out

    def test_lists_policies(self, capsys):
        assert main(["policies"]) == 0
        out = capsys.readouterr().out
        for name in ("sraa", "saraa", "clta"):
            assert name in out


class TestMMc:
    def test_prints_analytics(self, capsys):
        assert main(["mmc", "--load", "8"]) == 0
        out = capsys.readouterr().out
        assert "5.0056" in out  # eq. 2 at lambda = 1.6
        assert "W_c" in out

    def test_unstable_load_fails(self, capsys):
        assert main(["mmc", "--load", "16"]) == 1
        assert "unstable" in capsys.readouterr().out


class TestRun:
    def test_runs_analytical_experiment(self, capsys):
        assert main(["run", "false_alarm", "--scale", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "false_alarm" in out
        assert "Paper expectations" in out

    def test_runs_simulated_experiment(self, capsys):
        assert main(["run", "fig16", "--scale", "smoke", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "CLTA" in out
        assert "SARAA" in out

    def test_unknown_experiment(self):
        with pytest.raises(ValueError):
            main(["run", "fig99", "--scale", "smoke"])

    def test_scale_env_fallback(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "smoke")
        assert main(["run", "mmc_baseline"]) == 0

    def test_reports_stage_timing(self, capsys):
        assert main(["run", "false_alarm", "--scale", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "wall-clock per stage" in out
        assert "false_alarm" in out


class TestRunParallel:
    def test_workers_option(self, capsys):
        code = main(
            ["run", "false_alarm", "--scale", "smoke", "--workers", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "process backend" in out

    def test_comma_list_dispatches_each(self, capsys):
        code = main(
            [
                "run", "false_alarm,mmc_baseline",
                "--scale", "smoke", "--workers", "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "false_alarm" in out
        assert "mmc_baseline" in out

    def test_parallel_matches_serial(self, capsys):
        assert main(["run", "false_alarm", "--scale", "smoke"]) == 0
        serial_out = capsys.readouterr().out
        code = main(
            [
                "run", "false_alarm", "--scale", "smoke",
                "--workers", "2", "--backend", "process",
            ]
        )
        assert code == 0
        parallel_out = capsys.readouterr().out
        # Identical tables; only the timing footer may differ.
        split = "wall-clock per stage"
        assert serial_out.split(split)[0] == parallel_out.split(split)[0]

    def test_explicit_serial_backend(self, capsys):
        code = main(
            [
                "run", "false_alarm", "--scale", "smoke",
                "--workers", "4", "--backend", "serial",
            ]
        )
        assert code == 0
        assert "serial backend" in capsys.readouterr().out

    def test_zero_workers_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "false_alarm", "--scale", "smoke", "--workers", "0"])

    def test_empty_experiment_list_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", ",", "--scale", "smoke"])


class TestRunExport:
    def test_json_csv_round_trip(self, capsys, tmp_path):
        json_path = tmp_path / "false_alarm.json"
        csv_dir = tmp_path / "csv"
        code = main(
            [
                "run", "false_alarm", "--scale", "smoke",
                "--json", str(json_path), "--csv", str(csv_dir),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert str(json_path) in out

        # The JSON round-trips to exactly what a direct run produces.
        reloaded = load_json(str(json_path))
        direct = run_experiment("false_alarm", Scale.smoke(), seed=0)
        assert result_to_dict(reloaded) == result_to_dict(direct)

        # And the CSVs exist, one per table, with a header row.
        csv_files = sorted(csv_dir.glob("false_alarm_*.csv"))
        assert len(csv_files) == len(direct.tables)
        header = csv_files[0].read_text().splitlines()[0]
        assert header.startswith(direct.tables[0].x_label)

    def test_json_schema_version_stamped(self, tmp_path):
        json_path = tmp_path / "out.json"
        main(
            [
                "run", "mmc_baseline", "--scale", "smoke",
                "--json", str(json_path),
            ]
        )
        payload = json.loads(json_path.read_text())
        assert payload["schema_version"] == 1
        assert payload["experiment_id"] == "mmc_baseline"

    def test_multi_experiment_json_writes_directory(self, tmp_path):
        out_dir = tmp_path / "results"
        code = main(
            [
                "run", "false_alarm,mmc_baseline", "--scale", "smoke",
                "--json", str(out_dir),
            ]
        )
        assert code == 0
        assert sorted(p.name for p in out_dir.glob("*.json")) == [
            "false_alarm.json",
            "mmc_baseline.json",
        ]


class TestParser:
    def test_no_command_errors(self):
        with pytest.raises(SystemExit):
            main([])

    def test_bad_scale_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "fig16", "--scale", "galactic"])
