"""Progress and timing hooks for the execution layer.

Backends emit one :class:`JobEvent` per completed job; anything callable
with that event is a valid hook.  :class:`ProgressPrinter` is the hook
the CLI installs (throttled, stderr, never interleaves with result
tables on stdout), and :class:`StageTimer` records wall-clock per named
stage so ``repro run`` can report where the time went.
"""

from __future__ import annotations

import sys
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, Optional, TextIO, Tuple


@dataclass(frozen=True)
class JobEvent:
    """One completed job, as reported by a backend.

    Parameters
    ----------
    index:
        Position of the job in the submitted sequence (0-based).
    done, total:
        Jobs completed so far / jobs submitted.
    elapsed_s:
        Wall-clock seconds since the backend started this ``map`` call.
    job_s:
        Wall-clock seconds this particular job took.
    tag:
        The job's own bookkeeping tag (``ReplicationJob.tag``), empty
        for untagged work items.
    """

    index: int
    done: int
    total: int
    elapsed_s: float
    job_s: float
    tag: Tuple[Any, ...] = ()


#: Anything accepting a :class:`JobEvent`.
ProgressHook = Callable[[JobEvent], None]


class ProgressPrinter:
    """Prints job-completion progress lines, throttled.

    Writes to ``stream`` (default: stderr, so result tables on stdout
    stay machine-readable).  At most one line per ``min_interval_s``,
    except the final event which is always printed.
    """

    def __init__(
        self,
        stream: Optional[TextIO] = None,
        min_interval_s: float = 1.0,
        label: str = "",
    ) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self.min_interval_s = float(min_interval_s)
        self.label = label
        self._last_print = float("-inf")

    def __call__(self, event: JobEvent) -> None:
        now = time.monotonic()
        final = event.done >= event.total
        if not final and now - self._last_print < self.min_interval_s:
            return
        self._last_print = now
        prefix = f"[{self.label}] " if self.label else ""
        print(
            f"{prefix}{event.done}/{event.total} jobs, "
            f"{event.elapsed_s:.1f}s elapsed (last job {event.job_s:.2f}s)",
            file=self.stream,
        )


@dataclass
class StageTimer:
    """Accumulates wall-clock per named stage (insertion-ordered)."""

    stages: Dict[str, float] = field(default_factory=dict)

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        started = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - started
            self.stages[name] = self.stages.get(name, 0.0) + elapsed

    @property
    def total_s(self) -> float:
        return sum(self.stages.values())

    def report(self) -> str:
        """One ``name: seconds`` line per stage, plus a total."""
        if not self.stages:
            return "no stages timed"
        width = max(len(name) for name in self.stages)
        lines = [
            f"{name.ljust(width)}  {seconds:8.2f} s"
            for name, seconds in self.stages.items()
        ]
        if len(self.stages) > 1:
            lines.append(f"{'total'.ljust(width)}  {self.total_s:8.2f} s")
        return "\n".join(lines)
