"""Huang availability planning (analytical, ref. [9])."""

from conftest import regenerate


def test_availability_planning(benchmark):
    result = regenerate(benchmark, "availability")
    table, optimal = result.tables
    fast = table.get_series("10-min restart")
    slow = table.get_series("2-h restart")
    # Fast restarts: availability rises monotonically with the rate.
    values = [fast.value_at(r) for r in (0.0, 0.05, 0.2, 1.0, 5.0)]
    assert values == sorted(values)
    # Aggressive 10-min restarts cut the no-rejuvenation downtime by
    # more than 5x (302 -> ~38 h/yr for these parameters).
    assert (1.0 - values[-1]) < (1.0 - values[0]) / 5
    # Restarts as slow as repairs cannot raise availability.
    assert slow.value_at(5.0) <= slow.value_at(0.0) + 1e-9
    # Cost optima: aggressive when crashes dominate, never when
    # restarts do.
    rates = optimal.get_series("optimal rate")
    assert rates.value_at(0) > 1.0
    assert rates.value_at(2) == 0.0