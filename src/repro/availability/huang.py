"""Huang et al.'s four-state rejuvenation model (FTCS 1995, ref. [9]).

States and transitions::

      robust ──aging_rate──> failure-probable ──failure_rate──> failed
        ^                      │                                  │
        │                      └──rejuvenation_rate──> rejuvenating
        │                                                  │
        ├───────── rejuvenation_completion_rate ───────────┘
        └───────── repair_rate (from failed) ──────────────┘

The process ages out of the robust state; once failure-probable it
either crashes (long unscheduled repair) or is proactively rejuvenated
(short scheduled outage).  The operator's control variable is the
*rejuvenation rate* from the aged state; this class exposes the two
classical planning quantities as functions of it -- steady-state
availability and expected downtime cost -- plus the cost-optimal rate.

All quantities are computed from the CTMC steady state and cross-checked
in the tests against the renewal-reward closed form

    A(rho) = up-time per cycle / cycle length,

with cycle = robust (1/r) + aged (1/(lambda+rho)) + the outcome branch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np
from scipy.optimize import minimize_scalar

from repro.ctmc.chain import CTMC

#: State order used throughout.
STATES: Tuple[str, str, str, str] = (
    "robust",
    "failure_probable",
    "failed",
    "rejuvenating",
)


@dataclass(frozen=True)
class HuangRejuvenationModel:
    """The four-state availability model.

    Parameters
    ----------
    aging_rate:
        ``r``: robust -> failure-probable (1 / mean time to aging).
    failure_rate:
        ``lambda``: failure-probable -> failed.
    repair_rate:
        ``mu_f``: failed -> robust (1 / mean unscheduled repair).
    rejuvenation_completion_rate:
        ``mu_r``: rejuvenating -> robust (1 / mean scheduled outage);
        rejuvenation is normally much faster than repair.

    Examples
    --------
    Aging over ~10 days, failure after ~3 aged days, 2 h repair,
    10 min rejuvenation (rates per hour):

    >>> model = HuangRejuvenationModel(
    ...     aging_rate=1 / 240, failure_rate=1 / 72,
    ...     repair_rate=1 / 2, rejuvenation_completion_rate=6.0,
    ... )
    >>> no_rejuvenation = model.availability(0.0)
    >>> hourly = model.availability(1.0)
    >>> hourly > no_rejuvenation
    True
    """

    aging_rate: float
    failure_rate: float
    repair_rate: float
    rejuvenation_completion_rate: float

    def __post_init__(self) -> None:
        for name in (
            "aging_rate",
            "failure_rate",
            "repair_rate",
            "rejuvenation_completion_rate",
        ):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")

    # ------------------------------------------------------------------
    def chain(self, rejuvenation_rate: float) -> CTMC:
        """The CTMC for a given rejuvenation rate ``rho >= 0``."""
        if rejuvenation_rate < 0:
            raise ValueError("rejuvenation rate must be non-negative")
        rates = [
            (0, 1, self.aging_rate),
            (1, 2, self.failure_rate),
            (2, 0, self.repair_rate),
            (3, 0, self.rejuvenation_completion_rate),
        ]
        if rejuvenation_rate > 0:
            rates.append((1, 3, rejuvenation_rate))
        if rejuvenation_rate == 0:
            # State 3 is never entered; keep the chain irreducible by
            # omitting it.
            return CTMC.from_rates(3, rates[:3], state_names=STATES[:3])
        return CTMC.from_rates(4, rates, state_names=STATES)

    def steady_state(self, rejuvenation_rate: float) -> np.ndarray:
        """``(pi_robust, pi_aged, pi_failed, pi_rejuvenating)``."""
        chain = self.chain(rejuvenation_rate)
        pi = chain.steady_state()
        if pi.size == 3:
            pi = np.append(pi, 0.0)
        return pi

    # ------------------------------------------------------------------
    def availability(self, rejuvenation_rate: float) -> float:
        """Steady-state probability of being operational.

        Both the robust and the failure-probable states serve traffic
        (the aged system is degraded, not down).
        """
        pi = self.steady_state(rejuvenation_rate)
        return float(pi[0] + pi[1])

    def downtime_fraction(self, rejuvenation_rate: float) -> float:
        """1 - availability."""
        return 1.0 - self.availability(rejuvenation_rate)

    def downtime_hours_per_year(self, rejuvenation_rate: float) -> float:
        """Expected yearly downtime (8,760-hour year)."""
        return 8_760.0 * self.downtime_fraction(rejuvenation_rate)

    def downtime_cost_rate(
        self,
        rejuvenation_rate: float,
        cost_failure: float,
        cost_rejuvenation: float,
    ) -> float:
        """Expected cost per unit time.

        ``cost_failure`` and ``cost_rejuvenation`` price one unit of
        time spent in the failed and rejuvenating states (unscheduled
        downtime is typically far more expensive than a planned
        night-time restart).
        """
        if cost_failure < 0 or cost_rejuvenation < 0:
            raise ValueError("costs must be non-negative")
        pi = self.steady_state(rejuvenation_rate)
        return float(cost_failure * pi[2] + cost_rejuvenation * pi[3])

    def optimal_rejuvenation_rate(
        self,
        cost_failure: float,
        cost_rejuvenation: float,
        max_rate: float = 1e3,
    ) -> float:
        """Rejuvenation rate minimising the downtime cost rate.

        Returns 0.0 when never rejuvenating is (weakly) optimal --
        which happens exactly when scheduled outages are priced high
        relative to crashes.
        """
        if max_rate <= 0:
            raise ValueError("max rate must be positive")

        def objective(rate: float) -> float:
            return self.downtime_cost_rate(
                rate, cost_failure, cost_rejuvenation
            )

        result = minimize_scalar(
            objective, bounds=(0.0, max_rate), method="bounded",
            options={"xatol": 1e-9},
        )
        best_rate = float(result.x)
        # The boundary rate 0 is a candidate the bounded search can miss.
        if objective(0.0) <= objective(best_rate) + 1e-15:
            return 0.0
        return best_rate

    def rejuvenation_worthwhile(
        self, cost_failure: float, cost_rejuvenation: float
    ) -> bool:
        """Whether any positive rejuvenation rate beats doing nothing."""
        return (
            self.optimal_rejuvenation_rate(cost_failure, cost_rejuvenation)
            > 0.0
        )
