"""Autocorrelation estimation (Section 4.1 of the paper).

The CLT argument behind CLTA assumes the averaged response times are
(approximately) independent.  Section 4.1 checks this by estimating the
first-order autocorrelation coefficient of simulated M/M/16 response
times at the maximum load of interest, after discarding the first 10,000
transactions as warm-up, using the Shumway & Stoffer estimator:

    gamma_hat = sum_i (x_{i+1} - xbar)(x_i - xbar) / sum_i (x_i - xbar)^2

and declares it significantly non-zero at 95 % confidence when
``|gamma_hat| > 1.96 / sqrt(N)``.  The paper finds only 1 of 5
replications significant.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

#: Two-sided 95 % standard-normal critical value used by the paper.
Z_95 = 1.96


def autocorrelation(values: Sequence[float], lag: int, warmup: int = 0) -> float:
    """Sample autocorrelation at ``lag`` after dropping ``warmup`` values.

    Uses the standard biased ACF estimator (the one in Shumway &
    Stoffer): the lagged cross products are normalised by the *full*
    sum of squared deviations, which keeps the ACF sequence positive
    semi-definite.

    Parameters
    ----------
    values:
        The observed series (e.g. response times in completion order).
    lag:
        Lag ``k >= 0``; lag 0 returns exactly 1.0 for a non-constant
        series.
    warmup:
        Number of leading observations discarded as simulation transient
        (the paper discards 10,000 of 100,000).
    """
    if lag < 0:
        raise ValueError("lag must be non-negative")
    if warmup < 0:
        raise ValueError("warmup must be non-negative")
    series = np.asarray(values, dtype=float)[warmup:]
    n = series.size
    if n <= lag + 1:
        raise ValueError(
            f"need more than lag+1 = {lag + 1} observations after warm-up, "
            f"got {n}"
        )
    centred = series - series.mean()
    denominator = float(centred @ centred)
    if denominator == 0.0:
        raise ValueError("series is constant; autocorrelation is undefined")
    if lag == 0:
        return 1.0
    numerator = float(centred[lag:] @ centred[:-lag])
    return numerator / denominator


def lag1_autocorrelation(values: Sequence[float], warmup: int = 0) -> float:
    """The paper's first-order autocorrelation estimator ``gamma_hat``."""
    return autocorrelation(values, lag=1, warmup=warmup)


def significance_threshold(n_effective: int, z: float = Z_95) -> float:
    """``z / sqrt(N)``: the white-noise critical value used in Section 4.1.

    ``n_effective`` is the number of observations *after* warm-up removal
    (90,000 in the paper).
    """
    if n_effective <= 0:
        raise ValueError("need a positive effective sample size")
    return z / math.sqrt(n_effective)


def is_significant(
    coefficient: float, n_effective: int, z: float = Z_95
) -> bool:
    """Whether ``|coefficient|`` exceeds the white-noise threshold."""
    return abs(coefficient) > significance_threshold(n_effective, z)
