"""Load sweeps over (configuration x offered load), the Section-5 design.

Every Section-5 figure is produced the same way: for each policy
configuration and each offered load, run ``replications`` independent
simulations of ``transactions`` transactions and plot the mean response
time (or mean loss fraction) against the load.  ``sweep_policies``
performs exactly that: :func:`sweep_jobs` enumerates the full
``(configuration, load, replication)`` grid as declarative jobs up
front, an execution backend fans them out (possibly over processes),
and the results are reassembled per configuration and load in
deterministic order.  Both metrics are returned so that figure pairs
(9/10, 12/13) share one simulation pass.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.sla import PAPER_SLO, ServiceLevelObjective
from repro.core.spec import PolicySpec
from repro.ecommerce.config import PAPER_CONFIG, SystemConfig
from repro.ecommerce.metrics import ReplicatedResult
from repro.ecommerce.spec import ArrivalSpec
from repro.exec.backends import ExecutionBackend, resolve_backend
from repro.exec.jobs import PolicySource, ReplicationJob, execute_job
from repro.exec.progress import ProgressHook
from repro.experiments.scale import Scale
from repro.experiments.tables import Series, Table
from repro.obs.session import (
    active_trace_format,
    active_trace_level,
    current_session,
)


@dataclass(frozen=True)
class PolicyConfig:
    """A labelled policy source, e.g. ``(n=2, K=5, D=3)`` for SRAA.

    ``policy`` is anything :func:`repro.exec.jobs.build_policy`
    accepts: a picklable :class:`~repro.core.spec.PolicySpec` (required
    for process-pool sweeps) or a zero-argument factory.
    """

    label: str
    policy: PolicySource


def sraa_config(
    n: int, K: int, D: int, slo: ServiceLevelObjective = PAPER_SLO
) -> PolicyConfig:
    """An SRAA configuration labelled the way the paper labels curves."""
    return PolicyConfig(
        label=f"(n={n}, K={K}, D={D})",
        policy=PolicySpec.sraa(n, K, D, slo=slo),
    )


@dataclass
class SweepResult:
    """Results of one (configurations x loads) sweep."""

    results: Dict[str, Dict[float, ReplicatedResult]]
    loads: Tuple[float, ...]

    def response_time_table(self, title: str) -> Table:
        """The figure's 'Average Response Time' panel."""
        table = Table(
            title=title,
            x_label="load_cpus",
            y_label="avg_response_time_s",
        )
        for label, by_load in self.results.items():
            series = Series(label=label)
            for load, replicated in by_load.items():
                series.add(load, replicated.avg_response_time)
            table.add_series(series)
        return table

    def loss_table(self, title: str) -> Table:
        """The figure's 'Average Fraction of Transaction Loss' panel."""
        table = Table(
            title=title,
            x_label="load_cpus",
            y_label="loss_fraction",
        )
        for label, by_load in self.results.items():
            series = Series(label=label)
            for load, replicated in by_load.items():
                series.add(load, replicated.loss_fraction)
            table.add_series(series)
        return table


def sweep_jobs(
    configs: Sequence[PolicyConfig],
    scale: Scale,
    system_config: SystemConfig = PAPER_CONFIG,
    seed: int = 0,
    warmup: int = 0,
) -> List[ReplicationJob]:
    """The full (configuration x load x replication) job grid, in order.

    This is the sweep's seed protocol in one place (pinned by
    ``tests/experiments/test_seed_protocol.py``): replication ``i`` at
    load index ``j`` uses master seed ``seed + 1000*j + i`` for *every*
    configuration -- common random numbers, so that curve differences
    reflect the policies and not the draws.

    When a :class:`~repro.obs.session.TraceSession` is installed, every
    job is stamped with its trace level so the whole grid is traced.
    """
    trace_level = active_trace_level()
    trace_format = active_trace_format()
    jobs: List[ReplicationJob] = []
    for config in configs:
        for load_index, load in enumerate(scale.loads):
            arrival_rate = system_config.arrival_rate_for_load(load)
            for i in range(scale.replications):
                jobs.append(
                    ReplicationJob(
                        config=system_config,
                        arrival=ArrivalSpec.poisson(arrival_rate),
                        policy=config.policy,
                        n_transactions=scale.transactions,
                        seed=seed + 1_000 * load_index + i,
                        warmup=warmup,
                        tag=(config.label, load, i),
                        trace_level=trace_level,
                        trace_format=trace_format,
                    )
                )
    return jobs


def sweep_policies(
    configs: Sequence[PolicyConfig],
    scale: Scale,
    system_config: SystemConfig = PAPER_CONFIG,
    seed: int = 0,
    warmup: int = 0,
    backend: Union[ExecutionBackend, str, None] = None,
    progress: Optional[ProgressHook] = None,
) -> SweepResult:
    """Run every configuration at every load of the scale.

    The whole grid is enumerated up front (:func:`sweep_jobs`) and
    fanned out through ``backend`` (``None``: the current default
    backend -- see :func:`repro.exec.use_backend`); results are
    reassembled in grid order, so the output is independent of the
    backend and of job completion order.
    """
    jobs = sweep_jobs(
        configs, scale, system_config=system_config, seed=seed, warmup=warmup
    )
    runs = resolve_backend(backend).map(execute_job, jobs, progress=progress)
    session = current_session()
    if session is not None:
        session.ingest(jobs, runs)
    results: Dict[str, Dict[float, ReplicatedResult]] = {}
    cursor = 0
    for config in configs:
        by_load: Dict[float, ReplicatedResult] = {}
        for load in scale.loads:
            chunk = runs[cursor : cursor + scale.replications]
            cursor += scale.replications
            by_load[load] = ReplicatedResult(runs=tuple(chunk))
        results[config.label] = by_load
    return SweepResult(results=results, loads=tuple(scale.loads))
