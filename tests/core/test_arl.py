"""Exact run-length analysis of the bucket chain."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.arl import BucketChainARL, sraa_exceedance_probabilities
from repro.core.buckets import BucketChain, Transition

probabilities = st.floats(min_value=0.05, max_value=0.95)


def simulate_mean_run_length(K, D, probs, runs, seed):
    """Monte-Carlo reference: drive the real BucketChain with coin flips."""
    rng = np.random.default_rng(seed)
    probs = np.atleast_1d(np.asarray(probs, dtype=float))
    if probs.size == 1:
        probs = np.repeat(probs, K)
    lengths = []
    for _ in range(runs):
        chain = BucketChain(K, D)
        steps = 0
        while True:
            steps += 1
            exceeded = rng.random() < probs[chain.level]
            if chain.record(exceeded) is Transition.TRIGGER:
                break
            if steps > 200_000:  # pragma: no cover - guards hangs
                raise AssertionError("no trigger in 200k steps")
        lengths.append(steps)
    return float(np.mean(lengths))


class TestClosedForms:
    def test_certain_exceedance_gives_min_delay(self):
        for K, D in [(1, 1), (2, 3), (5, 3), (3, 10)]:
            arl = BucketChainARL(K, D)
            assert arl.mean_batches_to_trigger(1.0) == pytest.approx(
                (D + 1) * K
            )

    def test_k1_d1_closed_form(self):
        # States d=0,1. E0 = 1 + p E1 + (1-p) E0 ; E1 = 1 + (1-p) E0.
        # Solving: E0 = (1 + p) / p^2.
        for p in (0.2, 0.5, 0.9):
            expected = (1 + p) / p**2
            assert BucketChainARL(1, 1).mean_batches_to_trigger(
                p
            ) == pytest.approx(expected)

    def test_impossible_climb_is_infinite(self):
        arl = BucketChainARL(2, 1)
        assert arl.mean_batches_to_trigger([0.9, 0.0]) == float("inf")
        assert arl.mean_batches_to_trigger(0.0) == float("inf")

    def test_observations_scale_with_batch_size(self):
        arl = BucketChainARL(2, 2)
        batches = arl.mean_batches_to_trigger(0.7)
        assert arl.mean_observations_to_trigger(0.7, 15) == pytest.approx(
            15 * batches
        )


class TestMonteCarloAgreement:
    @pytest.mark.parametrize(
        "K, D, p",
        [(1, 1, 0.6), (1, 3, 0.7), (2, 2, 0.6), (3, 1, 0.8), (5, 3, 0.9)],
    )
    def test_scalar_probability(self, K, D, p):
        exact = BucketChainARL(K, D).mean_batches_to_trigger(p)
        empirical = simulate_mean_run_length(K, D, p, runs=3_000, seed=42)
        assert empirical == pytest.approx(exact, rel=0.1)

    def test_per_level_probabilities(self):
        # SRAA-like: bucket 0 easy to exceed, deeper buckets harder.
        probs = [0.8, 0.4, 0.3]
        exact = BucketChainARL(3, 1).mean_batches_to_trigger(probs)
        empirical = simulate_mean_run_length(
            3, 1, probs, runs=3_000, seed=7
        )
        assert empirical == pytest.approx(exact, rel=0.1)

    @given(probabilities, st.integers(1, 3), st.integers(1, 3))
    @settings(max_examples=15, deadline=None)
    def test_property_exact_at_least_min_delay(self, p, K, D):
        exact = BucketChainARL(K, D).mean_batches_to_trigger(p)
        assert exact >= (D + 1) * K - 1e-9


class TestTriggerProbabilityWithin:
    def test_zero_batches(self):
        assert BucketChainARL(2, 2).trigger_probability_within(0, 0.9) == 0.0

    def test_below_min_delay_is_zero(self):
        arl = BucketChainARL(2, 2)
        assert arl.trigger_probability_within(5, 0.99) == 0.0  # min is 6

    def test_certain_exceedance_at_min_delay(self):
        arl = BucketChainARL(2, 2)
        assert arl.trigger_probability_within(6, 1.0) == pytest.approx(1.0)

    def test_monotone_in_horizon(self):
        arl = BucketChainARL(2, 1)
        values = [
            arl.trigger_probability_within(m, 0.7) for m in (4, 8, 16, 64)
        ]
        assert all(a <= b + 1e-12 for a, b in zip(values, values[1:]))

    def test_converges_to_one(self):
        arl = BucketChainARL(1, 1)
        assert arl.trigger_probability_within(500, 0.5) == pytest.approx(
            1.0, abs=1e-6
        )

    def test_matches_geometric_tail_structure(self):
        # K=1, D=1, p: trigger needs two successive... cross-check the
        # cumulative probability against brute-force enumeration.
        p = 0.6
        arl = BucketChainARL(1, 1)
        rng = np.random.default_rng(3)
        horizon = 10
        hits = 0
        trials = 40_000
        for _ in range(trials):
            chain = BucketChain(1, 1)
            for _ in range(horizon):
                if chain.record(rng.random() < p) is Transition.TRIGGER:
                    hits += 1
                    break
        assert hits / trials == pytest.approx(
            arl.trigger_probability_within(horizon, p), abs=0.01
        )


class TestSRAAIntegration:
    def test_exceedance_probabilities_from_exact_law(self, paper_model):
        from repro.ctmc.sample_mean import SampleMeanChain

        chain = SampleMeanChain(paper_model, 2)
        probs = sraa_exceedance_probabilities(
            chain.sf, mean=5.0, std=5.0, n_buckets=5
        )
        assert probs.shape == (5,)
        # Decreasing targets difficulty: p_0 > p_1 > ... and the deep
        # buckets are very hard to exceed when healthy.
        assert np.all(np.diff(probs) < 0)
        assert probs[0] > 0.3
        assert probs[4] < 1e-3

    def test_healthy_false_trigger_interval_explains_fig10(self, paper_model):
        """SRAA(2,5,3)'s healthy ARL is astronomically long -- the
        analytical reason multi-bucket configurations lose nothing at
        low load (Fig. 10)."""
        from repro.ctmc.sample_mean import SampleMeanChain

        chain = SampleMeanChain(paper_model, 2)
        probs = sraa_exceedance_probabilities(chain.sf, 5.0, 5.0, 5)
        arl_253 = BucketChainARL(5, 3).mean_observations_to_trigger(
            probs, sample_size=2
        )
        assert arl_253 > 1e6  # far beyond any replication length
        # While K=1 single-bucket chains false-trigger constantly.
        chain15 = SampleMeanChain(paper_model, 15)
        p15 = sraa_exceedance_probabilities(chain15.sf, 5.0, 5.0, 1)
        arl_1511 = BucketChainARL(1, 1).mean_observations_to_trigger(
            p15, sample_size=15
        )
        assert arl_1511 < 200

    def test_validation(self):
        with pytest.raises(ValueError):
            BucketChainARL(0, 1)
        with pytest.raises(ValueError):
            BucketChainARL(1, 0)
        arl = BucketChainARL(2, 1)
        with pytest.raises(ValueError):
            arl.mean_batches_to_trigger([0.5])  # wrong length
        with pytest.raises(ValueError):
            arl.mean_batches_to_trigger(1.5)
        with pytest.raises(ValueError):
            arl.trigger_probability_within(-1, 0.5)
        with pytest.raises(ValueError):
            arl.mean_observations_to_trigger(0.5, 0)


class TestCostToTrigger:
    def test_constant_cost_reduces_to_batches_times_cost(self):
        arl = BucketChainARL(3, 2)
        batches = arl.mean_batches_to_trigger(0.7)
        cost = arl.mean_cost_to_trigger(0.7, [5.0, 5.0, 5.0])
        assert cost == pytest.approx(5.0 * batches, rel=1e-9)

    def test_cheaper_deep_levels_reduce_total_cost(self):
        # SARAA-style: batch size shrinks with the level.
        arl = BucketChainARL(3, 1)
        probs = [0.9, 0.9, 0.9]
        flat = arl.mean_cost_to_trigger(probs, [10.0, 10.0, 10.0])
        shrinking = arl.mean_cost_to_trigger(probs, [10.0, 7.0, 4.0])
        assert shrinking < flat

    def test_certain_exceedance_closed_form(self):
        # Deterministic climb spends exactly D+1 batches per level.
        arl = BucketChainARL(2, 2)
        cost = arl.mean_cost_to_trigger(1.0, [4.0, 2.0])
        assert cost == pytest.approx(3 * 4.0 + 3 * 2.0)

    def test_impossible_is_infinite(self):
        arl = BucketChainARL(2, 1)
        assert arl.mean_cost_to_trigger([0.5, 0.0], [1.0, 1.0]) == float(
            "inf"
        )

    def test_validation(self):
        arl = BucketChainARL(2, 1)
        with pytest.raises(ValueError):
            arl.mean_cost_to_trigger(0.5, [1.0])  # wrong length
        with pytest.raises(ValueError):
            arl.mean_cost_to_trigger(0.5, [1.0, -1.0])


class TestSARAARunLength:
    def test_saraa_faster_than_sraa_under_severe_shift(self):
        from repro.experiments.arl_exp import (
            _config_run_lengths,
            saraa_run_length,
        )

        for n, K, D in ((2, 3, 5), (2, 5, 3), (6, 5, 1)):
            saraa = saraa_run_length(n, K, D, shift_sigma=4.0)
            sraa = _config_run_lengths(n, K, D)[3]
            assert saraa < sraa

    def test_saraa_healthy_arl_long(self):
        from repro.experiments.arl_exp import saraa_run_length

        assert saraa_run_length(2, 5, 3) > 1e5
