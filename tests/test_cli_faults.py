"""The `repro faults` CLI: list, run (trace/CSV), score round trip."""

import csv

import pytest

from repro.cli import main
from repro.faults.score import SCORE_COLUMNS
from repro.faults.zoo import scenario_names
from repro.obs.exporters import read_jsonl


RUN = [
    "faults", "run", "false_aging",
    "--replications", "2",
    "--horizon", "600",
    "--seed", "0",
]


class TestFaultsList:
    def test_lists_every_builtin_scenario(self, capsys):
        assert main(["faults", "list"]) == 0
        out = capsys.readouterr().out
        for name in scenario_names():
            assert name in out


class TestFaultsRun:
    def test_prints_score_table_and_writes_csv(self, tmp_path, capsys):
        path = str(tmp_path / "scores.csv")
        assert main(RUN + ["--csv", path]) == 0
        out = capsys.readouterr().out
        assert "false_aging" in out
        assert "SRAA" in out and "SARAA" in out and "CLTA" in out
        assert "FA/hh" in out
        with open(path, newline="") as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == list(SCORE_COLUMNS)
        assert len(rows) == 1 + 3  # header + one row per policy

    def test_unknown_scenario_exits(self):
        with pytest.raises(SystemExit):
            main(["faults", "run", "nonesuch"])

    def test_unknown_policy_exits(self):
        with pytest.raises(SystemExit):
            main(RUN[:3] + ["--policies", "nonesuch"])

    def test_scenario_file_joins_the_campaign(self, tmp_path, capsys):
        from repro.faults.scenario import save_scenario
        from repro.faults.zoo import get_scenario

        import dataclasses

        custom = dataclasses.replace(
            get_scenario("aging_onset", 600.0), name="my_custom"
        )
        path = str(tmp_path / "custom.json")
        save_scenario(custom, path)
        assert (
            main(
                RUN
                + ["--scenario-file", path, "--policies", "SRAA"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "my_custom" in out


class TestFaultsRunSystems:
    def test_cluster_substrate(self, capsys):
        assert (
            main(
                RUN
                + ["--policies", "SRAA", "--system", "cluster",
                   "--nodes", "2"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "false_aging" in out and "SRAA" in out

    def test_fleet_substrate_with_scheduler(self, capsys):
        assert (
            main(
                RUN
                + ["--policies", "SRAA", "--system", "fleet",
                   "--nodes", "8", "--shards", "2",
                   "--scheduler", "rolling", "--capacity-floor", "0.75"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "false_aging" in out

    def test_invalid_fleet_layout_exits(self):
        # Pods of 4 straddle the 10-node / 2-shard boundary at node 5.
        with pytest.raises(SystemExit, match="--system"):
            main(
                RUN
                + ["--policies", "SRAA", "--system", "fleet",
                   "--nodes", "10", "--shards", "2",
                   "--scheduler", "rolling", "--pod-size", "4"]
            )


class TestFaultsScoreRoundTrip:
    def test_score_reprints_the_run_table(self, tmp_path, capsys):
        trace = str(tmp_path / "campaign.jsonl")
        assert main(RUN + ["--trace", trace]) == 0
        run_out = capsys.readouterr().out
        records = read_jsonl(trace)
        types = {r["type"] for r in records}
        assert "fault.injected" in types
        assert "run.meta" in types

        assert main(
            ["faults", "score", trace, "--horizon", "600"]
        ) == 0
        score_out = capsys.readouterr().out
        # The re-scored table matches the live table line for line.
        run_table = [
            line
            for line in run_out.splitlines()
            if line.startswith("false_aging")
        ]
        score_table = [
            line
            for line in score_out.splitlines()
            if line.startswith("false_aging")
        ]
        assert run_table == score_table
        assert len(run_table) == 3

    def test_missing_trace_exits(self):
        with pytest.raises(SystemExit):
            main(["faults", "score", "/nonexistent/trace.jsonl"])

    def test_explain_narrates_injections(self, tmp_path, capsys):
        trace = str(tmp_path / "campaign.jsonl")
        assert main(RUN + ["--trace", trace]) == 0
        capsys.readouterr()
        assert main(["explain", trace]) == 0
        out = capsys.readouterr().out
        assert "fault injected" in out
        assert "hang" in out
        assert "slowdown" in out
