"""Run-length analysis (analytical, beyond the paper)."""

from conftest import regenerate

#: Table indices from the arl experiment's notes.
K1_INDICES = (2, 4, 6)          # (3,1,5), (5,1,3), (15,1,1)
MULTI_INDICES = (0, 1, 3)       # (1,3,5), (1,5,3), (3,5,1)
DOUBLED_PAIRS = ((6, 13), (4, 11), (2, 9))  # n doubled: 15->30 family


def test_run_length_analysis(benchmark):
    result = regenerate(benchmark, "arl")
    table = result.tables[0]
    healthy = table.get_series("healthy ARL")
    severe = table.get_series("delay @ +4 sigma")
    # K=1: short healthy ARLs (false triggers -> Fig. 10's low-load
    # loss) but minimal detection delays.
    for index in K1_INDICES:
        assert healthy.value_at(index) < 1_000
    # Multi-bucket: healthy ARL effectively infinite (negligible
    # low-load loss), at the price of longer severe-shift delays.
    for index in MULTI_INDICES:
        assert healthy.value_at(index) >= 1e10
    avg_k1_delay = sum(severe.value_at(i) for i in K1_INDICES) / 3
    avg_multi_delay = sum(severe.value_at(i) for i in MULTI_INDICES) / 3
    assert avg_k1_delay < avg_multi_delay
    # Doubling n doubles the K=1 detection delay exactly (Fig. 11's
    # mechanism: the delay is (D+1)*K batches regardless of n).
    for base, doubled in DOUBLED_PAIRS:
        assert severe.value_at(doubled) == 2 * severe.value_at(base)
