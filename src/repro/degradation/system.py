"""An M/M/c queue whose capacity erodes until rejuvenated.

Model (after ref. [3]):

* ``c_max`` servers; exponential service at rate ``mu`` each.
* *Degradation events* arrive as a Poisson process of rate
  ``degradation_rate``; each disables one server (down to a floor of
  ``min_capacity``), modelling leaked resources claiming capacity.  A
  disabled server finishes its current job first (capacity is taken as
  servers free up, never by killing work).
* Arrivals from any :class:`~repro.ecommerce.workload.ArrivalProcess`
  -- the telecom setting of [3] uses predictably periodic traffic
  (:class:`~repro.ecommerce.workload.PeriodicArrivals`).
* A rejuvenation policy observes every response time; a trigger
  restores full capacity and terminates the transactions in execution
  (the same cost accounting as the Section-3 model).

Because capacity decays smoothly, the response time drifts up gradually
-- the regime trend-based and bucket detectors are meant for, in
contrast to the e-commerce model's abrupt GC stalls.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional, Set, Tuple

from repro.core.base import RejuvenationPolicy
from repro.des.engine import Simulator
from repro.des.events import Event
from repro.des.random_streams import RandomStreams
from repro.ecommerce.workload import ArrivalProcess
from repro.stats.running import OnlineMoments


class _Job:
    __slots__ = ("arrival_time", "index", "completion_event")

    def __init__(self, arrival_time: float, index: int) -> None:
        self.arrival_time = arrival_time
        self.index = index
        self.completion_event: Optional[Event] = None


@dataclass(frozen=True)
class DegradationResult:
    """Outcome of one degradable-system run."""

    arrivals: int
    completed: int
    lost: int
    avg_response_time: float
    rt_std: float
    max_response_time: float
    loss_fraction: float
    degradation_events: int
    rejuvenations: int
    final_capacity: int
    sim_duration_s: float
    response_times: Optional[Tuple[float, ...]] = None


class DegradableSystem:
    """The capacity-erosion model of ref. [3].

    Parameters
    ----------
    c_max:
        Full capacity (servers) after a rejuvenation.
    service_rate:
        Per-server exponential service rate ``mu``.
    degradation_rate:
        Poisson rate at which one unit of capacity is lost.
    min_capacity:
        Floor the erosion cannot cross (>= 1: the system degrades,
        it does not die -- the "soft failure" of the paper).
    arrivals:
        The workload (periodic traffic in the telecom setting).
    policy:
        Rejuvenation rule fed with every response time, or ``None``.
    seed:
        Master seed for the arrival/service/degradation streams.

    Examples
    --------
    >>> from repro.ecommerce.workload import PoissonArrivals
    >>> system = DegradableSystem(
    ...     c_max=8, service_rate=0.5, degradation_rate=1 / 400.0,
    ...     min_capacity=2, arrivals=PoissonArrivals(2.0), seed=3,
    ... )
    >>> result = system.run(2_000)
    >>> result.completed
    2000
    """

    def __init__(
        self,
        c_max: int,
        service_rate: float,
        degradation_rate: float,
        arrivals: ArrivalProcess,
        min_capacity: int = 1,
        policy: Optional[RejuvenationPolicy] = None,
        seed: Optional[int] = None,
    ) -> None:
        if c_max < 1:
            raise ValueError("need at least one server")
        if service_rate <= 0:
            raise ValueError("service rate must be positive")
        if degradation_rate < 0:
            raise ValueError("degradation rate must be non-negative")
        if not 1 <= min_capacity <= c_max:
            raise ValueError("min capacity must lie in [1, c_max]")
        self.c_max = int(c_max)
        self.service_rate = float(service_rate)
        self.degradation_rate = float(degradation_rate)
        self.min_capacity = int(min_capacity)
        self.arrivals = arrivals
        self.policy = policy
        self.streams = RandomStreams(seed)
        self.sim = Simulator()
        self._reset_state()

    # ------------------------------------------------------------------
    def _reset_state(self) -> None:
        self.capacity = self.c_max
        self._queue: Deque[_Job] = deque()
        self._in_service: Set[_Job] = set()
        self._arrivals_generated = 0
        self._n_target = 0
        self._completed = 0
        self._lost = 0
        self.rejuvenations = 0
        self.degradation_events = 0
        self.rejuvenation_times: List[float] = []
        self._moments = OnlineMoments()
        self._collected: Optional[List[float]] = None

    @property
    def busy_servers(self) -> int:
        """Transactions currently in service."""
        return len(self._in_service)

    # ------------------------------------------------------------------
    # Events
    # ------------------------------------------------------------------
    def _schedule_next_arrival(self) -> None:
        if self._arrivals_generated >= self._n_target:
            return
        gap = self.arrivals.interarrival(self.streams["arrivals"])
        self.sim.schedule(gap, self._on_arrival, kind="arrival")

    def _schedule_next_degradation(self) -> None:
        if self.degradation_rate <= 0:
            return
        gap = float(
            self.streams["degradation"].exponential(
                1.0 / self.degradation_rate
            )
        )
        self.sim.schedule(gap, self._on_degradation, kind="degrade")

    def _on_arrival(self) -> None:
        index = self._arrivals_generated
        self._arrivals_generated += 1
        self._schedule_next_arrival()
        self._queue.append(_Job(self.sim.now, index))
        self._dispatch()

    def _on_degradation(self) -> None:
        # Only rearm while transactions remain (otherwise the run would
        # never drain); capacity erodes to the floor and stays.
        if self.capacity > self.min_capacity:
            self.capacity -= 1
            self.degradation_events += 1
        if self.sim.queue:
            self._schedule_next_degradation()

    def _dispatch(self) -> None:
        while len(self._in_service) < self.capacity and self._queue:
            job = self._queue.popleft()
            self._in_service.add(job)
            service = float(
                self.streams["service"].exponential(1.0 / self.service_rate)
            )
            job.completion_event = self.sim.schedule(
                service, lambda j=job: self._on_completion(j), kind="done"
            )

    def _on_completion(self, job: _Job) -> None:
        self._in_service.discard(job)
        response_time = self.sim.now - job.arrival_time
        self._completed += 1
        self._moments.push(response_time)
        if self._collected is not None:
            self._collected.append(response_time)
        if self.policy is not None and self.policy.observe(response_time):
            self._rejuvenate()
        self._dispatch()

    def _rejuvenate(self) -> None:
        """Restore full capacity; transactions in execution are lost."""
        self.rejuvenations += 1
        self.rejuvenation_times.append(self.sim.now)
        for job in self._in_service:
            if job.completion_event is not None:
                self.sim.cancel(job.completion_event)
            self._lost += 1
        self._in_service.clear()
        self.capacity = self.c_max
        self._dispatch()

    # ------------------------------------------------------------------
    def run(
        self, n_transactions: int, collect_response_times: bool = False
    ) -> DegradationResult:
        """Generate ``n_transactions`` arrivals; run until all resolve."""
        if n_transactions < 1:
            raise ValueError("need at least one transaction")
        self.sim.reset()
        self.arrivals.reset()
        if self.policy is not None:
            self.policy.reset()
        self._reset_state()
        self._n_target = n_transactions
        if collect_response_times:
            self._collected = []
        self._schedule_next_arrival()
        self._schedule_next_degradation()
        self.sim.run()
        resolved = self._completed + self._lost
        if resolved != n_transactions:  # pragma: no cover - invariant
            raise AssertionError(
                f"run resolved {resolved} of {n_transactions}"
            )
        moments = self._moments
        return DegradationResult(
            arrivals=self._arrivals_generated,
            completed=self._completed,
            lost=self._lost,
            avg_response_time=moments.mean if moments.count else 0.0,
            rt_std=moments.std,
            max_response_time=moments.maximum if moments.count else 0.0,
            loss_fraction=self._lost / n_transactions,
            degradation_events=self.degradation_events,
            rejuvenations=self.rejuvenations,
            final_capacity=self.capacity,
            sim_duration_s=self.sim.now,
            response_times=(
                tuple(self._collected) if self._collected is not None else None
            ),
        )
