"""Huang et al. (1995) availability model against renewal-reward forms."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.availability.huang import HuangRejuvenationModel

rates = st.floats(min_value=1e-3, max_value=10.0)


@pytest.fixture
def model() -> HuangRejuvenationModel:
    # Ages over ~10 days, fails ~3 days later, 2 h repair, 10 min
    # rejuvenation (rates per hour).
    return HuangRejuvenationModel(
        aging_rate=1 / 240,
        failure_rate=1 / 72,
        repair_rate=1 / 2,
        rejuvenation_completion_rate=6.0,
    )


def closed_form_availability(model, rho):
    r = model.aging_rate
    lam = model.failure_rate
    up = 1 / r + 1 / (lam + rho) if rho > 0 else 1 / r + 1 / lam
    if rho > 0:
        down = (lam / (lam + rho)) / model.repair_rate + (
            rho / (lam + rho)
        ) / model.rejuvenation_completion_rate
    else:
        down = 1 / model.repair_rate
    return up / (up + down)


class TestSteadyState:
    def test_probabilities_sum_to_one(self, model):
        for rho in (0.0, 0.1, 2.0):
            pi = model.steady_state(rho)
            assert pi.sum() == pytest.approx(1.0)
            assert np.all(pi >= 0)

    def test_no_rejuvenation_state_unused_at_rate_zero(self, model):
        pi = model.steady_state(0.0)
        assert pi[3] == 0.0

    def test_matches_renewal_reward(self, model):
        for rho in (0.0, 0.05, 0.5, 5.0):
            assert model.availability(rho) == pytest.approx(
                closed_form_availability(model, rho), rel=1e-10
            )

    @given(rates, rates, rates, rates, st.floats(min_value=0, max_value=20))
    @settings(max_examples=40, deadline=None)
    def test_property_closed_form(self, r, lam, muf, mur, rho):
        model = HuangRejuvenationModel(r, lam, muf, mur)
        assert model.availability(rho) == pytest.approx(
            closed_form_availability(model, rho), rel=1e-8
        )


class TestAvailability:
    def test_fast_rejuvenation_improves_availability(self, model):
        assert model.availability(1.0) > model.availability(0.0)

    def test_downtime_quantities_consistent(self, model):
        rho = 0.3
        fraction = model.downtime_fraction(rho)
        assert fraction == pytest.approx(1.0 - model.availability(rho))
        assert model.downtime_hours_per_year(rho) == pytest.approx(
            8_760.0 * fraction
        )

    def test_slow_rejuvenation_can_hurt(self):
        # If the scheduled outage is as slow as the repair, rejuvenating
        # cannot raise availability (it only adds outages).
        model = HuangRejuvenationModel(
            aging_rate=0.1,
            failure_rate=0.01,
            repair_rate=0.5,
            rejuvenation_completion_rate=0.5,
        )
        assert model.availability(1.0) <= model.availability(0.0) + 1e-12


class TestCostOptimisation:
    def test_costly_rejuvenation_means_never(self, model):
        assert model.optimal_rejuvenation_rate(
            cost_failure=1.0, cost_rejuvenation=100.0
        ) == 0.0
        assert not model.rejuvenation_worthwhile(1.0, 100.0)

    def test_cheap_rejuvenation_means_aggressive(self, model):
        rate = model.optimal_rejuvenation_rate(
            cost_failure=100.0, cost_rejuvenation=1.0, max_rate=50.0
        )
        assert rate > 1.0
        assert model.rejuvenation_worthwhile(100.0, 1.0)

    def test_optimum_beats_neighbours(self, model):
        cost = lambda rho: model.downtime_cost_rate(rho, 20.0, 3.0)  # noqa: E731
        best = model.optimal_rejuvenation_rate(20.0, 3.0, max_rate=10.0)
        if best > 0:
            assert cost(best) <= cost(best * 0.5) + 1e-9
            assert cost(best) <= cost(min(best * 2, 10.0)) + 1e-9
        assert cost(best) <= cost(0.0) + 1e-9

    def test_cost_rate_components(self, model):
        pi = model.steady_state(0.4)
        expected = 7.0 * pi[2] + 2.0 * pi[3]
        assert model.downtime_cost_rate(0.4, 7.0, 2.0) == pytest.approx(
            expected
        )


class TestValidation:
    def test_positive_rates_required(self):
        with pytest.raises(ValueError):
            HuangRejuvenationModel(0.0, 1.0, 1.0, 1.0)
        with pytest.raises(ValueError):
            HuangRejuvenationModel(1.0, -1.0, 1.0, 1.0)

    def test_negative_rejuvenation_rate_rejected(self, model):
        with pytest.raises(ValueError):
            model.availability(-0.1)

    def test_negative_costs_rejected(self, model):
        with pytest.raises(ValueError):
            model.downtime_cost_rate(0.1, -1.0, 1.0)

    def test_bad_max_rate(self, model):
        with pytest.raises(ValueError):
            model.optimal_rejuvenation_rate(1.0, 1.0, max_rate=0.0)
