"""Named, independent random-number substreams.

Simulation studies that vary one factor (say, the rejuvenation policy) want
every other source of randomness held fixed across runs.  The standard
technique is *common random numbers*: give each stochastic process its own
stream, derived deterministically from (seed, stream name), so that changing
how one process is consumed does not perturb the draws seen by another.

``RandomStreams`` derives each named stream from a :class:`numpy.random.SeedSequence`
spawned with a stable hash of the stream name, which guarantees statistical
independence between streams (the SeedSequence contract) and reproducibility
across processes and platforms.
"""

from __future__ import annotations

import zlib
from typing import Dict, Iterable, Optional

import numpy as np


def _stable_key(name: str) -> int:
    """A platform-stable 32-bit key for a stream name.

    Python's builtin ``hash`` is salted per process, so it cannot be used to
    derive reproducible seeds; CRC-32 is stable everywhere.
    """
    return zlib.crc32(name.encode("utf-8"))


class RandomStreams:
    """A factory of independent ``numpy.random.Generator`` substreams.

    Parameters
    ----------
    seed:
        Master seed.  Two ``RandomStreams`` built from the same seed hand out
        identical streams for identical names.

    Examples
    --------
    >>> streams = RandomStreams(seed=42)
    >>> arrivals = streams["arrivals"]
    >>> service = streams["service"]
    >>> a = arrivals.exponential(1.0)          # independent of `service`
    >>> streams2 = RandomStreams(seed=42)
    >>> float(streams2["arrivals"].exponential(1.0)) == float(a)
    True
    """

    def __init__(self, seed: Optional[int] = None) -> None:
        self._root = np.random.SeedSequence(seed)
        self.seed = seed
        self._generators: Dict[str, np.random.Generator] = {}

    def __getitem__(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use."""
        generator = self._generators.get(name)
        if generator is None:
            child = np.random.SeedSequence(
                entropy=self._root.entropy,
                spawn_key=tuple(self._root.spawn_key) + (_stable_key(name),),
            )
            generator = np.random.default_rng(child)
            self._generators[name] = generator
        return generator

    def names(self) -> Iterable[str]:
        """Names of streams created so far."""
        return tuple(self._generators)

    def spawn(self, replication: int) -> "RandomStreams":
        """Derive a stream family for an independent replication.

        Replication ``i`` of an experiment should not share draws with
        replication ``j``; spawning folds the replication index into the
        entropy while keeping the per-name structure.
        """
        if replication < 0:
            raise ValueError("replication index must be non-negative")
        base = self._root.entropy
        if base is None:  # pragma: no cover - SeedSequence always sets entropy
            base = 0
        child = RandomStreams.__new__(RandomStreams)
        child._root = np.random.SeedSequence(
            entropy=base, spawn_key=(0x5EED, replication)
        )
        child.seed = None
        child._generators = {}
        return child
