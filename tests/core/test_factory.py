"""String-keyed policy construction."""

import pytest

from repro.core.baselines import NeverRejuvenate, PeriodicRejuvenation
from repro.core.clta import CLTA
from repro.core.factory import available_policies, make_policy
from repro.core.saraa import SARAA
from repro.core.sla import PAPER_SLO
from repro.core.sraa import SRAA, StaticRejuvenation
from repro.core.threshold import DeterministicThreshold, RiskBasedThreshold


class TestFactory:
    def test_available_policies_sorted_and_complete(self):
        names = available_policies()
        assert names == tuple(sorted(names))
        assert {"sraa", "saraa", "clta", "static", "never"} <= set(names)

    def test_every_listed_policy_constructs(self):
        for name in available_policies():
            policy = make_policy(name, PAPER_SLO)
            assert policy.observe(5.0) in (True, False)

    def test_sraa_parameters(self):
        policy = make_policy("sraa", PAPER_SLO, n=2, K=5, D=3)
        assert isinstance(policy, SRAA)
        assert policy.sample_size == 2
        assert policy.chain.n_buckets == 5
        assert policy.chain.depth == 3

    def test_saraa_parameters(self):
        policy = make_policy("saraa", PAPER_SLO, n=10, K=3, D=1)
        assert isinstance(policy, SARAA)
        assert policy.original_sample_size == 10

    def test_clta_parameters(self):
        policy = make_policy("clta", PAPER_SLO, n=15, z=2.33)
        assert isinstance(policy, CLTA)
        assert policy.sample_size == 15
        assert policy.z == 2.33

    def test_static(self):
        policy = make_policy("static", PAPER_SLO, K=3, D=5)
        assert isinstance(policy, StaticRejuvenation)
        assert policy.sample_size == 1

    def test_baselines(self):
        assert isinstance(make_policy("never", PAPER_SLO), NeverRejuvenate)
        periodic = make_policy("periodic", PAPER_SLO, period=50)
        assert isinstance(periodic, PeriodicRejuvenation)
        assert periodic.period == 50

    def test_thresholds(self):
        det = make_policy("threshold", PAPER_SLO, limit=12.0)
        assert isinstance(det, DeterministicThreshold)
        assert det.threshold == 12.0
        risk = make_policy("risk-threshold", PAPER_SLO, soft=8.0, hard=30.0)
        assert isinstance(risk, RiskBasedThreshold)
        assert (risk.soft_limit, risk.hard_limit) == (8.0, 30.0)

    def test_threshold_defaults_derive_from_slo(self):
        det = make_policy("threshold", PAPER_SLO)
        assert det.threshold == PAPER_SLO.shift_threshold(3)

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown policy"):
            make_policy("quantum", PAPER_SLO)


class TestDetectorConstruction:
    def test_adaptive_parameters(self):
        from repro.detect.adaptive import AdaptiveThresholdPolicy

        policy = make_policy(
            "adaptive", PAPER_SLO, n=3, window=32, k=3.5, patience=4
        )
        assert isinstance(policy, AdaptiveThresholdPolicy)
        assert policy.buffer.size == 3
        assert policy.baseline.size == 32
        assert policy.k_sigmas == 3.5
        assert policy.patience == 4

    def test_entropy_parameters(self):
        from repro.detect.entropy import EntropyPolicy

        policy = make_policy(
            "entropy", PAPER_SLO, window=64, bins=8, drift=0.4, warmup=64
        )
        assert isinstance(policy, EntropyPolicy)
        assert (policy.window, policy.bins) == (64, 8)
        assert policy.drift == 0.4

    def test_predictor_parameters(self):
        from repro.detect.predictor import TrendProjectionPolicy

        policy = make_policy(
            "predictor", PAPER_SLO, n=4, lookahead=8, bound=30.0
        )
        assert isinstance(policy, TrendProjectionPolicy)
        assert policy.buffer.size == 4
        assert policy.lookahead == 8
        assert policy.bound == 30.0

    def test_predictor_default_bound_follows_slo(self):
        policy = make_policy("predictor", PAPER_SLO)
        assert policy.bound == PAPER_SLO.shift_threshold(4)


class TestParameterSchema:
    def test_schema_covers_every_policy_in_order(self):
        from repro.core.factory import policy_schema

        schema = policy_schema()
        assert [entry["name"] for entry in schema] == list(
            available_policies()
        )
        for entry in schema:
            assert entry["summary"]
            for param in entry["params"]:
                assert set(param) == {"name", "type", "default", "doc"}

    def test_policy_parameters_raises_on_unknown(self):
        from repro.core.factory import policy_parameters

        with pytest.raises(ValueError, match="unknown policy"):
            policy_parameters("quantum")

    def test_unknown_parameter_rejected_with_accepted_list(self):
        with pytest.raises(ValueError, match="accepted"):
            make_policy("sraa", PAPER_SLO, n=2, bogus=1)
        with pytest.raises(ValueError, match="accepted"):
            make_policy("adaptive", PAPER_SLO, window=16, k_sigmas=3.0)

    def test_schema_params_match_builder_acceptance(self):
        # Every advertised parameter must actually be accepted by the
        # builder it documents (defaults exercise the full set).
        from repro.core.factory import policy_parameters

        by_type = {"int": 8, "float": 0.5}
        special = {"hard": 60.0, "warmup": 64, "window": 16}
        for name in available_policies():
            params = {
                p["name"]: special.get(p["name"], by_type[p["type"]])
                for p in policy_parameters(name)
            }
            policy = make_policy(name, PAPER_SLO, **params)
            assert policy.observe(5.0) in (True, False)
