"""Trend detection for degradation metrics.

The paper's survey (Section 2) points at measurement-based rejuvenation
work built on "time series analysis, trend detection and estimation"
(Trivedi, Vaidyanathan & Goševa-Popstojanova 2000) and at IBM Director's
"statistical estimation of resource exhaustion" (Castelli et al. 2001).
This module provides the two standard non-parametric tools those
approaches rest on, used by the :class:`~repro.core.trend.TrendPolicy`
and :class:`~repro.core.proactive.ResourceExhaustionPolicy` decision
rules:

* the **Mann-Kendall test** -- is there a monotonic trend at all?
* the **Theil-Sen estimator** -- how steep is it (robust to outliers)?
* **least-squares slope** with its standard error, for the parametric
  extrapolations (time to resource exhaustion).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np
from scipy.stats import norm


@dataclass(frozen=True)
class TrendResult:
    """Outcome of a Mann-Kendall trend test."""

    statistic: float     #: the S statistic (sum of pairwise signs)
    z_score: float       #: normal-approximation standardisation of S
    p_value: float       #: two-sided p-value
    slope: float         #: Theil-Sen slope (units per observation)

    @property
    def increasing(self) -> bool:
        """Whether the detected tendency is upward."""
        return self.statistic > 0

    def significant(self, alpha: float = 0.05) -> bool:
        """Whether the trend is significant at level ``alpha``."""
        if not 0.0 < alpha < 1.0:
            raise ValueError("alpha must lie in (0, 1)")
        return self.p_value < alpha


def mann_kendall(values: Sequence[float]) -> TrendResult:
    """Mann-Kendall test with the normal approximation and tie correction.

    Parameters
    ----------
    values:
        The series, in time order; at least 3 observations.

    Notes
    -----
    ``S = sum_{i<j} sign(x_j - x_i)``; under H0 (no trend) ``S`` has mean
    0 and variance ``n(n-1)(2n+5)/18`` minus a tie correction.  The
    continuity-corrected z-score is compared to the standard normal.
    """
    x = np.asarray(values, dtype=float)
    n = x.size
    if n < 3:
        raise ValueError("need at least 3 observations for a trend test")
    diffs = np.sign(x[None, :] - x[:, None])
    s = float(np.triu(diffs, k=1).sum())
    # Tie correction: group sizes of equal values.
    _, counts = np.unique(x, return_counts=True)
    tie_term = float((counts * (counts - 1) * (2 * counts + 5)).sum())
    variance = (n * (n - 1) * (2 * n + 5) - tie_term) / 18.0
    if variance <= 0:
        # All values identical: no evidence of a trend.
        return TrendResult(statistic=s, z_score=0.0, p_value=1.0, slope=0.0)
    if s > 0:
        z = (s - 1.0) / math.sqrt(variance)
    elif s < 0:
        z = (s + 1.0) / math.sqrt(variance)
    else:
        z = 0.0
    p = 2.0 * (1.0 - float(norm.cdf(abs(z))))
    return TrendResult(
        statistic=s, z_score=z, p_value=p, slope=theil_sen_slope(x)
    )


def theil_sen_slope(values: Sequence[float]) -> float:
    """Median of all pairwise slopes (robust trend magnitude)."""
    x = np.asarray(values, dtype=float)
    n = x.size
    if n < 2:
        raise ValueError("need at least 2 observations for a slope")
    i, j = np.triu_indices(n, k=1)
    slopes = (x[j] - x[i]) / (j - i)
    return float(np.median(slopes))


def least_squares_slope(
    times: Sequence[float], values: Sequence[float]
) -> Tuple[float, float, float]:
    """OLS fit ``value ~ intercept + slope * time``.

    Returns
    -------
    (slope, intercept, slope_stderr)
        ``slope_stderr`` is 0.0 for a perfect fit and ``inf`` when only
        two points are available.
    """
    t = np.asarray(times, dtype=float)
    y = np.asarray(values, dtype=float)
    if t.shape != y.shape or t.ndim != 1:
        raise ValueError("times and values must be equal-length vectors")
    n = t.size
    if n < 2:
        raise ValueError("need at least 2 observations for a fit")
    t_mean, y_mean = t.mean(), y.mean()
    t_centred = t - t_mean
    denominator = float(t_centred @ t_centred)
    if denominator == 0.0:
        raise ValueError("all time stamps are identical")
    slope = float(t_centred @ (y - y_mean)) / denominator
    intercept = y_mean - slope * t_mean
    if n == 2:
        return slope, intercept, float("inf")
    residuals = y - (intercept + slope * t)
    sigma2 = float(residuals @ residuals) / (n - 2)
    stderr = math.sqrt(sigma2 / denominator)
    return slope, intercept, stderr


def time_to_level(
    times: Sequence[float],
    values: Sequence[float],
    level: float,
    direction: str = "falling",
) -> float:
    """Extrapolated time at which the OLS fit crosses ``level``.

    This is IBM Director's resource-exhaustion estimate: fit the
    resource over time and predict when it hits the critical level.

    Parameters
    ----------
    direction:
        ``"falling"`` -- the level is a floor and exhaustion means
        dropping to or below it (free heap draining); ``"rising"`` --
        the level is a ceiling and exhaustion means climbing to or
        above it (memory usage growing).

    Returns
    -------
    float
        The predicted crossing time; the latest sample time when the
        fit says the level is already breached; ``inf`` when the trend
        points away from the level (or is flat above/below it).
    """
    if direction not in ("falling", "rising"):
        raise ValueError("direction must be 'falling' or 'rising'")
    slope, intercept, _ = least_squares_slope(times, values)
    latest = float(np.asarray(times, dtype=float)[-1])
    fitted_now = intercept + slope * latest
    breached = fitted_now <= level if direction == "falling" else (
        fitted_now >= level
    )
    if breached:
        return latest
    moving_towards = slope < 0.0 if direction == "falling" else slope > 0.0
    if not moving_towards:
        return float("inf")
    crossing = (level - intercept) / slope
    return max(crossing, latest)
