"""The event taxonomy and the per-replication tracer."""

import pytest

from repro.obs.events import (
    DECISION_TYPES,
    ENGINE_TYPES,
    POLICY_TRIGGER,
    REQUEST_COMPLETE,
    SPAN_TYPES,
    TraceEvent,
    category_of,
)
from repro.obs.tracer import TRACE_LEVELS, Tracer, make_tracer, validate_level


class TestTraceEvent:
    def test_round_trips_through_dict(self):
        event = TraceEvent(1.5, REQUEST_COMPLETE, "system", {"index": 3})
        assert TraceEvent.from_dict(event.to_dict()) == event

    def test_dict_shape(self):
        record = TraceEvent(2.0, POLICY_TRIGGER, "policy:SRAA", {}).to_dict()
        assert set(record) == {"ts", "type", "source", "data"}

    def test_category(self):
        assert TraceEvent(0.0, REQUEST_COMPLETE, "s", {}).category == "span"
        assert category_of(POLICY_TRIGGER) == "decision"
        assert category_of("run.meta") == "meta"

    def test_taxonomy_is_disjoint(self):
        assert not set(SPAN_TYPES) & set(DECISION_TYPES)
        assert not set(SPAN_TYPES) & set(ENGINE_TYPES)


class TestTracerLevels:
    def test_known_levels(self):
        assert TRACE_LEVELS == ("spans", "decisions", "all")

    @pytest.mark.parametrize("level", TRACE_LEVELS)
    def test_validate_accepts(self, level):
        assert validate_level(level) == level

    def test_validate_rejects_unknown(self):
        with pytest.raises(ValueError, match="trace level"):
            validate_level("verbose")

    def test_flag_matrix(self):
        assert (Tracer("spans").spans, Tracer("spans").decisions) == (
            True,
            False,
        )
        assert (
            Tracer("decisions").spans,
            Tracer("decisions").decisions,
        ) == (False, True)
        everything = Tracer("all")
        assert everything.spans and everything.decisions and everything.engine
        assert not Tracer("spans").engine and not Tracer("decisions").engine

    def test_make_tracer_none_is_none(self):
        assert make_tracer(None) is None
        assert isinstance(make_tracer("spans"), Tracer)


class TestTracerBuffer:
    def test_emit_appends_typed_events(self):
        tracer = Tracer("all")
        tracer.emit(1.0, REQUEST_COMPLETE, "system", index=7, response_time=2.5)
        (event,) = tracer.events
        assert event.ts == 1.0
        assert event.etype == REQUEST_COMPLETE
        assert event.data == {"index": 7, "response_time": 2.5}

    def test_clear(self):
        tracer = Tracer("all")
        tracer.emit(0.0, REQUEST_COMPLETE, "system")
        tracer.clear()
        assert tracer.events == []

    def test_events_are_picklable(self):
        import pickle

        tracer = Tracer("spans")
        tracer.emit(3.0, REQUEST_COMPLETE, "system", index=1)
        assert pickle.loads(pickle.dumps(tracer.events)) == tracer.events
