"""The SRAA parameter studies: Figures 9-14 (Sections 5.1-5.4).

All four experiments share the same structure: a family of ``(n, K, D)``
configurations with a fixed product ``n * K * D`` is swept over the
offered-load axis, reporting average response time and fraction of
transactions lost.  Section 5.1 uses product 15; Sections 5.2-5.4 double
one parameter at a time (product 30) to isolate its effect.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.experiments.scale import Scale
from repro.experiments.sweep import sraa_config, sweep_policies
from repro.experiments.tables import ExperimentResult

#: Section 5.1: n*K*D = 15.
CONFIGS_NKD15: Tuple[Tuple[int, int, int], ...] = (
    (1, 3, 5), (1, 5, 3), (3, 1, 5), (3, 5, 1), (5, 1, 3), (5, 3, 1),
    (15, 1, 1),
)
#: Section 5.2: sample size doubled (n*K*D = 30).
CONFIGS_SAMPLE_DOUBLED: Tuple[Tuple[int, int, int], ...] = (
    (2, 3, 5), (2, 5, 3), (6, 1, 5), (6, 5, 1), (10, 1, 3), (10, 3, 1),
    (30, 1, 1),
)
#: Section 5.3: bucket depth doubled (n*K*D = 30).
CONFIGS_DEPTH_DOUBLED: Tuple[Tuple[int, int, int], ...] = (
    (1, 3, 10), (1, 5, 6), (3, 1, 10), (3, 5, 2), (5, 1, 6), (5, 3, 2),
    (15, 1, 2),
)
#: Section 5.4: number of buckets doubled (n*K*D = 30).
CONFIGS_BUCKETS_DOUBLED: Tuple[Tuple[int, int, int], ...] = (
    (1, 6, 5), (1, 10, 3), (3, 2, 5), (3, 10, 1), (5, 6, 1), (15, 2, 1),
    (15, 1, 2),
)


def _run_sraa_family(
    experiment_id: str,
    description: str,
    configs: Sequence[Tuple[int, int, int]],
    scale: Scale,
    seed: int,
    rt_title: str,
    loss_title: str,
    expectations: Sequence[str],
) -> ExperimentResult:
    sweep = sweep_policies(
        [sraa_config(n, K, D) for n, K, D in configs], scale, seed=seed
    )
    return ExperimentResult(
        experiment_id=experiment_id,
        description=description,
        tables=[
            sweep.response_time_table(rt_title),
            sweep.loss_table(loss_title),
        ],
        paper_expectations=list(expectations),
    )


def run_fig09_10(scale: Scale, seed: int = 0) -> ExperimentResult:
    """Figures 9 and 10: SRAA with ``n * K * D = 15``."""
    return _run_sraa_family(
        "fig09_10",
        "SRAA response time (Fig. 9) and transaction loss (Fig. 10), "
        "n*K*D = 15",
        CONFIGS_NKD15,
        scale,
        seed,
        rt_title="Fig. 9: SRAA average response time, n*K*D = 15",
        loss_title="Fig. 10: SRAA fraction of transaction loss, n*K*D = 15",
        expectations=[
            "dichotomy: the K=1 configurations (3,1,5), (5,1,3), (15,1,1) "
            "give better response times over the whole range than the "
            "multi-bucket ones (1,3,5), (1,5,3), (3,5,1), (5,3,1)",
            "the K=1 improvement costs a larger loss fraction at low "
            "loads, and a lower loss fraction at high loads",
            "multi-bucket configurations tolerate bursts at low loads "
            "with negligible transaction loss",
        ],
    )


def run_fig11(scale: Scale, seed: int = 0) -> ExperimentResult:
    """Figure 11: impact of doubling the sample size."""
    return _run_sraa_family(
        "fig11",
        "SRAA response time with the sample size doubled, n*K*D = 30",
        CONFIGS_SAMPLE_DOUBLED,
        scale,
        seed,
        rt_title="Fig. 11: SRAA average response time, sample size doubled",
        loss_title="SRAA loss, sample size doubled (companion to Fig. 11)",
        expectations=[
            "doubling the sample size hurts response time: rejuvenation "
            "triggers later because a larger sample takes longer to "
            "collect",
            "paper examples at 9.0 CPUs: (15,1,1) -> 6.2 s vs (30,1,1) -> "
            "9.9 s; (3,5,1) -> 10.45 s vs (6,5,1) -> 14.3 s",
        ],
    )


def run_fig12_13(scale: Scale, seed: int = 0) -> ExperimentResult:
    """Figures 12 and 13: impact of doubling the bucket depth."""
    return _run_sraa_family(
        "fig12_13",
        "SRAA response time (Fig. 12) and loss (Fig. 13) with the bucket "
        "depth doubled, n*K*D = 30",
        CONFIGS_DEPTH_DOUBLED,
        scale,
        seed,
        rt_title="Fig. 12: SRAA average response time, bucket depth doubled",
        loss_title="Fig. 13: SRAA fraction of transaction loss, depth doubled",
        expectations=[
            "doubling the bucket depth hurts response time less severely "
            "than doubling the sample size (Fig. 12 vs Fig. 11)",
            "it decreases the loss fraction for multi-bucket "
            "configurations: (1,3,10), (1,5,6), (5,3,2) lose a negligible "
            "fraction at 0.5 CPUs, while the K=1 configurations (3,1,10), "
            "(5,1,6), (15,1,2) show measurable loss there",
        ],
    )


def run_fig14(scale: Scale, seed: int = 0) -> ExperimentResult:
    """Figure 14: impact of doubling the number of buckets."""
    return _run_sraa_family(
        "fig14",
        "SRAA response time with the number of buckets doubled, "
        "n*K*D = 30",
        CONFIGS_BUCKETS_DOUBLED,
        scale,
        seed,
        rt_title="Fig. 14: SRAA average response time, buckets doubled",
        loss_title="SRAA loss, buckets doubled (companion to Fig. 14)",
        expectations=[
            "doubling the number of buckets hurts response time: at 9.0 "
            "CPUs the paper reports (15,1,1) -> 6.2 s vs (15,2,1) -> "
            "11.05 s and (3,5,1) -> 10.45 s vs (3,10,1) -> 14.9 s",
            "but it yields the best loss/RT trade-off: (3,2,5) has "
            "negligible loss at 0.5 CPUs with a reasonable 10.3 s at 9.0",
        ],
    )
