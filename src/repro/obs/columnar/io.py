"""On-disk container for columnar traces.

Layout (all integers little-endian)::

    8 bytes   magic  b"RCOLTRC1"
    ...       column arrays, raw C-order bytes, each 8-byte aligned
    ...       footer: one UTF-8 JSON object
    8 bytes   u64 footer byte length
    8 bytes   trailer magic b"RCOLEND1"

The footer carries everything except the bulk data: format version,
the four string dictionaries (event types, sources, payload strings,
raw JSON fragments), the shape table, an array table (name, dtype,
byte offset, element count per column) and the *segment index* -- one
``{rows: [start, stop], events, ts_min, ts_max, kinds}`` entry per
source batch, where ``kinds`` is a bitmap over the event-type
dictionary.  Readers parse the footer first and can skip whole
segments on a time-range or kind filter without touching their bytes.

Plain files are mapped with ``numpy.memmap`` so loading a trace costs
one footer parse regardless of size; ``.gz`` paths are transparently
(de)compressed whole -- the same convention as the JSONL exporters.
The arrays are written in fixed little-endian dtypes, so the bytes a
given trace produces are platform-independent (and serial vs
process-pool runs of the same campaign produce byte-identical files).
"""

from __future__ import annotations

import gzip
import io as _io
import json
import os
from typing import Any, BinaryIO, Dict, List, Tuple

import numpy as np

from .store import ColumnarTrace

MAGIC = b"RCOLTRC1"
TRAILER = b"RCOLEND1"
FORMAT_VERSION = 1

#: (attribute name, on-disk little-endian dtype) for every bulk column.
_ARRAYS: Tuple[Tuple[str, str], ...] = (
    ("run", "<i8"),
    ("ts", "<f8"),
    ("type_id", "<u4"),
    ("source_id", "<u4"),
    ("shape_id", "<u4"),
    ("ints_off", "<u8"),
    ("floats_off", "<u8"),
    ("strs_off", "<u8"),
    ("jsons_off", "<u8"),
    ("ints", "<i8"),
    ("floats", "<f8"),
    ("strs", "<u4"),
    ("jsons", "<u4"),
)

_ALIGN = 8


def _is_gz(path: str) -> bool:
    return str(path).endswith(".gz")


def write_columnar(trace: ColumnarTrace, path: str) -> None:
    """Write ``trace`` to ``path`` (gzip-compressed on a ``.gz`` suffix)."""
    buffer = _io.BytesIO()
    _write_stream(trace, buffer)
    payload = buffer.getvalue()
    if _is_gz(path):
        # mtime=0 keeps repeated writes of the same trace byte-identical.
        with open(path, "wb") as handle:
            with gzip.GzipFile(
                fileobj=handle, mode="wb", mtime=0
            ) as zipped:
                zipped.write(payload)
    else:
        with open(path, "wb") as handle:
            handle.write(payload)


def _write_stream(trace: ColumnarTrace, out: BinaryIO) -> None:
    out.write(MAGIC)
    position = len(MAGIC)
    table: List[Dict[str, Any]] = []
    for name, dtype in _ARRAYS:
        pad = (-position) % _ALIGN
        if pad:
            out.write(b"\0" * pad)
            position += pad
        array = np.ascontiguousarray(
            getattr(trace, name), dtype=np.dtype(dtype)
        )
        raw = array.tobytes()
        table.append(
            {
                "name": name,
                "dtype": dtype,
                "offset": position,
                "count": int(array.shape[0]),
            }
        )
        out.write(raw)
        position += len(raw)
    footer = {
        "version": FORMAT_VERSION,
        "arrays": table,
        "types": list(trace.types),
        "sources": list(trace.sources),
        "strings": list(trace.strings),
        "fragments": list(trace.fragments),
        "shapes": [
            [kind, [[key, tag] for key, tag in fields]]
            for kind, fields in trace.shapes
        ],
        "segments": [
            {
                "rows": [start, stop],
                "events": stop - start,
                "ts_min": ts_min,
                "ts_max": ts_max,
                "kinds": kind_mask,
            }
            for start, stop, ts_min, ts_max, kind_mask in trace.segments
        ],
    }
    encoded = json.dumps(
        footer, separators=(",", ":"), sort_keys=True
    ).encode("utf-8")
    out.write(encoded)
    out.write(len(encoded).to_bytes(8, "little"))
    out.write(TRAILER)


def _trace_from_bytes(data: Any) -> ColumnarTrace:
    """Build a trace over a bytes-like buffer (mmap or decompressed)."""
    size = len(data)
    if size < len(MAGIC) + 16 or bytes(data[: len(MAGIC)]) != MAGIC:
        raise ValueError("not a columnar trace (bad magic)")
    if bytes(data[size - 8 : size]) != TRAILER:
        raise ValueError("truncated columnar trace (bad trailer)")
    footer_len = int.from_bytes(bytes(data[size - 16 : size - 8]), "little")
    footer_start = size - 16 - footer_len
    if footer_start < len(MAGIC):
        raise ValueError("corrupt columnar trace (bad footer length)")
    footer = json.loads(bytes(data[footer_start : size - 16]))
    if footer.get("version") != FORMAT_VERSION:
        raise ValueError(
            "unsupported columnar trace version: %r"
            % (footer.get("version"),)
        )
    arrays: Dict[str, np.ndarray] = {}
    for entry in footer["arrays"]:
        dtype = np.dtype(entry["dtype"])
        start = entry["offset"]
        stop = start + entry["count"] * dtype.itemsize
        arrays[entry["name"]] = np.frombuffer(
            data, dtype=dtype, count=entry["count"], offset=start
        )
        if stop > footer_start:
            raise ValueError("corrupt columnar trace (array overrun)")
    return ColumnarTrace(
        types=list(footer["types"]),
        sources=list(footer["sources"]),
        strings=list(footer["strings"]),
        fragments=list(footer["fragments"]),
        shapes=[
            (kind, tuple((key, tag) for key, tag in fields))
            for kind, fields in footer["shapes"]
        ],
        segments=[
            (
                segment["rows"][0],
                segment["rows"][1],
                segment["ts_min"],
                segment["ts_max"],
                segment["kinds"],
            )
            for segment in footer["segments"]
        ],
        **arrays,
    )


def read_columnar(path: str) -> ColumnarTrace:
    """Load a columnar trace (gz-aware; plain files are memory-mapped)."""
    if _is_gz(path):
        with gzip.open(path, "rb") as handle:
            return _trace_from_bytes(handle.read())
    data = np.memmap(path, dtype=np.uint8, mode="r")
    return _trace_from_bytes(data)


def read_footer(path: str) -> Dict[str, Any]:
    """Parse only the footer (dictionaries + segment index), cheaply."""
    if _is_gz(path):
        with gzip.open(path, "rb") as handle:
            data = handle.read()
        size = len(data)
        footer_len = int.from_bytes(data[size - 16 : size - 8], "little")
        return json.loads(data[size - 16 - footer_len : size - 16])
    with open(path, "rb") as handle:
        handle.seek(0, os.SEEK_END)
        size = handle.tell()
        handle.seek(size - 16)
        tail = handle.read(16)
        if tail[8:] != TRAILER:
            raise ValueError("truncated columnar trace (bad trailer)")
        footer_len = int.from_bytes(tail[:8], "little")
        handle.seek(size - 16 - footer_len)
        return json.loads(handle.read(footer_len))


def sniff_format(path: str) -> str:
    """``"columnar"`` or ``"jsonl"`` by magic bytes (gz-transparent)."""
    with open(path, "rb") as handle:
        head = handle.read(2)
        if head == b"\x1f\x8b":
            handle.seek(0)
            with gzip.open(handle, "rb") as zipped:
                head = zipped.read(len(MAGIC))
        else:
            head += handle.read(len(MAGIC) - len(head))
    return "columnar" if head[: len(MAGIC)] == MAGIC else "jsonl"
