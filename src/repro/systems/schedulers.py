"""Fleet-level rejuvenation schedulers (rolling, canary, blast radius).

The cluster layer's :class:`~repro.cluster.coordinator.RollingCoordinator`
arbitrates trigger requests with two knobs: a cluster-wide minimum gap
and an absolute cap on concurrently-down nodes.  At fleet scale the
operator vocabulary is richer -- Guo et al. schedule restarts around
deadlines, and container platforms roll restarts pod by pod -- so this
module generalises the coordinator into a declarative, picklable
:class:`SchedulerSpec` that builds one of three disciplines:

``rolling``
    Rolling restarts under a **capacity floor**: at most
    ``floor((1 - capacity_floor) * n_nodes)`` nodes may be inside
    rejuvenation downtime at once (composable with an absolute
    ``max_nodes_down`` cap), optionally spaced ``min_gap_s`` apart.
``canary``
    **Canary-first** rejuvenation: the first trigger of a wave is
    granted alone; every other request is denied until the canary's
    downtime plus ``canary_soak_s`` has elapsed.  Then the wave opens
    under the rolling limits.  A wave with no grant for
    ``wave_quiet_s`` closes, and the next trigger starts a new canary.
``unrestricted``
    Grant everything (the cluster layer's default), still recording
    the grant log so invariants stay checkable.

Both disciplines additionally honour a **blast radius**: with
``pod_size`` set, nodes are grouped into pods of ``pod_size``
consecutive *global* indices and at most ``max_down_per_pod`` nodes of
any one pod may be down simultaneously (the two-layer container/pod
aging stack of Bai et al.: losing a whole pod is the failure mode the
limit rules out).

In a sharded :class:`~repro.systems.fleet.FleetSystem` each shard
builds its own coordinator from the same spec -- shards run in
independent processes and cannot arbitrate across the wire -- so the
capacity floor and ``max_nodes_down`` are enforced *per shard* (the
shard is the coordination domain), while pods are laid out on global
node indices; the fleet refuses pod layouts that straddle shard
boundaries so the per-pod cap stays exact.

Every coordinator records a grant log of ``(time, global_node,
down_until)`` tuples; tests replay it to assert the capacity-floor and
blast-radius invariants held throughout a run.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

#: The scheduler disciplines a spec may name.
SCHEDULER_KINDS: Tuple[str, ...] = ("rolling", "canary", "unrestricted")

#: Effectively-unbounded cap (mirrors UnrestrictedCoordinator).
_UNBOUNDED = 10**9


@dataclass(frozen=True)
class SchedulerSpec:
    """A declarative, picklable fleet-rejuvenation scheduler.

    Plain data only, so it rides inside job and system specs across
    process boundaries; :meth:`build` makes one fresh coordinator per
    shard (or per cluster).

    Parameters
    ----------
    kind:
        ``rolling``, ``canary`` or ``unrestricted``.
    min_gap_s:
        Minimum simulated time between any two grants in the domain.
    max_nodes_down:
        Absolute cap on concurrently-down nodes (``None`` = no cap).
    capacity_floor:
        Fraction of the domain's nodes that must stay up: a floor of
        0.8 on a 10-node shard allows at most 2 nodes down at once.
        ``None`` disables the floor.
    pod_size:
        Blast-radius domain: consecutive global node indices grouped
        ``pod_size`` apart.  ``None`` disables pod limits.
    max_down_per_pod:
        Concurrently-down cap within one pod (default 1).
    canary_soak_s:
        ``canary`` only: extra soak time after the canary's downtime
        ends before the wave opens.
    wave_quiet_s:
        ``canary`` only: a wave with no grant for this long closes,
        and the next trigger starts a fresh canary cycle (``None``
        keeps the wave open to the end of the run).
    """

    kind: str = "rolling"
    min_gap_s: float = 0.0
    max_nodes_down: Optional[int] = None
    capacity_floor: Optional[float] = None
    pod_size: Optional[int] = None
    max_down_per_pod: int = 1
    canary_soak_s: float = 0.0
    wave_quiet_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.kind not in SCHEDULER_KINDS:
            raise ValueError(
                f"unknown scheduler kind {self.kind!r}; expected one of "
                f"{SCHEDULER_KINDS}"
            )
        if self.min_gap_s < 0:
            raise ValueError("minimum gap must be non-negative")
        if self.max_nodes_down is not None and self.max_nodes_down < 1:
            raise ValueError("max_nodes_down must allow at least one node")
        if self.capacity_floor is not None and not (
            0.0 <= self.capacity_floor < 1.0
        ):
            raise ValueError("capacity floor must lie in [0, 1)")
        if self.pod_size is not None and self.pod_size < 1:
            raise ValueError("pod size must be positive")
        if self.max_down_per_pod < 1:
            raise ValueError("max_down_per_pod must allow at least one node")
        if self.canary_soak_s < 0:
            raise ValueError("canary soak must be non-negative")
        if self.wave_quiet_s is not None and self.wave_quiet_s <= 0:
            raise ValueError("wave quiet window must be positive")

    # ------------------------------------------------------------------
    # Convenience constructors
    # ------------------------------------------------------------------
    @classmethod
    def rolling(
        cls,
        min_gap_s: float = 0.0,
        capacity_floor: Optional[float] = None,
        max_nodes_down: Optional[int] = None,
        pod_size: Optional[int] = None,
        max_down_per_pod: int = 1,
    ) -> "SchedulerSpec":
        """Rolling restarts under a capacity floor and blast radius."""
        return cls(
            kind="rolling",
            min_gap_s=min_gap_s,
            capacity_floor=capacity_floor,
            max_nodes_down=max_nodes_down,
            pod_size=pod_size,
            max_down_per_pod=max_down_per_pod,
        )

    @classmethod
    def canary(
        cls,
        canary_soak_s: float = 0.0,
        wave_quiet_s: Optional[float] = None,
        min_gap_s: float = 0.0,
        capacity_floor: Optional[float] = None,
        max_nodes_down: Optional[int] = None,
        pod_size: Optional[int] = None,
        max_down_per_pod: int = 1,
    ) -> "SchedulerSpec":
        """Canary-first rejuvenation over the rolling limits."""
        return cls(
            kind="canary",
            min_gap_s=min_gap_s,
            capacity_floor=capacity_floor,
            max_nodes_down=max_nodes_down,
            pod_size=pod_size,
            max_down_per_pod=max_down_per_pod,
            canary_soak_s=canary_soak_s,
            wave_quiet_s=wave_quiet_s,
        )

    @classmethod
    def unrestricted(cls) -> "SchedulerSpec":
        """Grant every request (but keep the grant log)."""
        return cls(kind="unrestricted")

    # ------------------------------------------------------------------
    def resolved_max_down(self, n_nodes: int) -> int:
        """The effective concurrently-down cap for an ``n_nodes`` domain.

        Raises when the capacity floor leaves no room to rejuvenate at
        all -- the caller should use larger shards or a lower floor.
        """
        caps = []
        if self.max_nodes_down is not None:
            caps.append(self.max_nodes_down)
        if self.capacity_floor is not None:
            # The epsilon absorbs binary-fraction noise: a 0.8 floor on
            # 10 nodes must allow 2 down, not floor(1.9999...) == 1.
            allowed = math.floor(
                (1.0 - self.capacity_floor) * n_nodes + 1e-9
            )
            if allowed < 1:
                raise ValueError(
                    f"capacity floor {self.capacity_floor} leaves no node "
                    f"free to rejuvenate in a {n_nodes}-node domain; "
                    "lower the floor or use larger shards"
                )
            caps.append(allowed)
        return min(caps) if caps else _UNBOUNDED

    def build(self, n_nodes: int, first_node: int = 0) -> "FleetCoordinator":
        """A fresh coordinator for one domain of ``n_nodes`` nodes.

        ``first_node`` is the domain's global node offset (a fleet
        shard passes its slice's start so pod arithmetic and the grant
        log use global indices).
        """
        if n_nodes < 1:
            raise ValueError("a scheduling domain needs at least one node")
        if self.kind == "unrestricted":
            return FleetCoordinator(first_node=first_node)
        max_down = self.resolved_max_down(n_nodes)
        if self.kind == "rolling":
            return FleetCoordinator(
                min_gap_s=self.min_gap_s,
                max_nodes_down=max_down,
                pod_size=self.pod_size,
                max_down_per_pod=self.max_down_per_pod,
                first_node=first_node,
            )
        return CanaryCoordinator(
            min_gap_s=self.min_gap_s,
            max_nodes_down=max_down,
            pod_size=self.pod_size,
            max_down_per_pod=self.max_down_per_pod,
            first_node=first_node,
            canary_soak_s=self.canary_soak_s,
            wave_quiet_s=self.wave_quiet_s,
        )


class FleetCoordinator:
    """Rolling-restart arbitration with pods and a grant log.

    Speaks the same ``reset()`` / ``request(node, now, downtime_s)``
    protocol as :class:`~repro.cluster.coordinator.RollingCoordinator`
    (so it plugs straight into :class:`~repro.cluster.system.ClusterSystem`)
    but tracks *which* node is down rather than only how many, which is
    what pod-level blast-radius limits and the auditable grant log
    need.

    ``node`` in :meth:`request` is the domain-local index;
    ``first_node`` translates it to the global index used for pod
    membership and the grant log.
    """

    def __init__(
        self,
        min_gap_s: float = 0.0,
        max_nodes_down: int = _UNBOUNDED,
        pod_size: Optional[int] = None,
        max_down_per_pod: int = 1,
        first_node: int = 0,
    ) -> None:
        if min_gap_s < 0:
            raise ValueError("minimum gap must be non-negative")
        if max_nodes_down < 1:
            raise ValueError("at least one node must be allowed down")
        if pod_size is not None and pod_size < 1:
            raise ValueError("pod size must be positive")
        if max_down_per_pod < 1:
            raise ValueError("max_down_per_pod must allow at least one node")
        self.min_gap_s = float(min_gap_s)
        self.max_nodes_down = int(max_nodes_down)
        self.pod_size = pod_size
        self.max_down_per_pod = int(max_down_per_pod)
        self.first_node = int(first_node)
        self.reset()

    def reset(self) -> None:
        """Forget history between runs (including the grant log)."""
        self._last_grant = -float("inf")
        self._down: Dict[int, float] = {}  # global node -> down_until
        self.granted = 0
        self.denied = 0
        #: Audit trail: ``(grant_time, global_node, down_until)``.
        self.grants: List[Tuple[float, int, float]] = []

    # ------------------------------------------------------------------
    def _prune(self, now: float) -> None:
        if self._down:
            self._down = {
                node: until
                for node, until in self._down.items()
                if until > now
            }

    def nodes_down(self, now: float) -> int:
        """Nodes currently inside their rejuvenation downtime."""
        self._prune(now)
        return len(self._down)

    def _pod_down(self, pod: int) -> int:
        size = self.pod_size
        assert size is not None
        return sum(1 for node in self._down if node // size == pod)

    def _admit(self, global_node: int, now: float, downtime_s: float) -> bool:
        """The rolling limits (gap, cap, pod); no state changes on deny."""
        if now - self._last_grant < self.min_gap_s:
            return False
        if downtime_s > 0.0:
            if self.nodes_down(now) >= self.max_nodes_down:
                return False
            if (
                self.pod_size is not None
                and self._pod_down(global_node // self.pod_size)
                >= self.max_down_per_pod
            ):
                return False
        return True

    def request(self, node: int, now: float, downtime_s: float) -> bool:
        """May local ``node`` rejuvenate at ``now``?  Grants are logged."""
        global_node = self.first_node + node
        if not self._admit(global_node, now, downtime_s):
            self.denied += 1
            return False
        self._grant(global_node, now, downtime_s)
        return True

    def _grant(self, global_node: int, now: float, downtime_s: float) -> None:
        self._last_grant = now
        until = now + downtime_s
        if downtime_s > 0.0:
            self._down[global_node] = until
        self.granted += 1
        self.grants.append((now, global_node, until))


class CanaryCoordinator(FleetCoordinator):
    """Canary-first waves on top of the rolling limits.

    State machine: the first trigger of a wave is the **canary** --
    granted alone, and every other request is denied until the canary's
    downtime plus ``canary_soak_s`` has elapsed.  The wave then opens
    and requests pass through the inherited rolling limits.  With
    ``wave_quiet_s`` set, a wave that sees no grant for that long
    closes, and the next trigger becomes a fresh canary.
    """

    def __init__(
        self,
        canary_soak_s: float = 0.0,
        wave_quiet_s: Optional[float] = None,
        **limits,
    ) -> None:
        self.canary_soak_s = float(canary_soak_s)
        self.wave_quiet_s = wave_quiet_s
        super().__init__(**limits)

    def reset(self) -> None:
        super().reset()
        self._canary_done: Optional[float] = None
        self._wave_open = False

    def request(self, node: int, now: float, downtime_s: float) -> bool:
        if (
            self._wave_open
            and self.wave_quiet_s is not None
            and now - self._last_grant > self.wave_quiet_s
        ):
            # The wave went quiet: the next grant starts a new canary.
            self._wave_open = False
            self._canary_done = None
        if not self._wave_open:
            if self._canary_done is None:
                # No canary in flight: this request volunteers.
                global_node = self.first_node + node
                if not self._admit(global_node, now, downtime_s):
                    self.denied += 1
                    return False
                self._grant(global_node, now, downtime_s)
                self._canary_done = now + downtime_s + self.canary_soak_s
                return True
            if now < self._canary_done:
                # The canary is still baking: hold the fleet back.
                self.denied += 1
                return False
            self._wave_open = True
        return super().request(node, now, downtime_s)
