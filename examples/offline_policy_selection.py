"""Pick a rejuvenation policy from recorded field data, offline.

An operator rarely gets to A/B-test restart policies in production.
The workflow this example shows instead:

1. "Record" two response-time traces -- one from a healthy period, one
   spanning a degradation episode (here both come from the simulator,
   standing in for production monitoring).
2. Replay every candidate policy over both traces offline:
   * triggers on the healthy trace  = false alarms (pure cost);
   * first trigger on the degraded trace = detection delay.
3. Read the trade-off table and pick.

Run:  python examples/offline_policy_selection.py
"""

import numpy as np

from repro import (
    CLTA,
    PAPER_SLO,
    SARAA,
    SRAA,
    DeterministicThreshold,
    TrendPolicy,
    simulate_mmc_response_times,
)
from repro.ecommerce.trace import replay_policy


def record_traces():
    """Healthy M/M/16 traffic, and the same with a degradation onset."""
    healthy = simulate_mmc_response_times(1.6, 30_000, seed=101)
    rng = np.random.default_rng(102)
    onset = 5_000
    degraded = np.concatenate(
        [
            simulate_mmc_response_times(1.6, onset, seed=103),
            # Aged system: a severe (6-sigma) degradation episode, the
            # magnitude a GC backlog produces in the Section-3 model.
            rng.exponential(35.0, size=5_000),
        ]
    )
    return healthy, degraded, onset


def candidates():
    return [
        ("SRAA(2,5,3)", SRAA(PAPER_SLO, 2, 5, 3)),
        ("SARAA(2,5,3)", SARAA(PAPER_SLO, 2, 5, 3)),
        ("CLTA(30)", CLTA(PAPER_SLO, 30, 1.96)),
        ("threshold > 20s", DeterministicThreshold(20.0)),
        ("trend(5,12)", TrendPolicy(sample_size=5, window=12)),
    ]


def main() -> None:
    healthy, degraded, onset = record_traces()
    print(
        f"Traces: {healthy.size} healthy observations, "
        f"{degraded.size} spanning a degradation at index {onset}\n"
    )
    header = (
        f"{'policy':<18} {'false alarms':>13} {'healthy gap':>12} "
        f"{'detection delay':>16}"
    )
    print(header)
    print("-" * len(header))
    for name, policy in candidates():
        healthy_report = replay_policy(policy, healthy)
        degraded_report = replay_policy(policy, degraded)
        after_onset = [
            i for i in degraded_report.trigger_indices if i >= onset
        ]
        delay = after_onset[0] - onset if after_onset else None
        gap = healthy_report.mean_observations_between_triggers
        gap_text = f"{gap:.0f}" if gap != float("inf") else "-"
        delay_text = f"{delay} obs" if delay is not None else "missed"
        print(
            f"{name:<18} {healthy_report.triggers:>13} {gap_text:>12} "
            f"{delay_text:>16}"
        )
    print(
        "\nReading: the naive threshold detects instantly but pays "
        "hundreds of false alarms on\nhealthy traffic; the bucket "
        "algorithms detect within tens of observations with none.\n"
        "Offline replay ranks detectors before anything touches "
        "production (the feedback\nloop -- rejuvenation changing "
        "subsequent traffic -- needs the simulator, see\n"
        "examples/ecommerce_comparison.py)."
    )


if __name__ == "__main__":
    main()
