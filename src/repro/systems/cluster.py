"""The balanced-cluster substrate behind the ``System`` protocol.

A :class:`ClusterSpec` describes the topology (node count, balancer,
rejuvenation scheduler) while the job keeps supplying the per-node
config, the arrival source, and the policy source -- so a fault
campaign written for the single node runs on a cluster by swapping one
spec.  Two conventions keep single-node scenarios meaningful at
cluster scale:

* ``scale_arrivals`` multiplies the offered load by the node count
  (via the cluster's ``arrival_scale``, exact for Poisson processes),
  so each node sees the scenario's intended per-node load.
* ``scale_transactions`` multiplies the job's transaction budget by
  the node count, preserving the simulated *time* horizon -- a
  scenario's degraded interval hits the same wall-clock window.

The cluster's native :class:`~repro.cluster.metrics.ClusterResult` is
converted to the protocol's mergeable
:class:`~repro.ecommerce.metrics.RunResult` (per-node stats ride on
``nodes``, front-end refusals on ``refused``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.systems.protocol import (
    ObsSpec,
    SystemRun,
    SystemSpec,
    register_system,
)
from repro.systems.schedulers import SchedulerSpec


class _PolicyFactory:
    """Picklable per-node policy factory over a job's policy source."""

    __slots__ = ("source",)

    def __init__(self, source: Any) -> None:
        self.source = source

    def __call__(self):
        from repro.exec.jobs import build_policy

        return build_policy(self.source)


@register_system
@dataclass(frozen=True)
class ClusterSpec(SystemSpec):
    """N Section-3 nodes behind a balancer with per-node policies."""

    kind = "cluster"

    n_nodes: int = 4
    balancer: str = "round_robin"
    scheduler: Optional[SchedulerSpec] = None
    scale_arrivals: bool = True
    scale_transactions: bool = True

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ValueError("a cluster needs at least one node")
        from repro.cluster.balancer import BALANCERS

        if self.balancer not in BALANCERS:
            raise ValueError(
                f"unknown balancer {self.balancer!r}; "
                f"available: {', '.join(sorted(BALANCERS))}"
            )

    @classmethod
    def from_dict(cls, payload: dict) -> "ClusterSpec":
        payload = dict(payload)
        scheduler = payload.get("scheduler")
        if isinstance(scheduler, dict):
            payload["scheduler"] = SchedulerSpec(**scheduler)
        return cls(**payload)

    def job_transactions(self, n_transactions: int) -> int:
        if self.scale_transactions:
            return n_transactions * self.n_nodes
        return n_transactions

    def build(
        self,
        config: Any,
        arrival: Any,
        policy: Any,
        seed: Optional[int] = None,
        obs: Optional[ObsSpec] = None,
        faults: Any = None,
        first_node_index: int = 0,
        total_nodes: Optional[int] = None,
    ) -> "_ClusterRun":
        from repro.cluster.balancer import make_balancer
        from repro.cluster.system import ClusterSystem
        from repro.exec.jobs import build_arrival

        obs = obs if obs is not None else ObsSpec()
        if obs.telemetry_interval_s is not None:
            raise ValueError(
                "telemetry probes are single-node instrumentation; "
                "the cluster substrate does not support them"
            )
        sinks = obs.build()
        coordinator = None
        if self.scheduler is not None:
            coordinator = self.scheduler.build(
                self.n_nodes, first_node=first_node_index
            )
        system = ClusterSystem(
            config,
            self.n_nodes,
            build_arrival(arrival),
            policy_factory=_PolicyFactory(policy),
            balancer=make_balancer(self.balancer),
            coordinator=coordinator,
            seed=seed,
            tracer=sinks.sink,
            faults=faults,
            profiler=sinks.profiler,
            arrival_scale=float(self.n_nodes) if self.scale_arrivals else 1.0,
            first_node_index=first_node_index,
            total_nodes=total_nodes,
        )
        return _ClusterRun(system, sinks)


class _ClusterRun(SystemRun):
    """Runs a ``ClusterSystem`` and converts its result."""

    def _run(self, n_transactions: int, warmup: int, collect: bool):
        from repro.ecommerce.metrics import RunResult

        cluster = self.system
        cres = cluster.run(
            n_transactions,
            warmup=warmup,
            collect_response_times=collect,
        )
        moments = cluster.measured_moments
        collected = cluster.collected_response_times
        sink = self.sinks.sink
        return RunResult(
            arrivals=cres.arrivals,
            completed=cres.completed,
            lost=cres.lost,
            avg_response_time=cres.avg_response_time,
            rt_std=cres.rt_std,
            max_response_time=(moments.maximum if moments.count else 0.0),
            loss_fraction=cres.loss_fraction,
            gc_count=cres.gc_count,
            rejuvenations=cres.rejuvenations,
            sim_duration_s=cres.sim_duration_s,
            response_times=(
                tuple(collected) if collected is not None else None
            ),
            trace=(sink.payload() if sink is not None else None),
            telemetry=None,
            rejuvenation_times=tuple(cluster.rejuvenation_times),
            refused=cres.refused,
            nodes=cres.nodes,
        )
