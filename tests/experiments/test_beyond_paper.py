"""Unit-level runs of the beyond-paper experiments (tiny scale).

The full-size shape assertions live in benchmarks/; these just pin the
structure and the cheapest invariants.
"""

import pytest

from repro.experiments.arl_exp import run_arl
from repro.experiments.cluster_exp import run_cluster
from repro.experiments.fleet_exp import peak_nodes_down, run_fleet
from repro.experiments.scale import Scale
from repro.experiments.zoo import run_zoo, zoo_members

TINY = Scale(transactions=600, replications=1, loads=(9.0,), label="tiny")


class TestZoo:
    def test_member_labels_unique(self):
        labels = [label for label, _ in zoo_members()]
        assert len(labels) == len(set(labels))

    def test_every_member_produces_both_metrics(self):
        result = run_zoo(TINY, seed=0)
        rt, loss = result.tables
        expected = {label for label, _ in zoo_members()}
        assert {series.label for series in rt.series} == expected
        assert {series.label for series in loss.series} == expected

    def test_never_policy_never_loses(self):
        result = run_zoo(TINY, seed=0)
        loss = result.tables[1].get_series("never")
        assert all(v == 0.0 for v in loss.points.values())


class TestClusterExperiment:
    def test_structure(self):
        result = run_cluster(TINY, seed=0)
        rt, loss = result.tables
        assert len(rt.series) == 4
        assert rt.xs() == [2.0, 9.0]
        for series in loss.series:
            assert all(0.0 <= v <= 1.0 for v in series.points.values())


class TestFleetExperiment:
    def test_structure(self):
        result = run_fleet(TINY, seed=0)
        rt, loss, down = result.tables
        assert len(rt.series) == 3
        assert rt.xs() == [2.0, 9.0]
        for series in loss.series:
            assert all(0.0 <= v <= 1.0 for v in series.points.values())
        for series in down.series:
            assert all(v >= 0.0 for v in series.points.values())

    def test_schedulers_bound_peak_downtime(self):
        result = run_fleet(TINY, seed=0)
        down = result.tables[2]
        unrestricted = down.get_series("unrestricted grants")
        rolling = down.get_series("rolling (floor 0.8)")
        for load in (2.0, 9.0):
            assert rolling.value_at(load) <= unrestricted.value_at(load)

    def test_peak_nodes_down_sweep(self):
        assert peak_nodes_down([]) == 0
        assert peak_nodes_down([(0.0, 10.0), (5.0, 15.0)]) == 2
        # Back-to-back restarts do not overlap.
        assert peak_nodes_down([(0.0, 10.0), (10.0, 20.0)]) == 1
        # The horizon clips intervals that outlive the run.
        assert (
            peak_nodes_down([(0.0, 50.0), (40.0, 60.0)], horizon_s=30.0)
            == 1
        )


class TestArlExperiment:
    def test_one_row_per_config(self):
        result = run_arl(TINY, seed=0)
        table = result.tables[0]
        assert len(table.get_series("n*K*D").points) == 14

    def test_delays_increase_with_milder_shifts(self):
        result = run_arl(TINY, seed=0)
        table = result.tables[0]
        mild = table.get_series("delay @ +1 sigma")
        severe = table.get_series("delay @ +4 sigma")
        for index in mild.points:
            assert mild.value_at(index) >= severe.value_at(index) - 1e-9

    def test_healthy_arl_at_least_min_delay(self):
        result = run_arl(TINY, seed=0)
        table = result.tables[0]
        healthy = table.get_series("healthy ARL")
        product = table.get_series("n*K*D")
        for index in healthy.points:
            # ARL in observations >= (D+1)*K*n > n*K*D.
            assert healthy.value_at(index) > product.value_at(index)


class TestFaultsExperiment:
    def test_structure_and_scenario_coverage(self):
        from repro.experiments.faults_exp import (
            horizon_for_scale,
            run_faults,
        )
        from repro.experiments.scale import Scale
        from repro.faults.zoo import scenario_names

        smoke = Scale.smoke()
        assert horizon_for_scale(smoke) == 600.0
        result = run_faults(smoke, seed=0)
        assert result.experiment_id == "faults"
        latency, alarms, cost = result.tables
        assert {s.label for s in alarms.series} == {"SRAA", "SARAA", "CLTA"}
        # Every scenario contributes an x index to the alarm/cost tables.
        xs = {x for s in alarms.series for x in s.points}
        assert xs == set(float(i) for i in range(len(scenario_names())))
        for series in cost.series:
            assert all(0.0 <= v <= 1.0 for v in series.points.values())
        # The scenario index -> name legend rides on the notes.
        assert any("false_aging" in note for note in latency.notes)
