"""Run-length table for the paper's SRAA configurations (beyond the paper).

For each Section-5.1/5.2 configuration, compute exactly (no simulation):

* the **healthy ARL** -- expected observations between false triggers
  when the system is a healthy M/M/16 at the maximum load of interest
  (the analytical counterpart of Fig. 10's low-load loss ordering);
* the **detection delay** -- expected observations to trigger after the
  response-time distribution right-shifts by 1, 2 or 4 sigma (the
  analytical counterpart of Fig. 9's response-time ordering).

The exceedance probabilities per bucket come from the exact eq.-4 law
of the batch mean; shifted scenarios translate that law.  Together the
two columns quantify the burst-tolerance / detection-latency trade-off
the paper explores empirically.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.core.arl import BucketChainARL, sraa_exceedance_probabilities
from repro.core.saraa import linear_acceleration
from repro.ctmc.sample_mean import SampleMeanChain
from repro.experiments.scale import Scale
from repro.experiments.sraa_figs import CONFIGS_NKD15, CONFIGS_SAMPLE_DOUBLED
from repro.experiments.tables import ExperimentResult, Series, Table
from repro.queueing.mmc import MMcModel

#: Healthy reference: M/M/16 at the maximum load of interest.
HEALTHY_MODEL = MMcModel(arrival_rate=1.6, service_rate=0.2, servers=16)
SHIFTS_SIGMA: Tuple[float, ...] = (1.0, 2.0, 4.0)
MU_X = 5.0
SIGMA_X = 5.0


def _config_run_lengths(n: int, K: int, D: int) -> Tuple[float, ...]:
    """(healthy ARL, delay@1sigma, delay@2sigma, delay@4sigma) in observations."""
    chain = SampleMeanChain(HEALTHY_MODEL, n)
    arl = BucketChainARL(K, D)
    healthy_probs = sraa_exceedance_probabilities(
        chain.sf, MU_X, SIGMA_X, K
    )
    values = [arl.mean_observations_to_trigger(healthy_probs, n)]
    for shift in SHIFTS_SIGMA:
        # A right-shift of the RT law by shift*sigma translates the
        # batch-mean law by the same amount.
        shifted_sf = lambda x, s=shift: chain.sf(x - s * SIGMA_X)  # noqa: E731
        probs = sraa_exceedance_probabilities(shifted_sf, MU_X, SIGMA_X, K)
        values.append(arl.mean_observations_to_trigger(probs, n))
    return tuple(values)


def saraa_run_length(
    n_orig: int, K: int, D: int, shift_sigma: float = 0.0
) -> float:
    """Expected observations for SARAA to trigger, exactly.

    Per level ``N``: batch size from the paper's linear schedule, target
    ``mu + N sigma / sqrt(n_N)``, exceedance probability from the exact
    law of the mean of ``n_N`` response times (right-shifted by
    ``shift_sigma`` standard deviations for degraded scenarios).  The
    level-dependent batch sizes enter as per-level costs.
    """
    batch_sizes = [linear_acceleration(n_orig, level, K) for level in range(K)]
    chains = {n: SampleMeanChain(HEALTHY_MODEL, n) for n in set(batch_sizes)}
    probs = []
    for level in range(K):
        n_level = batch_sizes[level]
        target = MU_X + level * SIGMA_X / np.sqrt(n_level)
        probs.append(chains[n_level].sf(target - shift_sigma * SIGMA_X))
    arl = BucketChainARL(K, D)
    return arl.mean_cost_to_trigger(np.array(probs), batch_sizes)


def run_arl(scale: Scale, seed: int = 0) -> ExperimentResult:
    """Exact run lengths for the n*K*D = 15 and 30 configurations."""
    configs: Sequence[Tuple[int, int, int]] = tuple(CONFIGS_NKD15) + tuple(
        CONFIGS_SAMPLE_DOUBLED
    )
    table = Table(
        title=(
            "Exact SRAA run lengths (observations), healthy M/M/16 at "
            "lambda=1.6 and right-shifted alternatives"
        ),
        x_label="config_index",
        y_label="observations",
    )
    labels = Series(label="n*K*D")
    healthy = Series(label="healthy ARL")
    delay_series = [
        Series(label=f"delay @ +{shift:g} sigma") for shift in SHIFTS_SIGMA
    ]
    notes = []
    cap = 1e12  # 'effectively never' -- keeps the table printable
    for index, (n, K, D) in enumerate(configs):
        run_lengths = _config_run_lengths(n, K, D)
        labels.add(index, n * K * D)
        healthy.add(index, min(run_lengths[0], cap))
        for series, value in zip(delay_series, run_lengths[1:]):
            series.add(index, min(value, cap))
        notes.append(f"index {index}: (n={n}, K={K}, D={D})")
    notes.append(f"values capped at {cap:g} ('effectively never')")
    table.add_series(labels)
    table.add_series(healthy)
    for series in delay_series:
        table.add_series(series)
    table.notes.extend(notes)

    # SARAA vs SRAA: the acceleration advantage, exactly.
    saraa_table = Table(
        title=(
            "SARAA vs SRAA expected detection delay (observations), "
            "Fig. 15 configurations"
        ),
        x_label="config_index",
        y_label="observations",
    )
    saraa_healthy = Series(label="SARAA healthy ARL")
    saraa_delay = Series(label="SARAA delay @ +4 sigma")
    sraa_delay = Series(label="SRAA delay @ +4 sigma")
    saraa_notes = []
    fig15_configs = ((2, 3, 5), (2, 5, 3), (6, 5, 1), (10, 3, 1))
    for index, (n, K, D) in enumerate(fig15_configs):
        saraa_healthy.add(index, min(saraa_run_length(n, K, D), cap))
        saraa_delay.add(
            index, min(saraa_run_length(n, K, D, shift_sigma=4.0), cap)
        )
        sraa_delay.add(index, min(_config_run_lengths(n, K, D)[3], cap))
        saraa_notes.append(f"index {index}: (n={n}, K={K}, D={D})")
    saraa_table.add_series(saraa_healthy)
    saraa_table.add_series(saraa_delay)
    saraa_table.add_series(sraa_delay)
    saraa_table.notes.extend(saraa_notes)

    return ExperimentResult(
        experiment_id="arl",
        description=(
            "Exact false-trigger intervals and detection delays of the "
            "SRAA configurations (run-length analysis; beyond the paper)"
        ),
        tables=[table, saraa_table],
        paper_expectations=[
            "SARAA's standard-error targets and shrinking batches give "
            "shorter severe-shift delays than SRAA at the same (n,K,D) "
            "-- the exact mechanism behind Fig. 15",
            "analytical counterpart of Figs. 9-11: K=1 configurations "
            "have short healthy ARLs (frequent false triggers -> low-"
            "load loss) but short detection delays (good high-load RT); "
            "multi-bucket configurations have astronomically long "
            "healthy ARLs and longer delays",
            "doubling n roughly doubles every delay (Fig. 11's "
            "mechanism)",
        ],
    )
