"""Proactive resource-exhaustion policy (Castelli-style baseline)."""

import pytest

from repro.core.proactive import ResourceExhaustionPolicy


def drain(policy, start=3000.0, rate=10.0, dt=1.0, steps=400):
    """Feed a linearly draining resource; return the trigger step."""
    for i in range(steps):
        t = i * dt
        if policy.observe_resource(t, start - rate * t):
            return i
    return None


class TestPrediction:
    def test_triggers_before_exhaustion(self):
        # 3000 MB draining at 10 MB/s hits the 100 MB level at t=290;
        # a 60 s horizon should fire near t=230.
        policy = ResourceExhaustionPolicy(
            critical_level=100.0, horizon_s=60.0, window=10
        )
        step = drain(policy)
        assert step is not None
        assert 200 <= step <= 290

    def test_longer_horizon_fires_earlier(self):
        early = ResourceExhaustionPolicy(100.0, horizon_s=120.0, window=10)
        late = ResourceExhaustionPolicy(100.0, horizon_s=30.0, window=10)
        assert drain(early) < drain(late)

    def test_stable_resource_never_triggers(self):
        policy = ResourceExhaustionPolicy(100.0, horizon_s=60.0, window=5)
        for i in range(200):
            assert not policy.observe_resource(float(i), 2000.0)
        assert policy.last_prediction_s == float("inf")

    def test_recovering_resource_never_triggers(self):
        policy = ResourceExhaustionPolicy(100.0, horizon_s=60.0, window=5)
        for i in range(100):
            assert not policy.observe_resource(float(i), 500.0 + 10.0 * i)

    def test_prediction_exposed(self):
        policy = ResourceExhaustionPolicy(0.0, horizon_s=1.0, window=3)
        for i, level in enumerate([1000.0, 990.0, 980.0]):
            policy.observe_resource(float(i), level)
        assert policy.last_prediction_s == pytest.approx(100.0)

    def test_no_decision_before_window_fills(self):
        policy = ResourceExhaustionPolicy(100.0, horizon_s=1e9, window=5)
        for i in range(4):
            assert not policy.observe_resource(float(i), 1000.0 - i)


class TestInterface:
    def test_metric_observations_never_trigger(self):
        policy = ResourceExhaustionPolicy(100.0, horizon_s=60.0)
        assert policy.observe(1e9) is False

    def test_out_of_order_samples_rejected(self):
        policy = ResourceExhaustionPolicy(100.0, horizon_s=60.0, window=3)
        policy.observe_resource(10.0, 500.0)
        with pytest.raises(ValueError):
            policy.observe_resource(5.0, 400.0)

    def test_reset(self):
        policy = ResourceExhaustionPolicy(100.0, horizon_s=60.0, window=3)
        policy.observe_resource(0.0, 500.0)
        policy.reset()
        assert len(policy._samples) == 0
        assert policy.last_prediction_s == float("inf")

    def test_identical_timestamps_are_safe(self):
        policy = ResourceExhaustionPolicy(100.0, horizon_s=60.0, window=3)
        for _ in range(5):
            assert not policy.observe_resource(1.0, 500.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            ResourceExhaustionPolicy(100.0, horizon_s=0.0)
        with pytest.raises(ValueError):
            ResourceExhaustionPolicy(100.0, horizon_s=1.0, window=2)

    def test_describe(self):
        text = ResourceExhaustionPolicy(100.0, horizon_s=60.0).describe()
        assert "horizon=60" in text


class TestOnSimulatedSystem:
    def test_prevents_garbage_collections(self):
        # Rejuvenating ahead of heap exhaustion means the GC threshold
        # is never reached: zero GC events, some rejuvenations.
        from repro.ecommerce.config import PAPER_CONFIG
        from repro.ecommerce.system import ECommerceSystem
        from repro.ecommerce.workload import PoissonArrivals

        policy = ResourceExhaustionPolicy(
            critical_level=PAPER_CONFIG.gc_threshold_mb,
            horizon_s=120.0,
            window=30,
        )
        system = ECommerceSystem(
            PAPER_CONFIG,
            PoissonArrivals(1.0),
            seed=9,
            resource_policy=policy,
        )
        result = system.run(4_000)
        assert result.gc_count == 0
        assert result.rejuvenations > 5
        assert result.completed + result.lost == 4_000
