"""The service-level objective that anchors every decision rule.

Section 4.2: "We assume that the service level agreement specifies the
mean ``mu_X`` and the standard deviation ``sigma_X`` of the RT under
normal system behavior."  For the paper's experiments both are 5 seconds
(the M/M/16 values at low load, eq. 2-3).
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class ServiceLevelObjective:
    """Normal-behaviour mean and standard deviation of the monitored metric.

    Parameters
    ----------
    mean:
        ``mu_X``, the expected metric value when the system is healthy.
    std:
        ``sigma_X``, its standard deviation when healthy.

    Examples
    --------
    >>> slo = ServiceLevelObjective(mean=5.0, std=5.0)
    >>> slo.shift_threshold(2)          # SRAA bucket-2 target
    15.0
    >>> round(slo.sampling_threshold(1.96, n=30), 3)   # CLTA threshold
    6.789
    """

    mean: float
    std: float

    def __post_init__(self) -> None:
        if not math.isfinite(self.mean):
            raise ValueError("mean must be finite")
        if not math.isfinite(self.std) or self.std < 0:
            raise ValueError("std must be finite and non-negative")

    def shift_threshold(self, multiplier: float) -> float:
        """``mu_X + multiplier * sigma_X`` -- the SRAA bucket target."""
        return self.mean + multiplier * self.std

    def sampling_threshold(self, multiplier: float, n: int) -> float:
        """``mu_X + multiplier * sigma_X / sqrt(n)`` -- SARAA/CLTA target.

        Uses the standard error of the mean of ``n`` observations, i.e.
        the threshold of a test against the *sampling* distribution.
        """
        if n < 1:
            raise ValueError("sample size must be >= 1")
        return self.mean + multiplier * self.std / math.sqrt(n)


#: The SLO used throughout the paper's evaluation (Section 5).
PAPER_SLO = ServiceLevelObjective(mean=5.0, std=5.0)
