"""Robustness scoring: policy triggers against scenario ground truth.

The scorer consumes the ``rejuvenation_times`` of each
:class:`~repro.ecommerce.metrics.RunResult` and the scenario's
ground-truth degradation intervals and produces, per (scenario,
policy):

detection latency
    Seconds from the start of a degraded interval to the first trigger
    inside it, averaged over the intervals that were detected.
missed-detection rate
    Fraction of (realised) degraded intervals with no trigger at all.
false alarms per healthy hour
    Triggers outside every degraded interval, normalised by the
    healthy simulated time -- the burst/blip-tolerance metric.
recovery cost
    Mean loss fraction and mean rejuvenation count: what the policy's
    triggering habit costs in dropped transactions.

All aggregation is plain arithmetic over plain floats in replication
order, so scores computed from serial-backend and process-pool results
are bit-identical (missing latencies are ``None``, never NaN, so
dataclass equality holds).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.ecommerce.metrics import RunResult
from repro.faults.scenario import FaultScenario, clip_intervals


@dataclass(frozen=True)
class RunScore:
    """Ground-truth bookkeeping for one replication."""

    #: Realised degraded intervals that received a trigger.
    detected: int
    #: Realised degraded intervals with no trigger at all.
    missed: int
    #: First-trigger latency per detected interval, in interval order.
    detection_latencies_s: Tuple[float, ...]
    #: Triggers outside every degraded interval.
    false_alarms: int
    #: Simulated hours outside degraded intervals.
    healthy_hours: float
    #: Simulated hours inside (realised) degraded intervals.
    degraded_hours: float


def score_run(
    result: RunResult, degraded: Sequence[Tuple[float, float]]
) -> RunScore:
    """Score one replication against ground-truth intervals.

    Intervals are clipped to the realised run duration; triggers after
    the first one inside the same interval are neither detections nor
    false alarms (repeated suppression of a persistent fault).
    """
    if result.rejuvenation_times is None:
        raise ValueError(
            "RunResult carries no rejuvenation_times; re-run with a "
            "current ECommerceSystem (the field rides on every run)"
        )
    duration = result.sim_duration_s
    intervals = clip_intervals(tuple(degraded), duration)
    triggers = result.rejuvenation_times
    detected = 0
    missed = 0
    latencies: List[float] = []
    false_alarms = 0
    for trigger in triggers:
        if not any(start <= trigger <= end for start, end in intervals):
            false_alarms += 1
    for start, end in intervals:
        first = next(
            (t for t in triggers if start <= t <= end), None
        )
        if first is None:
            missed += 1
        else:
            detected += 1
            latencies.append(first - start)
    degraded_s = sum(end - start for start, end in intervals)
    healthy_s = max(0.0, duration - degraded_s)
    return RunScore(
        detected=detected,
        missed=missed,
        detection_latencies_s=tuple(latencies),
        false_alarms=false_alarms,
        healthy_hours=healthy_s / 3600.0,
        degraded_hours=degraded_s / 3600.0,
    )


@dataclass(frozen=True)
class PolicyScore:
    """Aggregate robustness of one policy on one scenario."""

    scenario: str
    policy: str
    replications: int
    #: Degraded intervals detected / missed, summed over replications.
    detected: int
    missed: int
    #: ``missed / (detected + missed)`` (0.0 when nothing was realised).
    missed_rate: float
    #: Mean first-trigger latency over detected intervals; ``None``
    #: when no interval was detected.
    mean_detection_latency_s: Optional[float]
    #: Triggers outside ground truth, summed over replications.
    false_alarms: int
    #: ``false_alarms / total healthy hours`` (0.0 for no healthy time).
    false_alarms_per_healthy_hour: float
    #: Recovery cost: mean loss fraction and rejuvenations/replication.
    mean_loss_fraction: float
    mean_rejuvenations: float
    #: Mean of the per-replication average response times.
    mean_response_time_s: float

    def format_row(self) -> str:
        """One aligned text row (see :func:`format_scores`)."""
        latency = (
            f"{self.mean_detection_latency_s:8.1f}"
            if self.mean_detection_latency_s is not None
            else "       -"
        )
        return (
            f"{self.scenario:<16} {self.policy:<8} "
            f"{self.detected:>4}/{self.detected + self.missed:<4} "
            f"{self.missed_rate:>6.2f} {latency} "
            f"{self.false_alarms:>4} "
            f"{self.false_alarms_per_healthy_hour:>8.2f} "
            f"{self.mean_loss_fraction:>8.5f} "
            f"{self.mean_rejuvenations:>6.1f} "
            f"{self.mean_response_time_s:>8.2f}"
        )


def score_policy(
    scenario: FaultScenario,
    policy_label: str,
    results: Sequence[RunResult],
) -> PolicyScore:
    """Aggregate one policy's replications on one scenario."""
    return score_cell(
        scenario.name,
        policy_label,
        results,
        [scenario.degraded] * len(results),
    )


def score_cell(
    scenario_name: str,
    policy_label: str,
    results: Sequence[RunResult],
    degraded_per_result: Sequence[Sequence[Tuple[float, float]]],
) -> PolicyScore:
    """Aggregate replications with per-replication ground truth.

    The general form behind :func:`score_policy`: each replication is
    scored against its own degraded intervals, which lets callers that
    reconstruct ground truth from a run's *own* fault events (the
    ``repro report`` robustness section) share the exact aggregation
    arithmetic of the campaign scorer.
    """
    if not results:
        raise ValueError("need at least one replication to score")
    if len(results) != len(degraded_per_result):
        raise ValueError("one degraded-interval list per result required")
    run_scores = [
        score_run(r, degraded)
        for r, degraded in zip(results, degraded_per_result)
    ]
    detected = sum(s.detected for s in run_scores)
    missed = sum(s.missed for s in run_scores)
    realised = detected + missed
    latencies = [
        latency
        for s in run_scores
        for latency in s.detection_latencies_s
    ]
    false_alarms = sum(s.false_alarms for s in run_scores)
    healthy_hours = sum(s.healthy_hours for s in run_scores)
    return PolicyScore(
        scenario=scenario_name,
        policy=policy_label,
        replications=len(results),
        detected=detected,
        missed=missed,
        missed_rate=(missed / realised) if realised else 0.0,
        mean_detection_latency_s=(
            sum(latencies) / len(latencies) if latencies else None
        ),
        false_alarms=false_alarms,
        false_alarms_per_healthy_hour=(
            false_alarms / healthy_hours if healthy_hours > 0.0 else 0.0
        ),
        mean_loss_fraction=(
            sum(r.loss_fraction for r in results) / len(results)
        ),
        mean_rejuvenations=(
            sum(r.rejuvenations for r in results) / len(results)
        ),
        mean_response_time_s=(
            sum(r.avg_response_time for r in results) / len(results)
        ),
    )


#: CSV/row column names matching :func:`score_rows`.
SCORE_COLUMNS: Tuple[str, ...] = (
    "scenario",
    "policy",
    "replications",
    "detected",
    "missed",
    "missed_rate",
    "mean_detection_latency_s",
    "false_alarms",
    "false_alarms_per_healthy_hour",
    "mean_loss_fraction",
    "mean_rejuvenations",
    "mean_response_time_s",
)


def score_rows(scores: Sequence[PolicyScore]) -> List[Tuple]:
    """Scores as plain rows in :data:`SCORE_COLUMNS` order."""
    return [
        (
            s.scenario,
            s.policy,
            s.replications,
            s.detected,
            s.missed,
            s.missed_rate,
            s.mean_detection_latency_s,
            s.false_alarms,
            s.false_alarms_per_healthy_hour,
            s.mean_loss_fraction,
            s.mean_rejuvenations,
            s.mean_response_time_s,
        )
        for s in scores
    ]


def format_scores(scores: Sequence[PolicyScore]) -> str:
    """Aligned text table over all (scenario, policy) scores."""
    header = (
        f"{'scenario':<16} {'policy':<8} {'det':>9} {'miss%':>6} "
        f"{'latency':>8} {'FA':>4} {'FA/hh':>8} {'loss':>8} "
        f"{'rejuv':>6} {'avgRT':>8}"
    )
    lines = [header, "-" * len(header)]
    lines.extend(score.format_row() for score in scores)
    return "\n".join(lines)


def write_scores_csv(path: str, scores: Sequence[PolicyScore]) -> int:
    """Write scores as CSV; returns the number of data rows."""
    import csv

    rows = score_rows(scores)
    with open(path, "w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(SCORE_COLUMNS)
        for row in rows:
            writer.writerow(
                ["" if value is None else value for value in row]
            )
    return len(rows)
