"""Trivial reference policies.

``NeverRejuvenate`` measures the raw, un-managed system (the upper bound
on response-time degradation and the zero point for rejuvenation cost);
``PeriodicRejuvenation`` is the classical time/count-based rejuvenation
from the software-aging literature (Huang et al. 1995), which the
measurement-driven policies of this paper are meant to improve on.
"""

from __future__ import annotations

from repro.core.base import RejuvenationPolicy


class NeverRejuvenate(RejuvenationPolicy):
    """Never trigger; the do-nothing baseline."""

    name = "never"

    def observe(self, value: float) -> bool:
        return False

    def reset(self) -> None:
        """Stateless; nothing to reset."""

    def describe(self) -> str:
        return "Never()"


class PeriodicRejuvenation(RejuvenationPolicy):
    """Trigger every ``period`` observations, blind to the metric.

    Parameters
    ----------
    period:
        Number of observations between triggers (``>= 1``).
    """

    name = "periodic"

    def __init__(self, period: int) -> None:
        if period < 1:
            raise ValueError("period must be >= 1")
        self.period = int(period)
        self._seen = 0
        self.triggers = 0

    def observe(self, value: float) -> bool:
        self._seen += 1
        if self._seen >= self.period:
            self._seen = 0
            self.triggers += 1
            return True
        return False

    def reset(self) -> None:
        """Restart the countdown."""
        self._seen = 0

    def describe(self) -> str:
        return f"Periodic(every={self.period})"
