"""Quoted paper values and the fidelity experiment."""

import pytest

from repro.experiments.fidelity import run_fidelity
from repro.experiments.paper_values import (
    QUOTED_VALUES,
    QuotedValue,
    quoted_by_key,
)
from repro.experiments.scale import Scale


class TestQuotedValues:
    def test_keys_unique(self):
        keys = [quoted.key for quoted in QUOTED_VALUES]
        assert len(keys) == len(set(keys))

    def test_lookup(self):
        quoted = quoted_by_key("sraa-2-5-3@9")
        assert quoted.value == 11.94
        assert quoted.section == "5.5"

    def test_unknown_key(self):
        with pytest.raises(KeyError):
            quoted_by_key("nope")

    def test_values_sane(self):
        for quoted in QUOTED_VALUES:
            assert quoted.value > 0
            assert quoted.n * quoted.K * quoted.D in (15, 30)
            assert quoted.load_cpus in (0.5, 9.0)
            assert quoted.metric in ("avg_rt_s", "loss_fraction")

    def test_divergences_flagged(self):
        flagged = [q.key for q in QUOTED_VALUES if q.diverges]
        assert flagged == ["clta-30@9"]

    def test_headline_quotes_present(self):
        keys = {quoted.key for quoted in QUOTED_VALUES}
        assert {
            "sraa-15-1-1@9",
            "sraa-2-5-3@9",
            "saraa-2-5-3@9",
            "clta-30@9",
            "clta-30@0.5-loss",
        } <= keys


class TestFidelityExperiment:
    def test_structure(self):
        scale = Scale(
            transactions=800, replications=1, loads=(9.0,), label="tiny"
        )
        result = run_fidelity(scale, seed=0)
        table = result.tables[0]
        paper = table.get_series("paper")
        ratios = table.get_series("measured/paper")
        assert len(paper.points) == len(QUOTED_VALUES)
        assert len(ratios.points) == len(QUOTED_VALUES)
        # Paper column reproduces the quoted values verbatim.
        for index, quoted in enumerate(QUOTED_VALUES):
            assert paper.value_at(index) == quoted.value
        # Every quote is annotated.
        assert len(table.notes) == len(QUOTED_VALUES)
        assert any("divergence" in note for note in table.notes)
