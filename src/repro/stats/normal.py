"""Standard-normal quantiles and the algorithms' decision thresholds."""

from __future__ import annotations

import math

from scipy.stats import norm


def normal_quantile(q: float) -> float:
    """The standard-normal quantile ``z_q`` (e.g. ``z_0.975 = 1.96``)."""
    if not 0.0 < q < 1.0:
        raise ValueError("quantile level must lie in (0, 1)")
    return float(norm.ppf(q))


def two_sided_z(confidence: float) -> float:
    """Two-sided critical value at the given confidence (0.95 -> 1.96)."""
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must lie in (0, 1)")
    return normal_quantile(0.5 + confidence / 2.0)


def sample_mean_threshold(
    mean: float, std: float, n: int, multiplier: float
) -> float:
    """The SARAA/CLTA target value ``mu + multiplier * sigma / sqrt(n)``.

    For SRAA the multiplier is the bucket index ``N`` and the ``sqrt(n)``
    factor is *not* applied (SRAA tests a shift of the underlying
    distribution, not of the sampling distribution); use
    :func:`shift_threshold` for that.
    """
    if n < 1:
        raise ValueError("sample size must be >= 1")
    if std < 0:
        raise ValueError("standard deviation must be non-negative")
    return mean + multiplier * std / math.sqrt(n)


def shift_threshold(mean: float, std: float, multiplier: float) -> float:
    """The SRAA target value ``mu + multiplier * sigma``."""
    if std < 0:
        raise ValueError("standard deviation must be non-negative")
    return mean + multiplier * std
