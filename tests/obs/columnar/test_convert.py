"""`repro trace convert` and format parity across the consumers.

A real (small) traced simulation is converted JSONL -> columnar ->
JSONL; the final JSONL must be byte-identical to the original, and
report / explain / faults-score must produce identical output no
matter which format they read.
"""

import gzip

import pytest

from repro.cli import main
from repro.obs.columnar.convert import convert_trace, infer_output_format
from repro.obs.columnar.io import sniff_format

SIMULATE = [
    "simulate",
    "--policy", "sraa",
    "-p", "n=2", "-p", "K=5", "-p", "D=3",
    "--load", "9",
    "--transactions", "2000",
    "--seed", "3",
]


@pytest.fixture(scope="module")
def jsonl_trace(tmp_path_factory):
    """One traced simulation, written as JSONL."""
    path = str(tmp_path_factory.mktemp("trace") / "run.jsonl")
    assert main(SIMULATE + ["--trace", path]) == 0
    return path


class TestConvertCli:
    def test_round_trip_is_byte_identical(self, jsonl_trace, tmp_path, capsys):
        rcol = str(tmp_path / "run.rcol")
        back = str(tmp_path / "back.jsonl")
        assert main(["trace", "convert", jsonl_trace, rcol]) == 0
        assert "jsonl -> columnar" in capsys.readouterr().out
        assert main(["trace", "convert", rcol, back]) == 0
        assert "columnar -> jsonl" in capsys.readouterr().out
        with open(jsonl_trace, "rb") as a, open(back, "rb") as b:
            assert a.read() == b.read()

    def test_gzip_round_trip(self, jsonl_trace, tmp_path):
        rcol_gz = str(tmp_path / "run.rcol.gz")
        back_gz = str(tmp_path / "back.jsonl.gz")
        assert main(["trace", "convert", jsonl_trace, rcol_gz]) == 0
        assert sniff_format(rcol_gz) == "columnar"
        assert main(["trace", "convert", rcol_gz, back_gz]) == 0
        with open(jsonl_trace, "rb") as a, gzip.open(back_gz, "rb") as b:
            assert a.read() == b.read()

    def test_missing_input_exits_with_message(self, tmp_path):
        with pytest.raises(SystemExit, match="no such trace file"):
            main(
                [
                    "trace",
                    "convert",
                    str(tmp_path / "nope.jsonl"),
                    str(tmp_path / "out.rcol"),
                ]
            )

    def test_to_flag_overrides_extension(self, jsonl_trace, tmp_path):
        # Force columnar output despite a .bin extension.
        out = str(tmp_path / "run.bin")
        assert main(
            ["trace", "convert", jsonl_trace, out, "--to", "columnar"]
        ) == 0
        assert sniff_format(out) == "columnar"


class TestInferOutputFormat:
    @pytest.mark.parametrize(
        "out_path,in_format,expected",
        [
            ("t.rcol", "jsonl", "columnar"),
            ("t.rcol.gz", "jsonl", "columnar"),
            ("t.jsonl", "columnar", "jsonl"),
            ("t.jsonl.gz", "columnar", "jsonl"),
            # No recognisable extension: convert to the other format.
            ("t.out", "jsonl", "columnar"),
            ("t.out", "columnar", "jsonl"),
        ],
    )
    def test_inference(self, out_path, in_format, expected):
        assert infer_output_format(out_path, in_format) == expected


class TestConsumerParity:
    @pytest.fixture(scope="class")
    def both_formats(self, jsonl_trace, tmp_path_factory):
        rcol = str(tmp_path_factory.mktemp("conv") / "run.rcol")
        in_format, out_format, count = convert_trace(jsonl_trace, rcol)
        assert (in_format, out_format) == ("jsonl", "columnar")
        assert count > 0
        return jsonl_trace, rcol

    def test_explain_identical(self, both_formats, capsys):
        jsonl, rcol = both_formats
        assert main(["explain", jsonl]) == 0
        from_jsonl = capsys.readouterr().out
        assert main(["explain", rcol]) == 0
        from_rcol = capsys.readouterr().out
        assert from_jsonl == from_rcol
        assert "trigger #1" in from_jsonl

    def test_report_identical(self, both_formats, tmp_path):
        from repro.obs.live.report import write_report

        jsonl, rcol = both_formats
        a = str(tmp_path / "a.html")
        b = str(tmp_path / "b.html")
        write_report(jsonl, a)
        write_report(rcol, b)
        # The report embeds its input path in the title/header; strip
        # that one intentional difference, then demand byte identity.
        with open(a, encoding="utf-8") as fa, open(b, encoding="utf-8") as fb:
            html_a = fa.read().replace(jsonl, "TRACE")
            html_b = fb.read().replace(rcol, "TRACE")
        assert html_a == html_b

    def test_score_trace_identical(self, tmp_path):
        from repro.faults.campaign import score_trace

        jsonl = str(tmp_path / "campaign.jsonl")
        assert (
            main(
                [
                    "faults", "run", "aging_onset",
                    "--policies", "SRAA",
                    "--replications", "1",
                    "--seed", "5",
                    "--backend", "serial",
                    "--trace", jsonl,
                    "--trace-level", "all",
                ]
            )
            == 0
        )
        rcol = str(tmp_path / "campaign.rcol")
        convert_trace(jsonl, rcol)
        assert score_trace(jsonl) == score_trace(rcol)
