"""The built-in scenario zoo: curated adversarial campaigns.

Every scenario runs the Section-4.1 reduction of the paper's system
(16 CPUs, exponential service at ``mu = 0.2``/s, no intrinsic
degradation) so the *injections alone* control the ground truth: the
system is healthy exactly when the timeline says it is.  The canonical
aging signal is a x3 service slowdown -- at the paper's high load of
9 CPUs this pushes the offered load to 27 CPUs on 16, an unstable
queue whose response times grow without bound until a rejuvenation
sheds the backlog (and keep growing back, since the slowdown persists:
a fault the policies can only keep suppressing).

Timelines are laid out as fractions of a ``horizon_s`` parameter
(default one simulated hour), so the same zoo runs at CI scale
(``horizon_s=600``) and at study scale without re-deriving any
calibration.  The ground-truth calibration at the paper's parameters:

* healthy RT at load 9 is ~5.6 s -- below every SRAA bucket target
  (10, 15, 20, 25 s for the mean-5/std-5 SLO);
* a 15 s hang blip inflates in-flight RTs to ~15-20 s: above CLTA's
  6.789 s threshold (n=30, z=1.96) but too brief to climb SRAA's
  (D+1)*K = 20 net exceedances through escalating targets -- the
  ``false_aging`` scenario separates the two by false-alarm rate;
* the x3 slowdown makes RTs cross every target within a couple of
  minutes, so any trigger-capable policy detects it -- the score then
  differentiates on *latency* and *recovery cost*.
"""

from __future__ import annotations

import math
from dataclasses import replace
from typing import Dict, Tuple

from repro.ecommerce.config import PAPER_CONFIG
from repro.ecommerce.spec import ArrivalSpec
from repro.faults.injectors import (
    AgingAcceleration,
    HeavyTailContamination,
    NodeCrash,
    NodeHang,
    ServiceSlowdown,
    TrafficSurge,
    WorkloadRamp,
    WorkloadShift,
)
from repro.faults.scenario import FaultScenario

#: Minimum horizon the timeline fractions stay meaningful at.
MIN_HORIZON_S = 300.0

#: The paper's high-load operating point: 9 CPUs of offered load.
HIGH_LOAD_RATE = PAPER_CONFIG.arrival_rate_for_load(9.0)
#: A moderate operating point: 6 CPUs of offered load.
MODERATE_LOAD_RATE = PAPER_CONFIG.arrival_rate_for_load(6.0)
#: Past the knee: 20 CPUs of offered load on 16 servers -- saturation.
SATURATION_LOAD_RATE = PAPER_CONFIG.arrival_rate_for_load(20.0)

#: The canonical aging signal (see module docstring).
AGING_FACTOR = 3.0

#: The Section-4.1 reduction: no intrinsic degradation mechanisms.
BASE_CONFIG = PAPER_CONFIG.without_degradation()


def _check_horizon(horizon_s: float) -> float:
    if horizon_s < MIN_HORIZON_S:
        raise ValueError(
            f"horizon must be >= {MIN_HORIZON_S:g} s for the zoo "
            f"timelines to stay meaningful, got {horizon_s!r}"
        )
    return float(horizon_s)


def _transactions(rate: float, horizon_s: float) -> int:
    return int(math.ceil(rate * horizon_s))


def aging_onset(horizon_s: float = 3600.0) -> FaultScenario:
    """Pure aging: a x3 slowdown at 50% of the horizon, nothing else."""
    h = _check_horizon(horizon_s)
    onset = 0.5 * h
    return FaultScenario(
        name="aging_onset",
        description=(
            "clean x3 service slowdown at mid-run under high load -- "
            "the baseline detection task"
        ),
        config=BASE_CONFIG,
        arrival=ArrivalSpec.poisson(HIGH_LOAD_RATE),
        n_transactions=_transactions(HIGH_LOAD_RATE, h),
        injections=(ServiceSlowdown(at_s=onset, factor=AGING_FACTOR),),
        degraded=((onset, math.inf),),
        horizon_s=h,
    )


def workload_shift(horizon_s: float = 3600.0) -> FaultScenario:
    """A legitimate load step (6 -> 9 CPUs), then real aging later.

    The step raises response times to a new healthy plateau; a detector
    that fires on it mistakes an operating-point change for aging (the
    Moura et al. workload-shift confounder).
    """
    h = _check_horizon(horizon_s)
    shift_at = 0.25 * h
    onset = 0.65 * h
    n = _transactions(MODERATE_LOAD_RATE, shift_at) + _transactions(
        HIGH_LOAD_RATE, h - shift_at
    )
    return FaultScenario(
        name="workload_shift",
        description=(
            "arrival-rate step from 6 to 9 CPUs of load (healthy), "
            "then a x3 slowdown"
        ),
        config=BASE_CONFIG,
        arrival=ArrivalSpec.poisson(MODERATE_LOAD_RATE),
        n_transactions=n,
        injections=(
            WorkloadShift.step(at_s=shift_at, rate=HIGH_LOAD_RATE),
            ServiceSlowdown(at_s=onset, factor=AGING_FACTOR),
        ),
        degraded=((onset, math.inf),),
        horizon_s=h,
    )


def workload_ramp(horizon_s: float = 3600.0) -> FaultScenario:
    """A sustained arrival ramp into saturation (healthy!), then aging.

    The rate drifts from the paper's high load (9 CPUs) past the
    capacity knee to 20 CPUs of offered load on 16 servers: response
    times grow *without any software fault* because the box is simply
    overloaded -- a capacity problem rejuvenation cannot fix, so every
    trigger before the real onset is a false alarm.  A static baseline
    (SRAA's escalating targets included) inevitably reads the drift as
    aging once response times pass its top target; an adaptive
    baseline recalibrates along the ramp and keeps its powder dry for
    the genuine x3 slowdown at 70% of the horizon (the Moura et al.
    stress test, pushed past the operating envelope).
    """
    h = _check_horizon(horizon_s)
    ramp_start = 0.15 * h
    ramp_end = 0.45 * h
    onset = 0.7 * h
    steps = 10
    ramp = WorkloadRamp(
        start_s=ramp_start,
        end_s=ramp_end,
        from_rate=HIGH_LOAD_RATE,
        to_rate=SATURATION_LOAD_RATE,
        steps=steps,
    )
    # Expected arrivals under the piecewise-constant realisation: the
    # rate during ramp segment j (j = 0..steps-1) is from + delta*j/steps.
    span = ramp_end - ramp_start
    delta = SATURATION_LOAD_RATE - HIGH_LOAD_RATE
    ramp_arrivals = span * (
        HIGH_LOAD_RATE + delta * (steps - 1) / (2 * steps)
    )
    n = (
        _transactions(HIGH_LOAD_RATE, ramp_start)
        + int(math.ceil(ramp_arrivals))
        + _transactions(SATURATION_LOAD_RATE, h - ramp_end)
    )
    return FaultScenario(
        name="workload_ramp",
        description=(
            "arrival ramp from 9 to 20 CPUs of offered load "
            "(saturation, not aging), then a x3 slowdown"
        ),
        config=BASE_CONFIG,
        arrival=ArrivalSpec.poisson(HIGH_LOAD_RATE),
        n_transactions=n,
        injections=(
            ramp,
            ServiceSlowdown(at_s=onset, factor=AGING_FACTOR),
        ),
        degraded=((onset, math.inf),),
        horizon_s=h,
    )


def traffic_surge(horizon_s: float = 3600.0) -> FaultScenario:
    """A transient 1.6x burst (healthy), then real aging later.

    The burst lifts utilisation to ~0.9 for 10% of the horizon --
    elevated but stable response times that a burst-tolerant detector
    must ride out (the multi-bucket design intent of Section 5.1).
    """
    h = _check_horizon(horizon_s)
    surge_at = 0.2 * h
    surge_len = 0.1 * h
    onset = 0.6 * h
    n = _transactions(HIGH_LOAD_RATE, h) + _transactions(
        HIGH_LOAD_RATE * 0.6, surge_len
    )
    return FaultScenario(
        name="traffic_surge",
        description=(
            "transient 1.6x arrival burst (healthy flash crowd), "
            "then a x3 slowdown"
        ),
        config=BASE_CONFIG,
        arrival=ArrivalSpec.poisson(HIGH_LOAD_RATE),
        n_transactions=n,
        injections=(
            TrafficSurge(at_s=surge_at, factor=1.6, duration_s=surge_len),
            ServiceSlowdown(at_s=onset, factor=AGING_FACTOR),
        ),
        degraded=((onset, math.inf),),
        horizon_s=h,
    )


def false_aging(horizon_s: float = 3600.0) -> FaultScenario:
    """Two 15 s stall blips (healthy), then real aging later.

    The acceptance scenario: the blips inflate in-flight response
    times enough to cross CLTA's 6.789 s threshold but are too brief
    for SRAA's bucket chain, so at paper-default parameters SRAA shows
    zero false alarms and zero missed detections while CLTA pays in
    false alarms.
    """
    h = _check_horizon(horizon_s)
    onset = 0.6 * h
    return FaultScenario(
        name="false_aging",
        description=(
            "two transient 15 s hang blips (false aging), then a "
            "genuine x3 slowdown"
        ),
        config=BASE_CONFIG,
        arrival=ArrivalSpec.poisson(HIGH_LOAD_RATE),
        n_transactions=_transactions(HIGH_LOAD_RATE, h),
        injections=(
            NodeHang(at_s=0.2 * h, hang_s=15.0),
            NodeHang(at_s=0.35 * h, hang_s=15.0),
            ServiceSlowdown(at_s=onset, factor=AGING_FACTOR),
        ),
        degraded=((onset, math.inf),),
        horizon_s=h,
    )


def node_crash(horizon_s: float = 3600.0) -> FaultScenario:
    """An abrupt crash with a 2-minute restart (healthy), then aging.

    The crash wipes in-flight work and the policy's detection state;
    it is not a rejuvenation and must not be scored as a detection.
    """
    h = _check_horizon(horizon_s)
    onset = 0.6 * h
    return FaultScenario(
        name="node_crash",
        description=(
            "node crash with 120 s restart downtime (not aging), "
            "then a x3 slowdown"
        ),
        config=BASE_CONFIG,
        arrival=ArrivalSpec.poisson(HIGH_LOAD_RATE),
        n_transactions=_transactions(HIGH_LOAD_RATE, h),
        injections=(
            NodeCrash(at_s=0.3 * h, restart_s=120.0),
            ServiceSlowdown(at_s=onset, factor=AGING_FACTOR),
        ),
        degraded=((onset, math.inf),),
        horizon_s=h,
    )


def heavy_tail(horizon_s: float = 3600.0) -> FaultScenario:
    """Aging as heavy-tailed contamination instead of a clean slowdown.

    From the onset, a quarter of all services gain a Pareto(1.5) tail
    of scale 20 s (~10 s of extra mean per transaction) -- degradation
    that arrives as sporadic very-slow transactions rather than a
    uniform slowdown.
    """
    h = _check_horizon(horizon_s)
    onset = 0.55 * h
    return FaultScenario(
        name="heavy_tail",
        description=(
            "heavy-tailed service contamination (Pareto tail) from "
            "55% of the horizon on"
        ),
        config=BASE_CONFIG,
        arrival=ArrivalSpec.poisson(HIGH_LOAD_RATE),
        n_transactions=_transactions(HIGH_LOAD_RATE, h),
        injections=(
            HeavyTailContamination(
                at_s=onset, prob=0.25, alpha=1.5, scale_s=20.0
            ),
        ),
        degraded=((onset, math.inf),),
        horizon_s=h,
    )


def gc_thrash(horizon_s: float = 3600.0) -> FaultScenario:
    """Scripted GC thrash: correlated garbage growth fills the heap.

    Runs the paper's GC mechanism (60 s stop-the-world pauses) but with
    the per-transaction leak turned off: injected garbage at 12 MB/s is
    the only heap pressure, so the first pause lands ~250 s after the
    onset and repeats every ~250 s after -- the paper's own aging
    symptom, scripted.  Ground truth starts at the onset (the leak is
    present from then on), so measured detection latency includes the
    symptom's own incubation time.
    """
    h = _check_horizon(horizon_s)
    onset = 0.5 * h
    config = replace(PAPER_CONFIG, alloc_mb=0.0)
    return FaultScenario(
        name="gc_thrash",
        description=(
            "correlated garbage injection at 12 MB/s driving repeated "
            "60 s GC pauses"
        ),
        config=config,
        arrival=ArrivalSpec.poisson(HIGH_LOAD_RATE),
        n_transactions=_transactions(HIGH_LOAD_RATE, h),
        injections=(
            AgingAcceleration(
                start_s=onset, rate_mb_s=12.0, interval_s=5.0
            ),
        ),
        degraded=((onset, math.inf),),
        horizon_s=h,
    )


#: Builder functions in presentation order.
_BUILDERS = (
    aging_onset,
    workload_shift,
    workload_ramp,
    traffic_surge,
    false_aging,
    node_crash,
    heavy_tail,
    gc_thrash,
)


def scenario_names() -> Tuple[str, ...]:
    """The built-in scenario names, in presentation order."""
    return tuple(builder.__name__ for builder in _BUILDERS)


def builtin_scenarios(
    horizon_s: float = 3600.0,
) -> Dict[str, FaultScenario]:
    """Every built-in scenario, laid out for the given horizon."""
    return {
        builder.__name__: builder(horizon_s) for builder in _BUILDERS
    }


def get_scenario(name: str, horizon_s: float = 3600.0) -> FaultScenario:
    """One built-in scenario by name (raises on unknown names)."""
    for builder in _BUILDERS:
        if builder.__name__ == name:
            return builder(horizon_s)
    raise ValueError(
        f"unknown scenario {name!r}; available: "
        f"{', '.join(scenario_names())}"
    )
