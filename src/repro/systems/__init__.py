"""Substrates behind the ``System`` protocol (node, cluster, fleet).

The paper's monitoring/statistics/rejuvenation loop runs unchanged
against any registered substrate: pass ``system="ecommerce"`` /
``"cluster"`` / ``"fleet"`` (or a configured spec) to the job layer,
the fault campaign runner, or the CLI, and the same policies, CRN seed
protocols, fault injections, and observability ride along.  See
``docs/systems.md`` for the protocol contract and the fleet
schedulers.
"""

from repro.systems.cluster import ClusterSpec
from repro.systems.ecommerce import EcommerceSpec
from repro.systems.fleet import (
    FLEET_SHARD_RULE,
    FleetSpec,
    FleetSystem,
    ShardOutcome,
    shard_seed,
    split_proportionally,
)
from repro.systems.protocol import (
    SYSTEM_KINDS,
    ObsSpec,
    ObsSinks,
    SystemRun,
    SystemSpec,
    register_system,
    resolve_system,
    system_spec_from_dict,
)
from repro.systems.schedulers import (
    SCHEDULER_KINDS,
    CanaryCoordinator,
    FleetCoordinator,
    SchedulerSpec,
)

__all__ = [
    "SYSTEM_KINDS",
    "SCHEDULER_KINDS",
    "FLEET_SHARD_RULE",
    "CanaryCoordinator",
    "ClusterSpec",
    "EcommerceSpec",
    "FleetCoordinator",
    "FleetSpec",
    "FleetSystem",
    "ObsSinks",
    "ObsSpec",
    "SchedulerSpec",
    "ShardOutcome",
    "SystemRun",
    "SystemSpec",
    "register_system",
    "resolve_system",
    "shard_seed",
    "split_proportionally",
    "system_spec_from_dict",
]
