"""Pluggable alert sinks: where incident transitions go.

Each sink exposes ``emit(record)`` taking the same transition record
the alert ledger stores (``{"action", "incident"}``).  Sinks must never
cost the watched system: the engine already swallows sink exceptions,
and the webhook sink additionally keeps its own error count so a dead
endpoint degrades to a counter, not a crash loop.

Specs (CLI ``--sink``, one flag per sink)::

    stdout               human one-liners to stdout
    file:PATH            JSONL appended to PATH
    webhook:URL          JSON POSTed to URL (stdlib urllib, no deps)
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional, TextIO

__all__ = [
    "FileSink",
    "StdoutSink",
    "WebhookSink",
    "format_transition",
    "sinks_from_specs",
]


def format_transition(record: Dict[str, Any]) -> str:
    """One human-readable line per incident transition."""
    incident = record.get("incident", {})
    action = record.get("action", "?")
    parts = [
        f"[{action}]",
        incident.get("id", "?"),
        f"rule={incident.get('rule', '?')}",
        f"target={incident.get('target', '?')}",
    ]
    if action == "close" and incident.get("close_reason"):
        parts.append(f"reason={incident['close_reason']}")
    summary = incident.get("summary")
    if summary:
        parts.append(f"-- {summary}")
    return " ".join(str(part) for part in parts)


class StdoutSink:
    """Human one-liners, for ``repro watch`` and the serve console."""

    def __init__(self, stream: Optional[TextIO] = None):
        self.stream = stream

    def emit(self, record: Dict[str, Any]) -> None:
        stream = self.stream if self.stream is not None else sys.stdout
        stream.write(format_transition(record) + "\n")
        stream.flush()


class FileSink:
    """JSONL transitions appended to a file (parents created)."""

    def __init__(self, path: str):
        self.path = Path(path)

    def emit(self, record: Dict[str, Any]) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps(record, sort_keys=True) + "\n")


class WebhookSink:
    """JSON POST per transition; failures counted, never raised."""

    def __init__(self, url: str, timeout_s: float = 5.0):
        self.url = url
        self.timeout_s = timeout_s
        self.sent = 0
        self.errors = 0

    def emit(self, record: Dict[str, Any]) -> None:
        import urllib.error
        import urllib.request

        body = json.dumps(record, sort_keys=True).encode("utf-8")
        request = urllib.request.Request(
            self.url,
            data=body,
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout_s
            ) as response:
                response.read()
            self.sent += 1
        except (urllib.error.URLError, OSError, ValueError):
            self.errors += 1


def sinks_from_specs(specs: Any) -> List[Any]:
    """Build sinks from CLI specs (see module docstring)."""
    sinks: List[Any] = []
    for spec in specs or ():
        if spec == "stdout":
            sinks.append(StdoutSink())
        elif spec.startswith("file:"):
            path = spec[len("file:"):]
            if not path:
                raise ValueError("file sink needs a path: file:PATH")
            sinks.append(FileSink(path))
        elif spec.startswith("webhook:"):
            url = spec[len("webhook:"):]
            if not url:
                raise ValueError("webhook sink needs a URL: webhook:URL")
            sinks.append(WebhookSink(url))
        else:
            raise ValueError(
                f"unknown sink spec {spec!r}; "
                "expected stdout, file:PATH, or webhook:URL"
            )
    return sinks
