"""Experiment scale presets.

The paper's protocol (Section 5) is five replications of 100,000
transactions at each of ~20 offered-load points, for each of ~7
configurations per figure -- tens of millions of simulated transactions
per figure.  That is perfectly feasible but slow in pure Python, so every
experiment takes a :class:`Scale` and three presets are provided:

* ``Scale.paper()`` -- the full protocol.
* ``Scale.quick()`` -- the default: a reduced sweep that preserves every
  qualitative feature (orderings, crossovers) at ~1/50 of the cost.
* ``Scale.smoke()`` -- minimal, for CI and pytest-benchmark runs.

The environment variable ``REPRO_SCALE`` (``smoke``/``quick``/``paper``)
overrides the default globally.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Tuple

#: The paper's offered-load axis (in CPUs, i.e. lambda/mu).
PAPER_LOADS: Tuple[float, ...] = (
    0.5, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0,
)


@dataclass(frozen=True)
class Scale:
    """How much simulation to spend on an experiment."""

    transactions: int
    replications: int
    loads: Tuple[float, ...]
    label: str = "custom"

    def __post_init__(self) -> None:
        if self.transactions < 100:
            raise ValueError("need at least 100 transactions")
        if self.replications < 1:
            raise ValueError("need at least one replication")
        if not self.loads:
            raise ValueError("need at least one load point")
        if any(load <= 0 for load in self.loads):
            raise ValueError("loads must be positive")

    @classmethod
    def paper(cls) -> "Scale":
        """The paper's full protocol: 5 x 100,000 per load point."""
        return cls(
            transactions=100_000,
            replications=5,
            loads=PAPER_LOADS,
            label="paper",
        )

    @classmethod
    def quick(cls) -> "Scale":
        """Reduced sweep preserving the qualitative shape (default)."""
        return cls(
            transactions=12_000,
            replications=2,
            loads=(0.5, 2.0, 4.0, 6.0, 8.0, 9.0, 10.0),
            label="quick",
        )

    @classmethod
    def smoke(cls) -> "Scale":
        """Minimal scale for CI smoke tests and timing benchmarks."""
        return cls(
            transactions=3_000,
            replications=1,
            loads=(0.5, 6.0, 9.0),
            label="smoke",
        )

    @classmethod
    def from_env(cls, default: str = "quick") -> "Scale":
        """Resolve the scale from ``REPRO_SCALE`` or the given default."""
        name = os.environ.get("REPRO_SCALE", default).strip().lower()
        presets = {
            "paper": cls.paper,
            "quick": cls.quick,
            "smoke": cls.smoke,
        }
        try:
            return presets[name]()
        except KeyError:
            raise ValueError(
                f"unknown scale {name!r}; expected one of {sorted(presets)}"
            ) from None
