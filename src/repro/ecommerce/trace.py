"""Recording and replaying workload/metric traces.

The paper's motivation is a *field* failure: operators have recorded
traffic and response times, and want to evaluate rejuvenation policies
against them before deploying anything.  This module supports that
workflow:

* :class:`RecordingArrivals` wraps any arrival process and records the
  inter-arrival times it produced, so a stochastic workload can be
  frozen into a deterministic, replayable trace
  (:class:`~repro.ecommerce.workload.TraceArrivals`);
* :func:`save_trace` / :func:`load_trace` persist traces (one float per
  line -- trivially interoperable);
* :func:`replay_policy` evaluates any policy *offline* against a
  recorded response-time stream: triggers found, inter-trigger gaps.
  Offline replay cannot capture the feedback loop (a real rejuvenation
  would change subsequent response times), so it answers "when would
  this policy have fired on what we saw?" -- exactly the question an
  operator asks before turning a detector on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.core.base import RejuvenationPolicy
from repro.ecommerce.workload import ArrivalProcess, TraceArrivals


class RecordingArrivals(ArrivalProcess):
    """Wraps an arrival process, recording every inter-arrival time."""

    def __init__(self, inner: ArrivalProcess) -> None:
        self.inner = inner
        self.recorded: List[float] = []

    def interarrival(self, rng: np.random.Generator) -> float:
        gap = self.inner.interarrival(rng)
        self.recorded.append(gap)
        return gap

    def mean_rate(self) -> float:
        return self.inner.mean_rate()

    def reset(self) -> None:
        """Resets the wrapped process; the recording keeps accumulating."""
        self.inner.reset()

    def to_trace(self) -> TraceArrivals:
        """Freeze the recording into a replayable trace."""
        if not self.recorded:
            raise ValueError("nothing recorded yet")
        return TraceArrivals(list(self.recorded))


def save_trace(values: Sequence[float], path: str) -> None:
    """Write a trace as one float per line."""
    data = [float(v) for v in values]
    if not data:
        raise ValueError("refusing to write an empty trace")
    with open(path, "w") as handle:
        for value in data:
            handle.write(f"{value!r}\n")


def load_trace(path: str) -> List[float]:
    """Read a trace written by :func:`save_trace`."""
    values: List[float] = []
    with open(path) as handle:
        for line_number, line in enumerate(handle, start=1):
            text = line.strip()
            if not text:
                continue
            try:
                values.append(float(text))
            except ValueError:
                raise ValueError(
                    f"{path}:{line_number}: not a number: {text!r}"
                ) from None
    if not values:
        raise ValueError(f"{path} contains no values")
    return values


@dataclass(frozen=True)
class ReplayReport:
    """Outcome of replaying a policy over a recorded metric stream."""

    observations: int
    trigger_indices: tuple

    @property
    def triggers(self) -> int:
        return len(self.trigger_indices)

    @property
    def mean_observations_between_triggers(self) -> float:
        """Average gap between triggers (inf when fewer than 2)."""
        if len(self.trigger_indices) < 2:
            return float("inf")
        gaps = np.diff(np.asarray(self.trigger_indices))
        return float(gaps.mean())


def replay_policy(
    policy: RejuvenationPolicy, response_times: Sequence[float]
) -> ReplayReport:
    """Run a policy over a recorded response-time stream, offline.

    The policy is reset first, so the report reflects the trace alone.
    """
    policy.reset()
    triggers = policy.observe_many(list(response_times))
    return ReplayReport(
        observations=len(response_times),
        trigger_indices=tuple(triggers),
    )
