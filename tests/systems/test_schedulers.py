"""Fleet rejuvenation schedulers: floors, pods, canaries, grant logs."""

import pytest

from repro.systems.schedulers import (
    CanaryCoordinator,
    FleetCoordinator,
    SchedulerSpec,
)


class TestSchedulerSpec:
    def test_kind_validated(self):
        with pytest.raises(ValueError, match="unknown scheduler kind"):
            SchedulerSpec(kind="psychic")

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"min_gap_s": -1.0},
            {"max_nodes_down": 0},
            {"capacity_floor": 1.0},
            {"capacity_floor": -0.1},
            {"pod_size": 0},
            {"max_down_per_pod": 0},
            {"canary_soak_s": -1.0},
            {"kind": "canary", "wave_quiet_s": 0.0},
        ],
    )
    def test_bad_parameters(self, kwargs):
        with pytest.raises(ValueError):
            SchedulerSpec(**kwargs)

    def test_resolved_max_down_takes_the_tighter_cap(self):
        spec = SchedulerSpec.rolling(capacity_floor=0.8, max_nodes_down=1)
        assert spec.resolved_max_down(10) == 1
        spec = SchedulerSpec.rolling(capacity_floor=0.8, max_nodes_down=5)
        assert spec.resolved_max_down(10) == 2

    def test_floor_with_no_headroom_raises(self):
        spec = SchedulerSpec.rolling(capacity_floor=0.9)
        with pytest.raises(ValueError, match="capacity floor"):
            spec.resolved_max_down(4)

    def test_build_kinds(self):
        assert isinstance(
            SchedulerSpec.unrestricted().build(4), FleetCoordinator
        )
        assert isinstance(
            SchedulerSpec.canary().build(4), CanaryCoordinator
        )
        rolling = SchedulerSpec.rolling(capacity_floor=0.5).build(4)
        assert rolling.max_nodes_down == 2


class TestFleetCoordinator:
    def test_capacity_cap(self):
        coordinator = FleetCoordinator(max_nodes_down=2)
        assert coordinator.request(0, now=0.0, downtime_s=100.0)
        assert coordinator.request(1, now=0.0, downtime_s=100.0)
        assert not coordinator.request(2, now=0.0, downtime_s=100.0)
        assert coordinator.request(2, now=100.5, downtime_s=100.0)

    def test_pod_blast_radius(self):
        # Pods of 2: nodes {0,1}, {2,3}.  One down per pod.
        coordinator = FleetCoordinator(
            max_nodes_down=10, pod_size=2, max_down_per_pod=1
        )
        assert coordinator.request(0, now=0.0, downtime_s=100.0)
        assert not coordinator.request(1, now=0.0, downtime_s=100.0)
        assert coordinator.request(2, now=0.0, downtime_s=100.0)
        assert not coordinator.request(3, now=0.0, downtime_s=100.0)

    def test_first_node_offsets_pod_membership(self):
        # The shard owns global nodes 4..7; pods of 4 -> one pod here.
        coordinator = FleetCoordinator(
            max_nodes_down=10,
            pod_size=4,
            max_down_per_pod=1,
            first_node=4,
        )
        assert coordinator.request(0, now=0.0, downtime_s=100.0)
        assert not coordinator.request(3, now=0.0, downtime_s=100.0)
        assert coordinator.grants[0][1] == 4  # logged globally

    def test_grant_log_records_downtime_window(self):
        coordinator = FleetCoordinator(first_node=10)
        coordinator.request(2, now=5.0, downtime_s=30.0)
        assert coordinator.grants == [(5.0, 12, 35.0)]

    def test_denials_leave_no_trace_in_the_log(self):
        coordinator = FleetCoordinator(max_nodes_down=1)
        coordinator.request(0, now=0.0, downtime_s=50.0)
        coordinator.request(1, now=1.0, downtime_s=50.0)
        assert len(coordinator.grants) == 1
        assert coordinator.denied == 1

    def test_reset_clears_everything(self):
        coordinator = FleetCoordinator(max_nodes_down=1)
        coordinator.request(0, now=0.0, downtime_s=50.0)
        coordinator.reset()
        assert coordinator.grants == []
        assert coordinator.granted == 0
        assert coordinator.nodes_down(0.0) == 0

    def test_zero_downtime_grants_do_not_occupy_capacity(self):
        coordinator = FleetCoordinator(max_nodes_down=1)
        for node in range(5):
            assert coordinator.request(node, now=float(node), downtime_s=0.0)

    def test_cluster_protocol_compatible(self):
        """Drop-in for RollingCoordinator inside a ClusterSystem."""
        import dataclasses

        from repro.cluster.system import ClusterSystem
        from repro.ecommerce.config import PAPER_CONFIG
        from repro.ecommerce.workload import PoissonArrivals

        config = dataclasses.replace(
            PAPER_CONFIG, rejuvenation_downtime_s=120.0
        )
        coordinator = FleetCoordinator(max_nodes_down=1)
        cluster = ClusterSystem(
            config,
            3,
            PoissonArrivals(3 * 1.8),
            lambda: None,
            coordinator=coordinator,
            seed=1,
        )
        cluster.run(2_000)
        assert coordinator.granted == 0  # no policy, no requests


class TestCanaryCoordinator:
    def test_canary_holds_the_fleet_until_soaked(self):
        coordinator = CanaryCoordinator(
            canary_soak_s=50.0, max_nodes_down=10
        )
        assert coordinator.request(0, now=0.0, downtime_s=100.0)
        # Canary done at 100, soaked at 150: everything until then waits.
        assert not coordinator.request(1, now=100.0, downtime_s=100.0)
        assert not coordinator.request(2, now=149.0, downtime_s=100.0)
        assert coordinator.request(1, now=150.0, downtime_s=100.0)
        assert coordinator.request(2, now=151.0, downtime_s=100.0)

    def test_open_wave_still_honours_rolling_limits(self):
        coordinator = CanaryCoordinator(canary_soak_s=0.0, max_nodes_down=2)
        assert coordinator.request(0, now=0.0, downtime_s=10.0)
        assert coordinator.request(1, now=10.5, downtime_s=100.0)
        assert coordinator.request(2, now=11.0, downtime_s=100.0)
        assert not coordinator.request(3, now=12.0, downtime_s=100.0)

    def test_quiet_wave_closes_and_restarts_with_a_canary(self):
        coordinator = CanaryCoordinator(
            canary_soak_s=40.0, wave_quiet_s=100.0, max_nodes_down=10
        )
        assert coordinator.request(0, now=0.0, downtime_s=10.0)
        assert coordinator.request(1, now=50.0, downtime_s=10.0)  # wave open
        # 200s of silence: the next trigger is a fresh canary.
        assert coordinator.request(2, now=250.0, downtime_s=10.0)
        assert not coordinator.request(3, now=255.0, downtime_s=10.0)
        assert coordinator.request(3, now=301.0, downtime_s=10.0)

    def test_denied_canary_volunteer_does_not_start_a_wave(self):
        coordinator = CanaryCoordinator(
            canary_soak_s=10.0, min_gap_s=100.0, max_nodes_down=10
        )
        assert coordinator.request(0, now=0.0, downtime_s=10.0)
        assert coordinator.request(1, now=120.0, downtime_s=10.0)
        # A new run: reset, then a gap-blocked volunteer.
        coordinator.reset()
        coordinator._last_grant = 0.0
        assert not coordinator.request(0, now=50.0, downtime_s=10.0)
        # The next eligible request still becomes the canary.
        assert coordinator.request(1, now=150.0, downtime_s=10.0)
        assert not coordinator.request(2, now=155.0, downtime_s=10.0)
