"""Tracing overhead: the null path must be near-free, traced-on costed.

Two measurements of the same quick-scale replication workload:

* **null path** -- tracing not requested.  The instrumented hot loops
  (event dispatch, enqueue, service start, completion, policy batches)
  each pay one attribute load and ``None``/flag check.  The benchmark
  pins this against an estimate of the *pre-instrumentation* cost by
  requiring the untraced run to stay within a small factor of the
  fastest repeat -- and, more importantly, records the absolute number
  for the machine-capability record.
* **traced-on** -- a full ``level="all"`` trace of the same workload,
  recorded (not asserted: buffering every DES event is allowed to cost
  real time; the point is to know how much).

The ISSUE acceptance bound -- untraced wall-clock within 5% of the
seed's -- cannot be measured against a binary this repo no longer
contains, so the enforced proxy is: the *null-path* run must not be
more than 5% slower than the *median* of its own repeats (i.e. the
instrumentation adds no systematic drag beyond run-to-run noise), and
the per-event cost of tracing is printed for the record.
"""

import statistics
import time

from conftest import BENCH_SEED, bench_scale

from repro.core.spec import PolicySpec
from repro.ecommerce.config import PAPER_CONFIG
from repro.ecommerce.runner import run_replications
from repro.ecommerce.spec import ArrivalSpec
from repro.obs.session import TraceSession, use_tracing

REPEATS = 3


def _workload(trace_session=None):
    scale = bench_scale()
    n = max(2_000, scale.transactions // 10)
    if trace_session is None:
        return run_replications(
            PAPER_CONFIG,
            arrival=ArrivalSpec.poisson(1.8),
            policy=PolicySpec.sraa(2, 5, 3),
            n_transactions=n,
            replications=2,
            seed=BENCH_SEED,
        )
    with use_tracing(trace_session):
        return run_replications(
            PAPER_CONFIG,
            arrival=ArrivalSpec.poisson(1.8),
            policy=PolicySpec.sraa(2, 5, 3),
            n_transactions=n,
            replications=2,
            seed=BENCH_SEED,
        )


def test_trace_overhead(benchmark):
    # Warm-up (imports, allocator, branch caches) outside the timings.
    _workload()

    null_times = []
    for _ in range(REPEATS):
        started = time.perf_counter()
        result = _workload()
        null_times.append(time.perf_counter() - started)

    session = TraceSession("all")
    traced_started = time.perf_counter()
    traced_result = _workload(session)
    traced_s = time.perf_counter() - traced_started

    # Tracing must not change the simulation itself.
    assert traced_result.runs[0].arrivals == result.runs[0].arrivals
    assert [r.completed for r in traced_result.runs] == [
        r.completed for r in result.runs
    ]

    null_s = min(null_times)
    median_s = statistics.median(null_times)
    events = session.n_events
    per_event_us = (
        (traced_s - median_s) / events * 1e6 if events else float("nan")
    )

    benchmark.extra_info["null_s"] = round(null_s, 4)
    benchmark.extra_info["null_median_s"] = round(median_s, 4)
    benchmark.extra_info["traced_s"] = round(traced_s, 4)
    benchmark.extra_info["trace_events"] = events
    benchmark.extra_info["per_event_us"] = round(per_event_us, 3)
    print(
        f"\nnull path {null_s:.3f}s (median {median_s:.3f}s over "
        f"{REPEATS}), traced-on {traced_s:.3f}s for {events} events "
        f"(~{per_event_us:.1f} us/event)"
    )

    # The null-path pin: the best and median untraced repeats must
    # agree within 5% -- the disabled instrumentation adds no
    # systematic drag, only noise.
    assert median_s <= null_s * 1.05, (
        f"untraced repeats spread beyond 5%: min {null_s:.3f}s vs "
        f"median {median_s:.3f}s"
    )

    # Keep pytest-benchmark's timing machinery fed with the cheap path.
    benchmark.pedantic(_workload, rounds=1, iterations=1)
