"""The Fig. 4 sample-mean chain against the paper's exact results."""

import numpy as np
import pytest
from scipy.integrate import quad
from scipy.stats import norm

from repro.ctmc.sample_mean import (
    SampleMeanChain,
    build_sample_mean_generator,
    clt_false_alarm_probability,
)
from repro.queueing.mmc import MMcModel


class TestGeneratorStructure:
    def test_size_is_2n_plus_1(self, paper_model):
        for n in (1, 5, 30):
            Q = build_sample_mean_generator(paper_model, n)
            assert Q.shape == (2 * n + 1, 2 * n + 1)

    def test_rates_scale_with_n(self, paper_model):
        n = 4
        Q = build_sample_mean_generator(paper_model, n)
        mu, lam, c = 0.2, 1.6, 16
        wc = paper_model.wc()
        assert Q[0, 1] == pytest.approx(n * mu * (1 - wc))
        assert Q[0, 2] == pytest.approx(n * mu * wc)
        assert Q[1, 2] == pytest.approx(n * (c * mu - lam))

    def test_last_state_absorbing(self, paper_model):
        Q = build_sample_mean_generator(paper_model, 3)
        assert np.all(Q[-1] == 0.0)

    def test_rows_sum_to_zero(self, paper_model):
        Q = build_sample_mean_generator(paper_model, 7)
        assert np.allclose(Q.sum(axis=1), 0.0)

    def test_invalid_n_rejected(self, paper_model):
        with pytest.raises(ValueError):
            build_sample_mean_generator(paper_model, 0)

    def test_unstable_model_rejected(self):
        with pytest.raises(ValueError):
            build_sample_mean_generator(MMcModel(4.0, 0.2, 16), 5)


class TestMoments:
    @pytest.mark.parametrize("n", [1, 2, 5, 15, 30])
    def test_mean_is_mu_x(self, paper_model, n):
        chain = SampleMeanChain(paper_model, n)
        assert chain.mean() == pytest.approx(
            paper_model.response_time_mean(), abs=1e-9
        )

    @pytest.mark.parametrize("n", [1, 2, 5, 15, 30])
    def test_var_is_sigma2_over_n(self, paper_model, n):
        chain = SampleMeanChain(paper_model, n)
        assert chain.var() == pytest.approx(
            paper_model.response_time_var() / n, abs=1e-9
        )


class TestDistribution:
    def test_n1_matches_response_time_law(self, paper_model):
        chain = SampleMeanChain(paper_model, 1)
        for x in (1.0, 5.0, 12.0):
            assert chain.cdf(x) == pytest.approx(
                paper_model.response_time_cdf(x), abs=1e-8
            )

    def test_pdf_integrates_to_one(self, paper_model):
        chain = SampleMeanChain(paper_model, 5)
        total, _ = quad(chain.pdf, 0.0, 60.0, limit=100)
        assert total == pytest.approx(1.0, abs=1e-6)

    def test_cdf_monotone(self, paper_model):
        chain = SampleMeanChain(paper_model, 10)
        xs = np.linspace(0.5, 15.0, 12)
        values = [chain.cdf(float(x)) for x in xs]
        assert all(a <= b + 1e-12 for a, b in zip(values, values[1:]))

    def test_sf_complements_cdf(self, paper_model):
        chain = SampleMeanChain(paper_model, 5)
        assert chain.sf(6.0) == pytest.approx(1.0 - chain.cdf(6.0), abs=1e-12)

    def test_pdf_grid(self, paper_model):
        chain = SampleMeanChain(paper_model, 5)
        xs = np.array([2.0, 5.0, 8.0])
        grid = chain.pdf_grid(xs)
        assert grid.shape == (3,)
        assert grid[1] == pytest.approx(chain.pdf(5.0))

    def test_density_concentrates_with_n(self, paper_model):
        # Peak density grows like sqrt(n) as the law concentrates.
        peak5 = SampleMeanChain(paper_model, 5).pdf(5.0)
        peak30 = SampleMeanChain(paper_model, 30).pdf(5.0)
        assert peak30 > peak5 * 1.5


class TestNormalApproximation:
    def test_parameters(self, paper_model):
        chain = SampleMeanChain(paper_model, 30)
        mu, sigma = chain.normal_parameters()
        assert mu == pytest.approx(paper_model.response_time_mean())
        assert sigma == pytest.approx(
            paper_model.response_time_std() / np.sqrt(30)
        )

    def test_normal_quantile(self, paper_model):
        chain = SampleMeanChain(paper_model, 30)
        mu, sigma = chain.normal_parameters()
        assert chain.normal_quantile(0.975) == pytest.approx(
            mu + norm.ppf(0.975) * sigma
        )
        with pytest.raises(ValueError):
            chain.normal_quantile(1.2)

    def test_normal_pdf(self, paper_model):
        chain = SampleMeanChain(paper_model, 15)
        mu, sigma = chain.normal_parameters()
        assert chain.normal_pdf(mu) == pytest.approx(
            1.0 / (sigma * np.sqrt(2 * np.pi))
        )


class TestFalseAlarm:
    def test_paper_value_n15(self, paper_model):
        # Paper: 3.69 % (we match to the paper's printed precision).
        value = SampleMeanChain(paper_model, 15).false_alarm_probability()
        assert value == pytest.approx(0.0369, abs=0.0005)

    def test_paper_value_n30(self, paper_model):
        # Paper: 3.37 %.
        value = SampleMeanChain(paper_model, 30).false_alarm_probability()
        assert value == pytest.approx(0.0337, abs=0.0005)

    def test_decreases_towards_nominal(self, paper_model):
        values = [
            clt_false_alarm_probability(paper_model, n) for n in (5, 15, 30)
        ]
        assert values[0] > values[1] > values[2] > 0.025

    def test_wrapper_matches_method(self, paper_model):
        assert clt_false_alarm_probability(
            paper_model, 15
        ) == pytest.approx(
            SampleMeanChain(paper_model, 15).false_alarm_probability()
        )
