"""The alert ledger file format and the pluggable sinks."""

import io
import json

import pytest

from repro.obs.sentinel import (
    AlertLedger,
    FileSink,
    StdoutSink,
    WebhookSink,
    sinks_from_specs,
)
from repro.obs.sentinel.sinks import format_transition


def transition(action="open", **incident):
    base = {
        "id": "inc-0001",
        "rule": "slo",
        "target": "r1",
        "status": "open" if action == "open" else "closed",
        "summary": "burn 10.0x/8.0x of budget 0.050",
    }
    base.update(incident)
    return {"action": action, "incident": base}


class TestAlertLedger:
    def test_append_stamps_sequential_envelopes(self, tmp_path):
        ledger = AlertLedger(str(tmp_path / "alerts"))
        first = ledger.append(transition("open"))
        second = ledger.append(transition("close", close_reason="resolved"))
        assert (first["seq"], second["seq"]) == (1, 2)
        assert "created_utc" in first
        lines = ledger.path.read_text().strip().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0])["action"] == "open"

    def test_env_var_locates_the_default_root(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_ALERTS_DIR", str(tmp_path / "via-env"))
        ledger = AlertLedger()
        ledger.append(transition())
        assert (tmp_path / "via-env" / "alerts.jsonl").exists()

    def test_incident_replay_latest_wins(self, tmp_path):
        ledger = AlertLedger(str(tmp_path / "alerts"))
        ledger.append(transition("open"))
        ledger.append(
            transition("open", id="inc-0002", target="r2")
        )
        ledger.append(transition("close", close_reason="resolved"))
        incidents = ledger.incidents()
        assert [i["id"] for i in incidents] == ["inc-0001", "inc-0002"]
        assert incidents[0]["status"] == "closed"
        assert [i["id"] for i in ledger.open_incidents()] == ["inc-0002"]

    def test_empty_ledger_reads_empty(self, tmp_path):
        ledger = AlertLedger(str(tmp_path / "nothing"))
        assert ledger.records() == []
        assert ledger.incidents() == []


class TestFormatTransition:
    def test_open_line(self):
        line = format_transition(transition("open"))
        assert line.startswith("[open] inc-0001 rule=slo target=r1")
        assert "burn 10.0x" in line

    def test_close_line_carries_the_reason(self):
        line = format_transition(
            transition("close", close_reason="run_ended")
        )
        assert "reason=run_ended" in line


class TestSinks:
    def test_stdout_sink_writes_one_liners(self):
        stream = io.StringIO()
        StdoutSink(stream).emit(transition())
        assert stream.getvalue().startswith("[open] inc-0001")

    def test_file_sink_appends_jsonl(self, tmp_path):
        path = tmp_path / "deep" / "alerts.jsonl"
        sink = FileSink(str(path))
        sink.emit(transition("open"))
        sink.emit(transition("close"))
        records = [
            json.loads(line)
            for line in path.read_text().strip().splitlines()
        ]
        assert [r["action"] for r in records] == ["open", "close"]

    def test_webhook_sink_counts_failures_without_raising(self):
        sink = WebhookSink(
            "http://127.0.0.1:1/unroutable", timeout_s=0.2
        )
        sink.emit(transition())
        assert (sink.sent, sink.errors) == (0, 1)

    def test_specs_build_each_kind(self, tmp_path):
        sinks = sinks_from_specs(
            [
                "stdout",
                f"file:{tmp_path / 'a.jsonl'}",
                "webhook:http://example.invalid/hook",
            ]
        )
        assert [type(s).__name__ for s in sinks] == [
            "StdoutSink",
            "FileSink",
            "WebhookSink",
        ]
        assert sinks_from_specs(None) == []

    @pytest.mark.parametrize(
        "bad", ["file:", "webhook:", "pager", "slack:#chan"]
    )
    def test_bad_specs_raise(self, bad):
        with pytest.raises(ValueError):
            sinks_from_specs([bad])
