"""Streaming sketches: accuracy bounds, merging, determinism."""

import pickle

import numpy as np
import pytest

from repro.obs.live.sketches import (
    DEFAULT_EPS,
    MERGED_ERROR_FACTOR,
    EwmaRate,
    GKSketch,
    RollingWindow,
)
from repro.stats.running import OnlineMoments


def rank_error(values, estimate, q):
    """|empirical rank of the estimate - q|, in [0, 1]."""
    ordered = np.sort(np.asarray(values))
    rank = np.searchsorted(ordered, estimate, side="right")
    return abs(rank / len(ordered) - q)


class TestGKSketch:
    @pytest.mark.parametrize("q", [0.05, 0.5, 0.9, 0.95, 0.99])
    def test_rank_error_within_eps(self, q):
        rng = np.random.default_rng(0)
        values = rng.exponential(5.0, size=20_000)
        sketch = GKSketch(eps=DEFAULT_EPS)
        for value in values:
            sketch.update(float(value))
        estimate = sketch.query(q)
        # The documented bound, plus discretisation slack of 1/n.
        assert rank_error(values, estimate, q) <= DEFAULT_EPS + 1e-3

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            GKSketch().query(0.5)

    def test_single_value(self):
        sketch = GKSketch()
        sketch.update(7.0)
        for q in (0.01, 0.5, 0.99):
            assert sketch.query(q) == 7.0

    def test_ties(self):
        sketch = GKSketch(eps=0.01)
        for _ in range(5_000):
            sketch.update(3.0)
        assert sketch.query(0.5) == 3.0

    def test_memory_stays_bounded(self):
        sketch = GKSketch(eps=0.01)
        rng = np.random.default_rng(1)
        for value in rng.normal(size=50_000):
            sketch.update(float(value))
        # GK guarantees O((1/eps) log(eps n)); be generous but bounded.
        assert len(sketch) == 50_000
        assert sketch.tuples < 11 * (1.0 / 0.01)

    def test_quantiles_monotone(self):
        sketch = GKSketch()
        rng = np.random.default_rng(2)
        for value in rng.uniform(0, 100, size=10_000):
            sketch.update(float(value))
        qs = [0.1, 0.25, 0.5, 0.75, 0.9, 0.99]
        estimates = sketch.quantiles(qs)
        assert list(estimates) == sorted(estimates)

    @pytest.mark.parametrize("q", [0.5, 0.95, 0.99])
    def test_merged_rank_error_within_documented_factor(self, q):
        rng = np.random.default_rng(3)
        chunks = [
            rng.exponential(5.0, size=8_000),
            rng.normal(20.0, 2.0, size=8_000),
            rng.uniform(0.0, 50.0, size=4_000),
        ]
        sketches = []
        for chunk in chunks:
            sketch = GKSketch(eps=DEFAULT_EPS)
            for value in chunk:
                sketch.update(float(value))
            sketches.append(sketch)
        merged = sketches[0].merge(sketches[1]).merge(sketches[2])
        everything = np.concatenate(chunks)
        bound = MERGED_ERROR_FACTOR * DEFAULT_EPS
        assert rank_error(everything, merged.query(q), q) <= bound + 1e-3

    def test_merge_deterministic_and_picklable(self):
        rng = np.random.default_rng(4)
        a, b = GKSketch(), GKSketch()
        for value in rng.exponential(size=3_000):
            a.update(float(value))
        for value in rng.exponential(size=3_000):
            b.update(float(value))
        merged_once = a.merge(b)
        merged_again = a.merge(b)
        qs = [0.1, 0.5, 0.9, 0.99]
        assert merged_once.quantiles(qs) == merged_again.quantiles(qs)
        revived = pickle.loads(pickle.dumps(merged_once))
        assert revived.quantiles(qs) == merged_once.quantiles(qs)


class TestRollingWindow:
    def test_keeps_last_n(self):
        window = RollingWindow(size=3)
        for value in (1.0, 2.0, 3.0, 4.0, 5.0):
            window.push(value)
        assert window.values() == (3.0, 4.0, 5.0)
        assert window.mean == pytest.approx(4.0)

    def test_moments_match_reference(self):
        window = RollingWindow(size=4)
        for value in (1.0, 2.0, 3.0, 4.0, 5.0, 6.0):
            window.push(value)
        reference = OnlineMoments()
        reference.extend([3.0, 4.0, 5.0, 6.0])
        assert window.moments().mean == pytest.approx(reference.mean)
        assert window.std == pytest.approx(reference.std)

    def test_autocorr_alternating_is_negative(self):
        window = RollingWindow(size=64)
        for i in range(64):
            window.push(1.0 if i % 2 else -1.0)
        assert window.autocorr_lag1() < -0.9

    def test_autocorr_needs_variance(self):
        window = RollingWindow(size=8)
        for _ in range(8):
            window.push(5.0)
        assert window.autocorr_lag1() == 0.0

    def test_merge_keeps_newest(self):
        left, right = RollingWindow(size=3), RollingWindow(size=3)
        for value in (1.0, 2.0):
            left.push(value)
        for value in (10.0, 11.0):
            right.push(value)
        merged = left.merge(right)
        assert merged.values() == (2.0, 10.0, 11.0)

    def test_size_validation(self):
        with pytest.raises(ValueError):
            RollingWindow(size=1)


class TestEwmaRate:
    def test_steady_stream_converges_to_rate(self):
        meter = EwmaRate(tau_s=10.0)
        for i in range(1, 2_001):
            meter.update(i * 0.5)  # 2 events per second
        assert meter.rate() == pytest.approx(2.0, rel=0.05)

    def test_rate_decays_when_idle(self):
        meter = EwmaRate(tau_s=10.0)
        for i in range(1, 101):
            meter.update(i * 0.1)
        busy = meter.rate()
        assert meter.rate(at_ts=meter.last_ts + 100.0) < busy / 10.0

    def test_merge_sums_rates(self):
        a, b = EwmaRate(tau_s=10.0), EwmaRate(tau_s=10.0)
        for i in range(1, 501):
            a.update(i * 0.5)
            b.update(i * 0.5)
        merged = a.merge(b)
        assert merged.rate() == pytest.approx(2.0 * a.rate(), rel=1e-9)
        assert merged.count == a.count + b.count
