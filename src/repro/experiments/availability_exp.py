"""Availability planning table (Huang et al. 1995, ref. [9]).

Purely analytical: steady-state availability and yearly downtime as a
function of the rejuvenation rate, for a fast- and a slow-restart
system, plus the cost-optimal rates under three outage pricings.
"""

from __future__ import annotations

from repro.availability.huang import HuangRejuvenationModel
from repro.experiments.scale import Scale
from repro.experiments.tables import ExperimentResult, Series, Table

#: Rates per hour: ages over ~2 days, aged system crashes within ~8 h,
#: 2 h unscheduled repair.
BASE = dict(aging_rate=1 / 48, failure_rate=1 / 8, repair_rate=1 / 2)
REJUVENATION_RATES = (0.0, 0.05, 0.2, 1.0, 5.0)


def run_availability(scale: Scale, seed: int = 0) -> ExperimentResult:
    """Availability vs rejuvenation rate for fast and slow restarts."""
    fast = HuangRejuvenationModel(
        rejuvenation_completion_rate=6.0, **BASE  # 10-minute restart
    )
    slow = HuangRejuvenationModel(
        rejuvenation_completion_rate=0.5, **BASE  # 2-hour restart
    )
    table = Table(
        title="Huang model: availability vs rejuvenation rate (per hour)",
        x_label="rejuvenation_rate_per_h",
        y_label="availability",
    )
    for label, model in (("10-min restart", fast), ("2-h restart", slow)):
        series = Series(label=label)
        downtime = Series(label=f"{label}: downtime h/yr")
        for rate in REJUVENATION_RATES:
            series.add(rate, model.availability(rate))
            downtime.add(rate, model.downtime_hours_per_year(rate))
        table.add_series(series)
        table.add_series(downtime)
    table.notes.append(
        "2-h restarts equal the repair time, so rejuvenating cannot "
        "raise availability there; 10-min restarts raise it an order "
        "of magnitude"
    )
    optimal = Table(
        title="Cost-optimal rejuvenation rate (10-min restart model)",
        x_label="scenario_index",
        y_label="rate_per_h",
    )
    rates = Series(label="optimal rate")
    notes = []
    scenarios = (
        (100.0, 1.0, "crash hours 100x restart hours"),
        (2.0, 1.0, "crash hours 2x restart hours"),
        (1.0, 50.0, "restart hours 50x crash hours"),
    )
    for index, (c_fail, c_rejuvenate, story) in enumerate(scenarios):
        rate = fast.optimal_rejuvenation_rate(
            c_fail, c_rejuvenate, max_rate=30.0
        )
        rates.add(index, rate)
        notes.append(f"index {index}: {story}")
    optimal.add_series(rates)
    optimal.notes.extend(notes)
    return ExperimentResult(
        experiment_id="availability",
        description=(
            "Huang et al. availability planning (analytical, ref. [9]; "
            "beyond the paper)"
        ),
        tables=[table, optimal],
        paper_expectations=[
            "not in this paper -- the classical planning result the "
            "measurement-driven policies refine: rejuvenation pays "
            "exactly when the scheduled outage is cheap relative to "
            "crashes, and the optimum is bang-bang in this model",
        ],
    )
