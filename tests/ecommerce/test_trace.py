"""Trace recording, persistence and offline policy replay."""

import numpy as np
import pytest

from repro.core.clta import CLTA
from repro.core.sla import PAPER_SLO
from repro.core.sraa import SRAA
from repro.ecommerce.config import PAPER_CONFIG
from repro.ecommerce.runner import run_once, simulate_mmc_response_times
from repro.ecommerce.trace import (
    RecordingArrivals,
    ReplayReport,
    load_trace,
    replay_policy,
    save_trace,
)
from repro.ecommerce.workload import PoissonArrivals


class TestRecordingArrivals:
    def test_records_what_it_hands_out(self):
        recorder = RecordingArrivals(PoissonArrivals(1.0))
        rng = np.random.default_rng(0)
        produced = [recorder.interarrival(rng) for _ in range(50)]
        assert recorder.recorded == produced

    def test_replay_reproduces_the_run_exactly(self):
        # Record one stochastic run, replay the frozen trace with the
        # same service seed: identical outcome.
        recorder = RecordingArrivals(PoissonArrivals(1.6))
        original = run_once(
            PAPER_CONFIG, recorder, None, 2_000, seed=5
        )
        replayed = run_once(
            PAPER_CONFIG, recorder.to_trace(), None, 2_000, seed=5
        )
        assert replayed.avg_response_time == original.avg_response_time
        assert replayed.gc_count == original.gc_count

    def test_mean_rate_delegates(self):
        recorder = RecordingArrivals(PoissonArrivals(1.6))
        assert recorder.mean_rate() == 1.6

    def test_empty_recording_rejected(self):
        with pytest.raises(ValueError):
            RecordingArrivals(PoissonArrivals(1.0)).to_trace()


class TestPersistence:
    def test_round_trip(self, tmp_path):
        values = [0.5, 1.25, 0.0, 3.75]
        path = tmp_path / "trace.txt"
        save_trace(values, str(path))
        assert load_trace(str(path)) == values

    def test_round_trip_preserves_precision(self, tmp_path):
        rng = np.random.default_rng(1)
        values = list(rng.exponential(1.0, size=100))
        path = tmp_path / "trace.txt"
        save_trace(values, str(path))
        assert load_trace(str(path)) == values

    def test_empty_save_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            save_trace([], str(tmp_path / "x.txt"))

    def test_corrupt_file_rejected(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("1.0\nnot-a-number\n")
        with pytest.raises(ValueError, match="bad.txt:2"):
            load_trace(str(path))

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "gappy.txt"
        path.write_text("1.0\n\n2.0\n")
        assert load_trace(str(path)) == [1.0, 2.0]

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.txt"
        path.write_text("\n\n")
        with pytest.raises(ValueError):
            load_trace(str(path))


class TestReplay:
    def test_healthy_trace_triggers_rarely(self):
        rts = simulate_mmc_response_times(1.6, 10_000, seed=2)
        report = replay_policy(SRAA(PAPER_SLO, 2, 5, 3), rts)
        assert report.observations == 10_000
        assert report.triggers == 0

    def test_degraded_trace_triggers(self):
        rng = np.random.default_rng(3)
        degraded = rng.exponential(40.0, size=2_000)
        report = replay_policy(SRAA(PAPER_SLO, 2, 5, 3), degraded)
        assert report.triggers > 0

    def test_policy_reset_before_replay(self):
        policy = CLTA(PAPER_SLO, sample_size=4, z=1.96)
        policy.observe(100.0)  # stale partial batch
        report = replay_policy(policy, [100.0, 100.0, 100.0, 100.0])
        # A fresh batch of four: exactly one trigger at index 3.
        assert report.trigger_indices == (3,)

    def test_gap_statistics(self):
        report = ReplayReport(observations=100, trigger_indices=(10, 40, 90))
        assert report.triggers == 3
        assert report.mean_observations_between_triggers == pytest.approx(
            40.0
        )

    def test_gap_degenerate(self):
        report = ReplayReport(observations=10, trigger_indices=(5,))
        assert report.mean_observations_between_triggers == float("inf")
