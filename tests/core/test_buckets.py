"""The Fig. 6 bucket chain, checked against a pseudo-code walkthrough."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.buckets import BucketChain, Transition


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ValueError):
            BucketChain(n_buckets=0, depth=1)
        with pytest.raises(ValueError):
            BucketChain(n_buckets=1, depth=0)

    def test_initial_state(self):
        chain = BucketChain(3, 2)
        assert chain.level == 0
        assert chain.fill == 0

    def test_min_observations(self):
        # Each bucket absorbs D + 1 net exceedances (Fig. 6: d > D).
        assert BucketChain(5, 3).min_observations_to_trigger == 20
        assert BucketChain(1, 1).min_observations_to_trigger == 2


class TestWithinBucket:
    def test_ball_added_on_exceedance(self):
        chain = BucketChain(2, 3)
        assert chain.record(True) is Transition.NONE
        assert chain.fill == 1

    def test_ball_removed_otherwise(self):
        chain = BucketChain(2, 3)
        chain.record(True)
        chain.record(False)
        assert chain.fill == 0

    def test_fill_floors_at_zero_in_bucket_zero(self):
        chain = BucketChain(2, 3)
        for _ in range(5):
            assert chain.record(False) is Transition.NONE
        assert chain.fill == 0
        assert chain.level == 0


class TestOverflowUnderflow:
    def test_overflow_needs_depth_plus_one(self):
        chain = BucketChain(2, 3)
        for _ in range(3):
            assert chain.record(True) is Transition.NONE
        assert chain.record(True) is Transition.LEVEL_UP
        assert chain.level == 1
        assert chain.fill == 0

    def test_underflow_restores_full_previous_bucket(self):
        chain = BucketChain(2, 3)
        for _ in range(4):
            chain.record(True)  # overflow into bucket 1
        assert chain.record(False) is Transition.LEVEL_DOWN
        assert chain.level == 0
        assert chain.fill == 3  # refilled to D

    def test_trigger_on_last_bucket(self):
        chain = BucketChain(1, 1)
        assert chain.record(True) is Transition.NONE
        assert chain.record(True) is Transition.TRIGGER
        assert chain.level == 0
        assert chain.fill == 0
        assert chain.triggers == 1

    def test_full_climb_to_trigger(self):
        chain = BucketChain(3, 2)
        transitions = [chain.record(True) for _ in range(9)]
        assert transitions[:2] == [Transition.NONE] * 2
        assert transitions[2] is Transition.LEVEL_UP
        assert transitions[5] is Transition.LEVEL_UP
        assert transitions[8] is Transition.TRIGGER

    def test_oscillation_does_not_trigger(self):
        chain = BucketChain(2, 2)
        for _ in range(50):
            chain.record(True)
            chain.record(False)
        assert chain.triggers == 0

    def test_reset(self):
        chain = BucketChain(3, 2)
        for _ in range(4):
            chain.record(True)
        chain.reset()
        assert chain.level == 0
        assert chain.fill == 0


class TestPseudoCodeWalkthrough:
    def test_figure6_trace(self):
        """A hand-computed trace of Fig. 6 with K=2, D=1."""
        chain = BucketChain(2, 1)
        # x > target: d 0->1 (<= D): none.
        assert chain.record(True) is Transition.NONE
        # x > target: d 1->2 > D: overflow, d=0, N=1.
        assert chain.record(True) is Transition.LEVEL_UP
        # x <= target: d 0->-1 < 0, N>0: underflow, d=D=1, N=0.
        assert chain.record(False) is Transition.LEVEL_DOWN
        assert (chain.level, chain.fill) == (0, 1)
        # Two exceedances: d 1->2 > D: overflow to N=1 again.
        assert chain.record(True) is Transition.LEVEL_UP
        # Two more: d=1 then d=2 > D: N=2 == K: trigger + reset.
        assert chain.record(True) is Transition.NONE
        assert chain.record(True) is Transition.TRIGGER
        assert (chain.level, chain.fill) == (0, 0)


class TestInvariants:
    @given(
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=1, max_value=6),
        st.lists(st.booleans(), max_size=300),
    )
    @settings(max_examples=80, deadline=None)
    def test_property_state_stays_in_bounds(self, K, D, outcomes):
        chain = BucketChain(K, D)
        for outcome in outcomes:
            chain.record(outcome)
            assert 0 <= chain.level < K
            assert 0 <= chain.fill <= D

    @given(
        st.integers(min_value=1, max_value=5),
        st.integers(min_value=1, max_value=5),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_all_exceedances_trigger_at_min_delay(self, K, D):
        chain = BucketChain(K, D)
        steps = 0
        while True:
            steps += 1
            if chain.record(True) is Transition.TRIGGER:
                break
        assert steps == chain.min_observations_to_trigger

    @given(
        st.integers(min_value=2, max_value=5),
        st.integers(min_value=1, max_value=5),
        st.lists(st.booleans(), max_size=200),
    )
    @settings(max_examples=50, deadline=None)
    def test_property_trigger_only_after_min_delay(self, K, D, outcomes):
        chain = BucketChain(K, D)
        minimum = chain.min_observations_to_trigger
        for i, outcome in enumerate(outcomes):
            result = chain.record(outcome)
            if result is Transition.TRIGGER:
                assert i + 1 >= minimum
                break
