"""Normal quantiles and the algorithms' thresholds."""

import math

import pytest

from repro.stats.normal import (
    normal_quantile,
    sample_mean_threshold,
    shift_threshold,
    two_sided_z,
)


class TestQuantiles:
    def test_median(self):
        assert normal_quantile(0.5) == pytest.approx(0.0, abs=1e-12)

    def test_975_is_196(self):
        assert normal_quantile(0.975) == pytest.approx(1.959964, abs=1e-5)

    def test_symmetry(self):
        assert normal_quantile(0.1) == pytest.approx(
            -normal_quantile(0.9), abs=1e-12
        )

    def test_validation(self):
        for bad in (0.0, 1.0, -0.5):
            with pytest.raises(ValueError):
                normal_quantile(bad)

    def test_two_sided(self):
        assert two_sided_z(0.95) == pytest.approx(1.959964, abs=1e-5)
        with pytest.raises(ValueError):
            two_sided_z(1.0)


class TestThresholds:
    def test_clta_paper_threshold(self):
        # mu + 1.96 sigma / sqrt(30) with mu = sigma = 5 (Section 5.6).
        value = sample_mean_threshold(5.0, 5.0, 30, 1.96)
        assert value == pytest.approx(5.0 + 1.96 * 5.0 / math.sqrt(30))

    def test_sraa_threshold_ignores_n(self):
        assert shift_threshold(5.0, 5.0, 2) == 15.0

    def test_multiplier_zero(self):
        assert sample_mean_threshold(5.0, 5.0, 10, 0.0) == 5.0
        assert shift_threshold(5.0, 5.0, 0.0) == 5.0

    def test_validation(self):
        with pytest.raises(ValueError):
            sample_mean_threshold(5.0, 5.0, 0, 1.0)
        with pytest.raises(ValueError):
            sample_mean_threshold(5.0, -1.0, 5, 1.0)
        with pytest.raises(ValueError):
            shift_threshold(5.0, -1.0, 1.0)
