"""Fault injection, adversarial scenarios, and policy robustness scoring.

The paper evaluates its detectors under a single aging mode -- the GC
stalls of the Section-3 model.  This package scripts every *other*
regime a deployed detector faces (workload shifts, flash crowds,
heavy-tailed contamination, crashes, false-aging blips, scripted GC
thrash) and scores every policy against machine-checkable ground
truth:

* :mod:`repro.faults.injectors` -- composable, picklable fault
  injections armed on the DES clock.
* :mod:`repro.faults.scenario` -- :class:`FaultScenario`: a timeline
  of injections plus ground-truth degradation intervals, with a
  dict/YAML loader.
* :mod:`repro.faults.zoo` -- the curated built-in scenarios.
* :mod:`repro.faults.campaign` -- (scenario x policy x replication)
  fan-out over :mod:`repro.exec` with common random numbers.
* :mod:`repro.faults.score` -- detection latency, missed detections,
  false alarms per healthy hour, recovery cost.

CLI: ``repro faults list|run|score``; experiments registry id
``faults`` (alias ``robustness``).
"""

from repro.faults.campaign import (
    DEFAULT_POLICIES,
    CampaignResult,
    campaign_jobs,
    run_campaign,
    score_trace,
)
from repro.faults.injectors import (
    INJECTION_TYPES,
    AgingAcceleration,
    FaultInjection,
    HeavyTailContamination,
    NodeCrash,
    NodeHang,
    ServiceSlowdown,
    TrafficSurge,
    WorkloadRamp,
    WorkloadShift,
)
from repro.faults.scenario import (
    FaultScenario,
    load_scenario,
    save_scenario,
    scenario_from_dict,
)
from repro.faults.score import (
    PolicyScore,
    RunScore,
    format_scores,
    score_policy,
    score_run,
    write_scores_csv,
)
from repro.faults.zoo import (
    builtin_scenarios,
    get_scenario,
    scenario_names,
)

__all__ = [
    "AgingAcceleration",
    "CampaignResult",
    "DEFAULT_POLICIES",
    "FaultInjection",
    "FaultScenario",
    "HeavyTailContamination",
    "INJECTION_TYPES",
    "NodeCrash",
    "NodeHang",
    "PolicyScore",
    "RunScore",
    "ServiceSlowdown",
    "TrafficSurge",
    "WorkloadRamp",
    "WorkloadShift",
    "builtin_scenarios",
    "campaign_jobs",
    "format_scores",
    "get_scenario",
    "load_scenario",
    "run_campaign",
    "save_scenario",
    "scenario_from_dict",
    "scenario_names",
    "score_policy",
    "score_run",
    "score_trace",
    "write_scores_csv",
]
