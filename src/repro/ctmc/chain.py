"""Generator-matrix representation of a continuous-time Markov chain."""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.ctmc.transient import transient_expm, transient_uniformization

_METHODS = ("uniformization", "expm")


class CTMC:
    """A finite continuous-time Markov chain.

    Parameters
    ----------
    generator:
        Square generator matrix ``Q``: non-negative off-diagonal rates,
        rows summing to zero (absorbing states have all-zero rows).
    state_names:
        Optional labels, used for lookups and error messages.

    Examples
    --------
    A two-state on/off chain:

    >>> chain = CTMC([[-1.0, 1.0], [2.0, -2.0]], state_names=("on", "off"))
    >>> pi = chain.steady_state()
    >>> [round(x, 6) for x in pi]
    [0.666667, 0.333333]
    """

    def __init__(
        self,
        generator: Sequence[Sequence[float]],
        state_names: Optional[Sequence[str]] = None,
    ) -> None:
        Q = np.asarray(generator, dtype=float)
        if Q.ndim != 2 or Q.shape[0] != Q.shape[1]:
            raise ValueError("generator must be a square matrix")
        off_diagonal = Q - np.diag(np.diag(Q))
        if np.any(off_diagonal < -1e-12):
            raise ValueError("off-diagonal rates must be non-negative")
        row_sums = Q.sum(axis=1)
        if np.any(np.abs(row_sums) > 1e-8 * max(1.0, np.abs(Q).max())):
            raise ValueError("generator rows must sum to zero")
        self.Q = Q
        if state_names is None:
            state_names = tuple(str(i) for i in range(Q.shape[0]))
        if len(state_names) != Q.shape[0]:
            raise ValueError("one name per state is required")
        self.state_names: Tuple[str, ...] = tuple(state_names)
        self._index: Dict[str, int] = {
            name: i for i, name in enumerate(self.state_names)
        }
        if len(self._index) != len(self.state_names):
            raise ValueError("state names must be unique")

    # ------------------------------------------------------------------
    @property
    def n_states(self) -> int:
        """Number of states."""
        return self.Q.shape[0]

    def state_index(self, name: str) -> int:
        """Index of the state called ``name``."""
        try:
            return self._index[name]
        except KeyError:
            raise KeyError(f"unknown state {name!r}") from None

    def absorbing_states(self) -> Tuple[int, ...]:
        """Indices of states with no outgoing rate."""
        return tuple(
            int(i)
            for i in range(self.n_states)
            if np.all(np.abs(self.Q[i]) < 1e-15)
        )

    # ------------------------------------------------------------------
    # Solutions
    # ------------------------------------------------------------------
    def transient(
        self,
        p0: Sequence[float],
        t: float,
        method: str = "uniformization",
        tol: float = 1e-12,
    ) -> np.ndarray:
        """State distribution at time ``t`` from initial distribution ``p0``."""
        initial = self._check_distribution(p0)
        if method == "uniformization":
            return transient_uniformization(self.Q, initial, t, tol=tol)
        if method == "expm":
            return transient_expm(self.Q, initial, t)
        raise ValueError(f"unknown method {method!r}; expected one of {_METHODS}")

    def steady_state(self) -> np.ndarray:
        """The stationary distribution ``pi`` with ``pi Q = 0``.

        Requires an irreducible chain (no absorbing states); solved by
        replacing one balance equation with the normalisation constraint.
        """
        if self.absorbing_states():
            raise ValueError(
                "steady state of a chain with absorbing states is trivial; "
                "use AbsorbingCTMC for absorption analysis"
            )
        n = self.n_states
        A = self.Q.T.copy()
        A[-1, :] = 1.0
        b = np.zeros(n)
        b[-1] = 1.0
        pi = np.linalg.solve(A, b)
        if np.any(pi < -1e-9):
            raise ArithmeticError("chain appears reducible; pi has negatives")
        pi = np.clip(pi, 0.0, None)
        return pi / pi.sum()

    # ------------------------------------------------------------------
    def _check_distribution(self, p0: Sequence[float]) -> np.ndarray:
        initial = np.asarray(p0, dtype=float)
        if initial.shape != (self.n_states,):
            raise ValueError(
                f"initial distribution must have length {self.n_states}"
            )
        if np.any(initial < -1e-12) or abs(float(initial.sum()) - 1.0) > 1e-9:
            raise ValueError("initial vector must be a probability distribution")
        return np.clip(initial, 0.0, None)

    @classmethod
    def from_rates(
        cls,
        n_states: int,
        rates: Iterable[Tuple[int, int, float]],
        state_names: Optional[Sequence[str]] = None,
    ) -> "CTMC":
        """Build a chain from ``(source, destination, rate)`` triples."""
        Q = np.zeros((n_states, n_states))
        for src, dst, rate in rates:
            if src == dst:
                raise ValueError("self-loops are meaningless in a CTMC")
            if rate < 0:
                raise ValueError("rates must be non-negative")
            Q[src, dst] += rate
            Q[src, src] -= rate
        return cls(Q, state_names=state_names)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CTMC(n_states={self.n_states})"
