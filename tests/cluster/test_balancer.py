"""Load-balancer strategies."""

import numpy as np
import pytest

from repro.cluster.balancer import (
    JoinShortestQueue,
    RandomBalancer,
    RoundRobin,
    WeightedRoundRobin,
)
from repro.des.engine import Simulator
from repro.ecommerce.config import SystemConfig
from repro.ecommerce.node import Job, ProcessingNode


def make_nodes(n, sim=None):
    sim = sim if sim is not None else Simulator()
    rng = np.random.default_rng(0)
    return [
        ProcessingNode(
            SystemConfig(),
            sim,
            rng,
            on_complete=lambda job, rt: None,
            on_loss=lambda job: None,
            name=f"node{i}",
        )
        for i in range(n)
    ]


RNG = np.random.default_rng(1)


class TestRoundRobin:
    def test_cycles_in_order(self):
        nodes = make_nodes(3)
        balancer = RoundRobin()
        picks = [balancer.select(nodes, [0, 1, 2], RNG) for _ in range(6)]
        assert picks == [0, 1, 2, 0, 1, 2]

    def test_skips_ineligible(self):
        nodes = make_nodes(3)
        balancer = RoundRobin()
        picks = [balancer.select(nodes, [0, 2], RNG) for _ in range(4)]
        assert picks == [0, 2, 0, 2]

    def test_reset(self):
        nodes = make_nodes(3)
        balancer = RoundRobin()
        balancer.select(nodes, [0, 1, 2], RNG)
        balancer.reset()
        assert balancer.select(nodes, [0, 1, 2], RNG) == 0


class TestRandom:
    def test_uniform_over_eligible(self):
        nodes = make_nodes(4)
        balancer = RandomBalancer()
        rng = np.random.default_rng(2)
        picks = [balancer.select(nodes, [1, 3], rng) for _ in range(2_000)]
        assert set(picks) == {1, 3}
        assert abs(picks.count(1) / 2_000 - 0.5) < 0.05


class TestJoinShortestQueue:
    def test_picks_least_loaded(self):
        sim = Simulator()
        nodes = make_nodes(3, sim)
        nodes[0].submit(Job(0.0, 0))
        nodes[0].submit(Job(0.0, 1))
        nodes[2].submit(Job(0.0, 2))
        balancer = JoinShortestQueue()
        assert balancer.select(nodes, [0, 1, 2], RNG) == 1

    def test_tie_breaks_to_lowest_index(self):
        nodes = make_nodes(3)
        assert JoinShortestQueue().select(nodes, [0, 1, 2], RNG) == 0

    def test_respects_eligibility(self):
        sim = Simulator()
        nodes = make_nodes(3, sim)
        nodes[1].submit(Job(0.0, 0))  # node 1 busier but node 0 down
        assert JoinShortestQueue().select(nodes, [1, 2], RNG) in (1, 2)


class TestWeightedRoundRobin:
    def test_respects_weights(self):
        nodes = make_nodes(2)
        balancer = WeightedRoundRobin([3.0, 1.0])
        picks = [balancer.select(nodes, [0, 1], RNG) for _ in range(8)]
        assert picks.count(0) == 6
        assert picks.count(1) == 2

    def test_smooth_interleaving(self):
        # The nginx algorithm spreads the heavy node's picks out.
        nodes = make_nodes(2)
        balancer = WeightedRoundRobin([2.0, 1.0])
        picks = [balancer.select(nodes, [0, 1], RNG) for _ in range(6)]
        assert picks == [0, 1, 0, 0, 1, 0] or picks.count(0) == 4

    def test_eligibility_subset(self):
        nodes = make_nodes(3)
        balancer = WeightedRoundRobin([1.0, 1.0, 5.0])
        picks = [balancer.select(nodes, [0, 1], RNG) for _ in range(4)]
        assert set(picks) <= {0, 1}
        assert picks.count(0) == picks.count(1)

    def test_validation(self):
        with pytest.raises(ValueError):
            WeightedRoundRobin([])
        with pytest.raises(ValueError):
            WeightedRoundRobin([1.0, 0.0])
        nodes = make_nodes(3)
        with pytest.raises(ValueError):
            WeightedRoundRobin([1.0]).select(nodes, [0], RNG)
