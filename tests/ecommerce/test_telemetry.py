"""Fixed-interval state probing of the simulator."""

import numpy as np
import pytest

from repro.core.baselines import PeriodicRejuvenation
from repro.ecommerce.config import PAPER_CONFIG
from repro.ecommerce.system import ECommerceSystem
from repro.ecommerce.telemetry import Telemetry, TelemetrySample
from repro.ecommerce.workload import PoissonArrivals


def run_with_probe(interval=50.0, rate=1.0, n=2_000, policy=None, seed=0):
    probe = Telemetry(interval_s=interval)
    system = ECommerceSystem(
        PAPER_CONFIG,
        PoissonArrivals(rate),
        policy=policy,
        seed=seed,
        telemetry=probe,
    )
    result = system.run(n)
    return probe, result


class TestSampling:
    def test_grid_is_regular(self):
        probe, _ = run_with_probe(interval=100.0)
        times = probe.times()
        assert times[0] == 0.0
        gaps = np.diff(times)
        assert np.allclose(gaps, 100.0)

    def test_covers_whole_run(self):
        probe, result = run_with_probe(interval=100.0)
        assert probe.times()[-1] >= result.sim_duration_s - 100.0

    def test_counters_monotone(self):
        probe, _ = run_with_probe()
        completed = probe.column("completed")
        assert np.all(np.diff(completed) >= 0)

    def test_heap_accounting_consistent(self):
        probe, _ = run_with_probe()
        total = (
            probe.column("free_heap_mb")
            + probe.column("live_mb")
            + probe.column("garbage_mb")
        )
        assert np.allclose(total, PAPER_CONFIG.heap_mb)

    def test_sawtooth_visible(self):
        # Garbage accumulates between GCs and resets: free heap must
        # both shrink below half and recover above 90 % at some point.
        probe, result = run_with_probe(rate=1.6, n=4_000)
        assert result.gc_count >= 2
        free = probe.column("free_heap_mb")
        assert free.min() < PAPER_CONFIG.heap_mb * 0.2
        assert free[10:].max() > PAPER_CONFIG.heap_mb * 0.9

    def test_rejuvenation_counter_sampled(self):
        probe, result = run_with_probe(
            policy=PeriodicRejuvenation(period=500), rate=1.6, n=3_000
        )
        assert probe.column("rejuvenations")[-1] == result.rejuvenations

    def test_rerun_clears_previous_samples(self):
        probe = Telemetry(interval_s=100.0)
        system = ECommerceSystem(
            PAPER_CONFIG, PoissonArrivals(1.0), seed=1, telemetry=probe
        )
        system.run(500)
        first = len(probe)
        system.run(500)
        assert len(probe) <= first * 2  # not accumulated across runs
        assert probe.times()[0] == 0.0


class TestAccessAndExport:
    def test_unknown_column(self):
        probe, _ = run_with_probe(n=200)
        with pytest.raises(KeyError):
            probe.column("nonsense")

    def test_empty_column(self):
        assert Telemetry(interval_s=1.0).column("time_s").size == 0

    def test_to_csv_roundtrip(self, tmp_path):
        probe, _ = run_with_probe(n=500)
        path = tmp_path / "telemetry.csv"
        probe.to_csv(str(path))
        lines = path.read_text().strip().splitlines()
        assert lines[0].startswith("time_s,free_heap_mb")
        assert len(lines) == len(probe) + 1

    def test_to_rows(self):
        probe, _ = run_with_probe(n=300)
        rows = probe.to_rows()
        assert len(rows) == len(probe)
        assert rows[0][0] == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            Telemetry(interval_s=0.0)
