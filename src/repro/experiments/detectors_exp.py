"""The detector head-to-head: paper's three vs the adaptive family.

Runs the full scenario zoo (:mod:`repro.faults.zoo`) against the
six-way lineup of :func:`repro.detect.head_to_head_policies` -- SRAA,
SARAA and CLTA at the paper's Section-5.6 parameters next to the
``ADAPTIVE``, ``ENTROPY`` and ``TREND`` detectors of
:mod:`repro.detect` at campaign-grade parameters -- and reports the
robustness scores as figure-style tables: detection latency, missed
rate, false alarms per healthy hour and recovery cost per scenario.

The headline is the ``workload_ramp`` scenario: a saturation ramp the
static baselines inevitably read as aging (SRAA pays tens of false
alarms per healthy hour) while the adaptive threshold recalibrates
along the drift and keeps a clean record for the genuine onset.
"""

from __future__ import annotations

from typing import Dict

from repro.detect import head_to_head_policies
from repro.experiments.faults_exp import horizon_for_scale
from repro.experiments.scale import Scale
from repro.experiments.tables import ExperimentResult, Series, Table
from repro.faults.campaign import CampaignResult, run_campaign
from repro.faults.zoo import builtin_scenarios


def run_detectors_campaign(
    scale: Scale, seed: int = 0
) -> CampaignResult:
    """The raw zoo x six-policy campaign behind the experiment."""
    horizon_s = horizon_for_scale(scale)
    scenarios = list(builtin_scenarios(horizon_s).values())
    return run_campaign(
        scenarios=scenarios,
        policies=head_to_head_policies(),
        replications=scale.replications,
        seed=seed,
    )


def run_detectors(scale: Scale, seed: int = 0) -> ExperimentResult:
    """The detector head-to-head as a registry experiment."""
    horizon_s = horizon_for_scale(scale)
    scenarios = list(builtin_scenarios(horizon_s).values())
    campaign = run_detectors_campaign(scale, seed)
    index_of = {s.name: float(i) for i, s in enumerate(scenarios)}
    notes = [
        f"x = {i:g}: {s.name} -- {s.description}"
        for i, s in enumerate(scenarios)
    ] + [
        f"horizon {horizon_s:g} s, {scale.replications} replication(s) "
        f"per cell, CRN seeds from {seed}"
    ]
    latency = Table(
        title="Detector head-to-head: mean detection latency (s)",
        x_label="scenario",
        y_label="latency_s",
        notes=list(notes),
    )
    misses = Table(
        title="Detector head-to-head: missed-detection rate",
        x_label="scenario",
        y_label="missed_rate",
        notes=list(notes),
    )
    alarms = Table(
        title="Detector head-to-head: false alarms per healthy hour",
        x_label="scenario",
        y_label="false_alarms_per_healthy_hour",
        notes=list(notes),
    )
    cost = Table(
        title="Detector head-to-head: recovery cost (loss fraction)",
        x_label="scenario",
        y_label="loss_fraction",
        notes=list(notes),
    )
    series: Dict[str, Dict[str, Series]] = {}
    for score in campaign.scores:
        per_policy = series.setdefault(score.policy, {})
        if not per_policy:
            for key, table in (
                ("latency", latency),
                ("misses", misses),
                ("alarms", alarms),
                ("cost", cost),
            ):
                per_policy[key] = Series(label=score.policy)
                table.add_series(per_policy[key])
        x = index_of[score.scenario]
        if score.mean_detection_latency_s is not None:
            per_policy["latency"].add(x, score.mean_detection_latency_s)
        per_policy["misses"].add(x, score.missed_rate)
        per_policy["alarms"].add(x, score.false_alarms_per_healthy_hour)
        per_policy["cost"].add(x, score.mean_loss_fraction)
    return ExperimentResult(
        experiment_id="detectors",
        description=(
            "Adaptive/entropy/trend detectors vs SRAA/SARAA/CLTA "
            "across the adversarial scenario zoo"
        ),
        tables=[latency, misses, alarms, cost],
        paper_expectations=[
            "on the saturation ramp the static baselines read the "
            "healthy drift as aging (SRAA pays tens of false alarms "
            "per healthy hour) while the adaptive threshold "
            "recalibrates along it and stays clean -- the Moura et "
            "al. workload-shift robustness claim",
            "the trend projection detects the clean x3 slowdown "
            "earlier than SRAA (it fires on the forecast, not the "
            "level) but pays false alarms wherever the workload "
            "itself drifts upward",
            "the entropy detector rejuvenates least and loses the "
            "fewest transactions: distribution shape moves later "
            "than the mean, so it trades latency for recovery cost",
        ],
    )
