"""Policy combinators."""

import pytest

from repro.core.baselines import PeriodicRejuvenation
from repro.core.clta import CLTA
from repro.core.composite import AllOf, AnyOf, MajorityOf
from repro.core.sla import ServiceLevelObjective
from repro.core.sraa import SRAA
from repro.core.threshold import DeterministicThreshold

SLO = ServiceLevelObjective(mean=5.0, std=5.0)


class TestAnyOf:
    def test_fires_on_first_member(self):
        combined = AnyOf(
            [DeterministicThreshold(100.0), DeterministicThreshold(10.0)]
        )
        assert combined.observe(50.0) is True

    def test_silent_when_no_member_fires(self):
        combined = AnyOf(
            [DeterministicThreshold(100.0), DeterministicThreshold(60.0)]
        )
        assert combined.observe_many([5.0] * 50) == []

    def test_members_each_see_every_observation(self):
        slow = CLTA(SLO, sample_size=3, z=1.96)
        combined = AnyOf([slow])
        # Three observations complete slow's batch.
        assert combined.observe(100.0) is False
        assert combined.observe(100.0) is False
        assert combined.observe(100.0) is True


class TestAllOf:
    def test_needs_both(self):
        threshold = DeterministicThreshold(20.0)
        sraa = SRAA(SLO, sample_size=1, n_buckets=1, depth=1)
        combined = AllOf([threshold, sraa], memory=10)
        # Values above 20 fire the threshold immediately and fill SRAA
        # (needs d > 1, i.e. two batches).
        assert combined.observe(50.0) is False  # only threshold alarmed
        assert combined.observe(50.0) is True   # SRAA overflowed too

    def test_latch_expires(self):
        fast = DeterministicThreshold(20.0)
        slow = SRAA(SLO, sample_size=1, n_buckets=1, depth=3)
        combined = AllOf([fast, slow], memory=2)
        # One spike alarms `fast`, then quiet observations expire the
        # latch before `slow` accumulates its 4 exceedances.
        values = [50.0] + [1.0] * 10 + [6.0] * 4
        triggered = combined.observe_many(values)
        assert triggered == []

    def test_reset_after_trigger(self):
        a = DeterministicThreshold(10.0)
        b = DeterministicThreshold(20.0)
        combined = AllOf([a, b], memory=5)
        assert combined.observe(30.0) is True
        assert combined.alarmed_count() == 0


class TestMajorityOf:
    def test_two_of_three(self):
        members = [
            DeterministicThreshold(10.0),
            DeterministicThreshold(20.0),
            DeterministicThreshold(1_000.0),  # never fires
        ]
        combined = MajorityOf(members, quorum=2, memory=5)
        assert combined.observe(30.0) is True

    def test_quorum_not_met(self):
        members = [
            DeterministicThreshold(10.0),
            DeterministicThreshold(1_000.0),
            DeterministicThreshold(1_000.0),
        ]
        combined = MajorityOf(members, quorum=2, memory=5)
        assert combined.observe_many([30.0] * 20) == []

    def test_periodic_members_align(self):
        combined = MajorityOf(
            [PeriodicRejuvenation(3), PeriodicRejuvenation(5)],
            quorum=2,
            memory=1,
        )
        triggers = combined.observe_many([0.0] * 15)
        assert triggers  # both fire on observation 15 (lcm of 3 and 5)


class TestValidationAndIntrospection:
    def test_validation(self):
        with pytest.raises(ValueError):
            AnyOf([])
        with pytest.raises(ValueError):
            MajorityOf([DeterministicThreshold(1.0)], quorum=2)
        with pytest.raises(ValueError):
            MajorityOf([DeterministicThreshold(1.0)], quorum=0)
        with pytest.raises(ValueError):
            AllOf([DeterministicThreshold(1.0)], memory=0)

    def test_members_accessor(self):
        a, b = DeterministicThreshold(1.0), DeterministicThreshold(2.0)
        assert AnyOf([a, b]).members == [a, b]

    def test_describe_mentions_members(self):
        combined = AllOf(
            [DeterministicThreshold(10.0), CLTA(SLO, 30, 1.96)], memory=9
        )
        text = combined.describe()
        assert "AllOf" in text
        assert "CLTA" in text
        assert "memory=9" in text

    def test_reset_cascades(self):
        sraa = SRAA(SLO, sample_size=1, n_buckets=2, depth=2)
        combined = AnyOf([sraa])
        combined.observe_many([50.0] * 3)
        assert sraa.level > 0 or sraa.chain.fill > 0
        combined.reset()
        assert sraa.level == 0 and sraa.chain.fill == 0
