"""Simulator clock and run-loop behaviour."""

import pytest

from repro.des.engine import Simulator, StopSimulation


class TestScheduling:
    def test_actions_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(2.0, lambda: fired.append("b"))
        sim.schedule(1.0, lambda: fired.append("a"))
        sim.schedule(3.0, lambda: fired.append("c"))
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [1.5]
        assert sim.now == 1.5

    def test_schedule_at_absolute_time(self):
        sim = Simulator(start_time=10.0)
        seen = []
        sim.schedule_at(12.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [12.0]

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Simulator().schedule(-1.0, lambda: None)

    def test_scheduling_into_the_past_rejected(self):
        sim = Simulator(start_time=5.0)
        with pytest.raises(ValueError):
            sim.schedule_at(4.0, lambda: None)

    def test_events_scheduled_during_run_fire(self):
        sim = Simulator()
        fired = []

        def chain():
            fired.append(sim.now)
            if sim.now < 3.0:
                sim.schedule(1.0, chain)

        sim.schedule(1.0, chain)
        sim.run()
        assert fired == [1.0, 2.0, 3.0]


class TestRunLimits:
    def test_until_stops_and_advances_clock(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(5.0, lambda: fired.append(5))
        sim.run(until=3.0)
        assert fired == [1]
        assert sim.now == 3.0

    def test_until_is_inclusive(self):
        sim = Simulator()
        fired = []
        sim.schedule(3.0, lambda: fired.append(3))
        sim.run(until=3.0)
        assert fired == [3]

    def test_run_until_beyond_last_event_advances_clock(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run(until=10.0)
        assert sim.now == 10.0

    def test_max_events_limits_this_call(self):
        sim = Simulator()
        fired = []
        for t in (1.0, 2.0, 3.0):
            sim.schedule(t, lambda t=t: fired.append(t))
        sim.run(max_events=2)
        assert fired == [1.0, 2.0]
        sim.run()
        assert fired == [1.0, 2.0, 3.0]

    def test_stop_simulation_exits_cleanly(self):
        sim = Simulator()
        fired = []

        def bail():
            fired.append(sim.now)
            raise StopSimulation

        sim.schedule(1.0, bail)
        sim.schedule(2.0, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [1.0]
        assert len(sim.queue) == 1  # the 2.0 event is still pending

    def test_events_fired_counter(self):
        sim = Simulator()
        for t in (1.0, 2.0):
            sim.schedule(t, lambda: None)
        sim.run()
        assert sim.events_fired == 2

    def test_run_returns_events_fired_this_call(self):
        sim = Simulator()
        for t in (1.0, 2.0, 3.0):
            sim.schedule(t, lambda: None)
        assert sim.run(max_events=2) == 2
        assert sim.run() == 1
        assert sim.run() == 0  # queue drained

    def test_stop_simulation_event_is_counted(self):
        # The event that raises fired: its action ran up to the raise
        # and step() recorded it, so run()'s return and events_fired
        # must both include it.
        sim = Simulator()

        def bail():
            raise StopSimulation

        sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, bail)
        sim.schedule(3.0, lambda: None)
        assert sim.run() == 2
        assert sim.events_fired == 2


class TestCancelAndReset:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(1.0, lambda: fired.append("x"))
        sim.cancel(event)
        sim.run()
        assert fired == []

    def test_reset_clears_pending_events_and_clock(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        sim.schedule(9.0, lambda: None)
        sim.reset()
        assert sim.now == 0.0
        assert len(sim.queue) == 0
        assert sim.events_fired == 0

    def test_step_returns_none_when_idle(self):
        assert Simulator().step() is None
