"""Autocorrelation estimator and the Section-4.1 significance test."""

import numpy as np
import pytest

from repro.stats.autocorrelation import (
    autocorrelation,
    is_significant,
    lag1_autocorrelation,
    significance_threshold,
)


class TestEstimator:
    def test_lag_zero_is_one(self):
        rng = np.random.default_rng(0)
        assert autocorrelation(rng.normal(size=100), lag=0) == 1.0

    def test_white_noise_near_zero(self):
        rng = np.random.default_rng(1)
        series = rng.normal(size=50_000)
        gamma = lag1_autocorrelation(series)
        assert abs(gamma) < significance_threshold(50_000)

    def test_ar1_recovers_coefficient(self):
        rng = np.random.default_rng(2)
        phi = 0.6
        n = 60_000
        series = np.empty(n)
        series[0] = 0.0
        noise = rng.normal(size=n)
        for i in range(1, n):
            series[i] = phi * series[i - 1] + noise[i]
        assert lag1_autocorrelation(series) == pytest.approx(phi, abs=0.02)

    def test_alternating_series_is_negative(self):
        series = np.array([1.0, -1.0] * 500)
        assert lag1_autocorrelation(series) == pytest.approx(-1.0, abs=0.01)

    def test_warmup_discards_transient(self):
        # A huge transient head would dominate without the discard.
        rng = np.random.default_rng(3)
        head = np.linspace(1000.0, 0.0, 500)
        tail = rng.normal(size=20_000)
        series = np.concatenate([head, tail])
        with_warmup = lag1_autocorrelation(series, warmup=500)
        without = lag1_autocorrelation(series)
        assert abs(with_warmup) < 0.02
        assert without > 0.5

    def test_higher_lags(self):
        rng = np.random.default_rng(4)
        phi = 0.7
        n = 60_000
        series = np.empty(n)
        series[0] = 0.0
        noise = rng.normal(size=n)
        for i in range(1, n):
            series[i] = phi * series[i - 1] + noise[i]
        # AR(1): rho_k = phi^k.
        assert autocorrelation(series, lag=3) == pytest.approx(
            phi**3, abs=0.03
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            autocorrelation([1.0, 2.0], lag=-1)
        with pytest.raises(ValueError):
            autocorrelation([1.0, 2.0], lag=1, warmup=-1)
        with pytest.raises(ValueError):
            autocorrelation([1.0, 2.0], lag=1)  # too short
        with pytest.raises(ValueError):
            autocorrelation([3.0, 3.0, 3.0, 3.0], lag=1)  # constant


class TestSignificance:
    def test_paper_threshold(self):
        # 1.96 / sqrt(90,000) from Section 4.1.
        assert significance_threshold(90_000) == pytest.approx(
            1.96 / np.sqrt(90_000)
        )

    def test_is_significant(self):
        threshold = significance_threshold(10_000)
        assert is_significant(threshold * 1.01, 10_000)
        assert not is_significant(threshold * 0.99, 10_000)
        assert is_significant(-threshold * 1.01, 10_000)

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            significance_threshold(0)
