"""Service-level objective thresholds."""

import math

import pytest

from repro.core.sla import PAPER_SLO, ServiceLevelObjective


class TestServiceLevelObjective:
    def test_paper_slo(self):
        assert PAPER_SLO.mean == 5.0
        assert PAPER_SLO.std == 5.0

    def test_shift_threshold(self):
        slo = ServiceLevelObjective(5.0, 5.0)
        assert slo.shift_threshold(0) == 5.0
        assert slo.shift_threshold(3) == 20.0

    def test_sampling_threshold(self):
        slo = ServiceLevelObjective(5.0, 5.0)
        assert slo.sampling_threshold(1.96, 30) == pytest.approx(
            5.0 + 1.96 * 5.0 / math.sqrt(30)
        )

    def test_sampling_threshold_n1_equals_shift(self):
        slo = ServiceLevelObjective(5.0, 5.0)
        assert slo.sampling_threshold(2.0, 1) == slo.shift_threshold(2.0)

    def test_zero_std_collapses_thresholds(self):
        slo = ServiceLevelObjective(5.0, 0.0)
        assert slo.shift_threshold(10) == 5.0

    def test_frozen(self):
        with pytest.raises(AttributeError):
            PAPER_SLO.mean = 6.0  # type: ignore[misc]

    def test_validation(self):
        with pytest.raises(ValueError):
            ServiceLevelObjective(float("nan"), 1.0)
        with pytest.raises(ValueError):
            ServiceLevelObjective(5.0, -1.0)
        with pytest.raises(ValueError):
            ServiceLevelObjective(5.0, float("inf"))

    def test_sampling_threshold_validation(self):
        with pytest.raises(ValueError):
            PAPER_SLO.sampling_threshold(1.0, 0)
