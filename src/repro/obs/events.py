"""The typed trace record and the event taxonomy.

Every observable thing that happens in a run -- a request moving
through the system, a policy weighing a batch mean against a bucket
target, a garbage collection stalling the JVM -- becomes one
:class:`TraceEvent`: a timestamp on the *simulated* clock, a dotted
event type from the taxonomy below, the emitting source, and a plain
payload dict.  Records are deliberately dumb data: they pickle across
process boundaries unchanged (the process-pool backend carries them
back inside :class:`~repro.ecommerce.metrics.RunResult`) and serialise
to one JSON object per line.

Event taxonomy
--------------

Request lifecycle spans (category ``span``):

``request.arrival``      a transaction entered the system (or was refused)
``request.enqueue``      it joined a node's FCFS queue
``request.service_start``  it obtained a CPU (payload carries the wait)
``request.complete``     it finished; payload carries the response time
``request.loss``         it was killed (rejuvenation) or refused (downtime)

System events (category ``span`` -- they shape the spans):

``system.gc``            a full garbage collection with its pause and
                         the garbage reclaimed
``system.rejuvenation``  capacity restoration, with the jobs lost

Fault-injection events (category ``span`` -- emitted by
:mod:`repro.faults` injections through the system under test):

``fault.injected``       a scripted fault took effect; payload carries
                         its kind (``workload_shift``, ``surge``,
                         ``slowdown``, ``contamination``, ``crash``,
                         ``hang``, ``aging``, ...) and parameters
``fault.cleared``        a transient fault ended (surge over, node
                         restarted, contamination removed)

Policy decision events (category ``decision``):

``policy.batch``         a batch boundary: the batch mean was compared
                         against the active target (one ball added or
                         removed from the current bucket)
``policy.level``         a bucket overflowed/underflowed: level change
``policy.resize``        SARAA recomputed its batch size
``policy.trigger``       rejuvenation was demanded; payload carries the
                         full cause (bucket index, batch mean,
                         threshold, sample size, causing batch seq)
``policy.reset``         detection state was cleared externally

Monitor events (category ``decision``):

``monitor.trigger``      the streaming monitor relayed a policy trigger
``monitor.reset``        an external rejuvenation was notified

Engine events (category ``engine``; only at trace level ``all``):

``des.event``            one discrete event fired (kind + sequence no.)

Run bookkeeping (written by the session, not by tracers):

``run.meta``             one per replication: tag, seed, run summary
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Tuple

# ---------------------------------------------------------------------------
# Event type constants
# ---------------------------------------------------------------------------
REQUEST_ARRIVAL = "request.arrival"
REQUEST_ENQUEUE = "request.enqueue"
REQUEST_SERVICE_START = "request.service_start"
REQUEST_COMPLETE = "request.complete"
REQUEST_LOSS = "request.loss"
SYSTEM_GC = "system.gc"
SYSTEM_REJUVENATION = "system.rejuvenation"
FAULT_INJECTED = "fault.injected"
FAULT_CLEARED = "fault.cleared"

POLICY_BATCH = "policy.batch"
POLICY_LEVEL = "policy.level"
POLICY_RESIZE = "policy.resize"
POLICY_TRIGGER = "policy.trigger"
POLICY_RESET = "policy.reset"
MONITOR_TRIGGER = "monitor.trigger"
MONITOR_RESET = "monitor.reset"

DES_EVENT = "des.event"
RUN_META = "run.meta"

#: Event types emitted when request-lifecycle tracing is on.
SPAN_TYPES: Tuple[str, ...] = (
    REQUEST_ARRIVAL,
    REQUEST_ENQUEUE,
    REQUEST_SERVICE_START,
    REQUEST_COMPLETE,
    REQUEST_LOSS,
    SYSTEM_GC,
    SYSTEM_REJUVENATION,
    FAULT_INJECTED,
    FAULT_CLEARED,
)

#: Event types emitted when policy-decision tracing is on.
DECISION_TYPES: Tuple[str, ...] = (
    POLICY_BATCH,
    POLICY_LEVEL,
    POLICY_RESIZE,
    POLICY_TRIGGER,
    POLICY_RESET,
    MONITOR_TRIGGER,
    MONITOR_RESET,
)

#: Event types only emitted at trace level ``all``.
ENGINE_TYPES: Tuple[str, ...] = (DES_EVENT,)

#: The per-request / per-batch *microscope*: high-frequency events a
#: buffering trace wants for offline forensics, but which always-on
#: telemetry must not pay for -- at ~4 events per transaction their
#: call-site cost alone (keyword construction, payload reads) rivals
#: the cost of simulating the transaction.  Sinks advertise whether
#: they want them via the tracer protocol's ``lifecycle`` flag;
#: instrumented code skips these emits entirely when no sink does.
LIFECYCLE_TYPES: frozenset = frozenset(
    {
        REQUEST_ARRIVAL,
        REQUEST_ENQUEUE,
        REQUEST_SERVICE_START,
        POLICY_BATCH,
    }
)


def category_of(etype: str) -> str:
    """``span`` / ``decision`` / ``engine`` / ``meta`` for an event type."""
    if etype in SPAN_TYPES:
        return "span"
    if etype in DECISION_TYPES:
        return "decision"
    if etype in ENGINE_TYPES:
        return "engine"
    return "meta"


@dataclass(frozen=True)
class TraceEvent:
    """One structured observation of the running system.

    Parameters
    ----------
    ts:
        Simulated time, in seconds (the DES clock -- not wall-clock).
    etype:
        Dotted event type from the module taxonomy.
    source:
        The emitting component, e.g. ``node0``, ``policy:sraa``,
        ``monitor``, ``system``.
    data:
        Event payload: plain JSON-serialisable values only.
    """

    ts: float
    etype: str
    source: str
    data: Dict[str, Any] = field(default_factory=dict)

    @property
    def category(self) -> str:
        """The taxonomy category this event belongs to."""
        return category_of(self.etype)

    def to_dict(self) -> Dict[str, Any]:
        """The JSONL representation (without run bookkeeping)."""
        return {
            "ts": self.ts,
            "type": self.etype,
            "source": self.source,
            "data": dict(self.data),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "TraceEvent":
        """Rebuild an event from its :meth:`to_dict` representation."""
        return cls(
            ts=float(payload["ts"]),
            etype=str(payload["type"]),
            source=str(payload["source"]),
            data=dict(payload.get("data", {})),
        )
