"""Result containers and replication aggregation."""

import pytest

from repro.ecommerce.metrics import ReplicatedResult, RunResult


def make_run(avg_rt=5.0, loss=0.01, completed=990, lost=10, duration=1000.0):
    return RunResult(
        arrivals=completed + lost,
        completed=completed,
        lost=lost,
        avg_response_time=avg_rt,
        rt_std=1.0,
        max_response_time=avg_rt * 3,
        loss_fraction=loss,
        gc_count=3,
        rejuvenations=2,
        sim_duration_s=duration,
    )


class TestRunResult:
    def test_throughput(self):
        result = make_run(completed=500, duration=250.0)
        assert result.throughput == pytest.approx(2.0)

    def test_throughput_zero_duration(self):
        assert make_run(duration=0.0).throughput == 0.0

    def test_frozen(self):
        with pytest.raises(Exception):
            make_run().completed = 0  # type: ignore[misc]


class TestReplicatedResult:
    def test_aggregates_are_means(self):
        replicated = ReplicatedResult(
            runs=(make_run(avg_rt=4.0, loss=0.0), make_run(avg_rt=6.0, loss=0.02))
        )
        assert replicated.avg_response_time == pytest.approx(5.0)
        assert replicated.loss_fraction == pytest.approx(0.01)
        assert replicated.n_replications == 2
        assert replicated.rejuvenations == pytest.approx(2.0)
        assert replicated.gc_count == pytest.approx(3.0)

    def test_confidence_intervals(self):
        replicated = ReplicatedResult(
            runs=tuple(make_run(avg_rt=v) for v in (4.0, 5.0, 6.0))
        )
        mean, low, high = replicated.response_time_interval()
        assert mean == pytest.approx(5.0)
        assert low < 5.0 < high

    def test_loss_interval(self):
        replicated = ReplicatedResult(
            runs=tuple(make_run(loss=v) for v in (0.01, 0.03))
        )
        mean, low, high = replicated.loss_interval()
        assert mean == pytest.approx(0.02)
        assert low <= mean <= high

    def test_single_run(self):
        replicated = ReplicatedResult(runs=(make_run(avg_rt=7.0),))
        mean, low, high = replicated.response_time_interval()
        assert mean == low == high == 7.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ReplicatedResult(runs=())
