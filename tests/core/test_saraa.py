"""SARAA: Fig. 7 semantics, acceleration schedules, standard-error targets."""

import math

import pytest

from repro.core.buckets import Transition
from repro.core.saraa import (
    SARAA,
    geometric_acceleration,
    linear_acceleration,
    no_acceleration,
)
from repro.core.sla import ServiceLevelObjective

SLO = ServiceLevelObjective(mean=5.0, std=5.0)


class TestSchedule:
    @pytest.mark.parametrize(
        "n_orig, level, K, expected",
        [
            (5, 0, 5, 5),
            (5, 1, 5, 4),   # floor(1 + 4 * 0.8)
            (5, 2, 5, 3),
            (5, 3, 5, 2),
            (5, 4, 5, 1),   # floor(1 + 4 * 0.2) = floor(1.8)
            (5, 5, 5, 1),
            (10, 0, 5, 10),
            (10, 2, 5, 6),  # floor(1 + 9 * 0.6) = floor(6.4)
            (10, 4, 5, 2),  # floor(1 + 9 * 0.2) = floor(2.8)
            (1, 3, 5, 1),
        ],
    )
    def test_linear_values(self, n_orig, level, K, expected):
        assert linear_acceleration(n_orig, level, K) == expected

    def test_linear_always_at_least_one(self):
        for level in range(6):
            assert linear_acceleration(2, level, 5) >= 1

    def test_no_acceleration(self):
        assert no_acceleration(10, 4, 5) == 10

    def test_geometric(self):
        assert geometric_acceleration(10, 0, 5) == 10
        assert geometric_acceleration(10, 1, 5) == 5
        assert geometric_acceleration(10, 2, 5) == 2
        assert geometric_acceleration(10, 5, 5) == 1

    def test_linear_validation(self):
        with pytest.raises(ValueError):
            linear_acceleration(0, 0, 5)
        with pytest.raises(ValueError):
            linear_acceleration(5, 7, 5)


class TestTargets:
    def test_uses_standard_error(self):
        policy = SARAA(SLO, sample_size=4, n_buckets=3, depth=1)
        # Level 0: mu + 0 * sigma/sqrt(4) = 5.
        assert policy.current_target() == 5.0
        policy.observe_many([100.0] * 8)  # two exceeding batches -> level 1
        assert policy.level == 1
        n_now = policy.current_sample_size
        assert policy.current_target() == pytest.approx(
            5.0 + 5.0 / math.sqrt(n_now)
        )

    def test_targets_easier_than_sraa_for_same_level(self):
        # sigma/sqrt(n) < sigma for n > 1.
        policy = SARAA(SLO, sample_size=4, n_buckets=3, depth=1)
        policy.observe_many([100.0] * 8)
        assert policy.current_target() < SLO.shift_threshold(policy.level)


class TestAcceleration:
    def test_batch_shrinks_on_level_up(self):
        policy = SARAA(SLO, sample_size=10, n_buckets=5, depth=1)
        assert policy.current_sample_size == 10
        policy.observe_many([100.0] * 20)  # two batches -> level 1
        assert policy.level == 1
        assert policy.current_sample_size == linear_acceleration(10, 1, 5)

    def test_batch_grows_back_on_level_down(self):
        policy = SARAA(SLO, sample_size=10, n_buckets=5, depth=1)
        policy.observe_many([100.0] * 20)  # -> level 1, n = 8
        n_level1 = policy.current_sample_size
        # Enough low batches to underflow back to level 0.
        while policy.level == 1:
            policy.observe_many([0.0] * n_level1)
            n_level1 = policy.current_sample_size
        assert policy.level == 0
        assert policy.current_sample_size == 10

    def test_trigger_restores_original_sample_size(self):
        policy = SARAA(SLO, sample_size=10, n_buckets=2, depth=1)
        observations = 0
        while True:
            observations += 1
            if policy.observe(100.0):
                break
        assert policy.current_sample_size == 10
        assert policy.level == 0

    def test_acceleration_reduces_detection_time(self):
        def observations_to_trigger(policy):
            count = 0
            while True:
                count += 1
                if policy.observe(100.0):
                    return count

        accelerated = SARAA(SLO, sample_size=10, n_buckets=5, depth=1)
        flat = SARAA(
            SLO, sample_size=10, n_buckets=5, depth=1,
            schedule=no_acceleration,
        )
        assert observations_to_trigger(accelerated) < observations_to_trigger(
            flat
        )

    def test_custom_schedule_is_used(self):
        policy = SARAA(
            SLO, sample_size=8, n_buckets=4, depth=1,
            schedule=geometric_acceleration,
        )
        policy.observe_many([100.0] * 16)
        assert policy.level == 1
        assert policy.current_sample_size == 4


class TestCarryPartial:
    def test_default_discards_partial_batch_on_resize(self):
        policy = SARAA(SLO, sample_size=3, n_buckets=3, depth=1)
        policy.observe_many([100.0] * 6)  # level 1, n becomes 2
        policy.observe(100.0)  # partial
        before = policy.buffer.pending
        # Force a level change via a completed batch of lows.
        policy.observe(0.0)
        assert policy.buffer.pending == 0 or policy.buffer.pending < before + 1

    def test_carry_partial_keeps_observations(self):
        policy = SARAA(
            SLO, sample_size=4, n_buckets=2, depth=1, carry_partial=True
        )
        # No resize happens at level 0; just check construction works and
        # batches complete normally.
        assert policy.observe_many([100.0] * 8) == []
        assert policy.level == 1


class TestLifecycle:
    def test_reset(self):
        policy = SARAA(SLO, sample_size=10, n_buckets=5, depth=1)
        policy.observe_many([100.0] * 20)
        policy.reset()
        assert policy.level == 0
        assert policy.current_sample_size == 10
        assert policy.buffer.pending == 0

    def test_low_values_never_trigger(self):
        policy = SARAA(SLO, sample_size=5, n_buckets=3, depth=2)
        assert policy.observe_many([1.0] * 600) == []

    def test_validation(self):
        with pytest.raises(ValueError):
            SARAA(SLO, sample_size=0, n_buckets=1, depth=1)

    def test_describe(self):
        policy = SARAA(SLO, sample_size=2, n_buckets=5, depth=3)
        assert policy.describe() == "SARAA(n_orig=2, K=5, D=3)"
