"""Percentile-SLO rejuvenation (modern customer-affecting metrics).

The paper's system had "maximum acceptable RT of 10 seconds" -- a tail
requirement, though its algorithms track the mean.  ``QuantilePolicy``
monitors the tail directly: a streaming P² estimate of the p-quantile
over a sliding window of recent observations, triggering when the
estimated percentile exceeds the SLA limit for enough consecutive
windows (the consecutive-window requirement plays the bucket chain's
burst-smoothing role).
"""

from __future__ import annotations

from repro.core.base import RejuvenationPolicy
from repro.stats.quantiles import P2Quantile


class QuantilePolicy(RejuvenationPolicy):
    """Trigger when the windowed p-quantile stays above a limit.

    Parameters
    ----------
    quantile:
        The monitored percentile, e.g. 0.95.
    limit:
        The SLA bound on that percentile (the paper's system: 10 s).
    window:
        Observations per estimation window; the P² estimator restarts
        each window so old traffic cannot mask fresh degradation.
    patience:
        Consecutive violating windows required to trigger (>= 1).

    Examples
    --------
    >>> policy = QuantilePolicy(0.95, limit=10.0, window=50, patience=2)
    >>> healthy = [5.0] * 200
    >>> policy.observe_many(healthy)
    []
    """

    name = "quantile"

    def __init__(
        self,
        quantile: float,
        limit: float,
        window: int = 100,
        patience: int = 2,
    ) -> None:
        if window < 10:
            raise ValueError("window must hold at least 10 observations")
        if patience < 1:
            raise ValueError("patience must be >= 1")
        self.limit = float(limit)
        self.window = int(window)
        self.patience = int(patience)
        self._estimator = P2Quantile(quantile)
        self._in_window = 0
        self._violations = 0
        #: Most recent completed-window estimate (diagnostics).
        self.last_estimate: float | None = None

    @property
    def quantile(self) -> float:
        """The monitored percentile."""
        return self._estimator.quantile

    def observe(self, value: float) -> bool:
        self._estimator.update(value)
        self._in_window += 1
        if self._in_window < self.window:
            return False
        estimate = self._estimator.value()
        self.last_estimate = estimate
        self._estimator.reset()
        self._in_window = 0
        if estimate > self.limit:
            self._violations += 1
            if self._violations >= self.patience:
                self.reset()
                return True
        else:
            self._violations = 0
        return False

    def reset(self) -> None:
        """Forget the window, the estimate and the violation streak."""
        self._estimator.reset()
        self._in_window = 0
        self._violations = 0

    def describe(self) -> str:
        return (
            f"Quantile(p={self.quantile:g}, limit={self.limit:g}, "
            f"window={self.window}, patience={self.patience})"
        )
