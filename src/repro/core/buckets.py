"""The ball-and-bucket counter shared by the static, SRAA and SARAA rules.

Section 4.2 describes the metaphor: ``K`` buckets of depth ``D``.  The
current bucket ``N`` receives a ball whenever the (averaged) observation
exceeds that bucket's target and loses one otherwise.  When the count
exceeds the depth the bucket *overflows* and the algorithm advances to
bucket ``N + 1`` with a higher target; when the count would go negative
while ``N > 0`` the bucket *underflows* and the algorithm falls back to
bucket ``N - 1`` (refilled to ``D``).  Overflow of the last bucket
triggers rejuvenation and resets the chain.

We follow the paper's pseudo-code (Fig. 6) exactly, including two details
the prose glosses over:

* overflow occurs when the count becomes *strictly greater* than ``D``
  (so a bucket absorbs ``D + 1`` net exceedances, not ``D``);
* falling back to the previous bucket restores its count to the *full*
  depth ``D``, so a fresh underflow there requires ``D + 1`` further
  non-exceedances.

The minimum delay before rejuvenation is therefore ``(D + 1) * K``
(averaged) observations, which realises the paper's "at least D * K
observations" burst tolerance.
"""

from __future__ import annotations

import enum


class Transition(enum.Enum):
    """What a single :meth:`BucketChain.record` call did to the chain."""

    NONE = "none"          #: ball added/removed within the current bucket
    LEVEL_UP = "up"        #: current bucket overflowed; moved to N + 1
    LEVEL_DOWN = "down"    #: current bucket underflowed; moved to N - 1
    TRIGGER = "trigger"    #: last bucket overflowed; rejuvenate and reset


class BucketChain:
    """The ``K``-bucket, depth-``D`` degradation counter of Fig. 6.

    Parameters
    ----------
    n_buckets:
        ``K >= 1`` -- how many standard deviations of shift must be
        confirmed before rejuvenation (burst tolerance).
    depth:
        ``D >= 1`` -- how many net exceedances fill one bucket
        (degradation-detection accuracy).

    Examples
    --------
    >>> chain = BucketChain(n_buckets=1, depth=1)
    >>> chain.record(True)            # d: 0 -> 1, not yet > D
    <Transition.NONE: 'none'>
    >>> chain.record(True)            # d -> 2 > 1: overflow of last bucket
    <Transition.TRIGGER: 'trigger'>
    >>> (chain.level, chain.fill)     # reset after trigger
    (0, 0)
    """

    def __init__(self, n_buckets: int, depth: int) -> None:
        if n_buckets < 1:
            raise ValueError("need at least one bucket (K >= 1)")
        if depth < 1:
            raise ValueError("bucket depth must be >= 1 (D >= 1)")
        self.n_buckets = int(n_buckets)
        self.depth = int(depth)
        self.level = 0  # the paper's N, index of the current bucket
        self.fill = 0   # the paper's d, balls in the current bucket
        self.triggers = 0

    def record(self, exceeded: bool) -> Transition:
        """Fold one comparison outcome into the chain.

        Parameters
        ----------
        exceeded:
            Whether the (averaged) observation exceeded the current
            bucket's target value.

        Returns
        -------
        Transition
            ``TRIGGER`` means rejuvenation must be carried out now; the
            chain has already reset itself.
        """
        if exceeded:
            self.fill += 1
        else:
            self.fill -= 1
        if self.fill > self.depth:
            self.fill = 0
            self.level += 1
            if self.level == self.n_buckets:
                self.level = 0
                self.triggers += 1
                return Transition.TRIGGER
            return Transition.LEVEL_UP
        if self.fill < 0:
            if self.level > 0:
                self.fill = self.depth
                self.level -= 1
                return Transition.LEVEL_DOWN
            self.fill = 0
        return Transition.NONE

    def reset(self) -> None:
        """Return to the initial state (level 0, empty bucket)."""
        self.level = 0
        self.fill = 0

    @property
    def min_observations_to_trigger(self) -> int:
        """Fewest (averaged) observations that can cause a trigger.

        Each bucket needs ``D + 1`` net exceedances under the Fig. 6
        semantics, and there are ``K`` buckets.
        """
        return (self.depth + 1) * self.n_buckets

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BucketChain(K={self.n_buckets}, D={self.depth}, "
            f"N={self.level}, d={self.fill})"
        )
