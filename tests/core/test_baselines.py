"""Never/periodic reference policies."""

import pytest

from repro.core.baselines import NeverRejuvenate, PeriodicRejuvenation


class TestNever:
    def test_never_triggers(self):
        policy = NeverRejuvenate()
        assert policy.observe_many([1e9] * 100) == []

    def test_reset_is_noop(self):
        policy = NeverRejuvenate()
        policy.reset()
        assert policy.observe(1e9) is False


class TestPeriodic:
    def test_triggers_every_period(self):
        policy = PeriodicRejuvenation(period=3)
        assert policy.observe_many([0.0] * 10) == [2, 5, 8]
        assert policy.triggers == 3

    def test_period_one_triggers_always(self):
        policy = PeriodicRejuvenation(period=1)
        assert policy.observe_many([0.0] * 3) == [0, 1, 2]

    def test_metric_value_is_ignored(self):
        policy = PeriodicRejuvenation(period=2)
        assert policy.observe(1e9) is False
        assert policy.observe(0.0) is True

    def test_reset_restarts_countdown(self):
        policy = PeriodicRejuvenation(period=3)
        policy.observe(0.0)
        policy.observe(0.0)
        policy.reset()
        assert policy.observe(0.0) is False
        assert policy.observe(0.0) is False
        assert policy.observe(0.0) is True

    def test_validation(self):
        with pytest.raises(ValueError):
            PeriodicRejuvenation(period=0)

    def test_describe(self):
        assert PeriodicRejuvenation(period=7).describe() == "Periodic(every=7)"
