"""Cross-run observability: run ledger, provenance, regression tracking.

Every CLI invocation that produces results (``simulate``, ``run``,
``faults run``) appends a ledger entry -- a deterministic
:class:`RunManifest` identity plus outcome and timing blocks -- to an
append-only JSONL store (:class:`Ledger`).  ``repro runs`` then
lists, shows, diffs, pins and statistically checks entries against each
other, and :mod:`~repro.obs.ledger.bench` keeps benchmark trajectories
in the same spirit.
"""

from repro.obs.ledger.bench import (
    list_trajectories,
    load_trajectory,
    record_bench_point,
    trajectory_path,
    validate_trajectory,
)
from repro.obs.ledger.canonical import canonical_hash, canonical_json, to_plain
from repro.obs.ledger.diff import diff_entries, flatten, format_diff
from repro.obs.ledger.manifest import (
    RunManifest,
    campaign_manifest,
    experiment_manifest,
    manifest_from_jobs,
    simulate_manifest,
)
from repro.obs.ledger.outcome import (
    campaign_outcomes,
    experiment_outcomes,
    replicated_outcomes,
    timing_block,
)
from repro.obs.ledger.provenance import (
    environment_info,
    git_revision,
    package_version,
    version_string,
)
from repro.obs.ledger.regress import (
    CheckReport,
    MetricCheck,
    compare_outcomes,
    relative_check,
    run_check,
    welch_check,
)
from repro.obs.ledger.store import Ledger, ledger_enabled, record_run
from repro.obs.ledger.summary import (
    LIST_SCHEMA_VERSION,
    entry_summary,
    runs_payload,
)

__all__ = [
    "CheckReport",
    "LIST_SCHEMA_VERSION",
    "Ledger",
    "MetricCheck",
    "RunManifest",
    "campaign_manifest",
    "campaign_outcomes",
    "canonical_hash",
    "canonical_json",
    "compare_outcomes",
    "diff_entries",
    "entry_summary",
    "environment_info",
    "experiment_manifest",
    "experiment_outcomes",
    "flatten",
    "format_diff",
    "git_revision",
    "ledger_enabled",
    "list_trajectories",
    "load_trajectory",
    "manifest_from_jobs",
    "package_version",
    "record_bench_point",
    "record_run",
    "relative_check",
    "replicated_outcomes",
    "run_check",
    "runs_payload",
    "simulate_manifest",
    "timing_block",
    "to_plain",
    "trajectory_path",
    "validate_trajectory",
    "version_string",
    "welch_check",
]
