"""Continuous-time Markov chain analysis (the SHARPE substitute).

The paper uses the SHARPE tool to obtain the exact distribution of the
average response time ``X̄n`` as a time to absorption in the concatenated
CTMC of Fig. 4, and from it the exact density (eq. 4) and the exact
false-alarm probabilities of the CLT-based decision rule (3.69 % for
``n = 15`` and 3.37 % for ``n = 30`` at the 97.5 % normal quantile).

This package re-implements the needed machinery from scratch:

* :class:`~repro.ctmc.chain.CTMC` -- generator-matrix representation with
  validation, steady-state solution and transient solution.
* :mod:`~repro.ctmc.transient` -- Jensen's uniformization (the algorithm
  SHARPE itself uses) and a ``scipy.linalg.expm`` cross-check.
* :class:`~repro.ctmc.absorption.AbsorbingCTMC` -- time-to-absorption
  cdf/pdf and expected absorption times.
* :class:`~repro.ctmc.sample_mean.SampleMeanChain` -- builds the
  ``2n + 1``-state chain of Fig. 4 for the mean of ``n`` response times
  and exposes the exact density of eq. (4), its cdf, tail probabilities
  and the normal approximation used by CLTA.
"""

from repro.ctmc.absorption import AbsorbingCTMC
from repro.ctmc.birth_death import (
    MMcQueueLengthProcess,
    birth_death_generator,
)
from repro.ctmc.chain import CTMC
from repro.ctmc.sample_mean import SampleMeanChain, clt_false_alarm_probability
from repro.ctmc.transient import transient_expm, transient_uniformization

__all__ = [
    "AbsorbingCTMC",
    "CTMC",
    "MMcQueueLengthProcess",
    "SampleMeanChain",
    "birth_death_generator",
    "clt_false_alarm_probability",
    "transient_expm",
    "transient_uniformization",
]
