"""The trend-based rejuvenation baseline."""

import numpy as np
import pytest

from repro.core.trend import TrendPolicy


class TestTriggering:
    def test_steady_ramp_triggers(self):
        policy = TrendPolicy(sample_size=2, window=8)
        ramp = [float(v) for v in range(64)]
        assert policy.observe_many(ramp)

    def test_stationary_noise_rarely_triggers(self):
        rng = np.random.default_rng(0)
        policy = TrendPolicy(sample_size=5, window=12, alpha=0.01)
        triggers = policy.observe_many(rng.exponential(5.0, size=6_000))
        # The window slides one batch at a time, so the ~1200 tests are
        # heavily overlapping; the realised false-trigger rate per
        # observation must still stay small.
        assert len(triggers) <= 12

    def test_downward_trend_never_triggers(self):
        policy = TrendPolicy(sample_size=1, window=6)
        falling = [float(v) for v in range(100, 0, -1)]
        assert policy.observe_many(falling) == []

    def test_min_slope_filters_shallow_drift(self):
        shallow = [5.0 + 0.001 * v for v in range(200)]
        eager = TrendPolicy(sample_size=1, window=10, min_slope=0.0)
        guarded = TrendPolicy(sample_size=1, window=10, min_slope=1.0)
        assert eager.observe_many(list(shallow))
        assert guarded.observe_many(list(shallow)) == []

    def test_trigger_resets_window(self):
        policy = TrendPolicy(sample_size=1, window=5)
        ramp = [float(v) for v in range(30)]
        first = None
        for i, value in enumerate(ramp):
            if policy.observe(value):
                first = i
                break
        assert first is not None
        assert len(policy._means) == 0
        assert policy.buffer.pending == 0

    def test_no_decision_before_window_fills(self):
        policy = TrendPolicy(sample_size=1, window=10)
        assert policy.observe_many([float(v) for v in range(9)]) == []


class TestLifecycle:
    def test_reset(self):
        policy = TrendPolicy(sample_size=2, window=5)
        policy.observe_many([1.0, 2.0, 3.0, 4.0])
        policy.reset()
        assert len(policy._means) == 0
        assert policy.buffer.pending == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            TrendPolicy(window=4)
        with pytest.raises(ValueError):
            TrendPolicy(alpha=0.0)
        with pytest.raises(ValueError):
            TrendPolicy(min_slope=-1.0)

    def test_describe(self):
        text = TrendPolicy(sample_size=3, window=8).describe()
        assert "window=8" in text


class TestEdgeCases:
    def test_empty_window_reset_is_a_noop(self):
        policy = TrendPolicy(sample_size=2, window=5)
        policy.reset()
        assert len(policy._means) == 0
        assert policy.buffer.pending == 0

    def test_one_sample_window_never_decides(self):
        # A single batch mean can never fill a >= 5 window, so no
        # Mann-Kendall test runs and nothing triggers.
        policy = TrendPolicy(sample_size=1, window=5)
        assert policy.observe(1_000_000.0) is False
        assert len(policy._means) == 1

    def test_constant_series_zero_variance_never_triggers(self):
        # All-tie windows drive the Mann-Kendall variance to zero; the
        # tie-corrected test must stay silent instead of dividing by it.
        policy = TrendPolicy(sample_size=1, window=6)
        assert policy.observe_many([5.0] * 120) == []

    def test_mann_kendall_needs_three_observations(self):
        from repro.stats.trend import mann_kendall

        with pytest.raises(ValueError):
            mann_kendall([])
        with pytest.raises(ValueError):
            mann_kendall([1.0])
        with pytest.raises(ValueError):
            mann_kendall([1.0, 2.0])

    def test_deterministic_after_rejuvenation_reset(self):
        # Post-reset the policy must replay a trace exactly like a
        # fresh instance: rejuvenation leaves no hidden state behind.
        trace = [float(v) for v in range(40)]
        veteran = TrendPolicy(sample_size=2, window=8)
        veteran.observe_many(trace)
        veteran.reset()
        fresh = TrendPolicy(sample_size=2, window=8)
        assert veteran.observe_many(trace) == fresh.observe_many(trace)
