"""Adaptive and learned aging detectors beyond the paper's three.

The paper's SRAA/SARAA/CLTA all compare batch means against thresholds
derived from one *stationary* healthy baseline -- exactly the
assumption the zoo's workload-shift and ramp scenarios break.  This
package houses the successor detector families named in PAPERS.md,
each implementing the same :class:`~repro.core.base.RejuvenationPolicy`
contract (so they slot into the factory, the campaigns, the fleet and
the serve API unchanged) and reporting full audit causes through
:meth:`~repro.core.base.DecisionListener.on_trigger_cause`:

:class:`AdaptiveThresholdPolicy` (factory name ``adaptive``)
    Recalibrates its healthy baseline online from a rolling window of
    batch means, suppresses re-baselining while a degradation is
    suspected, and separates operating-point changes from aging by the
    *growth rate* of the exceedance (Moura et al., "Adaptive Detection
    of Software Aging under Workload Shift").

:class:`EntropyPolicy` (factory name ``entropy``)
    Windowed Shannon entropy over a bucketed response-time
    distribution; aging concentrates mass in the overflow bucket and
    collapses the entropy (Chen et al., "CHAOS: Accurate and Realtime
    Detection of Aging-Oriented Failure Using Entropy").

:class:`TrendProjectionPolicy` (factory name ``predictor``)
    An incremental Holt double-exponential smoother over batch means
    that triggers when the *projected* trajectory crosses the SLA
    bound within a lookahead horizon (the learning-predictor spirit of
    Sumathi & Raju, kept dependency-free).

:data:`DETECTOR_POLICIES` gives the three detectors campaign-grade
parameters under canonical labels (``ADAPTIVE``/``ENTROPY``/``TREND``)
the same way :data:`repro.faults.campaign.DEFAULT_POLICIES` does for
the paper's contenders, and :func:`head_to_head_policies` is the full
six-way lineup the ``detectors`` experiment runs across the zoo.
"""

from __future__ import annotations

from typing import Dict

from repro.core.spec import PolicySpec
from repro.detect.adaptive import AdaptiveThresholdPolicy
from repro.detect.entropy import EntropyPolicy
from repro.detect.predictor import TrendProjectionPolicy

#: The detector family at campaign-grade parameters, under canonical
#: labels (mirrors ``DEFAULT_POLICIES`` for the paper's contenders).
#: ``TREND`` is the *projection* detector -- the factory name ``trend``
#: (Mann-Kendall slope test) is a different, paper-era policy.
DETECTOR_POLICIES: Dict[str, PolicySpec] = {
    "ADAPTIVE": PolicySpec("adaptive"),
    "ENTROPY": PolicySpec("entropy"),
    "TREND": PolicySpec("predictor"),
}


def head_to_head_policies() -> Dict[str, PolicySpec]:
    """The zoo head-to-head lineup: the paper's three + the new three."""
    from repro.faults.campaign import DEFAULT_POLICIES

    lineup = dict(DEFAULT_POLICIES)
    lineup.update(DETECTOR_POLICIES)
    return lineup


__all__ = [
    "AdaptiveThresholdPolicy",
    "EntropyPolicy",
    "TrendProjectionPolicy",
    "DETECTOR_POLICIES",
    "head_to_head_policies",
]
