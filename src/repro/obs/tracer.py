"""The event tracer and its near-free disabled path.

A :class:`Tracer` buffers :class:`~repro.obs.events.TraceEvent` records
in memory for the duration of one replication; the session layer
(:mod:`repro.obs.session`) collects the buffers and hands them to the
exporters.  Tracing is structured in *levels*:

``spans``
    request lifecycle + system (GC/rejuvenation) events only.
``decisions``
    policy decision + monitor events only.
``all``
    both, plus the raw DES engine events (verbose).

The disabled case is the common case, so instrumented code never calls
into a tracer object per event.  The idiom everywhere in the stack is::

    tracer = self._tracer
    if tracer is not None and tracer.spans:
        tracer.emit(ts, REQUEST_ARRIVAL, "system", index=index)

i.e. one attribute load and one/two boolean checks when tracing is off
-- no event object is built, no call dispatched.  ``tracer.spans``,
``tracer.decisions`` and ``tracer.engine`` are plain attributes
precomputed from the level at construction time.

A fourth flag, ``lifecycle``, says whether the sink wants the
per-request / per-batch microscope events
(:data:`repro.obs.events.LIFECYCLE_TYPES`).  Buffering tracers always
do; constant-overhead sinks such as the live tap decline them, and the
instrumented code then skips those emits -- and the keyword-argument
construction they imply -- entirely.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

from repro.obs.events import TraceEvent

#: Accepted trace levels, in increasing verbosity.
TRACE_LEVELS: Tuple[str, ...] = ("spans", "decisions", "all")


def validate_level(level: str) -> str:
    """Return ``level`` if valid, raise ``ValueError`` otherwise."""
    if level not in TRACE_LEVELS:
        raise ValueError(
            f"unknown trace level {level!r}; expected one of {TRACE_LEVELS}"
        )
    return level


class Tracer:
    """An in-memory buffer of trace events for one replication.

    Parameters
    ----------
    level:
        ``spans``, ``decisions`` or ``all`` -- which event categories
        the instrumented code should emit.

    Examples
    --------
    >>> tracer = Tracer("decisions")
    >>> (tracer.spans, tracer.decisions, tracer.engine)
    (False, True, False)
    >>> tracer.emit(1.5, "policy.trigger", "policy:sraa", level=4)
    >>> tracer.events[0].data["level"]
    4
    """

    __slots__ = ("level", "spans", "decisions", "engine", "lifecycle", "events")

    def __init__(self, level: str = "all") -> None:
        self.level = validate_level(level)
        self.spans = level in ("spans", "all")
        self.decisions = level in ("decisions", "all")
        self.engine = level == "all"
        #: A buffering tracer always wants the per-request microscope.
        self.lifecycle = True
        self.events: List[TraceEvent] = []

    def emit(self, ts: float, etype: str, source: str, **data: Any) -> None:
        """Record one event (caller has already checked the level flag)."""
        self.events.append(TraceEvent(ts, etype, source, data))

    def clear(self) -> None:
        """Drop all buffered events (a fresh run starts clean)."""
        self.events.clear()

    def __len__(self) -> int:
        return len(self.events)

    def payload(self) -> Tuple[TraceEvent, ...]:
        """What this run attaches to ``RunResult.trace``.

        The buffering tracer returns its events as a tuple;
        :class:`repro.obs.columnar.tap.ColumnarTap` overrides this to
        return an encoded column batch instead.  Substrates call
        ``payload()`` rather than reading ``.events``, so the trace
        representation is the tracer's choice, not theirs.
        """
        return tuple(self.events)


def make_tracer(level: Optional[str]) -> Optional[Tracer]:
    """A tracer for the level, or ``None`` (the fast path) when unset."""
    if level is None:
        return None
    return Tracer(level)
