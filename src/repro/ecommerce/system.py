"""The Section-3 simulation model of the e-commerce system.

Implements the eight numbered steps of the paper's model on top of the
:mod:`repro.des` kernel:

1. Poisson (or pluggable) thread arrivals.
2. FCFS queueing for a CPU.
3. Exponential CPU processing time (rate ``mu = 0.2``/s).
4. Kernel overhead: processing time doubles when more than 50 threads
   are active.
5. 10 MB heap allocation when a CPU is obtained.
6. Full garbage collection when free heap drops below 100 MB: every
   running thread is delayed by 60 s and the leaked (garbage) memory is
   reclaimed.
7. Response time = waiting time + processing time, computed at
   completion.
8. A rejuvenation policy observes every response time; on a trigger all
   threads in execution are terminated (their transactions are lost --
   the paper's rejuvenation cost) and all CPU and memory resources are
   released.

Steps 2-7 live in :class:`~repro.ecommerce.node.ProcessingNode` (shared
with the cluster deployment of :mod:`repro.cluster`); this class adds
the arrival process, the decision layer (metric policy, optional
resource policy), accounting, optional telemetry, and the run loop.
Modelling decisions the paper leaves implicit are documented in
DESIGN.md section 5 and quantified by the ablation experiment.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.base import RejuvenationPolicy
from repro.core.proactive import ResourceExhaustionPolicy
from repro.des.engine import Simulator
from repro.des.random_streams import RandomStreams
from repro.ecommerce.config import SystemConfig
from repro.ecommerce.metrics import RunResult
from repro.ecommerce.node import Job, ProcessingNode
from repro.ecommerce.telemetry import Telemetry, TelemetrySample
from repro.ecommerce.workload import ArrivalProcess
from repro.stats.running import OnlineMoments


class ECommerceSystem:
    """The simulated e-commerce system (single host).

    Parameters
    ----------
    config:
        System parameters; defaults to the paper's
        :data:`~repro.ecommerce.config.PAPER_CONFIG` values.
    arrivals:
        The arrival process (step 1).
    policy:
        The rejuvenation decision rule fed with every completed response
        time (step 8), or ``None`` to disable rejuvenation.
    seed:
        Master seed for the arrival and service random streams.
    resource_policy:
        Optional proactive policy fed with ``(time, free heap)`` after
        every allocation -- the Castelli-style baseline.
    telemetry:
        Optional fixed-interval state probe.
    tracer:
        Optional :class:`repro.obs.tracer.Tracer`.  With ``spans`` on,
        the system and its node emit request-lifecycle and GC/
        rejuvenation events; with ``decisions`` on, a
        :class:`~repro.obs.listener.TracingDecisionListener` driven by
        the simulation clock is installed on the policy.  The buffered
        events are returned on ``RunResult.trace``.  ``None`` (the
        default) is the near-free fast path.
    faults:
        Optional fault scenario: either an object with an ``injections``
        attribute (e.g. :class:`repro.faults.scenario.FaultScenario`) or
        a plain sequence of injections.  Each injection's
        ``arm(system)`` is called at the start of every :meth:`run`,
        after the model has been reset, so injections schedule their
        simulator events against a clean clock.  The model never imports
        :mod:`repro.faults` -- the coupling is duck-typed.
    profiler:
        Optional :class:`repro.obs.live.DESProfiler`.  Installed on the
        simulator, it attributes every fired event's wall-clock to its
        kind; this class additionally brackets the policy's ``observe``
        calls under the ``policy.observe`` kind (a slice *within* the
        completion events' time, accounted separately so decision cost
        is visible).  ``None`` (the default) costs one check per event.

    Examples
    --------
    >>> from repro.core import SRAA, PAPER_SLO
    >>> from repro.ecommerce.config import PAPER_CONFIG
    >>> from repro.ecommerce.workload import PoissonArrivals
    >>> system = ECommerceSystem(
    ...     PAPER_CONFIG,
    ...     PoissonArrivals(rate=1.6),
    ...     policy=SRAA(PAPER_SLO, sample_size=2, n_buckets=5, depth=3),
    ...     seed=7,
    ... )
    >>> result = system.run(n_transactions=2000)
    >>> result.completed + result.lost
    2000
    """

    def __init__(
        self,
        config: SystemConfig,
        arrivals: ArrivalProcess,
        policy: Optional[RejuvenationPolicy] = None,
        seed: Optional[int] = None,
        resource_policy: Optional[ResourceExhaustionPolicy] = None,
        telemetry: Optional[Telemetry] = None,
        tracer: Optional[object] = None,
        faults: Optional[object] = None,
        profiler: Optional[object] = None,
    ) -> None:
        self.config = config
        self.arrivals = arrivals
        self._base_arrivals = arrivals
        self.faults = faults
        self.policy = policy
        self.resource_policy = resource_policy
        self.telemetry = telemetry
        self.tracer = tracer
        self.profiler = profiler
        self._span_tracer = (
            tracer if tracer is not None and tracer.spans else None
        )
        # The per-request microscope (request.arrival) is emitted only
        # for sinks that asked for lifecycle events -- always-on
        # telemetry declines them, and skipping the emit here spares
        # its call-site cost on every transaction.
        self._life_tracer = (
            self._span_tracer
            if self._span_tracer is not None
            and getattr(tracer, "lifecycle", True)
            else None
        )
        self.streams = RandomStreams(seed)
        self.sim = Simulator(tracer=tracer, profiler=profiler)
        self.node = ProcessingNode(
            config,
            self.sim,
            self.streams["service"],
            on_complete=self._on_complete,
            on_loss=self._on_loss,
            on_allocation=(
                self._on_allocation if resource_policy is not None else None
            ),
            tracer=tracer,
        )
        if tracer is not None and tracer.decisions and policy is not None:
            # Deferred import: repro.obs is optional machinery on top of
            # the simulator, not a dependency of the model itself.
            from repro.obs.listener import TracingDecisionListener

            policy.set_listener(
                TracingDecisionListener(tracer, clock=lambda: self.sim.now)
            )
        self._reset_accounting()

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    def _reset_accounting(self) -> None:
        self._down_until = 0.0
        self._arrivals_generated = 0
        self._completed = 0
        self._lost = 0
        self.rejuvenation_times: List[float] = []
        self._warmup = 0
        self._measured_lost = 0
        self._measured_moments = OnlineMoments()
        self._collected: Optional[List[float]] = None
        self._n_target = 0

    @property
    def free_heap_mb(self) -> float:
        """Heap not held live and not yet reclaimed garbage."""
        return self.node.free_heap_mb

    @property
    def active_threads(self) -> int:
        """Threads in the JVM: queued plus executing."""
        return self.node.in_system

    @property
    def gc_count(self) -> int:
        """Full garbage collections so far."""
        return self.node.gc_count

    @property
    def rejuvenations(self) -> int:
        """Rejuvenations carried out so far."""
        return self.node.rejuvenations

    @property
    def crashes(self) -> int:
        """Injected node crashes so far."""
        return self.node.crashes

    # ------------------------------------------------------------------
    # Event handlers
    # ------------------------------------------------------------------
    def _schedule_next_arrival(self) -> None:
        if self._arrivals_generated >= self._n_target:
            return
        gap = self.arrivals.interarrival(self.streams["arrivals"])
        self.sim.schedule(gap, self._on_arrival, kind="arrival")

    def _on_arrival(self) -> None:
        now = self.sim.now
        index = self._arrivals_generated
        self._arrivals_generated += 1
        self._schedule_next_arrival()
        tracer = self._life_tracer
        if tracer is not None:
            tracer.emit(now, "request.arrival", "system", index=index)
        if now < self._down_until:
            # Rejuvenation downtime: the request is refused outright.
            self._count_loss(index, reason="downtime")
            return
        self.node.submit(Job(now, index))

    def _on_complete(self, job: Job, response_time: float) -> None:
        self._completed += 1
        if job.index >= self._warmup:
            self._measured_moments.push(response_time)
            if self._collected is not None:
                self._collected.append(response_time)
        tracer = self._span_tracer
        if tracer is not None:
            tracer.emit(
                self.sim.now,
                "request.complete",
                "system",
                index=job.index,
                response_time=response_time,
            )
        # Step 8: let the policy decide.
        policy = self.policy
        if policy is None:
            return
        profiler = self.profiler
        if profiler is None:
            triggered = policy.observe(response_time)
        else:
            clock = profiler.clock
            started = clock()
            try:
                triggered = policy.observe(response_time)
            finally:
                profiler.account("policy.observe", clock() - started)
        if triggered:
            self._rejuvenate()

    def _on_loss(self, job: Job) -> None:
        self._count_loss(job.index, reason="rejuvenation")

    def _on_allocation(self, time_s: float, free_heap_mb: float) -> None:
        assert self.resource_policy is not None
        if self.resource_policy.observe_resource(time_s, free_heap_mb):
            self._rejuvenate()

    def _rejuvenate(self) -> None:
        """Capacity restoration: drop executing work, release resources."""
        now = self.sim.now
        self.rejuvenation_times.append(now)
        self.node.rejuvenate()
        if self.config.rejuvenation_downtime_s > 0.0:
            self._down_until = now + self.config.rejuvenation_downtime_s

    def _count_loss(self, index: int, reason: str = "rejuvenation") -> None:
        self._lost += 1
        if index >= self._warmup:
            self._measured_lost += 1
        tracer = self._span_tracer
        if tracer is not None:
            tracer.emit(
                self.sim.now, "request.loss", "system", index=index, reason=reason
            )

    # ------------------------------------------------------------------
    # Fault-injection surface (used by repro.faults injections)
    # ------------------------------------------------------------------
    def set_arrivals(self, process: ArrivalProcess) -> ArrivalProcess:
        """Swap the arrival process mid-run; returns the previous one.

        The swap affects the *next* inter-arrival draw; the arrival
        already scheduled keeps its time.  Workload-shift and
        traffic-surge injectors use this to step/scale the rate without
        disturbing the arrival random stream's draw order.
        """
        previous = self.arrivals
        self.arrivals = process
        return previous

    def fault_nodes(self, node: "Optional[int]" = None) -> list:
        """The processing nodes a fault should touch.

        The single-node system only answers for global node index 0
        (or ``None``, meaning "every node"); anything else is a
        targeting error -- the fault was written for a larger
        substrate.
        """
        if node is None or node == 0:
            return [self.node]
        raise ValueError(
            f"node index {node} out of range for a single-node system"
        )

    def inject_crash(
        self, restart_s: float = 0.0, node: "Optional[int]" = None
    ) -> int:
        """Crash the node: all in-flight work dies, then restart.

        Requests arriving during the ``restart_s`` restart window are
        refused (counted lost, reason ``downtime``), reusing the
        rejuvenation-downtime gate.  The crash also wipes whatever
        response-time history the policy had accumulated -- after a
        process restart a monitor starts from scratch -- so the policy
        (and any resource policy) is reset.  Crashes are *not* counted
        as rejuvenations and never appear in ``rejuvenation_times``.
        Returns the number of transactions lost in the crash itself.
        """
        if restart_s < 0:
            raise ValueError("restart time must be non-negative")
        self.fault_nodes(node)  # validate the target
        lost = self.node.crash()
        if restart_s > 0.0:
            self._down_until = max(
                self._down_until, self.sim.now + restart_s
            )
        if self.policy is not None:
            self.policy.reset()
        if self.resource_policy is not None:
            self.resource_policy.reset()
        return lost

    def emit_fault(self, kind: str, cleared: bool = False, **data) -> None:
        """Emit a ``fault.injected`` / ``fault.cleared`` trace event."""
        tracer = self._span_tracer
        if tracer is not None:
            tracer.emit(
                self.sim.now,
                "fault.cleared" if cleared else "fault.injected",
                "fault",
                kind=kind,
                **data,
            )

    def _probe_telemetry(self) -> None:
        """Record one snapshot and re-arm while the model is still live.

        The probe must not keep the run alive on its own: it re-arms
        only while other events (arrivals, completions) are pending.
        """
        assert self.telemetry is not None
        node = self.node
        self.telemetry.record(
            TelemetrySample(
                time_s=self.sim.now,
                free_heap_mb=node.free_heap_mb,
                live_mb=node.live_mb,
                garbage_mb=node.garbage_mb,
                active_threads=node.in_system,
                in_service=len(node.in_service),
                queue_length=node.queue_length,
                completed=self._completed,
                lost=self._lost,
                rejuvenations=node.rejuvenations,
                gc_count=node.gc_count,
            )
        )
        if self.sim.queue:
            self.sim.schedule(
                self.telemetry.interval_s, self._probe_telemetry, kind="probe"
            )

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    def run(
        self,
        n_transactions: int,
        warmup: int = 0,
        collect_response_times: bool = False,
    ) -> RunResult:
        """Generate ``n_transactions`` arrivals and run until all resolve.

        Parameters
        ----------
        n_transactions:
            Total arrivals to generate (the paper uses 100,000 per
            replication).
        warmup:
            Transactions (by arrival index) excluded from the reported
            statistics; they still flow through the system and the
            policy.
        collect_response_times:
            Keep the individual measured response times (in completion
            order) on the result -- needed by the autocorrelation study.
        """
        if n_transactions < 1:
            raise ValueError("need at least one transaction")
        if not 0 <= warmup < n_transactions:
            raise ValueError("warmup must lie in [0, n_transactions)")
        self.sim.reset()
        # Fault injectors may have swapped the arrival process in a
        # previous run; every run starts from the constructor's process.
        self.arrivals = self._base_arrivals
        self.arrivals.reset()
        if self.tracer is not None:
            self.tracer.clear()
        if self.profiler is not None:
            self.profiler.clear()
        if self.policy is not None:
            self.policy.reset()
        if self.resource_policy is not None:
            self.resource_policy.reset()
        self.node.reset()
        self._reset_accounting()
        self._warmup = warmup
        self._n_target = n_transactions
        if collect_response_times:
            self._collected = []
        if self.faults is not None:
            injections = getattr(self.faults, "injections", self.faults)
            for injection in injections:
                injection.arm(self)
        self._schedule_next_arrival()
        if self.telemetry is not None:
            self.telemetry.clear()
            self._probe_telemetry()
        self.sim.run()
        resolved = self._completed + self._lost
        if resolved != n_transactions:  # pragma: no cover - invariant
            raise AssertionError(
                f"simulation ended with {resolved} of {n_transactions} "
                "transactions resolved"
            )
        measured_total = n_transactions - warmup
        moments = self._measured_moments
        return RunResult(
            arrivals=self._arrivals_generated,
            completed=self._completed,
            lost=self._lost,
            avg_response_time=moments.mean if moments.count else 0.0,
            rt_std=moments.std,
            max_response_time=(moments.maximum if moments.count else 0.0),
            loss_fraction=self._measured_lost / measured_total,
            gc_count=self.node.gc_count,
            rejuvenations=self.node.rejuvenations,
            sim_duration_s=self.sim.now,
            response_times=(
                tuple(self._collected) if self._collected is not None else None
            ),
            trace=(
                self.tracer.payload() if self.tracer is not None else None
            ),
            telemetry=(
                tuple(self.telemetry.samples)
                if self.telemetry is not None
                else None
            ),
            rejuvenation_times=tuple(self.rejuvenation_times),
        )
