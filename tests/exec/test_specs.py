"""PolicySpec / ArrivalSpec / ReplicationJob: build, validate, pickle."""

import pickle

import pytest

from repro.core.clta import CLTA
from repro.core.saraa import SARAA
from repro.core.spec import NO_POLICY, PolicySpec
from repro.core.sraa import SRAA
from repro.ecommerce.config import PAPER_CONFIG
from repro.ecommerce.spec import ArrivalSpec
from repro.ecommerce.workload import (
    MMPPArrivals,
    PeriodicArrivals,
    PoissonArrivals,
    TraceArrivals,
)
from repro.exec.jobs import (
    ReplicationJob,
    build_arrival,
    build_policy,
    execute_job,
)


class TestPolicySpec:
    def test_sraa_builds_fresh_instances(self):
        spec = PolicySpec.sraa(2, 5, 3)
        first, second = spec.build(), spec.build()
        assert isinstance(first, SRAA)
        assert first is not second  # no detection state shared
        assert first.describe() == "SRAA(n=2, K=5, D=3)"

    def test_saraa_and_clta(self):
        assert isinstance(PolicySpec.saraa(2, 5, 3).build(), SARAA)
        clta = PolicySpec.clta(30, z=2.33).build()
        assert isinstance(clta, CLTA)
        assert "2.33" in clta.describe()

    def test_none_builds_nothing(self):
        spec = PolicySpec.none()
        assert spec.name == NO_POLICY
        assert spec.build() is None
        assert spec.describe() == "no rejuvenation"

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            PolicySpec("quantum")

    def test_missing_params_fall_back_to_factory_defaults(self):
        built = PolicySpec("sraa", {"n": 2}).build()  # K, D default to 1
        assert built.describe() == "SRAA(n=2, K=1, D=1)"

    def test_bad_param_values_fail_at_build(self):
        spec = PolicySpec("sraa", {"n": "lots"})
        with pytest.raises(ValueError):
            spec.build()

    def test_params_defensively_copied(self):
        params = {"n": 2, "K": 5, "D": 3}
        spec = PolicySpec("sraa", params)
        params["n"] = 99
        assert spec.params["n"] == 2

    def test_round_trips_through_pickle(self):
        spec = PolicySpec.sraa(2, 5, 3)
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec
        assert clone.build().describe() == spec.build().describe()


class TestArrivalSpec:
    def test_poisson(self):
        process = ArrivalSpec.poisson(1.6).build()
        assert isinstance(process, PoissonArrivals)
        assert process.rate == 1.6

    def test_other_kinds(self):
        assert isinstance(
            ArrivalSpec.mmpp(1.0, 3.0, 100.0, 10.0).build(), MMPPArrivals
        )
        assert isinstance(
            ArrivalSpec.periodic(1.0, 0.5, 600.0).build(), PeriodicArrivals
        )
        assert isinstance(
            ArrivalSpec.trace([0.5, 1.0, 0.25]).build(), TraceArrivals
        )

    def test_fresh_instance_per_build(self):
        spec = ArrivalSpec.trace([0.5, 1.0])
        assert spec.build() is not spec.build()

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            ArrivalSpec("weibull", {})

    def test_round_trips_through_pickle(self):
        spec = ArrivalSpec.mmpp(1.0, 3.0, 100.0, 10.0)
        assert pickle.loads(pickle.dumps(spec)) == spec


class TestSources:
    def test_build_arrival_accepts_spec_and_factory(self):
        from_spec = build_arrival(ArrivalSpec.poisson(2.0))
        from_factory = build_arrival(lambda: PoissonArrivals(2.0))
        assert from_spec.rate == from_factory.rate == 2.0

    def test_build_policy_accepts_spec_factory_and_none(self):
        from repro.core.sla import PAPER_SLO

        assert isinstance(build_policy(PolicySpec.sraa(2, 5, 3)), SRAA)
        factory = lambda: SRAA(PAPER_SLO, sample_size=2, n_buckets=5, depth=3)
        assert isinstance(build_policy(factory), SRAA)
        assert build_policy(None) is None

    def test_bad_sources_rejected(self):
        with pytest.raises(TypeError):
            build_arrival(1.6)
        with pytest.raises(TypeError):
            build_policy("sraa")


class TestReplicationJob:
    def _job(self, **overrides):
        fields = dict(
            config=PAPER_CONFIG,
            arrival=ArrivalSpec.poisson(
                PAPER_CONFIG.arrival_rate_for_load(0.5)
            ),
            policy=PolicySpec.sraa(2, 5, 3),
            n_transactions=200,
            seed=11,
            tag=("replication", 0),
        )
        fields.update(overrides)
        return ReplicationJob(**fields)

    def test_job_is_picklable(self):
        job = self._job()
        assert pickle.loads(pickle.dumps(job)) == job

    def test_execute_matches_run_once(self):
        from repro.ecommerce.runner import run_once

        job = self._job()
        direct = run_once(
            PAPER_CONFIG,
            job.arrival.build(),
            job.policy.build(),
            n_transactions=job.n_transactions,
            seed=job.seed,
        )
        assert execute_job(job) == direct
