"""Fixtures for the HTTP observability plane.

``served`` starts one real :class:`~repro.serve.ReproServer` on an
OS-assigned port (port 0) over the test's hermetic ledger directory,
with a tiny HTTP client bolted on.  Requests run against actual
sockets -- the same code path curl and the dashboard hit.
"""

import json
import urllib.error
import urllib.request

import pytest

from repro.serve import ReproServer

#: Small but non-trivial simulation used to seed ledger entries.
SIMULATE = [
    "simulate",
    "--transactions", "400",
    "--replications", "2",
    "--seed", "7",
]


class ServerClient:
    """A ``ReproServer`` plus blocking JSON/raw helpers for tests."""

    def __init__(self, server: ReproServer):
        self.server = server
        self.url = server.url

    def get(self, path: str, timeout: float = 30.0):
        """GET returning ``(status, parsed JSON body)``."""
        try:
            with urllib.request.urlopen(
                self.url + path, timeout=timeout
            ) as response:
                return response.status, json.loads(response.read())
        except urllib.error.HTTPError as error:
            return error.code, json.loads(error.read())

    def get_raw(self, path: str, timeout: float = 30.0):
        """GET returning ``(status, headers, text body)``."""
        with urllib.request.urlopen(
            self.url + path, timeout=timeout
        ) as response:
            return (
                response.status,
                dict(response.headers),
                response.read().decode("utf-8"),
            )

    def post(self, path: str, payload, timeout: float = 30.0):
        """POST a JSON body, returning ``(status, parsed JSON body)``."""
        request = urllib.request.Request(
            self.url + path,
            data=json.dumps(payload).encode("utf-8"),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        try:
            with urllib.request.urlopen(
                request, timeout=timeout
            ) as response:
                return response.status, json.loads(response.read())
        except urllib.error.HTTPError as error:
            return error.code, json.loads(error.read())

    def sse_events(
        self, max_events: int, timeout_s: float = 30.0
    ):
        """Parsed events from one bounded ``/api/events`` stream."""
        return self.sse_events_from(
            f"/api/events?max_events={max_events}&timeout_s={timeout_s}",
            timeout_s=timeout_s,
        )

    def sse_events_from(self, path: str, timeout_s: float = 30.0):
        """Parsed events from an arbitrary SSE path (resume tests)."""
        events = []
        current = {}
        with urllib.request.urlopen(
            self.url + path, timeout=timeout_s + 10.0
        ) as response:
            for raw in response:
                line = raw.decode("utf-8").rstrip("\n")
                if not line:
                    if current:
                        events.append(current)
                        current = {}
                    continue
                if line.startswith(":"):
                    continue  # keepalive comment
                field, _, value = line.partition(": ")
                if field == "data":
                    current["data"] = json.loads(value)
                elif field == "id":
                    current["seq"] = int(value)
                elif field == "event":
                    current["event"] = value
        if current:
            events.append(current)
        return events


@pytest.fixture
def served(tmp_path):
    """A running server over the hermetic ledger; closed on teardown."""
    server = ReproServer(port=0).start()
    client = ServerClient(server)
    yield client
    server.close()
