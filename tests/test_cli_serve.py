"""CLI surfaces of the serving plane: `repro serve`, `top --follow`.

The server itself is exercised over real sockets in tests/serve/; here
we pin the argparse wiring and the follower loop (the observer side of
``repro top --follow``), including its source-resolution rules.
"""

import json

from repro.cli import _build_parser, main
from repro.obs.live import follow_snapshots, read_snapshot_source
from repro.serve import ReproServer

SNAPSHOT = {
    "ts": 120.0,
    "completed": 450,
    "lost": 3,
    "rate_per_s": 3.75,
    "rejuvenations": 2,
    "faults": 1,
    "flight_dumps": 4,
    "rt_quantiles": {"p50": 0.4, "p99": 2.5},
}


class TestParserWiring:
    def test_serve_flags(self):
        args = _build_parser().parse_args(
            ["serve", "--port", "0", "--host", "127.0.0.1",
             "--ledger", "/tmp/l", "--bench-dir", "/tmp/b"]
        )
        assert args.command == "serve"
        assert args.port == 0
        assert args.ledger_dir == "/tmp/l"
        assert args.bench_dir == "/tmp/b"

    def test_top_follow_flags(self):
        args = _build_parser().parse_args(
            ["top", "--follow", "0.5", "--url", "http://x:1/",
             "--frames", "3"]
        )
        assert args.follow == 0.5
        assert args.frames == 3

    def test_runs_list_json_flag(self):
        args = _build_parser().parse_args(["runs", "list", "--json"])
        assert args.json is True


class TestSnapshotSource:
    def test_file_source(self, tmp_path):
        path = tmp_path / "live.json"
        path.write_text(json.dumps(SNAPSHOT))
        assert read_snapshot_source(str(path)) == SNAPSHOT

    def test_http_source(self, tmp_path):
        server = ReproServer(port=0).start()
        try:
            server.broker.publish("live.snapshot", dict(SNAPSHOT))
            got = read_snapshot_source(server.url + "/api/live")
            assert got == SNAPSHOT
        finally:
            server.close()


class TestFollow:
    def test_renders_bounded_frames_from_file(self, tmp_path, capsys):
        path = tmp_path / "live.json"
        path.write_text(json.dumps(SNAPSHOT))
        sleeps = []
        painted = follow_snapshots(
            str(path), interval_s=0.01, frames=2,
            sleep=sleeps.append,
        )
        err = capsys.readouterr().err
        assert painted == 2
        assert sleeps == [0.01]  # no sleep after the final frame
        assert "repro top" in err
        assert "completed       450" in err
        assert "flight dumps   4" in err
        assert "p50=  0.400s" in err

    def test_empty_snapshot_paints_waiting_line(self, tmp_path, capsys):
        path = tmp_path / "live.json"
        path.write_text("{}")
        assert follow_snapshots(str(path), frames=1) == 1
        assert "no live snapshot" in capsys.readouterr().err

    def test_fetch_errors_do_not_abort_the_loop(self, tmp_path, capsys):
        painted = follow_snapshots(
            str(tmp_path / "missing.json"), interval_s=0.0, frames=2
        )
        assert painted == 2
        assert "waiting on" in capsys.readouterr().err

    def test_cli_follow_against_a_live_server(self, capsys):
        server = ReproServer(port=0).start()
        try:
            server.broker.publish("live.snapshot", dict(SNAPSHOT))
            # A base URL (no /api/ path) resolves to /api/live.
            assert main(
                ["top", "--follow", "0.01", "--url", server.url,
                 "--frames", "2"]
            ) == 0
        finally:
            server.close()
        err = capsys.readouterr().err
        assert err.count("repro top") == 2
        assert "completed       450" in err
