"""Absorption-time analysis against phase-type closed forms."""

import math

import numpy as np
import pytest

from repro.ctmc.absorption import AbsorbingCTMC
from repro.ctmc.chain import CTMC
from repro.queueing.distributions import hypoexponential


@pytest.fixture
def exponential_chain() -> AbsorbingCTMC:
    """One transient state with rate 2 into absorption: Exp(2)."""
    return AbsorbingCTMC(CTMC([[-2.0, 2.0], [0.0, 0.0]]))


@pytest.fixture
def hypo_chain() -> AbsorbingCTMC:
    """Two sequential stages (rates 0.2, 1.6): the paper's Fig. 3 shape."""
    chain = CTMC(
        [[-0.2, 0.2, 0.0], [0.0, -1.6, 1.6], [0.0, 0.0, 0.0]],
        state_names=("one", "two", "absorbed"),
    )
    return AbsorbingCTMC(chain)


class TestConstruction:
    def test_requires_absorbing_state(self):
        with pytest.raises(ValueError):
            AbsorbingCTMC(CTMC([[-1.0, 1.0], [1.0, -1.0]]))

    def test_requires_transient_state(self):
        with pytest.raises(ValueError):
            AbsorbingCTMC(CTMC([[0.0]]))

    def test_initial_mass_on_absorbing_rejected(self):
        chain = CTMC([[-1.0, 1.0], [0.0, 0.0]])
        with pytest.raises(ValueError):
            AbsorbingCTMC(chain, initial=[0.0, 1.0])

    def test_bad_initial_rejected(self):
        chain = CTMC([[-1.0, 1.0], [0.0, 0.0]])
        with pytest.raises(ValueError):
            AbsorbingCTMC(chain, initial=[0.5, 0.0])

    def test_identifies_state_partition(self, hypo_chain):
        assert hypo_chain.absorbing == (2,)
        assert hypo_chain.transient_states == (0, 1)


class TestExponentialAbsorption:
    def test_cdf(self, exponential_chain):
        for t in (0.1, 0.5, 2.0):
            assert exponential_chain.cdf(t) == pytest.approx(
                1 - math.exp(-2 * t), abs=1e-10
            )

    def test_pdf(self, exponential_chain):
        for t in (0.1, 1.0):
            assert exponential_chain.pdf(t) == pytest.approx(
                2 * math.exp(-2 * t), abs=1e-10
            )

    def test_mean_and_var(self, exponential_chain):
        assert exponential_chain.mean_time_to_absorption() == pytest.approx(0.5)
        assert exponential_chain.var() == pytest.approx(0.25)

    def test_negative_time(self, exponential_chain):
        assert exponential_chain.cdf(-1.0) == 0.0
        assert exponential_chain.pdf(-1.0) == 0.0
        assert exponential_chain.sf(-1.0) == 1.0


class TestHypoexponentialAbsorption:
    def test_matches_phase_type(self, hypo_chain):
        reference = hypoexponential([0.2, 1.6])
        for t in (0.5, 3.0, 10.0):
            assert hypo_chain.cdf(t) == pytest.approx(
                reference.cdf(t), abs=1e-9
            )
            assert hypo_chain.pdf(t) == pytest.approx(
                reference.pdf(t), abs=1e-9
            )

    def test_moments_match_phase_type(self, hypo_chain):
        reference = hypoexponential([0.2, 1.6])
        assert hypo_chain.moment(1) == pytest.approx(reference.moment(1))
        assert hypo_chain.moment(2) == pytest.approx(reference.moment(2))
        assert hypo_chain.var() == pytest.approx(reference.var())

    def test_moment_validation(self, hypo_chain):
        assert hypo_chain.moment(0) == 1.0
        with pytest.raises(ValueError):
            hypo_chain.moment(-1)

    def test_quantile_inverts_cdf(self, hypo_chain):
        for q in (0.25, 0.5, 0.9):
            t = hypo_chain.quantile(q)
            assert hypo_chain.cdf(t) == pytest.approx(q, abs=1e-6)

    def test_quantile_validation(self, hypo_chain):
        with pytest.raises(ValueError):
            hypo_chain.quantile(1.0)


class TestCustomInitialDistribution:
    def test_mixture_start(self):
        # Starting in stage two with probability 1 skips the first stage.
        chain = CTMC(
            [[-0.2, 0.2, 0.0], [0.0, -1.6, 1.6], [0.0, 0.0, 0.0]]
        )
        absorbing = AbsorbingCTMC(chain, initial=[0.0, 1.0, 0.0])
        assert absorbing.mean_time_to_absorption() == pytest.approx(1 / 1.6)

    def test_multiple_absorbing_states(self):
        # Competing absorption: Exp(1) vs Exp(3) from one state.
        chain = CTMC(
            [[-4.0, 1.0, 3.0], [0.0, 0.0, 0.0], [0.0, 0.0, 0.0]]
        )
        absorbing = AbsorbingCTMC(chain)
        assert absorbing.absorbing == (1, 2)
        assert absorbing.mean_time_to_absorption() == pytest.approx(0.25)
        assert absorbing.cdf(0.5) == pytest.approx(1 - math.exp(-2.0))
