"""``GET /api/runs/<ref>/trace/summary`` against a live server.

A traced run leaves its trace path in the ledger entry's artifacts
block; the endpoint loads the trace (either format), summarises event
counts and latency quantiles, and paginates the per-run rows with the
same offset/limit convention as ``/api/runs``.
"""

import os

import pytest

from repro.cli import main

CAMPAIGN = [
    "faults", "run", "aging_onset",
    "--policies", "SRAA",
    "--replications", "2",
    "--seed", "5",
    "--backend", "serial",
    "--trace-level", "all",
]


def seed_traced_run(tmp_path, name="trace.rcol", fmt="columnar"):
    path = str(tmp_path / name)
    assert (
        main(CAMPAIGN + ["--trace", path, "--trace-format", fmt]) == 0
    )
    return path


class TestTraceSummary:
    def test_summary_payload(self, served, tmp_path):
        trace = seed_traced_run(tmp_path)
        status, payload = served.get("/api/runs/latest/trace/summary")
        assert status == 200
        assert payload["trace"] == os.path.abspath(trace)
        assert payload["format"] == "columnar"
        assert payload["records"] > 0
        counts = payload["events_by_kind"]
        assert counts["run.meta"] == 2
        assert counts["request.complete"] > 0
        assert payload["total"] == 2
        assert payload["count"] == len(payload["runs"]) == 2
        for row, run_id in zip(payload["runs"], (0, 1)):
            assert row["run"] == run_id
            assert row["tag"][0] == "faults"
            assert row["records"] > 0
            assert row["completions"] > 0

    def test_quantiles_are_ordered(self, served, tmp_path):
        seed_traced_run(tmp_path)
        _status, payload = served.get("/api/runs/latest/trace/summary")
        quantiles = payload["latency_quantiles"]
        assert set(quantiles) == {"p50", "p90", "p95", "p99"}
        assert (
            quantiles["p50"]
            <= quantiles["p90"]
            <= quantiles["p95"]
            <= quantiles["p99"]
        )

    def test_pagination_tiles_consistently(self, served, tmp_path):
        seed_traced_run(tmp_path)
        _status, full = served.get("/api/runs/latest/trace/summary")
        _status, first = served.get(
            "/api/runs/latest/trace/summary?limit=1"
        )
        _status, second = served.get(
            "/api/runs/latest/trace/summary?offset=1&limit=1"
        )
        assert first["total"] == second["total"] == full["total"] == 2
        assert first["count"] == second["count"] == 1
        assert first["runs"] + second["runs"] == full["runs"]
        # Aggregates describe the whole trace, not the page.
        assert first["records"] == full["records"]
        assert first["events_by_kind"] == full["events_by_kind"]
        assert first["latency_quantiles"] == full["latency_quantiles"]

    def test_jsonl_trace_served_identically(self, served, tmp_path):
        seed_traced_run(tmp_path, name="a.rcol", fmt="columnar")
        _status, columnar = served.get("/api/runs/latest/trace/summary")
        seed_traced_run(tmp_path, name="b.jsonl", fmt="jsonl")
        _status, jsonl = served.get("/api/runs/latest/trace/summary")
        assert jsonl["format"] == "jsonl"
        # Identical modulo the fields naming the artifact itself.
        for payload in (columnar, jsonl):
            payload.pop("trace")
            payload.pop("format")
            payload.pop("id")
        assert columnar == jsonl

    def test_untraced_run_is_404(self, served):
        assert main(["simulate", "--transactions", "200", "--seed", "7"]) == 0
        status, payload = served.get("/api/runs/latest/trace/summary")
        assert status == 404
        assert "no trace artifact" in payload["error"]
        assert "--trace" in payload["error"]

    def test_deleted_artifact_is_404(self, served, tmp_path):
        trace = seed_traced_run(tmp_path)
        os.remove(trace)
        status, payload = served.get("/api/runs/latest/trace/summary")
        assert status == 404
        assert "missing on disk" in payload["error"]

    def test_unknown_ref_is_404(self, served, tmp_path):
        seed_traced_run(tmp_path)
        status, payload = served.get(
            "/api/runs/zzz-no-such/trace/summary"
        )
        assert status == 404
        assert "error" in payload
