"""The append-only ledger store: entries, refs, baselines, env gates."""

import json

import pytest

from repro.core.spec import PolicySpec
from repro.ecommerce.config import SystemConfig
from repro.ecommerce.spec import ArrivalSpec
from repro.obs.ledger import Ledger, ledger_enabled, record_run
from repro.obs.ledger.manifest import simulate_manifest


def make_manifest(seed=7, **overrides):
    kwargs = dict(
        config=SystemConfig(),
        arrival=ArrivalSpec.poisson(1.8),
        policy=PolicySpec.sraa(2, 5, 3),
        n_transactions=1000,
        replications=2,
        seed=seed,
    )
    kwargs.update(overrides)
    return simulate_manifest(**kwargs)


@pytest.fixture
def ledger(tmp_path):
    return Ledger(str(tmp_path / "ledger"))


class TestAppendAndGet:
    def test_append_assigns_sequential_ids(self, ledger):
        first = ledger.append(make_manifest(), {"x": 1})
        second = ledger.append(make_manifest(), {"x": 2})
        assert first["id"].startswith("sim-0001-")
        assert second["id"].startswith("sim-0002-")
        assert [e["id"] for e in ledger.entries()] == [
            first["id"],
            second["id"],
        ]

    def test_entry_layout(self, ledger):
        entry = ledger.append(make_manifest(), {"x": 1}, {"wall_clock_s": 2.0})
        assert entry["schema_version"] == 1
        assert entry["kind"] == "simulate"
        assert entry["outcomes"] == {"x": 1}
        assert entry["timing"] == {"wall_clock_s": 2.0}
        assert entry["manifest"]["manifest_hash"].startswith(entry["id"][-8:])

    def test_get_by_full_id_prefix_and_latest(self, ledger):
        entry = ledger.append(make_manifest(), {})
        newest = ledger.append(make_manifest(seed=8), {})
        assert ledger.get(entry["id"]) == entry
        assert ledger.get(entry["id"][:10]) == entry
        assert ledger.get("latest") == newest
        assert ledger.get("last") == newest

    def test_get_ambiguous_prefix_rejected(self, ledger):
        ledger.append(make_manifest(), {})
        ledger.append(make_manifest(), {})
        with pytest.raises(LookupError, match="ambiguous"):
            ledger.get("sim-")

    def test_get_unknown_ref_rejected(self, ledger):
        ledger.append(make_manifest(), {})
        with pytest.raises(LookupError, match="no ledger entry"):
            ledger.get("exp-9999")

    def test_get_on_empty_ledger_explains(self, ledger):
        with pytest.raises(LookupError, match="empty"):
            ledger.get("latest")

    def test_latest_filters_by_manifest_hash(self, ledger):
        a = ledger.append(make_manifest(seed=1), {})
        ledger.append(make_manifest(seed=2), {})
        wanted = a["manifest"]["manifest_hash"]
        assert ledger.latest(wanted)["id"] == a["id"]
        assert ledger.latest("no-such-hash") is None

    def test_corrupt_line_reported_with_location(self, ledger, tmp_path):
        ledger.append(make_manifest(), {})
        with open(ledger.runs_path, "a") as handle:
            handle.write("{not json\n")
        with pytest.raises(ValueError, match="corrupt ledger line"):
            ledger.entries()


class TestBaselines:
    def test_pin_and_resolve(self, ledger):
        entry = ledger.append(make_manifest(), {})
        ledger.set_baseline("default", entry)
        assert ledger.baseline_entry("default")["id"] == entry["id"]
        pins = ledger.baselines()
        assert pins["default"]["manifest_hash"] == (
            entry["manifest"]["manifest_hash"]
        )

    def test_missing_baseline_lists_known(self, ledger):
        entry = ledger.append(make_manifest(), {})
        ledger.set_baseline("smoke", entry)
        with pytest.raises(LookupError, match="smoke"):
            ledger.baseline_entry("paper")


class TestCheckState:
    def test_round_trip(self, ledger):
        assert ledger.check_state() == {}
        ledger.save_check_state({"abc": {"streak": 2}})
        assert ledger.check_state() == {"abc": {"streak": 2}}


class TestEnvironmentGates:
    def test_ledger_enabled_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_LEDGER", raising=False)
        assert ledger_enabled()

    @pytest.mark.parametrize("value", ["0", "off", "false", "no", "OFF"])
    def test_disabled_values(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_LEDGER", value)
        assert not ledger_enabled()

    def test_record_run_honours_disable(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_LEDGER", "0")
        assert record_run(make_manifest(), {}, directory=str(tmp_path)) is None

    def test_record_run_never_raises(self, monkeypatch, tmp_path, capsys):
        # Point the ledger directory at an existing *file*: mkdir fails.
        blocker = tmp_path / "blocker"
        blocker.write_text("")
        monkeypatch.delenv("REPRO_LEDGER", raising=False)
        assert record_run(make_manifest(), {}, directory=str(blocker)) is None
        assert "recording failed" in capsys.readouterr().err

    def test_directory_env_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_LEDGER_DIR", str(tmp_path / "custom"))
        assert Ledger().directory == str(tmp_path / "custom")


class TestEntriesAreJsonl:
    def test_file_is_one_json_object_per_line(self, ledger):
        ledger.append(make_manifest(), {"x": 1})
        ledger.append(make_manifest(), {"x": 2})
        with open(ledger.runs_path) as handle:
            lines = [line for line in handle if line.strip()]
        assert len(lines) == 2
        for line in lines:
            json.loads(line)
