"""Trace sessions end to end: collection, round trip, determinism.

The round-trip test is the observability layer's acceptance gate: a
traced simulation is written to JSONL, reloaded, and every
``policy.trigger`` must join back (via ``batch_seq``) to a batch
decision whose threshold matches the policy's configured bucket target
-- i.e. the audit trail explains each rejuvenation exactly.
"""

import pytest

from repro.core.sla import PAPER_SLO
from repro.core.spec import PolicySpec
from repro.ecommerce.config import PAPER_CONFIG
from repro.ecommerce.runner import run_replications
from repro.ecommerce.spec import ArrivalSpec
from repro.exec.backends import ProcessPoolBackend, SerialBackend
from repro.obs.events import (
    DES_EVENT,
    POLICY_BATCH,
    POLICY_TRIGGER,
    REQUEST_ARRIVAL,
    REQUEST_COMPLETE,
    RUN_META,
)
from repro.obs.session import (
    TraceSession,
    active_trace_level,
    current_session,
    use_tracing,
)


def _traced_run(level="all", backend=None, replications=2, policy=None):
    session = TraceSession(level)
    with use_tracing(session):
        result = run_replications(
            PAPER_CONFIG,
            arrival=ArrivalSpec.poisson(1.8),
            policy=(
                policy if policy is not None else PolicySpec.sraa(2, 5, 3)
            ),
            n_transactions=2_000,
            replications=replications,
            seed=5,
            backend=backend or SerialBackend(),
        )
    return session, result


class TestSessionInstallation:
    def test_stack_discipline(self):
        assert current_session() is None
        session = TraceSession("spans")
        with use_tracing(session):
            assert current_session() is session
            assert active_trace_level() == "spans"
        assert current_session() is None
        assert active_trace_level() is None

    def test_rejects_bad_level(self):
        with pytest.raises(ValueError):
            TraceSession("everything")

    def test_untraced_run_attaches_no_trace(self):
        result = run_replications(
            PAPER_CONFIG,
            arrival=ArrivalSpec.poisson(1.0),
            policy=None,
            n_transactions=200,
            replications=1,
            seed=0,
        )
        assert result.runs[0].trace is None


class TestSessionCollection:
    def test_one_traced_run_per_replication(self):
        session, _ = _traced_run(replications=3)
        assert [run.index for run in session.runs] == [0, 1, 2]
        assert [run.seed for run in session.runs] == [5, 6, 7]
        assert all(run.events for run in session.runs)

    def test_levels_filter_event_categories(self):
        spans_session, _ = _traced_run(level="spans")
        types = {e.etype for run in spans_session.runs for e in run.events}
        assert REQUEST_ARRIVAL in types
        assert POLICY_BATCH not in types
        assert DES_EVENT not in types

        decisions_session, _ = _traced_run(level="decisions")
        types = {
            e.etype for run in decisions_session.runs for e in run.events
        }
        assert POLICY_BATCH in types
        assert REQUEST_ARRIVAL not in types
        assert DES_EVENT not in types

        all_session, _ = _traced_run(level="all")
        types = {e.etype for run in all_session.runs for e in run.events}
        assert {REQUEST_ARRIVAL, POLICY_BATCH, DES_EVENT} <= types

    def test_records_start_each_run_with_meta(self):
        session, result = _traced_run(replications=2)
        records = list(session.records())
        metas = [r for r in records if r["type"] == RUN_META]
        assert len(metas) == 2
        assert metas[0]["data"]["completed"] == result.runs[0].completed

    def test_registry_counts_match_results(self):
        session, result = _traced_run(replications=2)
        snapshot = session.registry().snapshot()
        assert snapshot["repro_replications_total"] == 2
        assert snapshot["repro_completed_total"] == sum(
            r.completed for r in result.runs
        )
        assert (
            snapshot["repro_response_time_seconds"]["count"]
            == snapshot["repro_completed_total"]
        )


class TestJsonlRoundTrip:
    def test_triggers_join_to_batches_with_configured_threshold(
        self, tmp_path
    ):
        """Satellite acceptance: reload the JSONL, match every trigger
        to its causing batch, and check the threshold is the policy's
        configured bucket target mu_X + N * sigma_X."""
        from repro.obs.exporters import read_jsonl

        session, _ = _traced_run(level="decisions")
        path = str(tmp_path / "trace.jsonl")
        session.write_jsonl(path)
        records = read_jsonl(path)

        triggers = [r for r in records if r["type"] == POLICY_TRIGGER]
        assert triggers, "scenario must rejuvenate for this test to bite"
        for trigger in triggers:
            data = trigger["data"]
            # The threshold in the trace is the configured SLO target
            # for the bucket the policy was in when it fired.
            expected = PAPER_SLO.shift_threshold(data["level"])
            assert data["threshold"] == pytest.approx(expected)
            # The trigger joins back to the batch decision that caused
            # it: same run, same seq, exceeding the same threshold.
            causes = [
                r
                for r in records
                if r["type"] == POLICY_BATCH
                and r["run"] == trigger["run"]
                and r["source"] == trigger["source"]
                and r["data"]["seq"] == data["batch_seq"]
            ]
            (cause,) = causes
            assert cause["data"]["batch_mean"] == data["batch_mean"]
            assert cause["data"]["target"] == data["threshold"]
            assert cause["data"]["exceeded"] is True

    def test_clta_threshold_is_policy_threshold(self, tmp_path):
        from repro.core.clta import CLTA
        from repro.obs.exporters import read_jsonl

        session, _ = _traced_run(
            level="decisions", policy=PolicySpec.clta(2, z=1.96)
        )
        path = str(tmp_path / "clta.jsonl")
        session.write_jsonl(path)
        expected = CLTA(PAPER_SLO, sample_size=2, z=1.96).threshold
        triggers = [
            r for r in read_jsonl(path) if r["type"] == POLICY_TRIGGER
        ]
        assert triggers
        for trigger in triggers:
            assert trigger["data"]["threshold"] == pytest.approx(expected)


class TestBackendBitIdentity:
    def test_serial_and_pool_traces_are_identical(self):
        serial_session, serial_result = _traced_run(backend=SerialBackend())
        pool_session, pool_result = _traced_run(
            backend=ProcessPoolBackend(workers=2)
        )
        assert serial_result.runs == pool_result.runs
        assert list(serial_session.records()) == list(pool_session.records())
        assert (
            serial_session.registry().to_prometheus()
            == pool_session.registry().to_prometheus()
        )


class TestExplain:
    def test_names_bucket_threshold_and_batch_mean(self, tmp_path):
        from repro.obs.explain import explain_trace

        session, result = _traced_run(level="all")
        path = str(tmp_path / "trace.jsonl")
        session.write_jsonl(path)
        text = explain_trace(path)
        assert "trigger #1" in text
        assert "bucket" in text
        assert "threshold" in text
        assert "batch mean" in text
        # One explained trigger per rejuvenation.
        total = sum(int(r.rejuvenations) for r in result.runs)
        assert text.count("] trigger #") == total

    def test_spans_only_trace_points_at_trace_level(self, tmp_path):
        from repro.obs.explain import explain_trace

        session, result = _traced_run(level="spans")
        assert any(r.rejuvenations for r in result.runs)
        path = str(tmp_path / "spans.jsonl")
        session.write_jsonl(path)
        assert "--trace-level decisions" in explain_trace(path)

    def test_empty_file(self, tmp_path):
        from repro.obs.explain import explain_trace

        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert "empty trace" in explain_trace(str(path))
