"""Robustness scorer on hand-made runs with known ground truth."""

import csv
import math

import pytest

from repro.ecommerce.metrics import RunResult
from repro.faults.score import (
    SCORE_COLUMNS,
    format_scores,
    score_policy,
    score_rows,
    score_run,
    write_scores_csv,
)
from repro.faults.zoo import get_scenario


def make_result(triggers, duration_s=1000.0, loss_fraction=0.01):
    return RunResult(
        arrivals=100,
        completed=95,
        lost=5,
        avg_response_time=5.0,
        rt_std=2.0,
        max_response_time=20.0,
        loss_fraction=loss_fraction,
        gc_count=0,
        rejuvenations=len(triggers),
        sim_duration_s=duration_s,
        rejuvenation_times=tuple(triggers),
    )


class TestScoreRun:
    def test_detection_with_latency(self):
        score = score_run(make_result((350.0,)), ((300.0, 600.0),))
        assert score.detected == 1
        assert score.missed == 0
        assert score.detection_latencies_s == (50.0,)
        assert score.false_alarms == 0

    def test_missed_interval(self):
        score = score_run(make_result(()), ((300.0, 600.0),))
        assert score.detected == 0
        assert score.missed == 1
        assert score.detection_latencies_s == ()

    def test_trigger_outside_is_false_alarm(self):
        score = score_run(make_result((100.0, 350.0)), ((300.0, 600.0),))
        assert score.false_alarms == 1
        assert score.detected == 1

    def test_repeat_triggers_in_interval_counted_once(self):
        score = score_run(
            make_result((350.0, 400.0, 450.0)), ((300.0, 600.0),)
        )
        assert score.detected == 1
        assert score.false_alarms == 0
        assert score.detection_latencies_s == (50.0,)

    def test_open_interval_clipped_to_duration(self):
        score = score_run(
            make_result((700.0,), duration_s=1000.0),
            ((600.0, math.inf),),
        )
        assert score.detected == 1
        assert score.degraded_hours == pytest.approx(400.0 / 3600.0)
        assert score.healthy_hours == pytest.approx(600.0 / 3600.0)

    def test_unrealised_interval_neither_detected_nor_missed(self):
        score = score_run(
            make_result((), duration_s=500.0), ((600.0, math.inf),)
        )
        assert score.detected == 0
        assert score.missed == 0
        assert score.healthy_hours == pytest.approx(500.0 / 3600.0)

    def test_legacy_result_without_triggers_rejected(self):
        legacy = make_result(())
        legacy = RunResult(
            **{
                **{
                    f: getattr(legacy, f)
                    for f in legacy.__dataclass_fields__
                },
                "rejuvenation_times": None,
            }
        )
        with pytest.raises(ValueError, match="rejuvenation_times"):
            score_run(legacy, ((0.0, 10.0),))


class TestScorePolicy:
    def setup_method(self):
        self.scenario = get_scenario("aging_onset", 600.0)
        # Degraded from t=300 (onset at half the horizon), open-ended.

    def test_aggregation_over_replications(self):
        results = [
            make_result((350.0,), duration_s=600.0),  # detected, +50 s
            make_result((100.0, 400.0), duration_s=600.0),  # FA + detect
            make_result((), duration_s=600.0),  # missed
        ]
        score = score_policy(self.scenario, "SRAA", results)
        assert score.replications == 3
        assert score.detected == 2
        assert score.missed == 1
        assert score.missed_rate == pytest.approx(1.0 / 3.0)
        assert score.mean_detection_latency_s == pytest.approx(75.0)
        assert score.false_alarms == 1
        healthy_hours = 3 * 300.0 / 3600.0
        assert score.false_alarms_per_healthy_hour == pytest.approx(
            1.0 / healthy_hours
        )
        assert score.mean_loss_fraction == pytest.approx(0.01)

    def test_latency_is_none_when_nothing_detected(self):
        score = score_policy(
            self.scenario,
            "SRAA",
            [make_result((), duration_s=600.0)],
        )
        assert score.mean_detection_latency_s is None
        assert score.missed_rate == 1.0

    def test_needs_replications(self):
        with pytest.raises(ValueError):
            score_policy(self.scenario, "SRAA", [])


class TestFormattingAndCsv:
    def _score(self):
        scenario = get_scenario("aging_onset", 600.0)
        return score_policy(
            scenario, "SRAA", [make_result((350.0,), duration_s=600.0)]
        )

    def test_format_scores_has_header_and_row(self):
        text = format_scores([self._score()])
        lines = text.splitlines()
        assert "scenario" in lines[0] and "FA/hh" in lines[0]
        assert "aging_onset" in lines[2]
        assert "SRAA" in lines[2]

    def test_rows_match_columns(self):
        rows = score_rows([self._score()])
        assert len(rows) == 1
        assert len(rows[0]) == len(SCORE_COLUMNS)

    def test_csv_round_trip(self, tmp_path):
        path = str(tmp_path / "scores.csv")
        none_latency = score_policy(
            get_scenario("aging_onset", 600.0),
            "CLTA",
            [make_result((), duration_s=600.0)],
        )
        n = write_scores_csv(path, [self._score(), none_latency])
        assert n == 2
        with open(path, newline="") as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == list(SCORE_COLUMNS)
        assert len(rows) == 3
        latency_col = SCORE_COLUMNS.index("mean_detection_latency_s")
        assert rows[1][latency_col] == "50.0"
        assert rows[2][latency_col] == ""  # None -> empty cell
