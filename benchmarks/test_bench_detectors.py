"""Detector head-to-head: the adaptive family against the paper trio.

One pin: the ``detectors`` registry experiment regenerates the
six-policy robustness tables over the whole scenario zoo and the shape
assertions check the headline claims the docs make.  The adaptive
threshold must stay clean on *both* workload scenarios -- the step the
paper trio also tolerates and the saturation ramp only it survives --
while the static baselines pay double-digit false-alarm rates on the
ramp; the trend projection buys the zoo's best clean-aging latency at
the cost of chasing every drift; and nobody misses the genuine onset.
"""

from conftest import assertions_enabled, regenerate

from repro.faults.zoo import scenario_names

#: Zoo presentation order gives each scenario its x index in the tables.
X = {name: float(i) for i, name in enumerate(scenario_names())}


def test_detectors_head_to_head(benchmark):
    result = regenerate(benchmark, "detectors")
    if not assertions_enabled():
        return
    latency, misses, alarms, cost = result.tables
    adaptive = alarms.get_series("ADAPTIVE")
    sraa = alarms.get_series("SRAA")
    # The Moura et al. claim, as committed in ci/detectors_robustness.csv:
    # the adaptive threshold recalibrates along the saturation ramp the
    # static baselines read as aging.
    assert adaptive.value_at(X["workload_ramp"]) == 0.0
    assert sraa.value_at(X["workload_ramp"]) > 10.0
    assert adaptive.value_at(X["workload_shift"]) <= sraa.value_at(
        X["workload_shift"]
    )
    # The projection detector fires on the forecast: earliest on the
    # clean onset, but it chases the ramp into false alarms.
    trend_latency = latency.get_series("TREND")
    assert trend_latency.value_at(X["aging_onset"]) < latency.get_series(
        "SRAA"
    ).value_at(X["aging_onset"])
    assert alarms.get_series("TREND").value_at(X["workload_ramp"]) > 10.0
    # Nobody misses the genuine x3 slowdown.
    for label in ("SRAA", "SARAA", "CLTA", "ADAPTIVE", "ENTROPY", "TREND"):
        assert misses.get_series(label).value_at(X["aging_onset"]) == 0.0
    # Recovery cost stays a fraction: the entropy detector rejuvenates
    # least and loses the fewest transactions on the clean onset.
    entropy_cost = cost.get_series("ENTROPY").value_at(X["aging_onset"])
    assert 0.0 < entropy_cost < cost.get_series("SRAA").value_at(
        X["aging_onset"]
    )
