"""CHAOS-style entropy detection (Chen et al.).

Aging reshapes the *distribution* of response times before any single
threshold is crossed for good: mass drains out of the healthy buckets
and piles up in the slow tail.  Windowed Shannon entropy over a
bucketed response-time histogram summarises that reshaping in one
number -- a healthy operating point holds the entropy near a
calibrated reference, while aging concentrates the distribution in the
overflow bucket and collapses it (or, for heavy-tail contamination,
smears it upward).  The detector triggers on a sustained shift of the
windowed entropy away from its reference, in either direction.

The reference itself tracks slowly (an EWMA over healthy windows), so
a legitimate operating-point change eventually re-centres the detector
-- but unlike :mod:`repro.detect.adaptive` there is no explicit
shift/aging discriminator: the entropy family's false alarms on the
zoo's workload scenarios are part of the robustness story the
``detectors`` experiment publishes.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Deque, List, Optional

from repro.core.base import RejuvenationPolicy
from repro.core.sla import ServiceLevelObjective


def shannon_entropy(counts: List[int], total: int) -> float:
    """Entropy (nats) of a histogram given its total count."""
    if total <= 0:
        return 0.0
    entropy = 0.0
    for count in counts:
        if count:
            p = count / total
            entropy -= p * math.log(p)
    return entropy


class EntropyPolicy(RejuvenationPolicy):
    """Windowed-entropy shift detector over bucketed response times.

    Parameters
    ----------
    slo:
        Supplies the default bucket width (``slo.std / 2``); the
        histogram spans ``bins`` regular buckets plus one overflow.
    window:
        Sliding window length, in raw observations.
    bins:
        Number of regular buckets before the overflow bucket.
    bin_width:
        Bucket width in seconds (default ``slo.std / 2``).
    drift:
        Trigger band: an absolute entropy deviation ``|H - ref|`` at or
        above this (nats) counts towards the alarm streak.
    patience:
        Consecutive deviating observations required to trigger.
    warmup:
        Observations before the reference entropy is frozen in
        (must be >= ``window``; nothing triggers before that).
    adapt:
        EWMA weight by which the reference follows the windowed
        entropy while the detector is healthy (0 disables).
    """

    name = "entropy"

    def __init__(
        self,
        slo: ServiceLevelObjective,
        window: int = 128,
        bins: int = 12,
        bin_width: Optional[float] = None,
        drift: float = 0.5,
        patience: int = 16,
        warmup: int = 256,
        adapt: float = 0.002,
    ) -> None:
        if window < 8:
            raise ValueError("entropy window must be >= 8")
        if bins < 2:
            raise ValueError("need at least 2 buckets")
        if drift <= 0:
            raise ValueError("drift must be positive")
        if patience < 1:
            raise ValueError("patience must be >= 1")
        if warmup < window:
            raise ValueError("warmup must be >= window")
        if not 0.0 <= adapt < 1.0:
            raise ValueError("adapt must lie in [0, 1)")
        self.slo = slo
        self.window = int(window)
        self.bins = int(bins)
        self.bin_width = (
            slo.std / 2.0 if bin_width is None else float(bin_width)
        )
        if self.bin_width <= 0:
            raise ValueError("bin_width must be positive")
        self.drift = float(drift)
        self.patience = int(patience)
        self.warmup = int(warmup)
        self.adapt = float(adapt)
        self._indices: Deque[int] = deque()
        self._counts: List[int] = [0] * (self.bins + 1)
        self.observations = 0
        self.reference: Optional[float] = None
        self.streak = 0

    # ------------------------------------------------------------------
    def _bucket(self, value: float) -> int:
        if value < 0:
            return 0
        return min(int(value / self.bin_width), self.bins)

    @property
    def entropy(self) -> float:
        """Entropy (nats) of the current window's histogram."""
        return shannon_entropy(self._counts, len(self._indices))

    def observe(self, value: float) -> bool:
        index = self._bucket(value)
        self._indices.append(index)
        self._counts[index] += 1
        if len(self._indices) > self.window:
            evicted = self._indices.popleft()
            self._counts[evicted] -= 1
        self.observations += 1
        if len(self._indices) < self.window:
            return False
        entropy = self.entropy
        if self.observations < self.warmup:
            return False
        if self.reference is None:
            # Calibration complete: freeze the healthy reference.
            self.reference = entropy
            return False
        deviation = entropy - self.reference
        if abs(deviation) < self.drift:
            self.streak = 0
            if self.adapt:
                self.reference += self.adapt * deviation
            return False
        self.streak += 1
        if self.streak < self.patience:
            return False
        cause = {
            "kind": "entropy-shift",
            "entropy": entropy,
            "reference": self.reference,
            "deviation": deviation,
            "drift": self.drift,
            "window": self.window,
            "bins": self.bins,
            "streak": self.streak,
        }
        self._clear_window()
        if self._listener is not None:
            self._listener.on_trigger_cause(self, cause)
        return True

    def _clear_window(self) -> None:
        self._indices.clear()
        self._counts = [0] * (self.bins + 1)
        self.streak = 0

    def reset(self) -> None:
        """Clear the window and streak; the calibrated reference (and
        the warmed-up state) survive a rejuvenation."""
        self._clear_window()
        if self._listener is not None:
            self._listener.on_reset(self)

    def describe(self) -> str:
        return (
            f"Entropy(W={self.window}, bins={self.bins}+1, "
            f"drift={self.drift:g}, patience={self.patience})"
        )
