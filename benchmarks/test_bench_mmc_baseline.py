"""E12 -- Section 4.1 analytical baseline: eq. 2-3 across loads."""

import pytest

from conftest import regenerate


def test_mmc_baseline(benchmark):
    result = regenerate(benchmark, "mmc_baseline")
    table = result.tables[0]
    mean = table.get_series("E[RT] (eq. 2)")
    std = table.get_series("sd[RT] (sqrt eq. 3)")
    # Paper: below 1 transaction/second (load < 5 CPUs) both stay at 5.
    for load in (0.5, 1, 2, 3, 4):
        assert mean.value_at(load) == pytest.approx(5.0, abs=0.01)
        assert std.value_at(load) == pytest.approx(5.0, abs=0.01)
    # ... and diverge beyond it.
    assert mean.value_at(15) > 5.9
    assert std.value_at(15) > std.value_at(0.5) * 1.05
    # At the maximum load of interest the values the SLO assumes hold.
    assert mean.value_at(8) == pytest.approx(5.0056, abs=0.001)
    assert std.value_at(8) == pytest.approx(5.0007, abs=0.001)
