"""The ``repro serve`` dashboard: one self-contained HTML page.

Reuses the ``repro report`` renderer's stylesheet (same palette, same
light/dark behaviour) and the ``repro top`` vocabulary, but renders
*live*: a small inline script subscribes to ``/api/events`` with
``EventSource``, polls ``/api/runs`` and ``/api/campaigns``, and posts
campaign launches back to the API.  No external scripts, stylesheets,
fonts or network fetches -- the page passes the same self-containment
check CI applies to ``repro report`` output.
"""

from __future__ import annotations

import html
from typing import Any, Dict

from repro.obs.live.report import _CSS as REPORT_CSS

_DASHBOARD_CSS = """
.grid { display: grid; grid-template-columns: repeat(auto-fit,
  minmax(240px, 1fr)); gap: 1rem; }
.panel { background: var(--panel); border-radius: 6px; padding: 12px; }
.panel h2 { margin-top: 0; }
.stat { font-size: 1.3rem; font-variant-numeric: tabular-nums; }
.muted { color: var(--ink-2); }
#events { max-height: 280px; overflow-y: auto; font-family: ui-monospace,
  monospace; font-size: 12px; }
#events div { padding: 1px 0; border-bottom: 1px dotted var(--grid); }
button, input, select { font: inherit; background: var(--surface);
  color: var(--ink); border: 1px solid var(--grid); border-radius: 4px;
  padding: 4px 8px; }
button { cursor: pointer; }
.badge { display: inline-block; padding: 0 6px; border-radius: 8px;
  font-size: 11px; border: 1px solid var(--grid); }
"""

_SCRIPT = """
function el(id) { return document.getElementById(id); }
function fmt(x, d) { return (x === null || x === undefined)
  ? "-" : Number(x).toFixed(d === undefined ? 3 : d); }

async function refreshRuns() {
  const response = await fetch("/api/runs?last=15");
  const payload = await response.json();
  const rows = payload.runs.reverse().map(run =>
    `<tr><td>${run.id}</td><td>${run.kind}</td>` +
    `<td>${run.label}</td><td>${run.created_utc}</td>` +
    `<td>${run.baseline ? '<span class="badge">' + run.baseline +
      '</span>' : ''}</td></tr>`).join("");
  el("runs").innerHTML =
    `<tr><th>id</th><th>kind</th><th>label</th><th>created</th>` +
    `<th>baseline</th></tr>` + rows;
  el("run-count").textContent = payload.total;
}

async function refreshJobs() {
  const response = await fetch("/api/campaigns");
  const payload = await response.json();
  el("jobs").innerHTML = payload.jobs.slice().reverse().map(job =>
    `<div>${job.id} <span class="badge">${job.status}</span> ` +
    `${job.entry_id || ""} ${job.error || ""}</div>`).join("")
    || '<div class="muted">no campaigns launched</div>';
}

async function refreshAlerts() {
  const response = await fetch("/api/alerts");
  const payload = await response.json();
  el("alert-open").textContent = payload.open;
  el("incidents").innerHTML = payload.incidents.slice().reverse().map(i =>
    `<div><span class="badge">${i.status}</span> ${i.id} ` +
    `${i.rule} target=${i.target}` +
    `${i.close_reason ? " (" + i.close_reason + ")" : ""}<br>` +
    `<span class="muted">${i.summary || ""}</span></div>`).join("")
    || '<div class="muted">no incidents</div>';
}

async function refreshSchedules() {
  const response = await fetch("/api/schedules");
  const payload = await response.json();
  el("schedules").innerHTML = payload.schedules.map(s =>
    `<div>${s.name} <span class="badge">${s.enabled ? "on" : "off"}` +
    `</span> ${s.cron || (s.every_s + "s")} &middot; runs ${s.runs}` +
    ` &middot; skipped ${s.skipped}</div>`).join("")
    || '<div class="muted">no schedules</div>';
}

function applySnapshot(s) {
  el("live-ts").textContent = fmt(s.ts, 1);
  el("live-rate").textContent = fmt(s.rate_per_s, 2);
  el("live-completed").textContent = s.completed;
  el("live-lost").textContent = s.lost;
  el("live-rejuv").textContent = s.rejuvenations;
  el("live-faults").textContent = s.faults;
  el("live-dumps").textContent = s.flight_dumps ?? 0;
  el("live-slo").textContent = (s.slo_s ? s.slo_breaches + " / " +
    fmt(s.slo_s, 0) + "s" : "off");
  const q = s.rt_quantiles || {};
  el("live-quantiles").textContent = Object.keys(q).sort().map(
    name => name + "=" + fmt(q[name]) + "s").join("  ") || "(none yet)";
}

function logEvent(kind, data) {
  const line = document.createElement("div");
  line.textContent = "[" + fmt(data.ts, 1) + "s] " + kind + " " +
    JSON.stringify(data);
  const log = el("events");
  log.prepend(line);
  while (log.childElementCount > 200) log.lastChild.remove();
}

function subscribe() {
  const source = new EventSource("/api/events");
  ["fault.injected", "fault.cleared", "system.rejuvenation",
   "policy.trigger", "flight.dump", "job.started", "job.finished"]
    .forEach(kind => source.addEventListener(kind, event => {
      logEvent(kind, JSON.parse(event.data));
      if (kind.startsWith("job.")) { refreshJobs(); refreshRuns(); }
    }));
  source.addEventListener("live.snapshot", event =>
    applySnapshot(JSON.parse(event.data)));
  source.addEventListener("alert", event => {
    const data = JSON.parse(event.data);
    logEvent("alert." + data.action, data.incident || {});
    refreshAlerts();
  });
  source.onerror = () => el("sse-state").textContent = "reconnecting";
  source.onopen = () => el("sse-state").textContent = "connected";
}

async function launchCampaign(event) {
  event.preventDefault();
  const body = {
    scenarios: el("form-scenarios").value || "all",
    policies: el("form-policies").value || "SRAA,SARAA,CLTA",
    replications: Number(el("form-replications").value) || 2,
    seed: Number(el("form-seed").value) || 0,
    horizon: Number(el("form-horizon").value) || 900,
  };
  const response = await fetch("/api/campaigns", {
    method: "POST",
    headers: {"Content-Type": "application/json"},
    body: JSON.stringify(body),
  });
  const payload = await response.json();
  el("launch-result").textContent = response.ok
    ? "launched " + payload.job.id
    : "error: " + payload.error;
  refreshJobs();
}

refreshRuns(); refreshJobs(); refreshAlerts(); refreshSchedules();
subscribe();
document.getElementById("launch").addEventListener(
  "submit", launchCampaign);
setInterval(refreshJobs, 5000);
setInterval(refreshAlerts, 5000);
setInterval(refreshSchedules, 10000);
"""


def render_dashboard(context: Dict[str, Any]) -> str:
    """The dashboard page for one server (context from the app)."""
    title = html.escape(str(context.get("title", "repro serve")))
    version = html.escape(str(context.get("version", "")))
    ledger_dir = html.escape(str(context.get("ledger_dir", "")))
    return f"""<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>{title}</title>
<style>{REPORT_CSS}{_DASHBOARD_CSS}</style>
</head>
<body>
<h1>{title}</h1>
<p class="note">{version} &middot; ledger <code>{ledger_dir}</code>
&middot; SSE <span id="sse-state">connecting</span></p>

<div class="grid">
<div class="panel"><h2>Live</h2>
<p>t=<span class="stat" id="live-ts">-</span>s &middot;
<span class="stat" id="live-rate">-</span>/s</p>
<p>completed <span id="live-completed">0</span> &middot;
lost <span id="live-lost">0</span> &middot;
rejuvenations <span id="live-rejuv">0</span> &middot;
faults <span id="live-faults">0</span></p>
<p>flight dumps <span id="live-dumps">0</span> &middot;
SLO breaches <span id="live-slo">off</span></p>
<p class="muted">rt <span id="live-quantiles">(none yet)</span></p>
</div>

<div class="panel"><h2>Launch campaign</h2>
<form id="launch">
<p><label>scenarios <input id="form-scenarios"
  placeholder="all"></label></p>
<p><label>policies <input id="form-policies"
  placeholder="SRAA,SARAA,CLTA"></label></p>
<p><label>replications <input id="form-replications" type="number"
  value="2" min="1" size="4"></label>
<label>seed <input id="form-seed" type="number" value="0"
  size="6"></label>
<label>horizon <input id="form-horizon" type="number" value="900"
  size="6"></label></p>
<p><button type="submit">launch</button>
<span class="muted" id="launch-result"></span></p>
</form>
<div id="jobs"></div>
</div>
</div>

<div class="grid">
<div class="panel"><h2>Incidents (<span id="alert-open">0</span> open)</h2>
<div id="incidents"></div>
</div>
<div class="panel"><h2>Schedules</h2>
<div id="schedules"></div>
</div>
</div>

<h2>Event stream (Server-Sent Events)</h2>
<div class="panel" id="events"></div>

<h2>Run ledger (<span id="run-count">0</span> recorded)</h2>
<table id="runs"></table>

<script>{_SCRIPT}</script>
</body>
</html>
"""
