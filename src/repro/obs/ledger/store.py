"""The run ledger: an append-only JSONL store under ``.repro/ledger/``.

Layout (all files human-readable, all writes append-or-replace):

``runs.jsonl``
    One JSON object per recorded run: id, creation time, the full
    :class:`~repro.obs.ledger.manifest.RunManifest` dict, the
    deterministic outcome block, and the timing block.
``baselines.json``
    Pinned baselines: ``label -> {id, manifest_hash, pinned_utc}``.
``check_state.json``
    The SRAA-style persistence counters of ``repro runs check``
    (consecutive exceedances per baseline; see
    :mod:`repro.obs.ledger.regress`).

Selection: the directory defaults to ``.repro/ledger`` under the
current working directory; ``REPRO_LEDGER_DIR`` overrides it and
``REPRO_LEDGER=0`` disables recording entirely.  Recording is
best-effort by design -- :func:`record_run` never lets a ledger failure
kill the simulation whose result it is trying to persist.
"""

from __future__ import annotations

import json
import os
import sys
from datetime import datetime, timezone
from typing import Any, Dict, List, Optional

from repro.obs.ledger.manifest import RunManifest

#: Schema version stamped into every ledger entry.
ENTRY_SCHEMA_VERSION = 1

#: Environment variable overriding the ledger directory.
LEDGER_DIR_ENV = "REPRO_LEDGER_DIR"
#: Environment variable disabling recording (``0``/``off``/``false``).
LEDGER_ENV = "REPRO_LEDGER"
#: Default directory, relative to the current working directory.
DEFAULT_LEDGER_DIR = os.path.join(".repro", "ledger")


def ledger_enabled() -> bool:
    """Whether CLI invocations should record entries (env-controlled)."""
    raw = os.environ.get(LEDGER_ENV, "1").strip().lower()
    return raw not in {"0", "off", "false", "no"}


def _utc_now() -> str:
    return datetime.now(timezone.utc).isoformat(timespec="seconds")


class Ledger:
    """Append-only access to one ledger directory."""

    def __init__(self, directory: Optional[str] = None) -> None:
        if directory is None:
            directory = (
                os.environ.get(LEDGER_DIR_ENV, "").strip()
                or DEFAULT_LEDGER_DIR
            )
        self.directory = directory

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------
    @property
    def runs_path(self) -> str:
        return os.path.join(self.directory, "runs.jsonl")

    @property
    def baselines_path(self) -> str:
        return os.path.join(self.directory, "baselines.json")

    @property
    def check_state_path(self) -> str:
        return os.path.join(self.directory, "check_state.json")

    # ------------------------------------------------------------------
    # Entries
    # ------------------------------------------------------------------
    def entries(self) -> List[Dict[str, Any]]:
        """Every recorded entry, oldest first."""
        if not os.path.exists(self.runs_path):
            return []
        out: List[Dict[str, Any]] = []
        with open(self.runs_path, encoding="utf-8") as handle:
            for lineno, line in enumerate(handle, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    out.append(json.loads(line))
                except json.JSONDecodeError as error:
                    raise ValueError(
                        f"{self.runs_path}:{lineno}: corrupt ledger line "
                        f"({error})"
                    ) from None
        return out

    def append(
        self,
        manifest: RunManifest,
        outcomes: Dict[str, Any],
        timing: Optional[Dict[str, Any]] = None,
        artifacts: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        """Record one run; returns the full entry (with its new id).

        ``artifacts`` maps artifact names to filesystem paths the run
        left behind (e.g. ``{"trace": "/abs/path/trace.rcol"}``); the
        block sits outside the manifest, so it never perturbs the
        manifest hash.
        """
        os.makedirs(self.directory, exist_ok=True)
        manifest_dict = manifest.to_dict()
        seq = len(self.entries()) + 1
        entry = {
            "schema_version": ENTRY_SCHEMA_VERSION,
            "id": (
                f"{manifest.kind[:3]}-{seq:04d}-"
                f"{manifest_dict['manifest_hash'][:8]}"
            ),
            "created_utc": _utc_now(),
            "kind": manifest.kind,
            "label": manifest.label,
            "manifest": manifest_dict,
            "outcomes": outcomes,
            "timing": timing or {},
        }
        if artifacts:
            entry["artifacts"] = dict(artifacts)
        with open(self.runs_path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(entry, separators=(",", ":")))
            handle.write("\n")
        return entry

    def get(self, ref: str) -> Dict[str, Any]:
        """Resolve ``ref``: an id, a unique id prefix, or ``latest``."""
        entries = self.entries()
        if not entries:
            raise LookupError(
                f"ledger {self.directory} is empty -- run something with "
                "the ledger enabled first"
            )
        if ref in ("latest", "last"):
            return entries[-1]
        matches = [e for e in entries if e["id"] == ref]
        if not matches:
            matches = [e for e in entries if e["id"].startswith(ref)]
        if not matches:
            raise LookupError(f"no ledger entry matches {ref!r}")
        if len(matches) > 1:
            ids = ", ".join(e["id"] for e in matches[:5])
            raise LookupError(f"ambiguous ref {ref!r}: matches {ids}")
        return matches[0]

    def latest(
        self, manifest_hash: Optional[str] = None
    ) -> Optional[Dict[str, Any]]:
        """The newest entry, optionally restricted to one manifest hash."""
        for entry in reversed(self.entries()):
            if (
                manifest_hash is None
                or entry["manifest"]["manifest_hash"] == manifest_hash
            ):
                return entry
        return None

    # ------------------------------------------------------------------
    # Baselines
    # ------------------------------------------------------------------
    def baselines(self) -> Dict[str, Dict[str, Any]]:
        if not os.path.exists(self.baselines_path):
            return {}
        with open(self.baselines_path, encoding="utf-8") as handle:
            return json.load(handle)

    def set_baseline(self, label: str, entry: Dict[str, Any]) -> None:
        """Pin ``entry`` as the baseline under ``label``."""
        os.makedirs(self.directory, exist_ok=True)
        pins = self.baselines()
        pins[label] = {
            "id": entry["id"],
            "manifest_hash": entry["manifest"]["manifest_hash"],
            "pinned_utc": _utc_now(),
        }
        with open(self.baselines_path, "w", encoding="utf-8") as handle:
            json.dump(pins, handle, indent=2, sort_keys=True)
            handle.write("\n")

    def baseline_entry(self, label: str) -> Dict[str, Any]:
        """The full ledger entry pinned under ``label``."""
        pins = self.baselines()
        if label not in pins:
            known = ", ".join(sorted(pins)) or "(none pinned)"
            raise LookupError(
                f"no baseline {label!r}; pinned baselines: {known} -- "
                "pin one with 'repro runs baseline <id>'"
            )
        return self.get(pins[label]["id"])

    # ------------------------------------------------------------------
    # Check persistence state
    # ------------------------------------------------------------------
    def check_state(self) -> Dict[str, Any]:
        if not os.path.exists(self.check_state_path):
            return {}
        with open(self.check_state_path, encoding="utf-8") as handle:
            return json.load(handle)

    def save_check_state(self, state: Dict[str, Any]) -> None:
        os.makedirs(self.directory, exist_ok=True)
        with open(self.check_state_path, "w", encoding="utf-8") as handle:
            json.dump(state, handle, indent=2, sort_keys=True)
            handle.write("\n")


def record_run(
    manifest: RunManifest,
    outcomes: Dict[str, Any],
    timing: Optional[Dict[str, Any]] = None,
    directory: Optional[str] = None,
    artifacts: Optional[Dict[str, Any]] = None,
) -> Optional[Dict[str, Any]]:
    """Best-effort CLI recording: never raises, honours ``REPRO_LEDGER``.

    Returns the appended entry, or ``None`` when recording is disabled
    or failed (the failure is reported on stderr, not raised -- losing
    a ledger line must not lose the run that produced it).
    """
    if not ledger_enabled():
        return None
    try:
        return Ledger(directory).append(
            manifest, outcomes, timing, artifacts=artifacts
        )
    except Exception as error:
        print(f"ledger: recording failed: {error}", file=sys.stderr)
        return None
