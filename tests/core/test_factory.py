"""String-keyed policy construction."""

import pytest

from repro.core.baselines import NeverRejuvenate, PeriodicRejuvenation
from repro.core.clta import CLTA
from repro.core.factory import available_policies, make_policy
from repro.core.saraa import SARAA
from repro.core.sla import PAPER_SLO
from repro.core.sraa import SRAA, StaticRejuvenation
from repro.core.threshold import DeterministicThreshold, RiskBasedThreshold


class TestFactory:
    def test_available_policies_sorted_and_complete(self):
        names = available_policies()
        assert names == tuple(sorted(names))
        assert {"sraa", "saraa", "clta", "static", "never"} <= set(names)

    def test_every_listed_policy_constructs(self):
        for name in available_policies():
            policy = make_policy(name, PAPER_SLO)
            assert policy.observe(5.0) in (True, False)

    def test_sraa_parameters(self):
        policy = make_policy("sraa", PAPER_SLO, n=2, K=5, D=3)
        assert isinstance(policy, SRAA)
        assert policy.sample_size == 2
        assert policy.chain.n_buckets == 5
        assert policy.chain.depth == 3

    def test_saraa_parameters(self):
        policy = make_policy("saraa", PAPER_SLO, n=10, K=3, D=1)
        assert isinstance(policy, SARAA)
        assert policy.original_sample_size == 10

    def test_clta_parameters(self):
        policy = make_policy("clta", PAPER_SLO, n=15, z=2.33)
        assert isinstance(policy, CLTA)
        assert policy.sample_size == 15
        assert policy.z == 2.33

    def test_static(self):
        policy = make_policy("static", PAPER_SLO, K=3, D=5)
        assert isinstance(policy, StaticRejuvenation)
        assert policy.sample_size == 1

    def test_baselines(self):
        assert isinstance(make_policy("never", PAPER_SLO), NeverRejuvenate)
        periodic = make_policy("periodic", PAPER_SLO, period=50)
        assert isinstance(periodic, PeriodicRejuvenation)
        assert periodic.period == 50

    def test_thresholds(self):
        det = make_policy("threshold", PAPER_SLO, limit=12.0)
        assert isinstance(det, DeterministicThreshold)
        assert det.threshold == 12.0
        risk = make_policy("risk-threshold", PAPER_SLO, soft=8.0, hard=30.0)
        assert isinstance(risk, RiskBasedThreshold)
        assert (risk.soft_limit, risk.hard_limit) == (8.0, 30.0)

    def test_threshold_defaults_derive_from_slo(self):
        det = make_policy("threshold", PAPER_SLO)
        assert det.threshold == PAPER_SLO.shift_threshold(3)

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown policy"):
            make_policy("quantum", PAPER_SLO)
