"""The policy zoo: every decision rule on the same system.

Not a paper figure -- an integration study putting the paper's three
algorithms side by side with every baseline the related work suggests
(static, deterministic/risk-based thresholds, periodic, trend,
never) plus a composite rule, at a low and a high load.  This is the
table a practitioner reads first: which detector family pays what,
where.
"""

from __future__ import annotations

from typing import Callable, List, Tuple

from repro.core.baselines import NeverRejuvenate, PeriodicRejuvenation
from repro.core.clta import CLTA
from repro.core.composite import AllOf
from repro.core.control_charts import CUSUMPolicy, EWMAPolicy
from repro.core.quantile import QuantilePolicy
from repro.core.saraa import SARAA
from repro.core.sla import PAPER_SLO
from repro.core.sraa import SRAA, StaticRejuvenation
from repro.core.threshold import DeterministicThreshold
from repro.core.trend import TrendPolicy
from repro.ecommerce.config import PAPER_CONFIG
from repro.ecommerce.runner import run_replications
from repro.ecommerce.workload import PoissonArrivals
from repro.experiments.scale import Scale
from repro.experiments.tables import ExperimentResult, Series, Table

ZOO_LOADS = (0.5, 9.0)


def zoo_members() -> List[Tuple[str, Callable[[], object]]]:
    """(label, fresh-policy factory) for every contender."""
    return [
        ("never", NeverRejuvenate),
        ("periodic(300)", lambda: PeriodicRejuvenation(period=300)),
        ("threshold(>20s)", lambda: DeterministicThreshold(20.0)),
        ("static(K=5,D=3)", lambda: StaticRejuvenation(PAPER_SLO, 5, 3)),
        ("SRAA(2,5,3)", lambda: SRAA(PAPER_SLO, 2, 5, 3)),
        ("SARAA(2,5,3)", lambda: SARAA(PAPER_SLO, 2, 5, 3)),
        ("CLTA(30,z=1.96)", lambda: CLTA(PAPER_SLO, 30, 1.96)),
        ("trend(n=5,w=12)", lambda: TrendPolicy(sample_size=5, window=12)),
        ("CUSUM(k=.5,h=5)", lambda: CUSUMPolicy(PAPER_SLO)),
        ("EWMA(lam=.2,L=3)", lambda: EWMAPolicy(PAPER_SLO)),
        (
            "p95 > 30s (w=100)",
            lambda: QuantilePolicy(
                0.95, limit=30.0, window=100, patience=2
            ),
        ),
        (
            "threshold AND sraa",
            lambda: AllOf(
                [
                    DeterministicThreshold(20.0),
                    SRAA(PAPER_SLO, 2, 2, 2),
                ],
                memory=50,
            ),
        ),
    ]


def run_zoo(scale: Scale, seed: int = 0) -> ExperimentResult:
    """Run every policy at a low and a high load."""
    rt_table = Table(
        title="Policy zoo: average response time",
        x_label="load_cpus",
        y_label="avg_response_time_s",
    )
    loss_table = Table(
        title="Policy zoo: fraction of transactions lost",
        x_label="load_cpus",
        y_label="loss_fraction",
    )
    for label, factory in zoo_members():
        rt_series = Series(label=label)
        loss_series = Series(label=label)
        for load in ZOO_LOADS:
            rate = PAPER_CONFIG.arrival_rate_for_load(load)
            replicated = run_replications(
                PAPER_CONFIG,
                arrival_factory=lambda rate=rate: PoissonArrivals(rate),
                policy_factory=factory,
                n_transactions=scale.transactions,
                replications=scale.replications,
                seed=seed,
            )
            rt_series.add(load, replicated.avg_response_time)
            loss_series.add(load, replicated.loss_fraction)
        rt_table.add_series(rt_series)
        loss_table.add_series(loss_series)
    return ExperimentResult(
        experiment_id="zoo",
        description=(
            "Every policy in the library on the Section-3 system "
            "(integration study, beyond the paper)"
        ),
        tables=[rt_table, loss_table],
        paper_expectations=[
            "expected shape: 'never' melts down at 9 CPUs; the naive "
            "threshold is burst-fragile (loss at low load); the paper's "
            "three algorithms control the RT for a few percent loss",
        ],
    )
