"""Arrival processes: rates, statefulness, trace replay."""

import numpy as np
import pytest

from repro.ecommerce.workload import (
    MMPPArrivals,
    PeriodicArrivals,
    PoissonArrivals,
    ScaledArrivals,
    TraceArrivals,
)


def empirical_rate(process, rng, n=20_000) -> float:
    total = sum(process.interarrival(rng) for _ in range(n))
    return n / total


class TestPoisson:
    def test_mean_rate(self):
        assert PoissonArrivals(1.6).mean_rate() == 1.6

    def test_empirical_rate(self):
        rng = np.random.default_rng(0)
        assert empirical_rate(PoissonArrivals(1.6), rng) == pytest.approx(
            1.6, rel=0.03
        )

    def test_interarrivals_exponential(self):
        rng = np.random.default_rng(1)
        process = PoissonArrivals(2.0)
        gaps = np.array([process.interarrival(rng) for _ in range(20_000)])
        # Exponential: mean equals std.
        assert gaps.std() == pytest.approx(gaps.mean(), rel=0.05)

    def test_validation(self):
        with pytest.raises(ValueError):
            PoissonArrivals(0.0)


class TestMMPP:
    def test_mean_rate_formula(self):
        process = MMPPArrivals(
            base_rate=1.0, burst_rate=5.0, mean_quiet_s=30.0, mean_burst_s=10.0
        )
        assert process.mean_rate() == pytest.approx(
            (1.0 * 30 + 5.0 * 10) / 40
        )

    def test_empirical_rate_matches(self):
        process = MMPPArrivals(
            base_rate=1.0, burst_rate=5.0, mean_quiet_s=30.0, mean_burst_s=10.0
        )
        rng = np.random.default_rng(2)
        assert empirical_rate(process, rng, n=60_000) == pytest.approx(
            process.mean_rate(), rel=0.05
        )

    def test_burstier_than_poisson(self):
        # Index of dispersion of counts > 1 for an MMPP.
        process = MMPPArrivals(
            base_rate=0.5, burst_rate=10.0, mean_quiet_s=50.0, mean_burst_s=5.0
        )
        rng = np.random.default_rng(3)
        gaps = np.array([process.interarrival(rng) for _ in range(40_000)])
        cv2 = gaps.var() / gaps.mean() ** 2
        assert cv2 > 1.2  # Poisson would give 1.0

    def test_reset_restores_quiet_state(self):
        process = MMPPArrivals(1.0, 5.0, 10.0, 10.0)
        rng = np.random.default_rng(4)
        for _ in range(100):
            process.interarrival(rng)
        process.reset()
        assert not process._in_burst

    def test_validation(self):
        with pytest.raises(ValueError):
            MMPPArrivals(0.0, 1.0, 1.0, 1.0)
        with pytest.raises(ValueError):
            MMPPArrivals(1.0, 1.0, 0.0, 1.0)


class TestPeriodic:
    def test_mean_rate(self):
        process = PeriodicArrivals(2.0, amplitude=0.5, period_s=3600.0)
        assert process.mean_rate() == 2.0

    def test_empirical_rate_over_whole_cycles(self):
        process = PeriodicArrivals(2.0, amplitude=0.8, period_s=100.0)
        rng = np.random.default_rng(5)
        assert empirical_rate(process, rng, n=50_000) == pytest.approx(
            2.0, rel=0.05
        )

    def test_zero_amplitude_is_poisson(self):
        process = PeriodicArrivals(1.5, amplitude=0.0, period_s=100.0)
        rng = np.random.default_rng(6)
        gaps = np.array([process.interarrival(rng) for _ in range(20_000)])
        assert gaps.mean() == pytest.approx(1 / 1.5, rel=0.05)
        assert gaps.std() == pytest.approx(gaps.mean(), rel=0.05)

    def test_rate_modulation_visible(self):
        # More arrivals in the first half-cycle (sin > 0) than the second.
        process = PeriodicArrivals(2.0, amplitude=0.9, period_s=1000.0)
        rng = np.random.default_rng(7)
        clock, first_half, second_half = 0.0, 0, 0
        while clock < 50_000.0:
            clock += process.interarrival(rng)
            if (clock % 1000.0) < 500.0:
                first_half += 1
            else:
                second_half += 1
        assert first_half > 1.3 * second_half

    def test_reset(self):
        process = PeriodicArrivals(1.0, 0.5, 100.0)
        rng = np.random.default_rng(8)
        process.interarrival(rng)
        process.reset()
        assert process._clock == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            PeriodicArrivals(0.0, 0.5, 100.0)
        with pytest.raises(ValueError):
            PeriodicArrivals(1.0, 1.0, 100.0)
        with pytest.raises(ValueError):
            PeriodicArrivals(1.0, 0.5, 0.0)


class TestResetDeterminism:
    """reset() + a reseeded generator replays the exact stream.

    This is the property replications lean on: every run reseeds its
    RandomStreams and resets the arrival process, and the two together
    must reproduce the draw sequence bit for bit -- including for the
    stateful processes (MMPP phase, periodic clock).
    """

    PROCESSES = [
        lambda: PoissonArrivals(1.6),
        lambda: MMPPArrivals(1.0, 5.0, 30.0, 10.0),
        lambda: PeriodicArrivals(2.0, 0.8, 100.0),
        lambda: ScaledArrivals(MMPPArrivals(1.0, 5.0, 30.0, 10.0), 2.0),
    ]

    @pytest.mark.parametrize("make", PROCESSES)
    def test_reset_replays_stream(self, make):
        process = make()
        first = [
            process.interarrival(np.random.default_rng(42))
            for _ in range(1)
        ]
        # Burn a few hundred draws to move the internal state along.
        rng = np.random.default_rng(0)
        for _ in range(300):
            process.interarrival(rng)
        process.reset()
        again = [
            process.interarrival(np.random.default_rng(42))
            for _ in range(1)
        ]
        assert first == again

    @pytest.mark.parametrize("make", PROCESSES)
    def test_reset_replays_long_stream(self, make):
        process = make()
        rng = np.random.default_rng(7)
        first = [process.interarrival(rng) for _ in range(500)]
        process.reset()
        rng = np.random.default_rng(7)
        again = [process.interarrival(rng) for _ in range(500)]
        assert first == again


class TestScaled:
    def test_mean_rate_scales(self):
        inner = PoissonArrivals(1.5)
        assert ScaledArrivals(inner, 2.0).mean_rate() == pytest.approx(3.0)

    def test_empirical_rate_scales(self):
        process = ScaledArrivals(PoissonArrivals(1.0), 4.0)
        rng = np.random.default_rng(12)
        assert empirical_rate(process, rng) == pytest.approx(4.0, rel=0.03)

    def test_draws_are_inner_draws_divided(self):
        inner = TraceArrivals([2.0, 4.0])
        process = ScaledArrivals(inner, 2.0)
        rng = np.random.default_rng(13)
        assert process.interarrival(rng) == 1.0
        assert process.interarrival(rng) == 2.0

    def test_reset_delegates_to_inner(self):
        inner = TraceArrivals([2.0, 4.0])
        process = ScaledArrivals(inner, 2.0)
        rng = np.random.default_rng(14)
        process.interarrival(rng)
        process.reset()
        assert process.interarrival(rng) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            ScaledArrivals(PoissonArrivals(1.0), 0.0)


class TestTrace:
    def test_replays_in_order(self):
        process = TraceArrivals([1.0, 2.0, 3.0])
        rng = np.random.default_rng(9)
        assert [process.interarrival(rng) for _ in range(3)] == [
            1.0,
            2.0,
            3.0,
        ]

    def test_exhaustion_raises(self):
        process = TraceArrivals([1.0])
        rng = np.random.default_rng(10)
        process.interarrival(rng)
        with pytest.raises(IndexError):
            process.interarrival(rng)

    def test_reset_rewinds(self):
        process = TraceArrivals([1.0, 2.0])
        rng = np.random.default_rng(11)
        process.interarrival(rng)
        process.reset()
        assert process.interarrival(rng) == 1.0

    def test_mean_rate(self):
        assert TraceArrivals([1.0, 3.0]).mean_rate() == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            TraceArrivals([])
        with pytest.raises(ValueError):
            TraceArrivals([1.0, -0.5])
        with pytest.raises(ValueError):
            TraceArrivals([0.0, 0.0]).mean_rate()
