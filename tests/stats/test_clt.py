"""CLT convergence diagnostics (the quantified Fig. 5)."""

import math

import pytest

from repro.stats.clt import CLTDiagnostics


@pytest.fixture
def diagnostics(paper_model) -> CLTDiagnostics:
    return CLTDiagnostics(paper_model, grid_points=61, span_sigmas=5.0)


class TestReport:
    def test_distances_shrink_with_n(self, diagnostics):
        reports = diagnostics.convergence_table(sizes=(1, 5, 15))
        sup = [r.sup_density_distance for r in reports]
        kolmogorov = [r.kolmogorov_distance for r in reports]
        assert sup[0] > sup[1] > sup[2]
        assert kolmogorov[0] > kolmogorov[1] > kolmogorov[2]

    def test_skewness_decays_like_sqrt_n(self, diagnostics):
        r1 = diagnostics.report(1)
        r4 = diagnostics.report(4)
        assert r4.skewness == pytest.approx(r1.skewness / 2.0, rel=1e-9)

    def test_tail_matches_paper(self, diagnostics):
        assert diagnostics.report(15).tail_beyond_975 == pytest.approx(
            0.0369, abs=0.0005
        )
        assert diagnostics.report(30).tail_beyond_975 == pytest.approx(
            0.0337, abs=0.0005
        )

    def test_tail_inflation(self, diagnostics):
        report = diagnostics.report(30)
        assert report.tail_inflation == pytest.approx(
            report.tail_beyond_975 / 0.025
        )
        assert report.tail_inflation > 1.0

    def test_moments_recorded(self, diagnostics, paper_model):
        report = diagnostics.report(15)
        assert report.mean == pytest.approx(paper_model.response_time_mean())
        assert report.std == pytest.approx(
            paper_model.response_time_std() / math.sqrt(15)
        )

    def test_validation(self, paper_model):
        with pytest.raises(ValueError):
            CLTDiagnostics(paper_model, grid_points=5)
        with pytest.raises(ValueError):
            CLTDiagnostics(paper_model, span_sigmas=0.0)
