"""Trace sessions: collecting per-replication traces across a whole run.

Tracing has to survive the execution layer: replication jobs may run in
pool worker processes, where a tracer's in-memory buffer is useless to
the parent.  The contract is therefore:

1. The CLI (or any caller) installs a :class:`TraceSession` with
   :func:`use_tracing` around the work.
2. Job builders (:func:`repro.ecommerce.runner.replication_jobs`,
   :func:`repro.experiments.sweep.sweep_jobs`) consult
   :func:`current_session` and stamp the session's trace level onto
   each :class:`~repro.exec.jobs.ReplicationJob` -- a picklable string.
3. :func:`~repro.exec.jobs.execute_job` builds a worker-local
   :class:`~repro.obs.tracer.Tracer` and returns the events *inside*
   the :class:`~repro.ecommerce.metrics.RunResult`, which already
   crosses the process boundary.
4. Back in the parent, the harness calls :meth:`TraceSession.ingest`
   with the jobs and results **in submission order** -- the same order
   for every backend, so trace files and metrics snapshots are
   bit-identical between serial and process-pool runs.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.obs.events import RUN_META, TraceEvent
from repro.obs.exporters import (
    write_chrome_trace,
    write_jsonl,
    write_prometheus,
)
from repro.obs.metrics import MetricsRegistry, registry_for_runs
from repro.obs.tracer import validate_level


@dataclass(frozen=True)
class TracedRun:
    """One replication's bookkeeping plus its trace events."""

    index: int
    tag: Tuple[Any, ...]
    seed: Optional[int]
    summary: Dict[str, Any]
    events: Tuple[TraceEvent, ...]


def _run_summary(run: Any) -> Dict[str, Any]:
    """The ``run.meta`` payload for one RunResult."""
    return {
        "arrivals": run.arrivals,
        "completed": run.completed,
        "lost": run.lost,
        "avg_response_time": run.avg_response_time,
        "loss_fraction": run.loss_fraction,
        "gc_count": run.gc_count,
        "rejuvenations": run.rejuvenations,
        "sim_duration_s": run.sim_duration_s,
    }


class TraceSession:
    """Accumulates traced replications and writes the export formats.

    Parameters
    ----------
    level:
        Trace level stamped onto jobs built while this session is
        installed (``spans`` / ``decisions`` / ``all``).
    """

    def __init__(self, level: str = "all") -> None:
        self.level = validate_level(level)
        self.runs: List[TracedRun] = []
        #: Per-run DES profiles (submission order) for runs that carried
        #: one; only their deterministic event counts reach metrics.
        self.profiles: List[Any] = []

    # ------------------------------------------------------------------
    # Collection
    # ------------------------------------------------------------------
    def ingest(self, jobs: Sequence[Any], runs: Sequence[Any]) -> None:
        """Absorb one ``backend.map`` worth of results.

        ``jobs`` and ``runs`` are parallel sequences in submission
        order; each run's trace (if any) was carried back on
        ``RunResult.trace``.
        """
        if len(jobs) != len(runs):
            raise ValueError("jobs and runs must be parallel sequences")
        for job, run in zip(jobs, runs):
            events = getattr(run, "trace", None) or ()
            self.runs.append(
                TracedRun(
                    index=len(self.runs),
                    tag=tuple(getattr(job, "tag", ())),
                    seed=getattr(job, "seed", None),
                    summary=_run_summary(run),
                    events=tuple(events),
                )
            )
            profile = getattr(run, "profile", None)
            if profile is not None:
                self.profiles.append(profile)

    @property
    def n_events(self) -> int:
        """Trace events collected so far (excluding run.meta records)."""
        return sum(len(run.events) for run in self.runs)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def records(self) -> Iterator[Dict[str, Any]]:
        """Flat JSONL records: one ``run.meta`` per run, then its events."""
        for run in self.runs:
            yield {
                "run": run.index,
                "tag": list(run.tag),
                "seed": run.seed,
                "ts": 0.0,
                "type": RUN_META,
                "source": "session",
                "data": dict(run.summary),
            }
            for event in run.events:
                record = event.to_dict()
                record["run"] = run.index
                yield record

    def registry(self) -> MetricsRegistry:
        """Metrics over all ingested runs, merged in submission order."""
        registry = MetricsRegistry()
        for run in self.runs:
            per_run = MetricsRegistry()
            per_run.counter("repro_replications_total").inc()
            for key, value in run.summary.items():
                if key in ("avg_response_time", "loss_fraction"):
                    continue
                if key == "sim_duration_s":
                    per_run.gauge("repro_sim_duration_seconds").set(value)
                    continue
                per_run.counter(f"repro_{key}_total").inc(value)
            per_run.histogram(
                "repro_replication_avg_response_time_seconds"
            ).observe(run.summary["avg_response_time"])
            per_run.add_events(run.events)
            registry.merge(per_run)
        for profile in self.profiles:
            profile.to_registry(registry)
        return registry

    def write_jsonl(self, path: str) -> int:
        """Write the JSONL trace; return the line count."""
        return write_jsonl(path, self.records())

    def write_chrome(self, path: str) -> int:
        """Write the Chrome/Perfetto trace; return the record count."""
        return write_chrome_trace(path, self.records())

    def write_metrics(self, path: str) -> None:
        """Write the Prometheus textfile snapshot."""
        write_prometheus(path, self.registry())


# ---------------------------------------------------------------------------
# The installed-session stack (mirrors repro.exec.use_backend)
# ---------------------------------------------------------------------------
_SESSION_STACK: List[TraceSession] = []


@contextmanager
def use_tracing(session: TraceSession) -> Iterator[TraceSession]:
    """Install ``session`` as the active trace session in this block."""
    _SESSION_STACK.append(session)
    try:
        yield session
    finally:
        _SESSION_STACK.pop()


def current_session() -> Optional[TraceSession]:
    """The innermost installed session, or ``None`` (tracing off)."""
    return _SESSION_STACK[-1] if _SESSION_STACK else None


def active_trace_level() -> Optional[str]:
    """The level jobs should be stamped with, or ``None``."""
    session = current_session()
    return session.level if session is not None else None


__all__ = [
    "TraceSession",
    "TracedRun",
    "active_trace_level",
    "current_session",
    "registry_for_runs",
    "use_tracing",
]
