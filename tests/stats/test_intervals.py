"""Replication confidence intervals."""

import numpy as np
import pytest

from repro.stats.intervals import mean_confidence_interval


class TestInterval:
    def test_single_replication_degenerates(self):
        mean, low, high = mean_confidence_interval([3.5])
        assert mean == low == high == 3.5

    def test_contains_mean(self):
        mean, low, high = mean_confidence_interval([1.0, 2.0, 3.0])
        assert mean == pytest.approx(2.0)
        assert low < mean < high

    def test_known_t_value(self):
        # n=5, 95 %: t = 2.776; half-width = t * s / sqrt(5).
        data = [1.0, 2.0, 3.0, 4.0, 5.0]
        mean, low, high = mean_confidence_interval(data)
        s = np.std(data, ddof=1)
        expected_half = 2.7764451 * s / np.sqrt(5)
        assert high - mean == pytest.approx(expected_half, rel=1e-5)

    def test_wider_at_higher_confidence(self):
        data = [1.0, 2.0, 3.0, 4.0]
        _, low95, high95 = mean_confidence_interval(data, 0.95)
        _, low99, high99 = mean_confidence_interval(data, 0.99)
        assert high99 - low99 > high95 - low95

    def test_coverage_on_normal_samples(self):
        rng = np.random.default_rng(0)
        covered = 0
        trials = 400
        for _ in range(trials):
            sample = rng.normal(loc=10.0, scale=2.0, size=8)
            _, low, high = mean_confidence_interval(sample, 0.95)
            covered += low <= 10.0 <= high
        # Binomial(400, 0.95): 3 sigma is about +-1.3 %.
        assert covered / trials == pytest.approx(0.95, abs=0.04)

    def test_validation(self):
        with pytest.raises(ValueError):
            mean_confidence_interval([])
        with pytest.raises(ValueError):
            mean_confidence_interval([1.0], confidence=1.0)
