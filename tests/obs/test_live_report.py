"""The HTML report renderer: self-containment and content."""

import re

from repro.obs.live.report import render_report, write_report


def trace_records():
    """A tiny two-run trace with spans, decisions, faults and meta."""
    records = []
    for run in (0, 1):
        records.append(
            {
                "run": run,
                "tag": ["sraa", f"rep{run}"],
                "seed": run,
                "ts": 0.0,
                "type": "run.meta",
                "source": "session",
                "data": {
                    "arrivals": 120,
                    "completed": 100,
                    "lost": 5,
                    "avg_response_time": 6.5,
                    "gc_count": 2,
                    "rejuvenations": 1,
                    "sim_duration_s": 600.0,
                },
            }
        )
        for i in range(40):
            records.append(
                {
                    "run": run,
                    "ts": 15.0 * i,
                    "type": "request.complete",
                    "source": "system",
                    "data": {"response_time": 5.0 + 0.1 * i},
                }
            )
        records.append(
            {
                "run": run,
                "ts": 100.0,
                "type": "fault.injected",
                "source": "campaign",
                "data": {"kind": "surge"},
            }
        )
        records.append(
            {
                "run": run,
                "ts": 200.0,
                "type": "fault.cleared",
                "source": "campaign",
                "data": {"kind": "surge"},
            }
        )
        records.append(
            {
                "run": run,
                "ts": 250.0,
                "type": "policy.level",
                "source": "policy:sraa",
                "data": {"level": 2},
            }
        )
        records.append(
            {
                "run": run,
                "ts": 300.0,
                "type": "policy.trigger",
                "source": "policy:sraa",
                "data": {
                    "level": 2,
                    "batch_mean": 12.5,
                    "threshold": 10.0,
                    "sample_size": 40,
                },
            }
        )
        records.append(
            {
                "run": run,
                "ts": 301.0,
                "type": "system.rejuvenation",
                "source": "node0",
                "data": {"lost": 3},
            }
        )
    return records


class TestRenderReport:
    def test_document_structure(self):
        document = render_report(trace_records(), title="unit test")
        assert document.startswith("<!DOCTYPE html>")
        assert "<title>unit test</title>" in document
        assert "run 0" in document and "run 1" in document
        # The dashboard's four stories are all present.
        assert "response-time percentiles over time" in document
        assert "detector bucket level" in document
        assert "rejuvenation decisions" in document
        assert "fault: surge" in document

    def test_self_contained_no_external_fetches(self):
        # ISSUE acceptance: one file, no scripts, fonts or URLs.
        document = render_report(trace_records())
        assert "http://" not in document
        assert "https://" not in document
        assert "<script" not in document
        assert "<link" not in document
        assert "@import" not in document
        assert "url(" not in document

    def test_dark_mode_palette_embedded(self):
        document = render_report(trace_records())
        assert "prefers-color-scheme: dark" in document
        # Color follows the role: both modes restate every series var.
        for var in ("--p50", "--p95", "--level", "--fault", "--rejuv"):
            assert document.count(f"{var}:") == 2

    def test_charts_are_inline_svg(self):
        document = render_report(trace_records())
        assert document.count("<svg") >= 4  # rt + level chart per run
        assert "<polyline" in document
        # Hover tooltips ride on native <title> elements.
        assert "<title>" in document

    def test_data_table_backs_the_chart(self):
        # The contrast-warned orange series is also readable as text.
        document = render_report(trace_records())
        assert "data table" in document
        assert "<details>" in document

    def test_max_runs_folds_the_tail(self):
        document = render_report(trace_records(), max_runs=1)
        assert "run 0" in document
        assert "detail charts shown for the first 1 of 2 runs" in document

    def test_runs_without_spans_get_a_hint(self):
        records = [
            r for r in trace_records() if r["type"] != "request.complete"
        ]
        document = render_report(records)
        assert "--trace-level spans" in document

    def test_empty_trace_still_renders(self):
        document = render_report([])
        assert "<html" in document and "0 trace records" in document


class TestWriteReport:
    def test_round_trip_plain_and_gz(self, tmp_path):
        from repro.obs.exporters import write_jsonl

        records = trace_records()
        for name in ("trace.jsonl", "trace.jsonl.gz"):
            trace = str(tmp_path / name)
            write_jsonl(trace, records)
            out = str(tmp_path / (name + ".html"))
            count = write_report(trace, out)
            assert count == len(records)
            document = open(out, encoding="utf-8").read()
            assert "<!DOCTYPE html>" in document
            assert "run 0" in document

    def test_title_defaults_to_trace_path(self, tmp_path):
        from repro.obs.exporters import write_jsonl

        trace = str(tmp_path / "t.jsonl")
        write_jsonl(trace, trace_records())
        out = str(tmp_path / "t.html")
        write_report(trace, out)
        content = open(out, encoding="utf-8").read()
        assert re.search(r"<title>.*t\.jsonl</title>", content)


class TestDecisionCauses:
    def generic_trigger(self):
        return {
            "run": 0,
            "ts": 400.0,
            "type": "policy.trigger",
            "source": "policy:entropy",
            "data": {
                "kind": "entropy-shift",
                "entropy": 0.4,
                "reference": 1.8,
                "deviation": -1.4,
                "streak": 16,
            },
        }

    def test_classic_cause_keeps_numeric_columns(self):
        document = render_report(trace_records())
        assert "<td>12.500</td>" in document
        assert "<td>10.000</td>" in document

    def test_generic_cause_rendered_without_fake_numbers(self):
        records = trace_records() + [self.generic_trigger()]
        document = render_report(records)
        assert "entropy-shift" in document
        assert "deviation=-1.400" in document
        # The batch-mean/threshold cells must show a dash, not 0.000.
        row = document.split("policy:entropy")[1].split("</tr>")[0]
        assert row.count("&mdash;") == 4
        assert "0.000" not in row


class TestRobustnessSection:
    def campaign_records(self):
        records = []
        for run, policy in enumerate(["SRAA", "ADAPTIVE"]):
            records.append(
                {
                    "run": run,
                    "tag": ["faults", "aging_onset", policy, 0],
                    "seed": run,
                    "ts": 0.0,
                    "type": "run.meta",
                    "data": {
                        "arrivals": 100,
                        "completed": 90,
                        "lost": 10,
                        "avg_response_time": 6.0,
                        "loss_fraction": 0.1,
                        "gc_count": 0,
                        "rejuvenations": 1,
                        "sim_duration_s": 3600.0,
                    },
                }
            )
            records.append(
                {
                    "run": run,
                    "ts": 1000.0,
                    "type": "fault.injected",
                    "data": {"kind": "slowdown"},
                }
            )
            records.append(
                {
                    "run": run,
                    "ts": 1100.0 + run * 50.0,
                    "type": "system.rejuvenation",
                    "data": {},
                }
            )
        return records

    def test_campaign_trace_gets_a_robustness_table(self):
        document = render_report(self.campaign_records())
        assert "campaign robustness" in document
        assert "<td>aging_onset</td>" in document
        assert "<td>ADAPTIVE</td>" in document
        assert "FA/healthy h" in document

    def test_scores_match_the_campaign_scorer(self):
        from repro.faults.campaign import score_records

        records = self.campaign_records()
        scores = {s.policy: s for s in score_records(records)}
        assert scores["SRAA"].mean_detection_latency_s == 100.0
        assert scores["ADAPTIVE"].mean_detection_latency_s == 150.0
        assert scores["SRAA"].false_alarms == 0

    def test_non_campaign_trace_has_no_section(self):
        document = render_report(trace_records())
        assert "campaign robustness" not in document
