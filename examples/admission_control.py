"""Admission control vs rejuvenation: two ways to shed load.

Rejuvenation sheds load *reactively* (kill in-flight work when the
customer-affecting metric degrades); classical admission control sheds
it *proactively* (refuse arrivals beyond a capacity K).  The analytical
M/M/c/K model prices the second option exactly -- for a system without
aging.  This example:

1. tabulates the admission-control trade-off (blocking vs response
   time) across buffer sizes at the paper's maximum load;
2. simulates the aging system under SRAA and compares its measured
   (loss, RT) point with the analytical frontier, showing why
   rejuvenation is not redundant with admission control: admission
   control cannot restore a leaking heap.

Run:  python examples/admission_control.py
"""

from repro import PAPER_CONFIG, PAPER_SLO, SRAA, PoissonArrivals, run_once
from repro.queueing import MMcKModel, MMcModel

ARRIVAL_RATE = 1.8  # the 9-CPU operating point of Section 5


def admission_frontier() -> None:
    print(
        f"Analytical M/M/16/K at lambda = {ARRIVAL_RATE}/s "
        "(no aging -- the best case for admission control):"
    )
    print(f"{'K':>5} {'P(block)':>10} {'E[RT|admitted]':>15}")
    for capacity in (16, 20, 24, 32, 48, 64, 128):
        model = MMcKModel(ARRIVAL_RATE, 0.2, 16, capacity=capacity)
        print(
            f"{capacity:>5} {model.blocking_probability():>10.5f} "
            f"{model.response_time_mean():>15.3f}"
        )
    unbounded = MMcModel(ARRIVAL_RATE, 0.2, 16)
    print(
        f"{'inf':>5} {0.0:>10.5f} {unbounded.response_time_mean():>15.3f}"
        "   (M/M/16, eq. 2)"
    )


def rejuvenation_point() -> None:
    print(
        "\nSimulated aging system (GC stalls + kernel overhead) under "
        "SRAA(2,5,3):"
    )
    result = run_once(
        PAPER_CONFIG,
        PoissonArrivals(ARRIVAL_RATE),
        SRAA(PAPER_SLO, 2, 5, 3),
        n_transactions=20_000,
        seed=21,
    )
    print(
        f"  measured loss {result.loss_fraction:.4f}, "
        f"avg RT {result.avg_response_time:.2f} s, "
        f"{result.rejuvenations} rejuvenations, {result.gc_count} GCs"
    )
    no_policy = run_once(
        PAPER_CONFIG,
        PoissonArrivals(ARRIVAL_RATE),
        None,
        n_transactions=20_000,
        seed=21,
    )
    print(
        f"  without rejuvenation the same system averages "
        f"{no_policy.avg_response_time:.1f} s -- no buffer size fixes "
        "that, because the\n  bottleneck is the leaked heap and the "
        "60 s collections, not the waiting room."
    )


def main() -> None:
    admission_frontier()
    rejuvenation_point()


if __name__ == "__main__":
    main()
