"""The DES profiler: where does a simulated second of work go?

Attributes wall-clock and event counts to the subsystems of a run --
engine dispatch by event kind (arrivals, completions, telemetry probes,
fault injections) plus the policy's decision path -- so "make the hot
path faster" stops being guesswork.  Enabled per job with
``--profile`` / ``ReplicationJob.profile``; the per-run
:class:`Profile` snapshot is picklable, rides back on
``RunResult.profile``, and merges across replications in submission
order.

Determinism note: event *counts* are deterministic (same simulation,
same events) and are exported to the metrics registry; wall-clock
*seconds* are machine noise by nature and only appear in the printed
table, never in metrics snapshots -- the bit-identical serial vs
process-pool contract holds for everything written to disk.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

#: Event-kind -> subsystem attribution for the Section-3 stack.
KIND_SUBSYSTEMS: Dict[str, str] = {
    "arrival": "workload",
    "done": "node",
    "probe": "telemetry",
    "fault": "injectors",
    "degrade": "degradation",
    "policy.observe": "policy",
    "": "engine",
}


#: Kinds that are *nested slices* of another kind's time (e.g. the
#: policy's ``observe`` runs inside a completion event).  They appear
#: as their own rows but are excluded from the totals, so shares do
#: not double-count.
NESTED_KINDS = frozenset({"policy.observe"})


def subsystem_of(kind: str) -> str:
    """The subsystem an event kind belongs to (``engine`` fallback)."""
    return KIND_SUBSYSTEMS.get(kind, "engine")


@dataclass(frozen=True)
class ProfileEntry:
    """One attribution row: a kind's events and wall-clock seconds."""

    kind: str
    subsystem: str
    events: int
    seconds: float


@dataclass(frozen=True)
class Profile:
    """A picklable profiler snapshot (entries sorted by kind)."""

    entries: Tuple[ProfileEntry, ...]

    @property
    def total_events(self) -> int:
        """Fired DES events (nested slices are calls, not events)."""
        return sum(
            entry.events
            for entry in self.entries
            if entry.kind not in NESTED_KINDS
        )

    @property
    def total_seconds(self) -> float:
        """Event wall-clock; nested slices excluded (already counted)."""
        return sum(
            entry.seconds
            for entry in self.entries
            if entry.kind not in NESTED_KINDS
        )

    def merge(self, other: "Profile") -> "Profile":
        """A new profile summing both (fold in submission order)."""
        combined: Dict[str, List[float]] = {}
        for entry in self.entries + other.entries:
            slot = combined.setdefault(entry.kind, [0, 0.0])
            slot[0] += entry.events
            slot[1] += entry.seconds
        return Profile(
            entries=tuple(
                ProfileEntry(
                    kind=kind,
                    subsystem=subsystem_of(kind),
                    events=int(events),
                    seconds=seconds,
                )
                for kind, (events, seconds) in sorted(combined.items())
            )
        )

    def format_table(self) -> str:
        """An aligned per-subsystem attribution table."""
        if not self.entries:
            return "profile: no events recorded"
        total_s = self.total_seconds or 1.0
        header = (
            f"{'subsystem':<12} {'kind':<16} {'events':>10} "
            f"{'seconds':>9} {'share':>6}"
        )
        lines = [header, "-" * len(header)]
        ordered = sorted(
            self.entries, key=lambda e: (-e.seconds, e.subsystem, e.kind)
        )
        for entry in ordered:
            nested = " (nested)" if entry.kind in NESTED_KINDS else ""
            lines.append(
                f"{entry.subsystem:<12} {entry.kind or '(none)':<16} "
                f"{entry.events:>10} {entry.seconds:>9.4f} "
                f"{entry.seconds / total_s:>6.1%}{nested}"
            )
        lines.append(
            f"{'total':<12} {'':<16} {self.total_events:>10} "
            f"{self.total_seconds:>9.4f} {1:>6.0%}"
        )
        return "\n".join(lines)

    def to_registry(self, registry) -> None:
        """Export the *deterministic* counts as metrics.

        Only event counts go in (``repro_profile_events_total``);
        wall-clock seconds would break the bit-identical metrics
        contract across backends.
        """
        for entry in self.entries:
            registry.counter(
                "repro_profile_events_total",
                subsystem=entry.subsystem,
                kind=entry.kind or "none",
            ).inc(entry.events)


class DESProfiler:
    """Accumulates per-kind event counts and wall-clock seconds.

    The :class:`~repro.des.engine.Simulator` calls :meth:`account` once
    per fired event when a profiler is installed (one ``perf_counter``
    pair per event); :class:`~repro.ecommerce.system.ECommerceSystem`
    additionally accounts the policy's ``observe`` calls under the
    ``policy.observe`` kind.
    """

    __slots__ = ("_counts", "_seconds", "clock")

    def __init__(
        self, clock: Optional[Callable[[], float]] = None
    ) -> None:
        self._counts: Dict[str, int] = {}
        self._seconds: Dict[str, float] = {}
        #: The wall clock used by callers to bracket work.
        self.clock = clock if clock is not None else time.perf_counter

    def account(self, kind: str, seconds: float) -> None:
        """Attribute ``seconds`` of wall-clock to events of ``kind``."""
        self._counts[kind] = self._counts.get(kind, 0) + 1
        self._seconds[kind] = self._seconds.get(kind, 0.0) + seconds

    def snapshot(self) -> Profile:
        """The picklable, sorted profile so far."""
        return Profile(
            entries=tuple(
                ProfileEntry(
                    kind=kind,
                    subsystem=subsystem_of(kind),
                    events=self._counts[kind],
                    seconds=self._seconds[kind],
                )
                for kind in sorted(self._counts)
            )
        )

    def clear(self) -> None:
        """Forget everything (a fresh run starts clean)."""
        self._counts.clear()
        self._seconds.clear()


def merge_profiles(profiles) -> Optional[Profile]:
    """Fold many per-run profiles in submission order (None-safe)."""
    merged: Optional[Profile] = None
    for profile in profiles:
        if profile is None:
            continue
        merged = profile if merged is None else merged.merge(profile)
    return merged
