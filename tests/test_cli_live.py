"""The live-telemetry CLI surface: --live/--flight/--slo/--profile,
`repro report`, `repro top`, and gzipped-trace round trips."""

import gzip
import json

import pytest

from repro.cli import main
from repro.obs.exporters import read_jsonl, write_jsonl


SIMULATE = [
    "simulate",
    "--policy", "sraa",
    "-p", "n=2", "-p", "K=5", "-p", "D=3",
    "--load", "9",
    "--transactions", "2000",
    "--seed", "3",
]

FAULTS_RUN = [
    "faults", "run", "false_aging",
    "--replications", "2",
    "--horizon", "600",
    "--seed", "0",
]


class TestSimulateLive:
    def test_live_summary_printed(self, capsys):
        assert main(SIMULATE + ["--live"]) == 0
        out = capsys.readouterr().out
        assert "live " in out
        assert "live rt sketch" in out
        assert "live rt window" in out

    def test_flight_dumps_written(self, tmp_path, capsys):
        path = str(tmp_path / "flight.jsonl")
        assert main(SIMULATE + ["--flight", path, "--slo", "20"]) == 0
        assert "flight dumps" in capsys.readouterr().out
        records = [json.loads(l) for l in open(path)]
        assert records  # degraded 9-CPU load rejuvenates within 2000 tx
        reasons = {r["reason"] for r in records}
        assert reasons <= {
            "system.rejuvenation", "fault.injected", "slo_breach"
        }
        for record in records:
            assert record["events"]  # every dump carries its ring

    def test_profile_table_printed(self, capsys):
        assert main(SIMULATE + ["--profile"]) == 0
        out = capsys.readouterr().out
        assert "subsystem" in out
        assert "workload" in out and "node" in out
        assert "policy.observe" in out

    def test_live_composes_with_full_tracing(self, tmp_path, capsys):
        trace = str(tmp_path / "trace.jsonl")
        assert main(SIMULATE + ["--live", "--trace", trace]) == 0
        out = capsys.readouterr().out
        assert "live rt sketch" in out
        types = {r["type"] for r in read_jsonl(trace)}
        assert "request.complete" in types
        assert "policy.trigger" in types


class TestFaultsRunLive:
    def test_campaign_live_and_profile(self, capsys):
        assert main(FAULTS_RUN + ["--live", "--profile"]) == 0
        out = capsys.readouterr().out
        assert "live rt sketch" in out
        assert "subsystem" in out
        assert "injectors" in out  # fault events attributed


class TestReportCommand:
    def test_report_from_campaign_trace(self, tmp_path, capsys):
        """ISSUE acceptance: a self-contained HTML dashboard renders
        from a real fault-campaign trace."""
        trace = str(tmp_path / "campaign.jsonl")
        assert main(FAULTS_RUN + ["--trace", trace]) == 0
        capsys.readouterr()
        assert main(["report", trace]) == 0
        out = capsys.readouterr().out
        html_path = str(tmp_path / "campaign.html")
        assert f"wrote {html_path}" in out
        document = open(html_path, encoding="utf-8").read()
        assert document.startswith("<!DOCTYPE html>")
        assert "http://" not in document and "https://" not in document
        assert "<script" not in document
        assert "fault" in document
        assert "<svg" in document

    def test_report_explicit_out_and_title(self, tmp_path, capsys):
        trace = str(tmp_path / "t.jsonl")
        write_jsonl(
            trace,
            [
                {
                    "run": 0, "ts": 0.0, "type": "run.meta",
                    "source": "session", "seed": 1, "tag": ["x"],
                    "data": {"sim_duration_s": 10.0},
                }
            ],
        )
        out_path = str(tmp_path / "dash.html")
        assert main(
            ["report", trace, "-o", out_path, "--title", "my dash"]
        ) == 0
        capsys.readouterr()
        assert "<title>my dash</title>" in open(out_path).read()

    def test_missing_trace_exits(self):
        with pytest.raises(SystemExit):
            main(["report", "/nonexistent/trace.jsonl"])


class TestTopCommand:
    def test_top_runs_a_simulation_with_live_panel(self, capsys):
        # stdout carries the result table; the panel goes to stderr.
        assert main(
            [
                "top",
                "--policy", "sraa",
                "-p", "n=2", "-p", "K=5", "-p", "D=3",
                "--load", "9",
                "--transactions", "500",
                "--seed", "3",
            ]
        ) == 0
        captured = capsys.readouterr()
        assert "repro top" in captured.err
        assert "completed" in captured.err


class TestGzipTraces:
    """Satellite: every trace reader accepts .jsonl.gz transparently."""

    def make_gz(self, tmp_path, source_args):
        plain = str(tmp_path / "trace.jsonl")
        assert main(source_args + ["--trace", plain]) == 0
        gz = str(tmp_path / "trace.jsonl.gz")
        write_jsonl(gz, read_jsonl(plain))
        with gzip.open(gz, "rb") as handle:
            assert handle.read()  # really gzip-compressed
        return plain, gz

    def test_explain_reads_gz(self, tmp_path, capsys):
        _, gz = self.make_gz(tmp_path, SIMULATE)
        capsys.readouterr()
        assert main(["explain", gz]) == 0
        assert "trigger #1" in capsys.readouterr().out

    def test_faults_score_reads_gz(self, tmp_path, capsys):
        plain, gz = self.make_gz(tmp_path, FAULTS_RUN)
        capsys.readouterr()
        assert main(["faults", "score", plain, "--horizon", "600"]) == 0
        plain_out = capsys.readouterr().out
        assert main(["faults", "score", gz, "--horizon", "600"]) == 0
        gz_out = capsys.readouterr().out
        assert plain_out == gz_out  # identical table from either form

    def test_report_reads_gz(self, tmp_path, capsys):
        _, gz = self.make_gz(tmp_path, SIMULATE)
        capsys.readouterr()
        assert main(["report", gz]) == 0
        out = capsys.readouterr().out
        html_path = str(tmp_path / "trace.html")
        assert f"wrote {html_path}" in out
        assert "<svg" in open(html_path, encoding="utf-8").read()

    def test_write_jsonl_gz_round_trip(self, tmp_path):
        records = [{"ts": float(i), "type": "x"} for i in range(5)]
        path = str(tmp_path / "r.jsonl.gz")
        assert write_jsonl(path, records) == 5
        assert read_jsonl(path) == records
