"""Combining decision rules.

Operators sometimes want rejuvenation only when *several* independent
detectors agree (cut false alarms), or when *any* of a family fires
(cut detection latency).  These combinators compose any
:class:`~repro.core.base.RejuvenationPolicy` objects behind the same
streaming interface, so a combined rule drops into the simulator, the
monitor and the cluster unchanged.

Semantics: every member policy sees every observation (members keep
their own batching).  ``AnyOf`` fires when at least one member fires on
an observation; ``AllOf`` requires every member to be *concurrently*
alarmed -- since triggers are instantaneous events, each member's
firing raises a latch that stays up for ``memory`` observations, and
``AllOf`` fires when all latches are up simultaneously.  ``MajorityOf``
generalises to k-of-n.  After a combined trigger every member is reset.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.core.base import RejuvenationPolicy


class _Latched:
    """A member policy plus the fired-recently latch."""

    __slots__ = ("policy", "remaining")

    def __init__(self, policy: RejuvenationPolicy) -> None:
        self.policy = policy
        self.remaining = 0

    def observe(self, value: float, memory: int) -> None:
        if self.policy.observe(value):
            self.remaining = memory
        elif self.remaining > 0:
            self.remaining -= 1

    @property
    def alarmed(self) -> bool:
        return self.remaining > 0


class _CompositePolicy(RejuvenationPolicy):
    """Shared machinery for the combinators."""

    def __init__(
        self,
        policies: Sequence[RejuvenationPolicy],
        quorum: int,
        memory: int,
    ) -> None:
        if not policies:
            raise ValueError("need at least one member policy")
        if not 1 <= quorum <= len(policies):
            raise ValueError(
                f"quorum must lie in [1, {len(policies)}], got {quorum}"
            )
        if memory < 1:
            raise ValueError("latch memory must be >= 1 observation")
        self._members: List[_Latched] = [_Latched(p) for p in policies]
        self.quorum = int(quorum)
        self.memory = int(memory)

    @property
    def members(self) -> List[RejuvenationPolicy]:
        """The member policies (in construction order)."""
        return [member.policy for member in self._members]

    def alarmed_count(self) -> int:
        """Members whose latch is currently up."""
        return sum(member.alarmed for member in self._members)

    def observe(self, value: float) -> bool:
        for member in self._members:
            member.observe(value, self.memory)
        if self.alarmed_count() >= self.quorum:
            self.reset()
            return True
        return False

    def reset(self) -> None:
        """Reset every member and drop all latches."""
        for member in self._members:
            member.policy.reset()
            member.remaining = 0

    def describe(self) -> str:
        inner = ", ".join(m.policy.describe() for m in self._members)
        return (
            f"{type(self).__name__}(quorum={self.quorum}/"
            f"{len(self._members)}, memory={self.memory}, [{inner}])"
        )


class AnyOf(_CompositePolicy):
    """Fire when any member fires (union of detectors)."""

    name = "any-of"

    def __init__(self, policies: Sequence[RejuvenationPolicy]) -> None:
        super().__init__(policies, quorum=1, memory=1)


class AllOf(_CompositePolicy):
    """Fire when every member has fired within the latch window."""

    name = "all-of"

    def __init__(
        self, policies: Sequence[RejuvenationPolicy], memory: int = 50
    ) -> None:
        super().__init__(policies, quorum=len(policies), memory=memory)


class MajorityOf(_CompositePolicy):
    """Fire when at least ``quorum`` members have fired within the window."""

    name = "majority-of"

    def __init__(
        self,
        policies: Sequence[RejuvenationPolicy],
        quorum: int,
        memory: int = 50,
    ) -> None:
        super().__init__(policies, quorum=quorum, memory=memory)
