"""E11 -- Figure 16 / Section 5.6: SRAA vs SARAA vs CLTA.

Reproduced shape: SARAA beats SRAA on high-load response time, and CLTA
is the only contender with measurable transaction loss at low load
(paper: 0.001406 at 0.5 CPUs).  The paper's third claim -- CLTA also has
the *worst* high-load response time -- does not reproduce in this
substrate (see EXPERIMENTS.md, divergence D1; the effect survives
non-memoryless service, ablation 5), so we assert the two claims that
are mechanism-driven rather than artefacts of unspecified simulator
details.
"""

from conftest import (
    assertions_enabled,
    high_loads,
    regenerate,
    series_mean,
)

CLTA = "CLTA (n=30, K=1, D=1)"
SRAA = "SRAA (n=2, K=5, D=3)"
SARAA = "SARAA (n=2, K=5, D=3)"


def test_fig16_three_way_comparison(benchmark):
    result = regenerate(benchmark, "fig16")
    if not assertions_enabled():
        return
    rt, loss = result.tables
    highs = high_loads(rt)
    # Section 5.6: SARAA 10.5 s < SRAA 11.94 s at 9.0 CPUs.
    assert series_mean(rt.get_series(SARAA), highs) < series_mean(
        rt.get_series(SRAA), highs
    )
    # Low-load loss: CLTA measurable (0.001406 in the paper), SRAA and
    # SARAA negligible.
    clta_loss = loss.get_series(CLTA).value_at(0.5)
    assert 0.0002 < clta_loss < 0.01
    assert loss.get_series(SRAA).value_at(0.5) < clta_loss / 2
    assert loss.get_series(SARAA).value_at(0.5) < clta_loss / 2
    # All three keep the high-load RT far below the unmanaged system
    # (which diverges into the hundreds of seconds).
    for label in (CLTA, SRAA, SARAA):
        assert series_mean(rt.get_series(label), highs) < 60.0
