"""Figure 16 (Section 5.6): SRAA vs SARAA vs CLTA at ``n * K * D = 30``.

CLTA runs at ``(30, 1, 1)`` with ``z = 1.96``; SRAA and SARAA at
``(2, 5, 3)``.  The paper's verdict: CLTA degrades performance at both
ends -- measurable loss at low loads (0.001406 at 0.5 CPUs against a
negligible fraction for SRAA/SARAA) and the worst response time at high
loads (12.8 s at 9.0 CPUs vs 11.94 s for SRAA and 10.5 s for SARAA).
"""

from __future__ import annotations

from repro.core.spec import PolicySpec
from repro.experiments.scale import Scale
from repro.experiments.sweep import PolicyConfig, sweep_policies
from repro.experiments.tables import ExperimentResult


def fig16_configs() -> list[PolicyConfig]:
    """The three Fig. 16 contenders."""
    return [
        PolicyConfig(
            label="CLTA (n=30, K=1, D=1)",
            policy=PolicySpec.clta(30, z=1.96),
        ),
        PolicyConfig(
            label="SRAA (n=2, K=5, D=3)",
            policy=PolicySpec.sraa(2, 5, 3),
        ),
        PolicyConfig(
            label="SARAA (n=2, K=5, D=3)",
            policy=PolicySpec.saraa(2, 5, 3),
        ),
    ]


def run_fig16(scale: Scale, seed: int = 0) -> ExperimentResult:
    """Figure 16 and the Section-5.6 loss comparison."""
    sweep = sweep_policies(fig16_configs(), scale, seed=seed)
    rt_table = sweep.response_time_table(
        "Fig. 16: SRAA vs SARAA vs CLTA average response time, n*K*D = 30"
    )
    loss_table = sweep.loss_table(
        "Section 5.6: loss fractions for the Fig. 16 contenders"
    )
    return ExperimentResult(
        experiment_id="fig16",
        description="Head-to-head comparison of the three algorithms",
        tables=[rt_table, loss_table],
        paper_expectations=[
            "at 0.5 CPUs SRAA and SARAA drop a negligible fraction of "
            "transactions while CLTA drops 0.001406",
            "at 9.0 CPUs the paper reports 10.5 s (SARAA) < 11.94 s "
            "(SRAA) < 12.8 s (CLTA)",
            "SARAA < SRAA reproduces in this substrate; CLTA's high-load "
            "response time comes out *lower* than both here (divergence "
            "D1 in EXPERIMENTS.md: its single-test rule cuts each "
            "soft-failure episode shortest, paying in loss instead -- "
            "and the effect survives non-memoryless service, see "
            "ablation 5)",
        ],
    )
