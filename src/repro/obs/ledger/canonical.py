"""Canonical JSON and content hashing for run manifests.

Cross-run comparison only works if "the same run" always serialises to
the same bytes: a manifest hash must not depend on dict insertion
order, on whether a policy arrived as a :class:`~repro.core.spec.PolicySpec`
or a plain dict, or on which backend executed the jobs.  This module is
that single point of truth: :func:`to_plain` normalises the library's
spec objects (dataclasses, ``to_dict`` carriers, mappings, sequences)
into JSON-safe plain data, :func:`canonical_json` renders plain data
with sorted keys and compact separators, and :func:`canonical_hash`
digests the result with SHA-256.

Two spec dicts with the same content in different key order therefore
hash identically (pinned by ``tests/obs/test_ledger_canonical.py``),
which is what lets ``repro runs check`` match a candidate run to its
baseline by manifest hash alone.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import asdict, is_dataclass
from typing import Any, Mapping, Sequence

#: JSON stand-ins for the non-finite floats (JSON itself has none, and
#: fault-scenario ground truth legitimately uses ``math.inf``).
NON_FINITE = {
    math.inf: "Infinity",
    -math.inf: "-Infinity",
}


def to_plain(obj: Any) -> Any:
    """Recursively normalise ``obj`` into JSON-safe plain data.

    Handles, in order: ``None``/bool/int/str; floats (non-finite values
    become their string names, so canonical JSON never needs NaN
    extensions); objects with a ``to_dict`` method (e.g.
    :class:`~repro.faults.scenario.FaultScenario`); dataclasses (e.g.
    :class:`~repro.core.spec.PolicySpec`,
    :class:`~repro.ecommerce.config.SystemConfig`); mappings (keys
    coerced to ``str``); sequences.  Bare callables -- the pre-spec
    factory protocol -- are reduced to their qualified name, which keeps
    legacy jobs hashable but *not* stable across refactors; prefer
    specs.
    """
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        if math.isnan(obj):
            return "NaN"
        if math.isinf(obj):
            return NON_FINITE[obj]
        return obj
    to_dict = getattr(obj, "to_dict", None)
    if callable(to_dict):
        return to_plain(to_dict())
    if is_dataclass(obj) and not isinstance(obj, type):
        return to_plain(asdict(obj))
    if isinstance(obj, Mapping):
        return {str(key): to_plain(value) for key, value in obj.items()}
    if isinstance(obj, (list, tuple)) or (
        isinstance(obj, Sequence) and not isinstance(obj, (str, bytes))
    ):
        return [to_plain(item) for item in obj]
    if callable(obj):
        return {
            "factory": f"{getattr(obj, '__module__', '?')}."
            f"{getattr(obj, '__qualname__', repr(obj))}"
        }
    raise TypeError(
        f"cannot canonicalise {type(obj).__name__!r} ({obj!r}); pass a "
        "spec, dataclass, mapping, sequence, or JSON scalar"
    )


def canonical_json(obj: Any) -> str:
    """The canonical JSON text of ``obj``: sorted keys, compact, ASCII.

    Equal content always renders to equal bytes, whatever the original
    key order or container types.
    """
    return json.dumps(
        to_plain(obj),
        sort_keys=True,
        separators=(",", ":"),
        ensure_ascii=True,
        allow_nan=False,
    )


def canonical_hash(obj: Any) -> str:
    """SHA-256 hex digest of :func:`canonical_json`."""
    return hashlib.sha256(canonical_json(obj).encode("utf-8")).hexdigest()
