"""Counters, gauges, histograms, and the determinism of merging."""

import pytest

from repro.obs.events import TraceEvent
from repro.obs.metrics import (
    LATENCY_BOUNDS_S,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    registry_for_runs,
)


class TestCounter:
    def test_inc_and_merge(self):
        a, b = Counter(), Counter()
        a.inc()
        a.inc(2)
        b.inc(4)
        a.merge(b)
        assert a.value == 7

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)


class TestGauge:
    def test_merge_is_last_write_wins(self):
        a, b = Gauge(), Gauge()
        a.set(1.0)
        b.set(2.0)
        a.merge(b)
        assert a.value == 2.0

    def test_unwritten_gauge_does_not_overwrite(self):
        a, b = Gauge(), Gauge()
        a.set(1.0)
        a.merge(b)
        assert a.value == 1.0


class TestHistogram:
    def test_bucketing(self):
        hist = Histogram(bounds=(1.0, 10.0))
        for value in (0.5, 5.0, 50.0):
            hist.observe(value)
        assert hist.counts == [1, 1, 1]
        assert hist.count == 3
        assert hist.sum == pytest.approx(55.5)
        assert hist.mean == pytest.approx(55.5 / 3)

    def test_merge_is_exact(self):
        """Merging per-run histograms equals one histogram over all data."""
        values = [0.3, 2.0, 7.0, 80.0, 400.0]
        split = Histogram()
        part = Histogram()
        for value in values[:2]:
            split.observe(value)
        for value in values[2:]:
            part.observe(value)
        split.merge(part)
        whole = Histogram()
        for value in values:
            whole.observe(value)
        assert split.counts == whole.counts
        assert split.sum == whole.sum
        assert (split.minimum, split.maximum) == (0.3, 400.0)

    def test_merge_rejects_different_bounds(self):
        with pytest.raises(ValueError):
            Histogram(bounds=(1.0,)).merge(Histogram(bounds=(2.0,)))

    def test_rejects_unsorted_bounds(self):
        with pytest.raises(ValueError):
            Histogram(bounds=(2.0, 1.0))

    def test_cumulative_ends_with_inf(self):
        hist = Histogram(bounds=(1.0,))
        hist.observe(0.5)
        hist.observe(3.0)
        assert hist.cumulative() == [(1.0, 1), (float("inf"), 2)]

    def test_default_bounds_cover_paper_regime(self):
        # Healthy ~5 s and degraded ~100 s response times must land in
        # interior buckets, not the +Inf overflow.
        assert LATENCY_BOUNDS_S[0] < 5.0 < LATENCY_BOUNDS_S[-1]
        assert 100.0 < LATENCY_BOUNDS_S[-1]


class TestRegistry:
    def test_get_or_create_is_idempotent(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.counter("c").inc()
        assert registry.snapshot()["c"] == 2

    def test_labels_separate_series(self):
        registry = MetricsRegistry()
        registry.counter("c", kind="a").inc()
        registry.counter("c", kind="b").inc(2)
        snapshot = registry.snapshot()
        assert snapshot['c{kind="a"}'] == 1
        assert snapshot['c{kind="b"}'] == 2

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("m").inc()
        other = MetricsRegistry()
        other.gauge("m").set(1.0)
        with pytest.raises(TypeError):
            registry.merge(other)

    def test_merge_does_not_alias(self):
        source = MetricsRegistry()
        source.counter("c").inc()
        merged = MetricsRegistry()
        merged.merge(source)
        source.counter("c").inc(10)
        assert merged.snapshot()["c"] == 1

    def test_prometheus_format(self):
        registry = MetricsRegistry()
        registry.counter("repro_completed_total").inc(3)
        registry.gauge("repro_sim_duration_seconds").set(1.5)
        registry.histogram("repro_rt_seconds", bounds=(1.0,)).observe(0.5)
        text = registry.to_prometheus()
        assert "# TYPE repro_completed_total counter" in text
        assert "repro_completed_total 3" in text
        assert "repro_sim_duration_seconds 1.5" in text
        assert 'repro_rt_seconds_bucket{le="1"} 1' in text
        assert 'repro_rt_seconds_bucket{le="+Inf"} 1' in text
        assert "repro_rt_seconds_count 1" in text

    def test_add_events(self):
        registry = MetricsRegistry()
        registry.add_events(
            [
                TraceEvent(1.0, "request.complete", "system",
                           {"index": 0, "response_time": 4.0}),
                TraceEvent(2.0, "request.loss", "system",
                           {"index": 1, "reason": "downtime"}),
                TraceEvent(3.0, "policy.trigger", "policy:SRAA",
                           {"batch_mean": 20.0}),
            ]
        )
        snapshot = registry.snapshot()
        assert snapshot['repro_trace_events_total{type="request.complete"}'] == 1
        assert snapshot['repro_request_losses_total{reason="downtime"}'] == 1
        assert snapshot['repro_policy_triggers_total{policy="policy:SRAA"}'] == 1
        assert snapshot["repro_response_time_seconds"]["count"] == 1


class TestPrometheusConformance:
    """Text exposition format: HELP/TYPE per family, label escaping."""

    def test_every_family_has_help_and_type(self):
        registry = MetricsRegistry()
        registry.counter("repro_completed_total").inc()
        registry.counter("some_unlisted_metric").inc()
        registry.gauge("repro_sim_duration_seconds").set(1.0)
        registry.histogram("repro_response_time_seconds").observe(2.0)
        lines = registry.to_prometheus().splitlines()
        families = {
            line.split()[2]
            for line in lines
            if line.startswith("# TYPE")
        }
        sample_names = set()
        for line in lines:
            if line.startswith("#") or not line:
                continue
            name = line.split("{")[0].split(" ")[0]
            for suffix in ("_bucket", "_sum", "_count"):
                if name.endswith(suffix):
                    name = name[: -len(suffix)]
            sample_names.add(name)
        assert sample_names <= families
        helped = {
            line.split()[2]
            for line in lines
            if line.startswith("# HELP")
        }
        assert families == helped

    def test_unlisted_family_gets_fallback_help(self):
        registry = MetricsRegistry()
        registry.counter("some_unlisted_metric").inc()
        text = registry.to_prometheus()
        assert "# HELP some_unlisted_metric" in text
        assert "# TYPE some_unlisted_metric counter" in text

    def test_help_precedes_type_precedes_samples(self):
        registry = MetricsRegistry()
        registry.counter("repro_completed_total").inc(3)
        lines = registry.to_prometheus().splitlines()
        help_i = lines.index(
            "# HELP repro_completed_total Transactions completed"
        )
        type_i = lines.index("# TYPE repro_completed_total counter")
        sample_i = lines.index("repro_completed_total 3")
        assert help_i < type_i < sample_i

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter(
            "c", reason='say "no"\nto\\backslashes'
        ).inc()
        text = registry.to_prometheus()
        assert (
            'c{reason="say \\"no\\"\\nto\\\\backslashes"} 1' in text
        )
        # The raw newline must never reach the exposition.
        for line in text.splitlines():
            assert not line.startswith("to\\backslashes")

    def test_escaped_snapshot_still_one_line_per_sample(self):
        registry = MetricsRegistry()
        registry.counter("c", kind="multi\nline").inc()
        registry.counter("c", kind="plain").inc()
        body = [
            line
            for line in registry.to_prometheus().splitlines()
            if line and not line.startswith("#")
        ]
        assert len(body) == 2

    def test_trailing_newline(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        assert registry.to_prometheus().endswith("\n")


class TestRegistryForRuns:
    def test_counts_runs_with_telemetry_schema_names(self, paper_config):
        from repro.ecommerce.runner import run_once
        from repro.ecommerce.workload import PoissonArrivals

        runs = [
            run_once(paper_config, PoissonArrivals(1.0), None, 500, seed=s)
            for s in (0, 1)
        ]
        snapshot = registry_for_runs(runs).snapshot()
        assert snapshot["repro_replications_total"] == 2
        # Names mirror the telemetry column schema.
        assert snapshot["repro_completed_total"] == sum(
            r.completed for r in runs
        )
        assert snapshot["repro_lost_total"] == sum(r.lost for r in runs)
        assert snapshot["repro_gc_count_total"] == sum(r.gc_count for r in runs)
