"""Estimating the healthy-behaviour SLO from measured data.

The paper assumes a service-level agreement hands the algorithms
``mu_X`` and ``sigma_X``.  Real deployments often have to *measure* them
during a known-healthy period instead; the paper's conclusion lists
"statistical estimation techniques to determine optimal algorithm
parameters in real-time" as future work.  This module provides the
estimation half: classical moment estimates and a robust median/MAD
variant that tolerates contamination by occasional degraded samples.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.sla import ServiceLevelObjective

#: Consistency factor making the MAD unbiased for a normal population.
MAD_TO_SIGMA = 1.4826


def calibrate_slo(
    values: Sequence[float], warmup: int = 0
) -> ServiceLevelObjective:
    """Classical calibration: sample mean and (n-1) standard deviation.

    Parameters
    ----------
    values:
        Metric observations from a healthy period.
    warmup:
        Leading observations to discard (simulation or restart
        transient).
    """
    if warmup < 0:
        raise ValueError("warmup must be non-negative")
    data = np.asarray(values, dtype=float)[warmup:]
    if data.size < 2:
        raise ValueError("need at least two observations after warm-up")
    return ServiceLevelObjective(
        mean=float(data.mean()), std=float(data.std(ddof=1))
    )


def robust_calibrate_slo(
    values: Sequence[float], warmup: int = 0
) -> ServiceLevelObjective:
    """Robust calibration: median and scaled median absolute deviation.

    Resistant to a minority of degraded observations contaminating the
    "healthy" window -- useful when calibration data cannot be guaranteed
    clean.  Note that for a *skewed* healthy distribution (like the
    exponential response times of the paper's system at low load) the
    median is below the mean, which makes the resulting policy more
    trigger-happy; prefer :func:`calibrate_slo` for clean data.
    """
    if warmup < 0:
        raise ValueError("warmup must be non-negative")
    data = np.asarray(values, dtype=float)[warmup:]
    if data.size < 2:
        raise ValueError("need at least two observations after warm-up")
    median = float(np.median(data))
    mad = float(np.median(np.abs(data - median)))
    return ServiceLevelObjective(mean=median, std=MAD_TO_SIGMA * mad)
