"""The serve-side event bus: bounded fan-out from taps to subscribers.

One :class:`EventBroker` lives in the serving process.  Publishers --
:class:`~repro.serve.tap.ServeTap` instances riding on simulation jobs
-- call :meth:`EventBroker.publish` from whatever thread the job runs
in; each Server-Sent-Events subscriber owns a bounded
:class:`queue.Queue` that the publish fans out to.

Two disciplines keep the broker a *pure observer* of the simulation:

* Publishing never blocks.  A subscriber that cannot keep up loses its
  oldest queued events (counted on the subscription), not the
  simulation's time -- ``put_nowait`` with drop-oldest, never a wait.
* Published payloads are plain JSON-safe data built fresh per event, so
  no subscriber can reach back into live simulation state.

Every event carries a broker-assigned monotonically increasing ``seq``,
so subscribers (and the ordering tests) can assert they saw the stream
in publish order.  The broker also keeps a bounded replay ring of the
most recent events: a subscriber that reconnects with the ``seq`` it
last saw (SSE ``Last-Event-ID``) has the gap prefilled into its queue
before any new event can race past it.

Beyond queue subscribers, *taps* are synchronous callables invoked on
the publishing thread after fan-out (outside the broker lock, so a tap
may itself publish).  The alert engine rides on a tap: it sees every
event exactly once, in order, with no queue to fall behind.
"""

from __future__ import annotations

import itertools
import queue
import threading
from collections import deque
from typing import Any, Callable, Dict, List, Optional

#: Default per-subscriber queue bound.
DEFAULT_QUEUE_SIZE = 1024

#: Events retained for ``Last-Event-ID`` replay on reconnect.
REPLAY_BUFFER_SIZE = 512


class Subscription:
    """One subscriber's bounded view of the event stream."""

    __slots__ = ("id", "queue", "dropped", "replayed", "_broker")

    def __init__(self, sub_id: int, maxsize: int, broker: "EventBroker"):
        self.id = sub_id
        self.queue: "queue.Queue[Dict[str, Any]]" = queue.Queue(
            maxsize=maxsize
        )
        #: Events lost to backpressure (oldest dropped first).
        self.dropped = 0
        #: Buffered events prefilled on a ``Last-Event-ID`` reconnect.
        self.replayed = 0
        self._broker = broker

    def get(self, timeout: Optional[float] = None) -> Dict[str, Any]:
        """Next event, oldest first; raises ``queue.Empty`` on timeout."""
        return self.queue.get(timeout=timeout)

    def close(self) -> None:
        self._broker.unsubscribe(self)

    def __enter__(self) -> "Subscription":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


class EventBroker:
    """Thread-safe bounded pub/sub plus the latest-snapshot register."""

    def __init__(self, replay_size: int = REPLAY_BUFFER_SIZE) -> None:
        self._lock = threading.Lock()
        self._subscribers: List[Subscription] = []
        self._seq = itertools.count(1)
        self._ids = itertools.count(1)
        #: Bounded ring of recent stamped events for reconnect replay.
        self._replay: "deque[Dict[str, Any]]" = deque(maxlen=replay_size)
        #: Synchronous observers called once per event, publish order.
        self._taps: List[Callable[[Dict[str, Any]], None]] = []
        #: Exceptions swallowed from taps (a broken tap never costs a run).
        self.tap_errors = 0
        #: Most recent ``live.snapshot`` payload (what ``/api/live``
        #: serves); ``None`` until a tap publishes one.
        self.latest_snapshot: Optional[Dict[str, Any]] = None
        #: Total events published over the broker's lifetime.
        self.published = 0

    # ------------------------------------------------------------------
    def subscribe(
        self,
        maxsize: int = DEFAULT_QUEUE_SIZE,
        after_seq: Optional[int] = None,
    ) -> Subscription:
        """Register a subscriber; optionally replay buffered events.

        With ``after_seq`` the queue is prefilled -- inside the broker
        lock, so no concurrent publish can slip between replay and live
        delivery -- with every retained event whose ``seq`` is greater
        than ``after_seq``.  Events older than the replay ring are gone;
        ``Subscription.replayed`` tells the caller how many came back.
        """
        subscription = Subscription(next(self._ids), maxsize, self)
        with self._lock:
            if after_seq is not None:
                for event in self._replay:
                    if event["seq"] > after_seq:
                        try:
                            subscription.queue.put_nowait(event)
                            subscription.replayed += 1
                        except queue.Full:  # pragma: no cover - tiny queue
                            subscription.dropped += 1
            self._subscribers.append(subscription)
        return subscription

    # ------------------------------------------------------------------
    def add_tap(self, tap: Callable[[Dict[str, Any]], None]) -> None:
        """Attach a synchronous observer of every stamped event.

        Taps run on the publishing thread *after* subscriber fan-out and
        outside the broker lock (a tap may publish follow-up events).
        Exceptions are swallowed and counted in :attr:`tap_errors`.
        """
        with self._lock:
            self._taps.append(tap)

    def remove_tap(self, tap: Callable[[Dict[str, Any]], None]) -> None:
        with self._lock:
            try:
                self._taps.remove(tap)
            except ValueError:
                pass

    @property
    def latest_seq(self) -> int:
        """Sequence number of the most recently published event."""
        with self._lock:
            return self._replay[-1]["seq"] if self._replay else 0

    def unsubscribe(self, subscription: Subscription) -> None:
        with self._lock:
            try:
                self._subscribers.remove(subscription)
            except ValueError:
                pass  # already gone; close() is idempotent

    @property
    def subscriber_count(self) -> int:
        with self._lock:
            return len(self._subscribers)

    # ------------------------------------------------------------------
    def publish(self, etype: str, data: Dict[str, Any]) -> Dict[str, Any]:
        """Fan one event out to every subscriber; never blocks.

        Returns the stamped event (``{"seq", "event", "data"}``).
        """
        with self._lock:
            event = {"seq": next(self._seq), "event": etype, "data": data}
            self.published += 1
            self._replay.append(event)
            if etype == "live.snapshot":
                self.latest_snapshot = data
            subscribers = tuple(self._subscribers)
            taps = tuple(self._taps)
        for subscription in subscribers:
            try:
                subscription.queue.put_nowait(event)
            except queue.Full:
                # Drop-oldest: the slow subscriber pays, not the run.
                try:
                    subscription.queue.get_nowait()
                    subscription.dropped += 1
                except queue.Empty:  # pragma: no cover - race window
                    pass
                try:
                    subscription.queue.put_nowait(event)
                except queue.Full:  # pragma: no cover - race window
                    subscription.dropped += 1
        for tap in taps:
            try:
                tap(event)
            except Exception:  # noqa: BLE001 - observer must not cost the run
                self.tap_errors += 1
        return event
