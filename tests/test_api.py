"""Public API surface: everything advertised in __all__ works."""

import repro


class TestPublicSurface:
    def test_version(self):
        # Installed runs report the distribution version; PYTHONPATH
        # source-tree runs carry the "+src" local-version marker.
        assert repro.__version__ in ("1.0.0", "1.0.0+src")

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_quickstart_flow(self):
        # The README quick-start, end to end.
        policy = repro.SRAA(
            repro.PAPER_SLO, sample_size=3, n_buckets=2, depth=5
        )
        restarts = []
        monitor = repro.RejuvenationMonitor(
            policy, on_rejuvenate=restarts.append
        )
        for value in [5.0] * 30 + [80.0] * 60:
            monitor.feed(value)
        assert restarts  # sustained degradation was caught

    def test_paper_constants_consistent(self):
        # PAPER_SLO matches the analytical M/M/16 baseline.
        model = repro.MMcModel(1.6, 0.2, 16)
        assert abs(model.response_time_mean() - repro.PAPER_SLO.mean) < 0.01
        assert abs(model.response_time_std() - repro.PAPER_SLO.std) < 0.01

    def test_make_policy_roundtrip(self):
        for name in repro.available_policies():
            policy = repro.make_policy(name, repro.PAPER_SLO)
            assert isinstance(policy, repro.RejuvenationPolicy)


class TestApiDocumentation:
    def test_every_public_name_documented(self):
        """docs/api.md must mention every name in repro.__all__."""
        import pathlib

        doc = (
            pathlib.Path(__file__).resolve().parent.parent
            / "docs"
            / "api.md"
        ).read_text()
        missing = [name for name in repro.__all__ if name not in doc]
        assert not missing, f"undocumented public names: {missing}"
