"""The execution layer's core guarantee: backend choice never changes
results.  Serial and process-pool runs of the same seeded scenario must
be bit-identical (the ISSUE's acceptance criterion)."""

from repro.core.spec import PolicySpec
from repro.ecommerce.config import PAPER_CONFIG
from repro.ecommerce.runner import run_replications
from repro.ecommerce.spec import ArrivalSpec
from repro.exec.backends import ProcessPoolBackend, SerialBackend
from repro.experiments.scale import Scale
from repro.experiments.sweep import sraa_config, sweep_policies


def _replicate(backend):
    return run_replications(
        PAPER_CONFIG,
        arrival=ArrivalSpec.poisson(PAPER_CONFIG.arrival_rate_for_load(6.0)),
        policy=PolicySpec.sraa(2, 5, 3),
        n_transactions=300,
        replications=3,
        seed=42,
        backend=backend,
    )


class TestRunReplicationsDeterminism:
    def test_serial_and_pool_bit_identical(self):
        serial = _replicate(SerialBackend())
        pooled = _replicate(ProcessPoolBackend(workers=2))
        assert serial == pooled  # every field of every RunResult

    def test_serial_is_reproducible(self):
        assert _replicate(SerialBackend()) == _replicate(SerialBackend())


class TestSweepDeterminism:
    def test_serial_and_pool_bit_identical(self):
        scale = Scale(
            transactions=150, replications=2, loads=(0.5, 6.0), label="tiny"
        )
        configs = (sraa_config(2, 5, 3), sraa_config(5, 3, 1))

        def sweep(backend):
            return sweep_policies(configs, scale, seed=7, backend=backend)

        serial = sweep(SerialBackend())
        pooled = sweep(ProcessPoolBackend(workers=2))
        assert serial.loads == pooled.loads == (0.5, 6.0)
        assert list(serial.results) == [c.label for c in configs]
        # Dict-of-dict-of-ReplicatedResult equality is field-exact.
        assert serial.results == pooled.results
