"""The DES profiler: attribution, nested kinds, merging, metrics."""

import pickle

from repro.obs.live.profiler import (
    DESProfiler,
    NESTED_KINDS,
    merge_profiles,
    subsystem_of,
)
from repro.obs.metrics import MetricsRegistry


def fake_clock(ticks):
    """A deterministic clock yielding successive values from a list."""
    it = iter(ticks)
    return lambda: next(it)


class TestAttribution:
    def test_kind_to_subsystem_map(self):
        assert subsystem_of("arrival") == "workload"
        assert subsystem_of("done") == "node"
        assert subsystem_of("probe") == "telemetry"
        assert subsystem_of("fault") == "injectors"
        assert subsystem_of("policy.observe") == "policy"
        assert subsystem_of("") == "engine"
        assert subsystem_of("something.new") == "engine"

    def test_account_and_snapshot(self):
        profiler = DESProfiler()
        profiler.account("arrival", 0.5)
        profiler.account("arrival", 0.25)
        profiler.account("done", 1.0)
        profile = profiler.snapshot()
        by_kind = {e.kind: e for e in profile.entries}
        assert by_kind["arrival"].events == 2
        assert by_kind["arrival"].seconds == 0.75
        assert by_kind["arrival"].subsystem == "workload"
        assert by_kind["done"].events == 1
        # Entries come sorted by kind (deterministic snapshots).
        assert [e.kind for e in profile.entries] == ["arrival", "done"]

    def test_clear(self):
        profiler = DESProfiler()
        profiler.account("done", 1.0)
        profiler.clear()
        assert profiler.snapshot().entries == ()


class TestNestedKinds:
    def test_policy_observe_excluded_from_totals(self):
        # policy.observe runs *inside* "done" events: its seconds are
        # already inside done's seconds and must not count twice.
        profiler = DESProfiler()
        profiler.account("done", 2.0)
        profiler.account("policy.observe", 0.5)
        profile = profiler.snapshot()
        assert "policy.observe" in NESTED_KINDS
        assert profile.total_events == 1
        assert profile.total_seconds == 2.0

    def test_nested_rows_still_rendered(self):
        profiler = DESProfiler()
        profiler.account("done", 2.0)
        profiler.account("policy.observe", 0.5)
        table = profiler.snapshot().format_table()
        assert "policy.observe" in table
        assert "(nested)" in table

    def test_empty_profile_renders(self):
        assert "no events" in DESProfiler().snapshot().format_table()


class TestMerge:
    def test_merge_sums_by_kind(self):
        a, b = DESProfiler(), DESProfiler()
        a.account("arrival", 1.0)
        a.account("done", 2.0)
        b.account("done", 3.0)
        b.account("probe", 0.5)
        merged = a.snapshot().merge(b.snapshot())
        by_kind = {e.kind: e for e in merged.entries}
        assert by_kind["done"].events == 2
        assert by_kind["done"].seconds == 5.0
        assert by_kind["probe"].events == 1
        assert [e.kind for e in merged.entries] == sorted(
            e.kind for e in merged.entries
        )

    def test_merge_profiles_is_none_safe(self):
        assert merge_profiles([None, None]) is None
        profiler = DESProfiler()
        profiler.account("done", 1.0)
        profile = profiler.snapshot()
        merged = merge_profiles([None, profile, None, profile])
        assert merged.total_events == 2

    def test_snapshot_is_picklable(self):
        profiler = DESProfiler()
        profiler.account("done", 1.0)
        profile = profiler.snapshot()
        assert pickle.loads(pickle.dumps(profile)) == profile


class TestRegistryExport:
    def test_only_counts_exported_never_seconds(self):
        # Wall-clock seconds are machine noise; exporting them would
        # break the bit-identical serial vs process-pool contract.
        profiler = DESProfiler()
        profiler.account("arrival", 0.123456)
        profiler.account("done", 9.876)
        registry = MetricsRegistry()
        profiler.snapshot().to_registry(registry)
        text = registry.to_prometheus()
        assert (
            'repro_profile_events_total{kind="arrival",'
            'subsystem="workload"} 1' in text
        )
        assert "0.123" not in text
        assert "9.876" not in text

    def test_injected_clock_bracketing(self):
        # The engine brackets event actions with profiler.clock() pairs.
        profiler = DESProfiler(clock=fake_clock([10.0, 10.5]))
        clock = profiler.clock
        started = clock()
        profiler.account("done", clock() - started)
        entry = profiler.snapshot().entries[0]
        assert entry.seconds == 0.5
