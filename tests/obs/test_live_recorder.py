"""The flight recorder: ring semantics, triggers, cooldown, dumps."""

import json
import pickle

import pytest

from repro.obs.events import TraceEvent
from repro.obs.live.recorder import (
    DEFAULT_TRIGGERS,
    FlightRecorder,
    RecorderSpec,
    write_flight_jsonl,
)


def complete(ts, rt=1.0):
    return TraceEvent(ts, "request.complete", "system",
                      {"response_time": rt})


def rejuvenation(ts):
    return TraceEvent(ts, "system.rejuvenation", "node0", {"lost": 2})


class TestRing:
    def test_keeps_last_capacity_events(self):
        recorder = RecorderSpec(capacity=3).build()
        for i in range(10):
            recorder.push(complete(float(i)))
        assert len(recorder) == 3
        assert [e.ts for e in recorder.ring] == [7.0, 8.0, 9.0]

    def test_clear_resets_everything(self):
        recorder = RecorderSpec(capacity=4, cooldown_s=0.0).build()
        recorder.push(rejuvenation(1.0))
        assert recorder.dumps
        recorder.clear()
        assert not recorder.dumps
        assert len(recorder) == 0
        # A post-clear trigger dumps again (cooldown state was reset).
        recorder.push(rejuvenation(2.0))
        assert len(recorder.dumps) == 1


class TestTriggers:
    def test_default_triggers_dump_the_ring(self):
        recorder = RecorderSpec(capacity=4, cooldown_s=0.0).build()
        for i in range(6):
            recorder.push(complete(float(i)))
        recorder.push(rejuvenation(6.0))
        assert [d.reason for d in recorder.dumps] == ["system.rejuvenation"]
        dump = recorder.dumps[0]
        assert dump.ts == 6.0
        # Oldest first; the triggering event is the last entry.
        assert len(dump.events) == 4
        assert dump.events[-1].etype == "system.rejuvenation"

    def test_fault_injected_is_a_default_trigger(self):
        assert "fault.injected" in DEFAULT_TRIGGERS
        recorder = RecorderSpec(cooldown_s=0.0).build()
        recorder.push(
            TraceEvent(5.0, "fault.injected", "campaign", {"kind": "surge"})
        )
        assert [d.reason for d in recorder.dumps] == ["fault.injected"]

    def test_slo_breach_dumps_with_reason(self):
        recorder = RecorderSpec(slo_s=10.0, cooldown_s=0.0).build()
        recorder.push(complete(1.0, rt=9.0))  # under the SLO: no dump
        assert not recorder.dumps
        recorder.push(complete(2.0, rt=10.5))
        assert [d.reason for d in recorder.dumps] == ["slo_breach"]

    def test_no_slo_means_no_breach_dumps(self):
        recorder = RecorderSpec(cooldown_s=0.0).build()
        recorder.push(complete(1.0, rt=1e9))
        assert not recorder.dumps


class TestBounds:
    def test_cooldown_suppresses_storms(self):
        recorder = RecorderSpec(cooldown_s=60.0).build()
        recorder.push(rejuvenation(0.0))
        recorder.push(rejuvenation(30.0))  # inside the cooldown window
        recorder.push(rejuvenation(61.0))  # outside
        assert [d.ts for d in recorder.dumps] == [0.0, 61.0]
        assert recorder.dropped == 1

    def test_max_dumps_caps_memory(self):
        recorder = RecorderSpec(cooldown_s=0.0, max_dumps=2).build()
        for i in range(5):
            recorder.push(rejuvenation(float(i)))
        assert len(recorder.dumps) == 2
        assert recorder.dropped == 3

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            RecorderSpec(capacity=0)
        with pytest.raises(ValueError):
            RecorderSpec(cooldown_s=-1.0)
        with pytest.raises(ValueError):
            RecorderSpec(max_dumps=0)


class TestSerialisation:
    def test_dumps_are_picklable(self):
        recorder = RecorderSpec(capacity=2, cooldown_s=0.0).build()
        recorder.push(complete(1.0))
        recorder.push(rejuvenation(2.0))
        revived = pickle.loads(pickle.dumps(tuple(recorder.dumps)))
        assert revived == tuple(recorder.dumps)

    def test_write_flight_jsonl_round_trip(self, tmp_path):
        recorder = RecorderSpec(capacity=2, cooldown_s=0.0).build()
        recorder.push(complete(1.0))
        recorder.push(rejuvenation(2.0))
        path = str(tmp_path / "flight.jsonl")
        lines = write_flight_jsonl(
            path, [recorder.dumps, None, recorder.dumps]
        )
        assert lines == 2
        records = [json.loads(l) for l in open(path)]
        assert [r["run"] for r in records] == [0, 2]
        assert records[0]["reason"] == "system.rejuvenation"
        assert records[0]["events"][-1]["type"] == "system.rejuvenation"
