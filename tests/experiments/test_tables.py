"""Series/Table containers and their text rendering."""

import math

import pytest

from repro.experiments.tables import ExperimentResult, Series, Table


def make_table() -> Table:
    table = Table(title="T", x_label="load", y_label="rt")
    a = Series(label="A")
    a.add(1.0, 10.0)
    a.add(2.0, 20.0)
    b = Series(label="B")
    b.add(2.0, 200.0)
    b.add(3.0, 300.0)
    table.add_series(a)
    table.add_series(b)
    return table


class TestSeries:
    def test_points_sorted(self):
        series = Series(label="s")
        series.add(3.0, 1.0)
        series.add(1.0, 2.0)
        assert series.xs() == [1.0, 3.0]

    def test_value_at(self):
        series = Series(label="s")
        series.add(1.0, 42.0)
        assert series.value_at(1.0) == 42.0
        with pytest.raises(KeyError):
            series.value_at(2.0)

    def test_add_overwrites(self):
        series = Series(label="s")
        series.add(1.0, 1.0)
        series.add(1.0, 9.0)
        assert series.value_at(1.0) == 9.0


class TestTable:
    def test_xs_is_union(self):
        assert make_table().xs() == [1.0, 2.0, 3.0]

    def test_rows_align_with_nan_gaps(self):
        rows = make_table().to_rows()
        assert rows[0][1] == 10.0
        assert math.isnan(rows[0][2])  # B has no point at x=1
        assert rows[1] == (2.0, 20.0, 200.0)

    def test_get_series(self):
        table = make_table()
        assert table.get_series("B").value_at(3.0) == 300.0
        with pytest.raises(KeyError):
            table.get_series("C")

    def test_format_contains_everything(self):
        text = make_table().format_text()
        for token in ("T", "load", "A", "B", "20", "300"):
            assert token in text

    def test_notes_rendered(self):
        table = make_table()
        table.notes.append("hello world")
        assert "note: hello world" in table.format_text()

    def test_empty_table_formats(self):
        table = Table(title="empty", x_label="x", y_label="y")
        assert "empty" in table.format_text()


class TestExperimentResult:
    def test_format_includes_tables_and_expectations(self):
        result = ExperimentResult(
            experiment_id="figX",
            description="demo",
            tables=[make_table()],
            paper_expectations=["curves cross"],
        )
        text = result.format_text()
        assert "figX" in text
        assert "demo" in text
        assert "curves cross" in text
        assert "A" in text
