"""E4/E5 -- Figures 9 and 10: SRAA with n*K*D = 15."""

from conftest import (
    assertions_enabled,
    high_loads,
    low_loads,
    regenerate,
    series_mean,
)

K1_LABELS = ["(n=3, K=1, D=5)", "(n=5, K=1, D=3)", "(n=15, K=1, D=1)"]
MULTI_LABELS = ["(n=1, K=3, D=5)", "(n=1, K=5, D=3)", "(n=3, K=5, D=1)",
                "(n=5, K=3, D=1)"]


def test_fig09_10_sraa_nkd15(benchmark):
    result = regenerate(benchmark, "fig09_10")
    if not assertions_enabled():
        return
    rt, loss = result.tables
    highs = high_loads(rt)
    lows = low_loads(loss)
    # Fig. 9 dichotomy: K=1 configurations give better high-load RTs
    # than multi-bucket ones.
    k1_rt = sum(series_mean(rt.get_series(l), highs) for l in K1_LABELS) / 3
    multi_rt = sum(
        series_mean(rt.get_series(l), highs) for l in MULTI_LABELS
    ) / len(MULTI_LABELS)
    assert k1_rt < multi_rt
    # Fig. 10: the K=1 improvement costs loss at low loads, where
    # multi-bucket configurations lose (essentially) nothing.
    k1_loss = sum(series_mean(loss.get_series(l), lows) for l in K1_LABELS) / 3
    multi_loss = sum(
        series_mean(loss.get_series(l), lows) for l in MULTI_LABELS
    ) / len(MULTI_LABELS)
    assert k1_loss > multi_loss
    assert multi_loss < 0.002
