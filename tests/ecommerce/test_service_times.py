"""Service-time samplers and their wiring into the node."""

import dataclasses
import math

import numpy as np
import pytest

from repro.ecommerce.config import PAPER_CONFIG
from repro.ecommerce.runner import run_once
from repro.ecommerce.service_times import (
    SERVICE_DISTRIBUTIONS,
    make_service_sampler,
)
from repro.ecommerce.workload import PoissonArrivals

MEAN = 5.0


def sample_stats(distribution, cv=1.0, n=40_000, seed=0):
    rng = np.random.default_rng(seed)
    sampler = make_service_sampler(distribution, MEAN, cv=cv, rng=rng)
    values = np.array([sampler() for _ in range(n)])
    return values.mean(), values.std() / values.mean()


class TestSamplers:
    @pytest.mark.parametrize("distribution", SERVICE_DISTRIBUTIONS)
    def test_mean_is_exact(self, distribution):
        cv = 2.0 if distribution == "hyperexponential" else 1.0
        mean, _ = sample_stats(distribution, cv=cv)
        assert mean == pytest.approx(MEAN, rel=0.05)

    def test_exponential_cv_one(self):
        _, cv = sample_stats("exponential")
        assert cv == pytest.approx(1.0, abs=0.05)

    def test_deterministic_is_constant(self):
        sampler = make_service_sampler("deterministic", MEAN)
        assert {sampler() for _ in range(10)} == {MEAN}

    def test_erlang2_cv(self):
        _, cv = sample_stats("erlang2")
        assert cv == pytest.approx(1.0 / math.sqrt(2.0), abs=0.05)

    @pytest.mark.parametrize("target_cv", [0.5, 1.5, 3.0])
    def test_lognormal_cv(self, target_cv):
        _, cv = sample_stats("lognormal", cv=target_cv, n=150_000)
        assert cv == pytest.approx(target_cv, rel=0.1)

    def test_hyperexponential_cv(self):
        _, cv = sample_stats("hyperexponential", cv=2.0, n=150_000)
        assert cv == pytest.approx(2.0, rel=0.1)

    def test_all_samples_nonnegative(self):
        for distribution in SERVICE_DISTRIBUTIONS:
            cv = 2.0 if distribution == "hyperexponential" else 1.0
            rng = np.random.default_rng(1)
            sampler = make_service_sampler(distribution, MEAN, cv=cv, rng=rng)
            assert all(sampler() >= 0.0 for _ in range(500))

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            make_service_sampler("exponential", 0.0, rng=rng)
        with pytest.raises(ValueError):
            make_service_sampler("nonsense", MEAN, rng=rng)
        with pytest.raises(ValueError):
            make_service_sampler("exponential", MEAN, rng=None)
        with pytest.raises(ValueError):
            make_service_sampler("hyperexponential", MEAN, cv=1.0, rng=rng)
        with pytest.raises(ValueError):
            make_service_sampler("lognormal", MEAN, cv=0.0, rng=rng)


class TestConfigIntegration:
    def test_config_validates_distribution(self):
        with pytest.raises(ValueError):
            dataclasses.replace(
                PAPER_CONFIG, service_distribution="uniform"
            )

    def test_deterministic_service_end_to_end(self):
        config = dataclasses.replace(
            PAPER_CONFIG,
            service_distribution="deterministic",
            enable_gc=False,
            enable_overhead=False,
        )
        # M/D/16 at trivial load: every response time is exactly 5 s.
        result = run_once(
            config, PoissonArrivals(0.05), None, 2_000, seed=3,
            collect_response_times=True,
        )
        assert result.response_times is not None
        waits = [rt for rt in result.response_times if rt != 5.0]
        # At this load queueing is rare; nearly all RTs equal the
        # deterministic service time.
        assert len(waits) < len(result.response_times) * 0.05

    def test_md_c_has_less_rt_variance_than_mmc(self):
        base = dataclasses.replace(
            PAPER_CONFIG, enable_gc=False, enable_overhead=False
        )
        deterministic = dataclasses.replace(
            base, service_distribution="deterministic"
        )
        mmc = run_once(base, PoissonArrivals(1.6), None, 10_000, seed=4)
        mdc = run_once(
            deterministic, PoissonArrivals(1.6), None, 10_000, seed=4
        )
        assert mdc.rt_std < mmc.rt_std * 0.5
