"""The `repro runs` subcommands and ledger recording end to end.

These tests exercise the same path a user does: `simulate` records an
entry, `runs baseline` pins it, `runs check` compares a candidate
against the pin, and an injected regression walks the 0 -> 1 -> 2 exit
codes (ok -> exceeded -> flagged).
"""

import json
import os

import pytest

from repro.cli import main

SIMULATE = [
    "simulate",
    "--policy", "sraa",
    "-p", "n=2", "-p", "K=5", "-p", "D=3",
    "--load", "9",
    "--transactions", "800",
    "--replications", "2",
    "--seed", "7",
]


def simulate(extra=(), capsys=None):
    assert main(SIMULATE + list(extra)) == 0
    if capsys is not None:
        return capsys.readouterr().out
    return None


class TestRecording:
    def test_simulate_records_entry(self, capsys):
        out = simulate(capsys=capsys)
        assert "ledger            : recorded sim-0001-" in out
        assert main(["runs", "list"]) == 0
        assert "sim-0001-" in capsys.readouterr().out

    def test_no_ledger_flag_records_nothing(self, capsys):
        simulate(["--no-ledger"])
        capsys.readouterr()
        with pytest.raises(SystemExit) as excinfo:
            main(["runs", "show", "latest"])
        assert "empty" in str(excinfo.value)

    def test_entries_deterministic_across_reruns(self, capsys):
        simulate()
        simulate()
        capsys.readouterr()
        assert main(["runs", "show", "sim-0001", "--json"]) == 0
        first = json.loads(capsys.readouterr().out)
        assert main(["runs", "show", "sim-0002", "--json"]) == 0
        second = json.loads(capsys.readouterr().out)
        assert (
            first["manifest"]["manifest_hash"]
            == second["manifest"]["manifest_hash"]
        )
        assert first["outcomes"] == second["outcomes"]


class TestShowAndDiff:
    def test_show_formats_provenance(self, capsys):
        simulate()
        capsys.readouterr()
        assert main(["runs", "show", "latest"]) == 0
        out = capsys.readouterr().out
        assert "manifest hash" in out
        assert "seed protocol" in out

    def test_diff_identical_exits_zero(self, capsys):
        simulate()
        simulate()
        capsys.readouterr()
        assert main(["runs", "diff", "sim-0001", "sim-0002"]) == 0

    def test_diff_different_specs_exits_one(self, capsys):
        simulate()
        simulate(["--load", "11"])
        capsys.readouterr()
        assert main(["runs", "diff", "sim-0001", "sim-0002"]) == 1
        assert "rate" in capsys.readouterr().out


class TestCheck:
    def test_check_against_pinned_baseline_ok(self, capsys):
        simulate()
        assert main(["runs", "baseline", "sim-0001"]) == 0
        simulate()
        capsys.readouterr()
        assert main(["runs", "check"]) == 0
        out = capsys.readouterr().out
        assert "verdict: ok" in out

    def test_regression_walks_exit_codes(self, capsys):
        simulate()
        assert main(["runs", "baseline", "sim-0001"]) == 0
        simulate(["--load", "13"])
        capsys.readouterr()
        assert main(["runs", "check"]) == 1
        out = capsys.readouterr().out
        assert "DRIFT" in out
        assert "EXCEEDED" in out
        # Second consecutive exceedance trips the persistence filter.
        assert main(["runs", "check"]) == 2
        assert "FLAGGED" in capsys.readouterr().out

    def test_warn_only_masks_exit_code(self, capsys):
        simulate()
        assert main(["runs", "baseline", "sim-0001"]) == 0
        simulate(["--load", "13"])
        capsys.readouterr()
        assert main(["runs", "check", "--warn-only"]) == 0
        assert "EXCEEDED" in capsys.readouterr().out

    def test_check_against_entry_file(self, tmp_path, capsys):
        simulate()
        capsys.readouterr()
        assert main(["runs", "show", "latest", "--json"]) == 0
        entry = capsys.readouterr().out
        path = tmp_path / "baseline.json"
        path.write_text(entry)
        assert main(["runs", "check", "--against", str(path)]) == 0
        assert "verdict: ok" in capsys.readouterr().out

    def test_check_json_output(self, capsys):
        simulate()
        assert main(["runs", "baseline", "sim-0001"]) == 0
        capsys.readouterr()
        assert main(["runs", "check", "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["exceeded"] is False
        assert report["checks"]

    def test_missing_baseline_explains(self, capsys):
        simulate()
        capsys.readouterr()
        with pytest.raises(SystemExit) as excinfo:
            main(["runs", "check"])
        assert "baseline" in str(excinfo.value)


class TestBaselinePins:
    def test_listing_pins(self, capsys):
        simulate()
        assert main(["runs", "baseline", "latest", "--label", "smoke"]) == 0
        capsys.readouterr()
        assert main(["runs", "baseline"]) == 0
        assert "smoke" in capsys.readouterr().out

    def test_list_marks_baseline(self, capsys):
        simulate()
        assert main(["runs", "baseline", "latest"]) == 0
        capsys.readouterr()
        assert main(["runs", "list"]) == 0
        assert "[baseline:default]" in capsys.readouterr().out


class TestBench:
    def test_empty_bench_dir(self, capsys):
        assert main(["runs", "bench"]) == 0
        assert "no benchmark trajectories" in capsys.readouterr().out

    def test_lists_and_validates_trajectories(self, capsys):
        from repro.obs.ledger.bench import record_bench_point

        record_bench_point("mmc_baseline_smoke", 0.5, seed=1)
        assert main(["runs", "bench"]) == 0
        out = capsys.readouterr().out
        assert "mmc_baseline_smoke" in out
        assert "INVALID" not in out


class TestVersion:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert capsys.readouterr().out.startswith("repro ")

    def test_package_dunder_version(self):
        import repro

        assert repro.__version__
        assert repro.__version__[0].isdigit()


class TestLedgerDirOption:
    def test_explicit_ledger_dir(self, tmp_path, capsys):
        simulate()
        capsys.readouterr()
        other = str(tmp_path / "elsewhere")
        assert main(["runs", "list", "--ledger", other]) == 0
        # Entries recorded by simulate went to the env-pointed ledger,
        # not to the explicit one.
        assert "no recorded runs" in capsys.readouterr().out
        assert not os.path.exists(os.path.join(other, "runs.jsonl"))
