"""Event queue semantics: ordering, ties, cancellation."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.des.events import Event, EventQueue


def _noop() -> None:
    pass


class TestEvent:
    def test_cancel_marks_event(self):
        event = Event(1.0, _noop)
        assert not event.cancelled
        event.cancel()
        assert event.cancelled

    def test_ordering_is_by_time(self):
        early, late = Event(1.0, _noop), Event(2.0, _noop)
        early.sequence, late.sequence = 1, 0
        assert early < late

    def test_ties_broken_by_sequence(self):
        first, second = Event(1.0, _noop), Event(1.0, _noop)
        first.sequence, second.sequence = 0, 1
        assert first < second


class TestEventQueue:
    def test_pop_returns_time_order(self):
        queue = EventQueue()
        times = [5.0, 1.0, 3.0, 2.0, 4.0]
        for t in times:
            queue.push(Event(t, _noop))
        popped = [queue.pop().time for _ in range(len(times))]
        assert popped == sorted(times)

    def test_simultaneous_events_pop_fifo(self):
        queue = EventQueue()
        events = [Event(1.0, _noop, kind=str(i)) for i in range(5)]
        for event in events:
            queue.push(event)
        kinds = [queue.pop().kind for _ in range(5)]
        assert kinds == ["0", "1", "2", "3", "4"]

    def test_len_counts_live_events_only(self):
        queue = EventQueue()
        kept = queue.push(Event(1.0, _noop))
        dropped = queue.push(Event(2.0, _noop))
        assert len(queue) == 2
        queue.cancel(dropped)
        assert len(queue) == 1
        assert queue.pop() is kept
        assert len(queue) == 0

    def test_cancelled_event_never_pops(self):
        queue = EventQueue()
        dropped = queue.push(Event(1.0, _noop))
        kept = queue.push(Event(2.0, _noop))
        queue.cancel(dropped)
        assert queue.pop() is kept

    def test_double_cancel_is_noop(self):
        queue = EventQueue()
        event = queue.push(Event(1.0, _noop))
        queue.push(Event(2.0, _noop))
        queue.cancel(event)
        queue.cancel(event)
        assert len(queue) == 1

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            EventQueue().pop()

    def test_peek_skips_cancelled(self):
        queue = EventQueue()
        dropped = queue.push(Event(1.0, _noop))
        kept = queue.push(Event(2.0, _noop))
        queue.cancel(dropped)
        assert queue.peek() is kept
        assert len(queue) == 1  # peek does not consume

    def test_peek_empty_returns_none(self):
        assert EventQueue().peek() is None

    def test_push_cancelled_event_rejected(self):
        event = Event(1.0, _noop)
        event.cancel()
        with pytest.raises(ValueError):
            EventQueue().push(event)

    def test_push_same_event_twice_rejected(self):
        queue = EventQueue()
        event = queue.push(Event(1.0, _noop))
        with pytest.raises(ValueError):
            queue.push(event)

    def test_clear_empties_queue(self):
        queue = EventQueue()
        for t in (1.0, 2.0):
            queue.push(Event(t, _noop))
        queue.clear()
        assert len(queue) == 0
        assert queue.peek() is None

    def test_bool_reflects_liveness(self):
        queue = EventQueue()
        assert not queue
        event = queue.push(Event(1.0, _noop))
        assert queue
        queue.cancel(event)
        assert not queue

    def test_iter_pending_excludes_cancelled(self):
        queue = EventQueue()
        kept = queue.push(Event(1.0, _noop))
        dropped = queue.push(Event(2.0, _noop))
        queue.cancel(dropped)
        assert list(queue.iter_pending()) == [kept]

    @given(st.lists(st.floats(min_value=0.0, max_value=1e6), max_size=50))
    def test_property_pop_order_is_sorted(self, times):
        queue = EventQueue()
        for t in times:
            queue.push(Event(t, _noop))
        popped = [queue.pop().time for _ in range(len(times))]
        assert popped == sorted(times)

    @given(
        st.lists(st.floats(min_value=0.0, max_value=1e6), max_size=40),
        st.sets(st.integers(min_value=0, max_value=39)),
    )
    def test_property_cancellation_removes_exactly_those(self, times, drop):
        queue = EventQueue()
        events = [queue.push(Event(t, _noop)) for t in times]
        for index in drop:
            if index < len(events):
                queue.cancel(events[index])
        expected = sorted(
            t
            for i, t in enumerate(times)
            if not (i in drop)
        )
        popped = [queue.pop().time for _ in range(len(queue))]
        assert popped == expected
