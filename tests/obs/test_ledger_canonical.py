"""Canonical JSON and content hashing: key-order and type invariance."""

import json
import math

import pytest

from repro.core.spec import PolicySpec
from repro.obs.ledger.canonical import canonical_hash, canonical_json, to_plain


class TestKeyOrderInvariance:
    def test_same_dict_different_order_same_hash(self):
        a = {"n": 2, "K": 5, "D": 3, "nested": {"x": 1, "y": 2}}
        b = {"nested": {"y": 2, "x": 1}, "D": 3, "K": 5, "n": 2}
        assert canonical_hash(a) == canonical_hash(b)

    def test_different_content_different_hash(self):
        assert canonical_hash({"n": 2}) != canonical_hash({"n": 3})

    def test_canonical_json_is_sorted_and_compact(self):
        text = canonical_json({"b": 1, "a": [1, 2]})
        assert text == '{"a":[1,2],"b":1}'


class TestToPlain:
    def test_scalars_pass_through(self):
        for value in (None, True, False, 0, -3, "text", 2.5):
            assert to_plain(value) == value

    def test_tuple_and_list_equivalent(self):
        assert canonical_hash((1, 2, 3)) == canonical_hash([1, 2, 3])

    def test_dataclass_spec_matches_its_dict(self):
        spec = PolicySpec.sraa(2, 5, 3)
        from dataclasses import asdict

        assert canonical_hash(spec) == canonical_hash(asdict(spec))

    def test_non_string_keys_coerced(self):
        assert to_plain({1: "a"}) == {"1": "a"}

    def test_non_finite_floats_named(self):
        assert to_plain(math.inf) == "Infinity"
        assert to_plain(-math.inf) == "-Infinity"
        assert to_plain(math.nan) == "NaN"

    def test_canonical_json_never_emits_bare_nan(self):
        text = canonical_json({"limit": math.inf, "gap": math.nan})
        # Must stay loadable by strict JSON parsers.
        json.loads(text)

    def test_callable_reduced_to_qualified_name(self):
        plain = to_plain(math.sqrt)
        assert plain == {"factory": "math.sqrt"}

    def test_to_dict_carrier_used(self):
        class Carrier:
            def to_dict(self):
                return {"kind": "carrier"}

        assert to_plain(Carrier()) == {"kind": "carrier"}

    def test_unsupported_type_rejected(self):
        with pytest.raises(TypeError, match="canonicalise"):
            to_plain(object())

    def test_nested_structures_normalised(self):
        spec = {"policies": [PolicySpec.sraa(2, 5, 3), None]}
        plain = to_plain(spec)
        assert plain["policies"][1] is None
        assert plain["policies"][0]["name"] == "sraa"
