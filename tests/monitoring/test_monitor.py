"""The streaming rejuvenation monitor."""

import pytest

from repro.core.clta import CLTA
from repro.core.sla import ServiceLevelObjective
from repro.core.sraa import SRAA
from repro.monitoring.monitor import RejuvenationMonitor

SLO = ServiceLevelObjective(mean=5.0, std=5.0)


class TestFeeding:
    def test_counts_observations(self):
        monitor = RejuvenationMonitor(CLTA(SLO, sample_size=10))
        for _ in range(7):
            monitor.feed(5.0)
        assert monitor.observations == 7

    def test_trigger_detected_and_counted(self):
        monitor = RejuvenationMonitor(CLTA(SLO, sample_size=2, z=1.96))
        assert monitor.feed(100.0) is False
        assert monitor.feed(100.0) is True
        assert monitor.triggers == 1

    def test_callback_invoked_with_time(self):
        fired = []
        monitor = RejuvenationMonitor(
            CLTA(SLO, sample_size=1, z=1.96), on_rejuvenate=fired.append
        )
        monitor.feed(100.0, time=12.5)
        assert fired == [12.5]

    def test_time_defaults_to_observation_index(self):
        monitor = RejuvenationMonitor(CLTA(SLO, sample_size=1, z=1.96))
        monitor.feed(1.0)
        monitor.feed(100.0)
        assert monitor.trigger_times == [2.0]

    def test_metric_moments_tracked(self):
        monitor = RejuvenationMonitor(CLTA(SLO, sample_size=100))
        for value in (4.0, 6.0):
            monitor.feed(value)
        assert monitor.moments.mean == pytest.approx(5.0)


class TestReport:
    def test_report_contents(self):
        monitor = RejuvenationMonitor(CLTA(SLO, sample_size=1, z=1.96))
        for t, value in enumerate((100.0, 1.0, 100.0)):
            monitor.feed(value, time=float(t))
        report = monitor.report()
        assert report.observations == 3
        assert report.triggers == 2
        assert report.trigger_times == [0.0, 2.0]

    def test_mean_time_between_triggers(self):
        monitor = RejuvenationMonitor(CLTA(SLO, sample_size=1, z=1.96))
        for t in (10.0, 30.0, 60.0):
            monitor.feed(100.0, time=t)
        assert monitor.report().mean_time_between_triggers == pytest.approx(
            25.0
        )

    def test_mean_time_between_triggers_degenerate(self):
        monitor = RejuvenationMonitor(CLTA(SLO, sample_size=1, z=1.96))
        monitor.feed(100.0, time=1.0)
        assert monitor.report().mean_time_between_triggers == float("inf")


class TestInputValidation:
    def test_nan_rejected(self):
        monitor = RejuvenationMonitor(CLTA(SLO, sample_size=5))
        with pytest.raises(ValueError):
            monitor.feed(float("nan"))
        assert monitor.observations == 0

    def test_infinity_rejected(self):
        monitor = RejuvenationMonitor(CLTA(SLO, sample_size=5))
        with pytest.raises(ValueError):
            monitor.feed(float("inf"))


class TestExternalRejuvenation:
    def test_policy_state_cleared(self):
        policy = SRAA(SLO, sample_size=1, n_buckets=3, depth=2)
        monitor = RejuvenationMonitor(policy)
        for _ in range(4):
            monitor.feed(100.0)
        assert policy.level > 0
        monitor.notify_external_rejuvenation()
        assert policy.level == 0
        assert policy.chain.fill == 0
