"""M/M/c model against textbook formulas and the paper's equations."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.integrate import quad

from repro.queueing.mmc import MMcModel


def erlang_c_reference(a: float, c: int) -> float:
    """Erlang-C via the textbook factorial formula (small c only)."""
    rho = a / c
    top = a**c / math.factorial(c) / (1 - rho)
    bottom = sum(a**k / math.factorial(k) for k in range(c)) + top
    return top / bottom


class TestLoadMeasures:
    def test_traffic_intensity(self, paper_model):
        assert paper_model.traffic_intensity == pytest.approx(0.5)

    def test_offered_load_cpus(self, paper_model):
        assert paper_model.offered_load_cpus == pytest.approx(8.0)

    def test_stability(self):
        assert MMcModel(1.0, 0.2, 16).is_stable
        assert not MMcModel(3.2, 0.2, 16).is_stable

    def test_from_offered_load(self):
        model = MMcModel.from_offered_load(9.0, 0.2, 16)
        assert model.arrival_rate == pytest.approx(1.8)

    def test_validation(self):
        with pytest.raises(ValueError):
            MMcModel(-1.0, 0.2, 16)
        with pytest.raises(ValueError):
            MMcModel(1.0, 0.0, 16)
        with pytest.raises(ValueError):
            MMcModel(1.0, 0.2, 0)


class TestErlangC:
    @pytest.mark.parametrize(
        "lam, mu, c",
        [(1.6, 0.2, 16), (0.5, 0.2, 16), (2.0, 1.0, 3), (0.9, 1.0, 1)],
    )
    def test_matches_reference(self, lam, mu, c):
        model = MMcModel(lam, mu, c)
        assert model.erlang_c() == pytest.approx(
            erlang_c_reference(lam / mu, c), rel=1e-10
        )

    def test_zero_arrivals(self):
        assert MMcModel(0.0, 1.0, 4).erlang_c() == 0.0
        assert MMcModel(0.0, 1.0, 4).wc() == 1.0

    def test_unstable_raises(self):
        with pytest.raises(ValueError):
            MMcModel(3.2, 0.2, 16).erlang_c()

    def test_paper_value(self, paper_model):
        # W_c at the paper's maximum load: ~0.991 (almost no queueing).
        assert paper_model.wc() == pytest.approx(0.99098, abs=1e-4)


class TestStateProbabilities:
    def test_distribution_sums_to_one(self, paper_model):
        total = sum(paper_model.state_probability(k) for k in range(300))
        assert total == pytest.approx(1.0, abs=1e-9)

    def test_wc_equals_mass_below_c(self, paper_model):
        below = sum(paper_model.state_probability(k) for k in range(16))
        assert below == pytest.approx(paper_model.wc(), abs=1e-10)

    def test_mm1_geometric(self):
        model = MMcModel(0.5, 1.0, 1)
        for k in range(5):
            assert model.state_probability(k) == pytest.approx(
                0.5 * 0.5**k
            )

    def test_little_law(self, paper_model):
        # L = lambda * W with W from eq. (2).
        expected_jobs = sum(
            k * paper_model.state_probability(k) for k in range(400)
        )
        assert paper_model.mean_jobs_in_system() == pytest.approx(
            expected_jobs, rel=1e-8
        )

    def test_negative_state_rejected(self, paper_model):
        with pytest.raises(ValueError):
            paper_model.state_probability(-1)


class TestResponseTime:
    def test_paper_equation_2(self, paper_model):
        drain = 16 * 0.2 - 1.6
        expected = 1 / 0.2 + (1 - paper_model.wc()) / drain
        assert paper_model.response_time_mean() == pytest.approx(expected)

    def test_paper_equation_3(self, paper_model):
        drain = 16 * 0.2 - 1.6
        wc = paper_model.wc()
        expected = 1 / 0.04 + (1 - wc * wc) / drain**2
        assert paper_model.response_time_var() == pytest.approx(expected)

    def test_low_load_baseline_is_five(self):
        # Below 1 transaction/second, mean and sd stay at 1/mu = 5
        # (Section 4.1).
        for lam in (0.1, 0.5, 0.9):
            model = MMcModel(lam, 0.2, 16)
            assert model.response_time_mean() == pytest.approx(5.0, abs=0.01)
            assert model.response_time_std() == pytest.approx(5.0, abs=0.01)

    def test_moments_diverge_at_high_load(self):
        low = MMcModel(0.5, 0.2, 16)
        high = MMcModel(3.0, 0.2, 16)
        assert high.response_time_mean() > low.response_time_mean() + 0.1

    def test_mm1_mean(self):
        # M/M/1: E[RT] = 1 / (mu - lambda).
        model = MMcModel(0.5, 1.0, 1)
        assert model.response_time_mean() == pytest.approx(2.0)

    def test_mm1_response_time_is_exponential(self):
        # M/M/1 FCFS response time ~ Exp(mu - lambda).
        model = MMcModel(0.5, 1.0, 1)
        for x in (0.5, 1.0, 3.0):
            assert model.response_time_cdf(x) == pytest.approx(
                1.0 - math.exp(-0.5 * x), abs=1e-9
            )

    def test_cdf_matches_phase_type(self, paper_model):
        ph = paper_model.response_time_phase_type()
        for x in (0.1, 1.0, 5.0, 20.0):
            assert paper_model.response_time_cdf(x) == pytest.approx(
                ph.cdf(x), abs=1e-9
            )

    def test_phase_type_moments_match_equations(self, paper_model):
        ph = paper_model.response_time_phase_type()
        assert ph.mean() == pytest.approx(paper_model.response_time_mean())
        assert ph.var() == pytest.approx(paper_model.response_time_var())

    def test_degenerate_case_lambda_equals_cm1_mu(self):
        # lambda = (c-1) mu is a removable singularity of eq. (1).
        model = MMcModel(3.0, 0.2, 16)
        ph = model.response_time_phase_type()
        for x in (1.0, 5.0, 10.0):
            assert model.response_time_cdf(x) == pytest.approx(
                ph.cdf(x), abs=1e-8
            )

    def test_pdf_integrates_to_one(self, paper_model):
        total, _ = quad(paper_model.response_time_pdf, 0, 300, limit=300)
        assert total == pytest.approx(1.0, abs=1e-6)

    def test_quantile_inverts_cdf(self, paper_model):
        for q in (0.1, 0.5, 0.9, 0.975):
            x = paper_model.response_time_quantile(q)
            assert paper_model.response_time_cdf(x) == pytest.approx(
                q, abs=1e-9
            )

    def test_quantile_validation(self, paper_model):
        with pytest.raises(ValueError):
            paper_model.response_time_quantile(0.0)

    def test_negative_x(self, paper_model):
        assert paper_model.response_time_cdf(-1.0) == 0.0
        assert paper_model.response_time_pdf(-1.0) == 0.0

    @given(
        st.floats(min_value=0.05, max_value=3.1),
        st.integers(min_value=1, max_value=32),
    )
    @settings(max_examples=30, deadline=None)
    def test_property_mean_at_least_service_time(self, lam, c):
        mu = 0.2
        if lam >= c * mu:
            return  # unstable; nothing to check
        model = MMcModel(lam, mu, c)
        assert model.response_time_mean() >= 1.0 / mu - 1e-9

    @given(st.floats(min_value=0.05, max_value=3.1))
    @settings(max_examples=30, deadline=None)
    def test_property_cdf_monotone(self, lam):
        model = MMcModel(lam, 0.2, 16)
        xs = [0.5, 1.0, 2.0, 5.0, 10.0, 30.0]
        values = [model.response_time_cdf(x) for x in xs]
        assert all(a <= b + 1e-12 for a, b in zip(values, values[1:]))
