"""Welford moments against numpy, including the parallel merge."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats.running import OnlineMoments

floats = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)


class TestBasics:
    def test_known_sequence(self):
        m = OnlineMoments()
        m.extend([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0])
        assert m.mean == pytest.approx(5.0)
        assert m.population_variance == pytest.approx(4.0)
        assert m.variance == pytest.approx(32.0 / 7.0)

    def test_empty(self):
        m = OnlineMoments()
        assert m.count == 0
        assert m.variance == 0.0
        assert m.population_variance == 0.0
        assert len(m) == 0

    def test_single_value(self):
        m = OnlineMoments()
        m.push(3.0)
        assert m.mean == 3.0
        assert m.variance == 0.0
        assert m.minimum == 3.0
        assert m.maximum == 3.0

    def test_min_max_tracking(self):
        m = OnlineMoments()
        m.extend([3.0, -1.0, 7.0, 2.0])
        assert m.minimum == -1.0
        assert m.maximum == 7.0

    def test_numerical_stability_large_offset(self):
        # Naive sum-of-squares fails here; Welford must not.
        m = OnlineMoments()
        offset = 1e9
        m.extend([offset + x for x in (4.0, 7.0, 13.0, 16.0)])
        assert m.variance == pytest.approx(30.0, rel=1e-6)

    @given(st.lists(floats, min_size=2, max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_property_matches_numpy(self, values):
        m = OnlineMoments()
        m.extend(values)
        arr = np.asarray(values)
        assert m.mean == pytest.approx(arr.mean(), rel=1e-9, abs=1e-6)
        assert m.variance == pytest.approx(
            arr.var(ddof=1), rel=1e-6, abs=1e-6
        )


class TestMerge:
    def test_merge_equals_concatenation(self):
        left, right = OnlineMoments(), OnlineMoments()
        left.extend([1.0, 2.0, 3.0])
        right.extend([10.0, 20.0])
        merged = left.merge(right)
        reference = OnlineMoments()
        reference.extend([1.0, 2.0, 3.0, 10.0, 20.0])
        assert merged.count == reference.count
        assert merged.mean == pytest.approx(reference.mean)
        assert merged.variance == pytest.approx(reference.variance)
        assert merged.minimum == reference.minimum
        assert merged.maximum == reference.maximum

    def test_merge_with_empty(self):
        left = OnlineMoments()
        left.extend([1.0, 2.0])
        merged = left.merge(OnlineMoments())
        assert merged.count == 2
        assert merged.mean == pytest.approx(1.5)

    def test_merge_two_empty(self):
        merged = OnlineMoments().merge(OnlineMoments())
        assert merged.count == 0

    @given(
        st.lists(floats, min_size=1, max_size=50),
        st.lists(floats, min_size=1, max_size=50),
    )
    @settings(max_examples=50, deadline=None)
    def test_property_merge_matches_concatenation(self, a, b):
        left, right = OnlineMoments(), OnlineMoments()
        left.extend(a)
        right.extend(b)
        merged = left.merge(right)
        arr = np.asarray(a + b)
        assert merged.mean == pytest.approx(arr.mean(), rel=1e-9, abs=1e-6)
        if len(arr) >= 2:
            assert merged.variance == pytest.approx(
                arr.var(ddof=1), rel=1e-6, abs=1e-6
            )

    def test_merge_empty_left(self):
        right = OnlineMoments()
        right.extend([4.0, 6.0])
        merged = OnlineMoments().merge(right)
        assert merged.count == 2
        assert merged.mean == pytest.approx(5.0)
        assert merged.minimum == 4.0
        assert merged.maximum == 6.0

    def test_merge_does_not_mutate_operands(self):
        left, right = OnlineMoments(), OnlineMoments()
        left.extend([1.0, 2.0])
        right.extend([10.0])
        left.merge(right)
        assert left.count == 2 and left.mean == pytest.approx(1.5)
        assert right.count == 1 and right.mean == pytest.approx(10.0)

    def test_merge_singletons(self):
        # The Chan et al. delta path with count == 1 on both sides.
        left, right = OnlineMoments(), OnlineMoments()
        left.push(2.0)
        right.push(8.0)
        merged = left.merge(right)
        assert merged.mean == pytest.approx(5.0)
        assert merged.variance == pytest.approx(18.0)

    def test_fold_order_equals_flat_extend(self):
        # Submission-order folding (the live-telemetry contract):
        # ((a + b) + c) must agree with one pass over a + b + c.
        chunks = [[1.0, 2.0], [3.0], [4.0, 5.0, 6.0]]
        folded = OnlineMoments()
        for chunk in chunks:
            part = OnlineMoments()
            part.extend(chunk)
            folded = folded.merge(part)
        flat = OnlineMoments()
        flat.extend([v for chunk in chunks for v in chunk])
        assert folded.count == flat.count
        assert folded.mean == pytest.approx(flat.mean)
        assert folded.variance == pytest.approx(flat.variance)
        assert folded.minimum == flat.minimum
        assert folded.maximum == flat.maximum
