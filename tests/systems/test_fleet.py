"""The sharded fleet substrate: splits, seeds, merging, invariants."""

import dataclasses
import time
from collections import defaultdict

import pytest

from repro.core.spec import PolicySpec
from repro.ecommerce.config import PAPER_CONFIG
from repro.ecommerce.spec import ArrivalSpec
from repro.exec.backends import make_backend, use_backend
from repro.systems import FleetSpec, SchedulerSpec
from repro.systems.fleet import shard_seed, split_proportionally


class _AlwaysTrigger:
    """Fires on every completion: maximal scheduler contention."""

    name = "always"

    def observe(self, value):
        return True

    def reset(self):
        pass

    def set_listener(self, listener):
        pass


def _always_policy():
    return _AlwaysTrigger()


def make_fleet(
    n_nodes=12,
    shards=3,
    scheduler=None,
    downtime_s=60.0,
    rate_per_node=1.8,
    policy=PolicySpec.sraa(2, 5, 3),
    seed=0,
):
    config = dataclasses.replace(
        PAPER_CONFIG, rejuvenation_downtime_s=downtime_s
    )
    spec = FleetSpec(n_nodes=n_nodes, shards=shards, scheduler=scheduler)
    return spec.build(
        config, ArrivalSpec.poisson(rate_per_node), policy, seed=seed
    )


def max_concurrent(intervals):
    """Peak overlap of (start, end) intervals (ends close first)."""
    events = []
    for start, end in intervals:
        if end > start:
            events.append((start, 1))
            events.append((end, -1))
    peak = level = 0
    for _, delta in sorted(events, key=lambda e: (e[0], e[1])):
        level += delta
        peak = max(peak, level)
    return peak


class TestSplitHelpers:
    def test_split_sums_exactly(self):
        assert sum(split_proportionally(10_007, (3, 3, 4))) == 10_007

    def test_split_proportional(self):
        assert split_proportionally(100, (1, 1, 2)) == [25, 25, 50]

    def test_split_zero_weight_shard_gets_nothing(self):
        assert split_proportionally(10, (0, 1)) == [0, 10]

    def test_split_rejects_empty_weights(self):
        with pytest.raises(ValueError):
            split_proportionally(10, ())

    def test_shard_sizes_spread_remainder(self):
        spec = FleetSpec(n_nodes=10, shards=3)
        assert spec.shard_sizes() == (4, 3, 3)
        assert spec.shard_offsets() == (0, 4, 7)

    def test_shard_seed_rule(self):
        assert shard_seed(5, 0) == 5 + 104729
        assert shard_seed(5, 2) == 5 + 3 * 104729
        assert shard_seed(None, 3) is None


class TestFleetRun:
    def test_conservation_across_shards(self):
        result = make_fleet().run(3_000)
        assert result.arrivals == 3_000
        assert result.completed + result.lost == 3_000

    def test_per_node_stats_cover_the_whole_fleet(self):
        result = make_fleet(n_nodes=12, shards=3).run(3_000)
        assert len(result.nodes) == 12
        names = [stats.name for stats in result.nodes]
        assert names == [f"node{i}" for i in range(12)]

    def test_deterministic_for_a_seed(self):
        a = make_fleet(seed=4).run(2_400)
        b = make_fleet(seed=4).run(2_400)
        assert a.avg_response_time == b.avg_response_time
        assert a.lost == b.lost

    def test_seeds_differentiate_runs(self):
        a = make_fleet(seed=1).run(2_400)
        b = make_fleet(seed=2).run(2_400)
        assert a.avg_response_time != b.avg_response_time

    def test_serial_and_pool_runs_bit_identical(self):
        scheduler = SchedulerSpec.rolling(capacity_floor=0.5)
        with use_backend(make_backend("serial")):
            serial_fleet = make_fleet(scheduler=scheduler)
            serial = serial_fleet.run(3_000)
        with use_backend(make_backend("process", workers=3)):
            pooled_fleet = make_fleet(scheduler=scheduler)
            pooled = pooled_fleet.run(3_000)
        assert serial == pooled
        assert serial_fleet.grant_log == pooled_fleet.grant_log

    def test_moments_merge_exactly(self):
        # The merged mean/std must equal a single-pass fold over every
        # collected response time, not an average of shard averages.
        import numpy as np

        fleet = make_fleet(n_nodes=9, shards=3)
        result = fleet.run(3_000, collect_response_times=True)
        times = np.asarray(result.response_times)
        assert result.avg_response_time == pytest.approx(
            float(times.mean()), rel=1e-12
        )
        assert result.rt_std == pytest.approx(
            float(times.std(ddof=1)), rel=1e-9
        )
        assert result.max_response_time == float(times.max())

    def test_too_few_transactions_for_the_shards(self):
        fleet = make_fleet(n_nodes=12, shards=3)
        with pytest.raises(ValueError, match="shard"):
            fleet.run(2)

    def test_run_validation(self):
        fleet = make_fleet()
        with pytest.raises(ValueError):
            fleet.run(0)
        with pytest.raises(ValueError):
            fleet.run(100, warmup=100)

    def test_telemetry_rejected(self):
        from repro.systems import ObsSpec

        spec = FleetSpec(n_nodes=4, shards=2)
        with pytest.raises(ValueError, match="telemetry"):
            spec.build(
                PAPER_CONFIG,
                ArrivalSpec.poisson(1.0),
                None,
                obs=ObsSpec(telemetry_interval_s=10.0),
            )


class TestSchedulerInvariants:
    """Replay the merged grant log against the configured limits."""

    def _grants_by_shard(self, spec, grant_log):
        offsets = spec.shard_offsets()
        sizes = spec.shard_sizes()
        by_shard = defaultdict(list)
        for grant_time, node, down_until in grant_log:
            for i, (offset, size) in enumerate(zip(offsets, sizes)):
                if offset <= node < offset + size:
                    by_shard[i].append((grant_time, node, down_until))
                    break
            else:  # pragma: no cover - merge contract
                raise AssertionError(f"grant for unknown node {node}")
        return by_shard

    def test_capacity_floor_holds_in_every_shard(self):
        scheduler = SchedulerSpec.rolling(capacity_floor=0.75)
        fleet = make_fleet(
            n_nodes=12,
            shards=3,
            scheduler=scheduler,
            downtime_s=30.0,
            policy=_always_policy,
        )
        fleet.run(3_000)
        assert fleet.granted > 0
        assert fleet.denied > 0
        by_shard = self._grants_by_shard(fleet.spec, fleet.grant_log)
        for i, grants in by_shard.items():
            cap = scheduler.resolved_max_down(fleet.spec.shard_sizes()[i])
            assert (
                max_concurrent([(t, until) for t, _, until in grants]) <= cap
            )

    def test_blast_radius_holds_in_every_pod(self):
        scheduler = SchedulerSpec.rolling(
            capacity_floor=0.5, pod_size=2, max_down_per_pod=1
        )
        fleet = make_fleet(
            n_nodes=12,
            shards=3,
            scheduler=scheduler,
            downtime_s=30.0,
            policy=_always_policy,
        )
        fleet.run(3_000)
        pods = defaultdict(list)
        for grant_time, node, down_until in fleet.grant_log:
            pods[node // 2].append((grant_time, down_until))
        assert pods
        for intervals in pods.values():
            assert max_concurrent(intervals) <= 1

    def test_canary_soaks_before_the_wave(self):
        downtime, soak = 4.0, 6.0
        scheduler = SchedulerSpec.canary(
            canary_soak_s=soak, capacity_floor=0.5
        )
        fleet = make_fleet(
            n_nodes=12,
            shards=3,
            scheduler=scheduler,
            downtime_s=downtime,
            policy=_always_policy,
        )
        fleet.run(3_000)
        by_shard = self._grants_by_shard(fleet.spec, fleet.grant_log)
        opened = 0
        for grants in by_shard.values():
            if len(grants) < 2:
                continue
            opened += 1
            first, second = grants[0][0], grants[1][0]
            assert second >= first + downtime + soak
        assert opened > 0  # the wave actually opened somewhere


class TestThousandNodeSmoke:
    def test_large_fleet_completes_with_invariants(self):
        scheduler = SchedulerSpec.rolling(
            capacity_floor=0.98, pod_size=25, max_down_per_pod=1
        )
        fleet = make_fleet(
            n_nodes=1_000,
            shards=8,
            scheduler=scheduler,
            downtime_s=5.0,
            policy=_always_policy,
        )
        started = time.monotonic()
        result = fleet.run(20_000)
        elapsed = time.monotonic() - started
        assert elapsed < 120.0  # fleet smoke budget
        assert result.arrivals == 20_000
        assert result.completed + result.lost == 20_000
        assert len(result.nodes) == 1_000
        assert fleet.granted > 0 and fleet.denied > 0
        # Capacity floor: at most 2 of each 125-node shard down at once.
        sizes = fleet.spec.shard_sizes()
        offsets = fleet.spec.shard_offsets()
        for offset, size in zip(offsets, sizes):
            intervals = [
                (t, until)
                for t, node, until in fleet.grant_log
                if offset <= node < offset + size
            ]
            assert max_concurrent(intervals) <= scheduler.resolved_max_down(
                size
            )
        # Blast radius: one node per 25-node pod.
        pods = defaultdict(list)
        for t, node, until in fleet.grant_log:
            pods[node // 25].append((t, until))
        for intervals in pods.values():
            assert max_concurrent(intervals) <= 1
