"""``repro top``: pure snapshot rendering and the throttled display."""

import io

from repro.obs.live import LiveSpec, RecorderSpec
from repro.obs.live.top import LiveDisplay, render_snapshot


def snapshot(**overrides):
    base = {
        "ts": 1234.5,
        "completed": 1000,
        "lost": 7,
        "gc": 3,
        "rejuvenations": 2,
        "faults": 1,
        "triggers": 2,
        "level": 3,
        "rate_per_s": 1.25,
        "rt_mean": 6.5,
        "rt_std": 2.0,
        "rt_max": 30.0,
        "window_mean": 7.0,
        "window_autocorr": 0.42,
        "rt_quantiles": {"p50": 5.0, "p95": 14.0},
    }
    base.update(overrides)
    return base


class TestRenderSnapshot:
    def test_panel_carries_the_vital_signs(self):
        panel = render_snapshot(snapshot(), dumps=4)
        assert "t=    1234.5s" in panel
        assert "completed      1000" in panel
        assert "rejuvenations   2" in panel
        assert "flight dumps   4" in panel
        assert "p50=  5.000s" in panel
        assert "p95= 14.000s" in panel
        assert "autocorr +0.420" in panel
        assert "bucket level 3/5" in panel

    def test_level_bar_scales(self):
        full = render_snapshot(snapshot(level=5), max_level=5)
        empty = render_snapshot(snapshot(level=0), max_level=5)
        assert "[########################]" in full
        assert "[........................]" in empty

    def test_no_completions_yet(self):
        panel = render_snapshot(snapshot(rt_quantiles={}))
        assert "(no completions yet)" in panel


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestLiveDisplay:
    def make(self, refresh_s=1.0, ansi=False):
        clock = FakeClock()
        stream = io.StringIO()
        display = LiveDisplay(
            stream=stream, refresh_s=refresh_s, ansi=ansi, clock=clock
        )
        return display, clock, stream

    def tap_with(self, display):
        spec = LiveSpec(
            recorder=RecorderSpec(cooldown_s=0.0), display=display
        )
        return spec.build()

    def test_ticks_are_wall_clock_throttled(self):
        display, clock, stream = self.make(refresh_s=1.0)
        tap = self.tap_with(display)
        for i in range(50):
            clock.now = i * 0.1  # 5 simulated-wall seconds of events
            tap.emit(float(i), "request.complete", "system",
                     response_time=1.0)
        # 0.0s paints, then one paint per elapsed second: <= 6 frames.
        assert 1 <= display.frames <= 6
        assert "repro top" in stream.getvalue()

    def test_final_forces_a_repaint(self):
        display, clock, stream = self.make(refresh_s=100.0)
        tap = self.tap_with(display)
        tap.emit(0.0, "request.complete", "system", response_time=1.0)
        frames_before = display.frames
        display.final(tap)
        assert display.frames == frames_before + 1

    def test_ansi_repaint_rewinds_the_cursor(self):
        display, clock, stream = self.make(refresh_s=0.0, ansi=True)
        tap = self.tap_with(display)
        tap.emit(0.0, "request.complete", "system", response_time=1.0)
        clock.now = 1.0
        tap.emit(1.0, "request.complete", "system", response_time=1.0)
        assert "\x1b[" in stream.getvalue()  # cursor-up + erase

    def test_piped_output_appends_frames(self):
        display, clock, stream = self.make(refresh_s=0.0, ansi=False)
        tap = self.tap_with(display)
        tap.emit(0.0, "request.complete", "system", response_time=1.0)
        clock.now = 1.0
        tap.emit(1.0, "request.complete", "system", response_time=1.0)
        value = stream.getvalue()
        assert "\x1b[" not in value
        assert value.count("repro top") == 2
