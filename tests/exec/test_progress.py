"""ProgressPrinter throttling and StageTimer report formatting."""

import io

from repro.exec.progress import JobEvent, ProgressPrinter, StageTimer


def _event(done, total, index=None, elapsed=1.0, job_s=0.5, tag=()):
    return JobEvent(
        index=done - 1 if index is None else index,
        done=done,
        total=total,
        elapsed_s=elapsed,
        job_s=job_s,
        tag=tag,
    )


class TestProgressPrinter:
    def test_prints_first_event(self):
        stream = io.StringIO()
        ProgressPrinter(stream=stream, min_interval_s=60.0)(_event(1, 10))
        assert "1/10 jobs" in stream.getvalue()

    def test_throttles_intermediate_events(self):
        stream = io.StringIO()
        printer = ProgressPrinter(stream=stream, min_interval_s=60.0)
        for done in range(1, 6):
            printer(_event(done, 10))
        # Only the first line made it through the 60 s throttle.
        assert stream.getvalue().count("\n") == 1

    def test_final_event_always_prints(self):
        stream = io.StringIO()
        printer = ProgressPrinter(stream=stream, min_interval_s=60.0)
        for done in range(1, 11):
            printer(_event(done, 10))
        lines = stream.getvalue().splitlines()
        assert len(lines) == 2
        assert "10/10 jobs" in lines[-1]

    def test_zero_interval_prints_everything(self):
        stream = io.StringIO()
        printer = ProgressPrinter(stream=stream, min_interval_s=0.0)
        for done in range(1, 4):
            printer(_event(done, 3))
        assert stream.getvalue().count("\n") == 3

    def test_label_prefix(self):
        stream = io.StringIO()
        ProgressPrinter(stream=stream, label="exec")(_event(1, 1))
        assert stream.getvalue().startswith("[exec] ")

    def test_unlabelled_has_no_prefix(self):
        stream = io.StringIO()
        ProgressPrinter(stream=stream)(_event(1, 1))
        assert stream.getvalue().startswith("1/1 jobs")

    def test_line_contents(self):
        stream = io.StringIO()
        ProgressPrinter(stream=stream)(
            _event(2, 2, elapsed=3.25, job_s=1.5)
        )
        assert (
            stream.getvalue()
            == "2/2 jobs, 3.2s elapsed (last job 1.50s)\n"
        )


class TestStageTimer:
    def test_accumulates_per_stage(self):
        timer = StageTimer()
        with timer.stage("a"):
            pass
        with timer.stage("a"):
            pass
        with timer.stage("b"):
            pass
        assert set(timer.stages) == {"a", "b"}
        assert timer.total_s == sum(timer.stages.values())

    def test_records_time_even_when_stage_raises(self):
        timer = StageTimer()
        try:
            with timer.stage("boom"):
                raise RuntimeError("x")
        except RuntimeError:
            pass
        assert "boom" in timer.stages

    def test_empty_report(self):
        assert StageTimer().report() == "no stages timed"

    def test_single_stage_report_has_no_total(self):
        timer = StageTimer()
        timer.stages["only"] = 1.0
        report = timer.report()
        assert "only" in report
        assert "total" not in report

    def test_multi_stage_report_alignment_and_total(self):
        timer = StageTimer()
        timer.stages["short"] = 1.0
        timer.stages["a-much-longer-stage"] = 2.5
        report = timer.report()
        lines = report.splitlines()
        assert len(lines) == 3
        assert lines[-1].startswith("total")
        # Names are padded to a common width, so every seconds column
        # starts at the same offset.
        offsets = {line.index(" s") for line in lines}
        assert len(offsets) == 1
        assert "3.50 s" in lines[-1]

    def test_insertion_order_preserved(self):
        timer = StageTimer()
        for name in ("z", "a", "m"):
            with timer.stage(name):
                pass
        assert list(timer.stages) == ["z", "a", "m"]
