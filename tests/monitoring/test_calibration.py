"""SLO calibration from healthy data."""

import numpy as np
import pytest

from repro.monitoring.calibration import calibrate_slo, robust_calibrate_slo


class TestClassical:
    def test_recovers_normal_parameters(self):
        rng = np.random.default_rng(0)
        data = rng.normal(5.0, 5.0, size=50_000)
        slo = calibrate_slo(data)
        assert slo.mean == pytest.approx(5.0, abs=0.1)
        assert slo.std == pytest.approx(5.0, abs=0.1)

    def test_warmup_discarded(self):
        data = np.concatenate([np.full(100, 1000.0), np.full(900, 5.0)])
        slo = calibrate_slo(data, warmup=100)
        assert slo.mean == pytest.approx(5.0)
        assert slo.std == pytest.approx(0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            calibrate_slo([1.0])
        with pytest.raises(ValueError):
            calibrate_slo([1.0, 2.0], warmup=-1)
        with pytest.raises(ValueError):
            calibrate_slo([1.0, 2.0, 3.0], warmup=2)


class TestRobust:
    def test_recovers_normal_parameters(self):
        rng = np.random.default_rng(1)
        data = rng.normal(5.0, 5.0, size=50_000)
        slo = robust_calibrate_slo(data)
        assert slo.mean == pytest.approx(5.0, abs=0.15)
        assert slo.std == pytest.approx(5.0, abs=0.15)

    def test_resists_contamination(self):
        rng = np.random.default_rng(2)
        clean = rng.normal(5.0, 1.0, size=9_500)
        degraded = rng.normal(100.0, 10.0, size=500)  # 5 % outliers
        data = np.concatenate([clean, degraded])
        rng.shuffle(data)
        robust = robust_calibrate_slo(data)
        classical = calibrate_slo(data)
        assert robust.mean == pytest.approx(5.0, abs=0.3)
        assert classical.mean > 7.0  # dragged by the outliers
        assert robust.std < classical.std

    def test_validation(self):
        with pytest.raises(ValueError):
            robust_calibrate_slo([1.0])
        with pytest.raises(ValueError):
            robust_calibrate_slo([1.0, 2.0], warmup=-1)
