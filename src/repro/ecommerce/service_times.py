"""Service-time distributions for the processing nodes.

The paper's model is exponential (step 3), and all of Section 4.1's
analytics depend on that.  The simulator nevertheless accepts other
laws with the same mean, for one specific scientific purpose: probing
the divergence D1 of EXPERIMENTS.md.  With exponential service, killing
an in-flight transaction and restarting a fresh one loses nothing in
distribution (memorylessness), which is why aggressive triggering
(CLTA) is response-time-free in this substrate.  Non-memoryless laws
-- deterministic, Erlang, or high-variance lognormal/hyperexponential
-- make killed work a real loss and let the ablation measure how much
of the paper's CLTA penalty that mechanism could explain.

All samplers are parameterised by the mean ``1/mu`` and, where
meaningful, a coefficient of variation; all are exact-mean.
"""

from __future__ import annotations

import math
from typing import Callable

import numpy as np

Sampler = Callable[[], float]

#: Distribution names accepted by :func:`make_service_sampler`.
SERVICE_DISTRIBUTIONS = (
    "exponential",
    "deterministic",
    "erlang2",
    "lognormal",
    "hyperexponential",
)


def make_service_sampler(
    distribution: str,
    mean: float,
    cv: float = 1.0,
    rng: np.random.Generator | None = None,
) -> Sampler:
    """A zero-argument sampler of service times with the given mean.

    Parameters
    ----------
    distribution:
        One of :data:`SERVICE_DISTRIBUTIONS`.
    mean:
        Expected service time (``1/mu``).
    cv:
        Coefficient of variation, used by ``lognormal`` (any ``cv > 0``)
        and ``hyperexponential`` (requires ``cv > 1``); the others have
        fixed shape (exponential: 1, deterministic: 0, erlang2:
        ``1/sqrt(2)``).
    rng:
        Random generator (unused by ``deterministic``).
    """
    if mean <= 0:
        raise ValueError("mean service time must be positive")
    if distribution == "deterministic":
        return lambda: mean
    if rng is None:
        raise ValueError(f"{distribution!r} service times need an rng")
    if distribution == "exponential":
        return lambda: float(rng.exponential(mean))
    if distribution == "erlang2":
        # Two stages of rate 2/mean: mean preserved, cv = 1/sqrt(2).
        return lambda: float(rng.gamma(2.0, mean / 2.0))
    if distribution == "lognormal":
        if cv <= 0:
            raise ValueError("lognormal needs cv > 0")
        sigma2 = math.log(1.0 + cv * cv)
        mu = math.log(mean) - sigma2 / 2.0
        sigma = math.sqrt(sigma2)
        return lambda: float(rng.lognormal(mu, sigma))
    if distribution == "hyperexponential":
        if cv <= 1.0:
            raise ValueError("hyperexponential needs cv > 1")
        # Balanced-means two-phase fit (Allen): p1/mu1 = p2/mu2.
        cv2 = cv * cv
        p1 = 0.5 * (1.0 + math.sqrt((cv2 - 1.0) / (cv2 + 1.0)))
        p2 = 1.0 - p1
        mean1 = mean / (2.0 * p1)
        mean2 = mean / (2.0 * p2)

        def sample() -> float:
            if rng.random() < p1:
                return float(rng.exponential(mean1))
            return float(rng.exponential(mean2))

        return sample
    raise ValueError(
        f"unknown service distribution {distribution!r}; "
        f"expected one of {SERVICE_DISTRIBUTIONS}"
    )
