"""Birth-death chains and the transient M/M/c queue-length process."""

import numpy as np
import pytest

from repro.ctmc.birth_death import MMcQueueLengthProcess, birth_death_generator
from repro.queueing.mmc import MMcModel


class TestGenerator:
    def test_structure(self):
        Q = birth_death_generator([1.0, 2.0], [3.0, 4.0])
        assert Q.shape == (3, 3)
        assert Q[0, 1] == 1.0
        assert Q[1, 2] == 2.0
        assert Q[1, 0] == 3.0
        assert Q[2, 1] == 4.0
        assert np.allclose(Q.sum(axis=1), 0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            birth_death_generator([1.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            birth_death_generator([-1.0], [1.0])


class TestSteadyState:
    def test_matches_mmc_formulas(self):
        process = MMcQueueLengthProcess(1.6, 0.2, 16, capacity=120)
        model = MMcModel(1.6, 0.2, 16)
        pi = process.steady_state()
        for k in (0, 5, 16, 30):
            assert pi[k] == pytest.approx(
                model.state_probability(k), abs=1e-9
            )

    def test_mm1_geometric(self):
        process = MMcQueueLengthProcess(0.5, 1.0, 1, capacity=80)
        pi = process.steady_state()
        for k in range(6):
            assert pi[k] == pytest.approx(0.5 * 0.5**k, abs=1e-9)


class TestTransient:
    def test_starts_empty(self):
        process = MMcQueueLengthProcess(1.6, 0.2, 16, capacity=60)
        p = process.transient_distribution(0.0)
        assert p[0] == 1.0

    def test_mean_ramps_towards_steady_state(self):
        process = MMcQueueLengthProcess(1.6, 0.2, 16, capacity=120)
        model = MMcModel(1.6, 0.2, 16)
        means = [process.transient_mean(t) for t in (1.0, 5.0, 20.0, 200.0)]
        assert all(a <= b + 1e-9 for a, b in zip(means, means[1:]))
        assert means[-1] == pytest.approx(
            model.mean_jobs_in_system(), rel=1e-3
        )

    def test_distribution_remains_valid(self):
        process = MMcQueueLengthProcess(1.6, 0.2, 16, capacity=60)
        p = process.transient_distribution(7.3)
        assert p.sum() == pytest.approx(1.0, abs=1e-9)
        assert np.all(p >= -1e-12)

    def test_custom_initial_distribution(self):
        process = MMcQueueLengthProcess(0.0, 0.2, 4, capacity=10)
        p0 = np.zeros(11)
        p0[8] = 1.0
        # Pure death process drains towards empty.
        p = process.transient_distribution(200.0, p0=p0)
        assert p[0] == pytest.approx(1.0, abs=1e-6)

    def test_relaxation_time_estimate(self):
        process = MMcQueueLengthProcess(1.6, 0.2, 16, capacity=120)
        t_relax = process.time_to_near_steady_state(tolerance=0.05)
        before = process.transient_distribution(t_relax / 8)
        target = process.steady_state()
        assert float(np.abs(before - target).sum()) > 0.05

    def test_warmup_choice_consistent_with_paper(self):
        # The paper discards 10,000 of 100,000 transactions at
        # lambda = 1.6 (~6,250 s).  The relaxation time of the
        # queue-length process is far below that.
        process = MMcQueueLengthProcess(1.6, 0.2, 16, capacity=120)
        assert process.time_to_near_steady_state(tolerance=0.01) < 6_250.0


class TestValidation:
    def test_bad_parameters(self):
        with pytest.raises(ValueError):
            MMcQueueLengthProcess(-1.0, 0.2, 16)
        with pytest.raises(ValueError):
            MMcQueueLengthProcess(1.0, 0.0, 16)
        with pytest.raises(ValueError):
            MMcQueueLengthProcess(1.0, 0.2, 16, capacity=15)
        with pytest.raises(ValueError):
            MMcQueueLengthProcess(1.0, 0.2, 16).time_to_near_steady_state(
                tolerance=0.0
            )
