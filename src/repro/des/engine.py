"""The simulation clock and run loop."""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.des.events import Event, EventQueue


class StopSimulation(Exception):
    """Raised from inside an event action to stop the run loop cleanly."""


class Simulator:
    """A discrete-event simulator.

    The simulator owns the clock and the pending-event set.  Model code
    schedules zero-argument callables at absolute or relative times and the
    run loop fires them in time order.

    Examples
    --------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(2.0, lambda: fired.append(sim.now))
    >>> _ = sim.schedule(1.0, lambda: fired.append(sim.now))
    >>> sim.run()
    2
    >>> fired
    [1.0, 2.0]
    """

    def __init__(
        self,
        start_time: float = 0.0,
        tracer: Optional[Any] = None,
        profiler: Optional[Any] = None,
    ) -> None:
        self.now = float(start_time)
        self.queue = EventQueue()
        self.events_fired = 0
        #: Optional :class:`repro.obs.tracer.Tracer`; engine-level
        #: records are only emitted at trace level ``all`` (they are
        #: one per fired event -- verbose by design).  ``None`` keeps
        #: the run loop's cost at a single attribute check.
        self.tracer = tracer if tracer is not None and tracer.engine else None
        #: Optional :class:`repro.obs.live.DESProfiler`; when installed,
        #: every fired event is attributed (count + wall-clock) to its
        #: ``kind``.  ``None`` keeps the loop at a single check.
        self.profiler = profiler

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        action: Callable[[], None],
        kind: str = "",
        payload: Any = None,
    ) -> Event:
        """Schedule ``action`` to fire ``delay`` time units from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self.now + delay, action, kind, payload)

    def schedule_at(
        self,
        time: float,
        action: Callable[[], None],
        kind: str = "",
        payload: Any = None,
    ) -> Event:
        """Schedule ``action`` at absolute simulated time ``time``."""
        if time < self.now:
            raise ValueError(
                f"cannot schedule into the past (time={time}, now={self.now})"
            )
        return self.queue.push(Event(time, action, kind, payload))

    def cancel(self, event: Event) -> None:
        """Cancel a pending event (no-op if already fired or cancelled)."""
        self.queue.cancel(event)

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    def step(self) -> Optional[Event]:
        """Fire the single next event; return it, or ``None`` if idle."""
        if not self.queue:
            return None
        event = self.queue.pop()
        self.now = event.time
        self.events_fired += 1
        if self.tracer is not None:
            self.tracer.emit(
                self.now,
                "des.event",
                "des",
                kind=event.kind,
                seq=self.events_fired,
            )
        profiler = self.profiler
        if profiler is None:
            event.action()
        else:
            clock = profiler.clock
            started = clock()
            try:
                event.action()
            finally:
                profiler.account(event.kind, clock() - started)
        return event

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> int:
        """Run until the event set drains, ``until`` is reached, or
        ``max_events`` events have fired in this call.

        Returns the number of events fired during this call.  An event
        whose action raises :class:`StopSimulation` counts: it did fire
        (and :attr:`events_fired` already includes it), even though its
        action was cut short.

        When stopping on ``until``, the clock is advanced to ``until`` and
        events scheduled at exactly ``until`` *are* fired (closed interval),
        matching the usual DES convention for horizon-limited runs.
        """
        fired_this_call = 0
        while True:
            if max_events is not None and fired_this_call >= max_events:
                return fired_this_call
            next_event = self.queue.peek()
            if next_event is None:
                if until is not None and until > self.now:
                    self.now = until
                return fired_this_call
            if until is not None and next_event.time > until:
                self.now = until
                return fired_this_call
            try:
                self.step()
            except StopSimulation:
                return fired_this_call + 1
            fired_this_call += 1

    def reset(self, start_time: float = 0.0) -> None:
        """Drop all pending events and rewind the clock."""
        self.queue.clear()
        self.now = float(start_time)
        self.events_fired = 0
