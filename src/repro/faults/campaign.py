"""The campaign runner: (scenario x policy x replication) fan-out.

A campaign turns the scenario zoo into one flat list of picklable
:class:`~repro.exec.jobs.ReplicationJob`\\ s -- each carrying its
scenario as the job's ``faults`` payload -- and fans it out through an
:class:`~repro.exec.backends.ExecutionBackend`.  Common random numbers:
replication ``i`` of scenario ``s`` uses master seed
``seed + 1000 * s_index + i`` *for every policy*, so policies face
literally the same arrival and service streams and score differences
are pure policy effects (the same protocol as the figure sweeps).
Results come back in submission order on every backend, so campaign
scores are bit-identical between serial and process-pool runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.core.spec import PolicySpec
from repro.ecommerce.metrics import RunResult
from repro.exec.backends import ExecutionBackend, resolve_backend
from repro.exec.jobs import ReplicationJob, execute_job
from repro.exec.progress import ProgressHook
from repro.faults.scenario import FaultScenario
from repro.faults.score import PolicyScore, format_scores, score_policy
from repro.faults.zoo import builtin_scenarios, get_scenario
from repro.obs.session import (
    active_trace_format,
    active_trace_level,
    current_session,
)

#: The paper's three contenders at their Section-5.6 parameters.
DEFAULT_POLICIES: Dict[str, PolicySpec] = {
    "SRAA": PolicySpec.sraa(2, 5, 3),
    "SARAA": PolicySpec.saraa(2, 5, 3),
    "CLTA": PolicySpec.clta(30, z=1.96),
}


def resolve_policies(spec: str) -> Dict[str, PolicySpec]:
    """A ``--policies`` CSV as an ordered ``label -> PolicySpec`` dict.

    Names matching :data:`DEFAULT_POLICIES` (case-insensitive) get the
    paper's Section-5.6 parameters under their canonical upper-case
    label; exact (lower-case) factory names build at factory defaults;
    the detector labels of :data:`repro.detect.DETECTOR_POLICIES`
    (``ADAPTIVE``, ``ENTROPY``, ``TREND``) match case-insensitively
    after that, so ``trend`` stays the paper-era Mann-Kendall factory
    policy while every other spelling of ``TREND`` means the
    projection detector.  Raises ``ValueError`` naming every valid
    spelling on unknown names or an empty list -- shared by ``repro
    faults run --policies`` and the serve campaign endpoint so both
    surfaces accept exactly the same spellings.
    """
    from repro.core.factory import available_policies
    from repro.detect import DETECTOR_POLICIES

    policies: Dict[str, PolicySpec] = {}
    for name in (part.strip() for part in spec.split(",")):
        if not name:
            continue
        if name.upper() in DEFAULT_POLICIES:
            policies[name.upper()] = DEFAULT_POLICIES[name.upper()]
        elif name in available_policies():
            # Exact factory names keep their factory defaults (so the
            # paper-era ``trend`` policy stays reachable even though
            # ``TREND`` is the projection detector's canonical label).
            policies[name] = PolicySpec(name)
        elif name.upper() in DETECTOR_POLICIES:
            policies[name.upper()] = DETECTOR_POLICIES[name.upper()]
        elif name.lower() in available_policies():
            policies[name] = PolicySpec(name.lower())
        else:
            labels = (
                tuple(DEFAULT_POLICIES)
                + tuple(DETECTOR_POLICIES)
                + available_policies()
            )
            raise ValueError(
                f"unknown policy {name!r}; valid spellings: "
                f"{', '.join(labels)}"
            )
    if not policies:
        raise ValueError(f"no policy names in {spec!r}")
    return policies


@dataclass(frozen=True)
class CampaignResult:
    """Everything a campaign produced, in submission order.

    ``scores`` is the deliverable; ``runs`` keeps the raw per-cell
    replications keyed by ``(scenario_name, policy_label)`` for deeper
    digging.
    """

    scores: Tuple[PolicyScore, ...]
    runs: Tuple[Tuple[Tuple[str, str], Tuple[RunResult, ...]], ...]

    def runs_for(self, scenario: str, policy: str) -> Tuple[RunResult, ...]:
        """The raw replications of one (scenario, policy) cell."""
        for key, cell in self.runs:
            if key == (scenario, policy):
                return cell
        raise KeyError(f"no campaign cell ({scenario!r}, {policy!r})")

    def format_table(self) -> str:
        """The aligned robustness table over every cell."""
        return format_scores(self.scores)

    def merged_live(self):
        """All cells' live aggregators folded in submission order."""
        from repro.obs.live import merge_live

        return merge_live(
            run.live for _, cell in self.runs for run in cell
        )

    def merged_profile(self):
        """All cells' DES profiles folded in submission order."""
        from repro.obs.live import merge_profiles

        return merge_profiles(
            run.profile for _, cell in self.runs for run in cell
        )


def campaign_jobs(
    scenarios: Sequence[FaultScenario],
    policies: Mapping[str, PolicySpec],
    replications: int,
    seed: int = 0,
    trace_level: Optional[str] = None,
    live: Optional[object] = None,
    profile: bool = False,
    system: Optional[object] = None,
) -> List[ReplicationJob]:
    """The flat job list, in (scenario, policy, replication) order.

    The CRN seed protocol lives here: ``seed + 1000 * scenario_index +
    replication``, independent of the policy -- every policy sees the
    same streams on the same scenario cell.

    ``live`` (a :class:`repro.obs.live.LiveSpec`) and ``profile`` stamp
    every cell's jobs with live telemetry / DES profiling, exactly as
    in :func:`repro.ecommerce.runner.replication_jobs`.

    ``system`` selects the substrate (a kind name or a
    :class:`~repro.systems.SystemSpec`; ``None`` keeps the single
    Section-3 node).  A substrate that scales arrivals with its node
    count also scales each scenario's transaction budget (see
    ``SystemSpec.job_transactions``), so the simulated time horizon --
    and with it the scenario's scripted fault times -- is preserved.
    """
    if replications < 1:
        raise ValueError("need at least one replication")
    if not scenarios:
        raise ValueError("need at least one scenario")
    if not policies:
        raise ValueError("need at least one policy")
    if trace_level is None:
        trace_level = active_trace_level()
    trace_format = active_trace_format()
    spec = None
    if system is not None:
        from repro.systems import resolve_system

        spec = resolve_system(system)
    jobs: List[ReplicationJob] = []
    for s_index, scenario in enumerate(scenarios):
        n_transactions = scenario.n_transactions
        if spec is not None:
            n_transactions = spec.job_transactions(n_transactions)
        for label, policy in policies.items():
            for i in range(replications):
                jobs.append(
                    ReplicationJob(
                        config=scenario.config,
                        arrival=scenario.arrival,
                        policy=policy,
                        n_transactions=n_transactions,
                        seed=seed + 1000 * s_index + i,
                        tag=("faults", scenario.name, label, i),
                        trace_level=trace_level,
                        trace_format=trace_format,
                        faults=scenario,
                        live=live,
                        profile=profile,
                        system=spec,
                    )
                )
    return jobs


def run_campaign(
    scenarios: Optional[Sequence[FaultScenario]] = None,
    policies: Optional[Mapping[str, PolicySpec]] = None,
    replications: int = 5,
    seed: int = 0,
    backend: Union[ExecutionBackend, str, None] = None,
    progress: Optional[ProgressHook] = None,
    live: Optional[object] = None,
    profile: bool = False,
    system: Optional[object] = None,
) -> CampaignResult:
    """Run and score a full campaign.

    Parameters
    ----------
    scenarios:
        Scenario list; ``None`` runs the whole built-in zoo at the
        default one-hour horizon.
    policies:
        ``label -> PolicySpec``; ``None`` uses the paper's three
        contenders (:data:`DEFAULT_POLICIES`).
    replications:
        Replications per (scenario, policy) cell (the paper uses 5).
    seed:
        Campaign master seed (see :func:`campaign_jobs` for the CRN
        protocol).
    backend:
        Execution backend (instance, name, or ``None`` for the
        installed/environment default).
    system:
        Substrate every cell runs against: ``None`` (single node), a
        kind name from :data:`repro.systems.SYSTEM_KINDS`, or a
        configured spec -- the campaign, the CRN protocol, and the
        robustness scoring are substrate-polymorphic.

    When a :class:`~repro.obs.session.TraceSession` is installed, the
    jobs are stamped with its level and the results ingested, so
    ``repro faults run --trace`` produces a narratable JSONL file.
    """
    if scenarios is None:
        scenarios = list(builtin_scenarios().values())
    if policies is None:
        policies = DEFAULT_POLICIES
    jobs = campaign_jobs(
        scenarios,
        policies,
        replications,
        seed=seed,
        live=live,
        profile=profile,
        system=system,
    )
    runs = resolve_backend(backend).map(execute_job, jobs, progress=progress)
    session = current_session()
    if session is not None:
        session.ingest(jobs, runs)
    scores: List[PolicyScore] = []
    cells: List[Tuple[Tuple[str, str], Tuple[RunResult, ...]]] = []
    cursor = 0
    for scenario in scenarios:
        for label in policies:
            cell = tuple(runs[cursor : cursor + replications])
            cursor += replications
            scores.append(score_policy(scenario, label, cell))
            cells.append(((scenario.name, label), cell))
    return CampaignResult(scores=tuple(scores), runs=tuple(cells))


# ---------------------------------------------------------------------------
# Re-scoring from a JSONL trace (``repro faults score``, ``repro report``)
# ---------------------------------------------------------------------------
#: Fault kinds that *are* software aging: an injection of one of these
#: opens a ground-truth degraded interval (workload shifts, surges,
#: crashes and hangs are confounders, not degradation).
AGING_FAULT_KINDS: Tuple[str, ...] = ("aging", "contamination", "slowdown")


def degraded_intervals_from_records(
    run_records: Sequence[dict],
) -> Tuple[Tuple[float, float], ...]:
    """Ground-truth degraded intervals from one run's own fault events.

    Every ``fault.injected`` event with an aging kind
    (:data:`AGING_FAULT_KINDS`) opens an interval; a matching
    ``fault.cleared`` closes it, otherwise it runs to infinity --
    exactly how the zoo scenarios lay out their ground truth, but
    recoverable from any campaign trace without knowing the horizon
    the campaign ran at.
    """
    import math as _math

    from repro.obs.events import FAULT_CLEARED, FAULT_INJECTED

    opened: Dict[str, float] = {}
    intervals: List[Tuple[float, float]] = []
    for record in run_records:
        kind = record.get("data", {}).get("kind")
        if kind not in AGING_FAULT_KINDS:
            continue
        if record["type"] == FAULT_INJECTED and kind not in opened:
            opened[kind] = record["ts"]
        elif record["type"] == FAULT_CLEARED and kind in opened:
            intervals.append((opened.pop(kind), record["ts"]))
    intervals.extend((ts, _math.inf) for ts in opened.values())
    return tuple(sorted(intervals))


def campaign_runs_from_records(
    source, origin: str = "trace"
) -> List[Tuple[Tuple[str, ...], List[dict], RunResult]]:
    """Campaign replications reconstructed from a trace.

    ``source`` is anything :func:`repro.obs.columnar.query.as_query`
    accepts: a flat list of JSONL record dicts, a columnar trace, or an
    already-built query.  Returns ``(tag, fault_records, result)``
    triples in run order for every run tagged ``("faults", scenario,
    policy, rep)``; each result's trigger times come from its
    ``system.rejuvenation`` span events, its summary from ``run.meta``,
    and ``fault_records`` holds the run's ``fault.injected`` /
    ``fault.cleared`` events (the ground-truth inputs of
    :func:`degraded_intervals_from_records`).
    """
    from repro.obs.columnar.query import as_query
    from repro.obs.events import (
        FAULT_CLEARED,
        FAULT_INJECTED,
        SYSTEM_REJUVENATION,
    )

    replications: List[Tuple[Tuple[str, ...], List[dict], RunResult]] = []
    for view in as_query(source).run_views():
        meta = view.meta
        if meta is None:
            raise ValueError(
                f"{origin}: run {view.run_id} has no run.meta record"
            )
        tag = tuple(meta.get("tag") or ())
        if len(tag) < 4 or tag[0] != "faults":
            continue  # not a campaign replication
        summary = meta.get("data", {})
        triggers = tuple(
            float(ts) for ts in view.ts_of(SYSTEM_REJUVENATION)
        )
        if summary.get("rejuvenations", 0) and not triggers:
            raise ValueError(
                f"{origin}: run {view.run_id} reports rejuvenations but "
                "the trace has no system.rejuvenation events -- re-run "
                "the campaign with --trace-level spans or all"
            )
        result = RunResult(
            arrivals=int(summary.get("arrivals", 0)),
            completed=int(summary.get("completed", 0)),
            lost=int(summary.get("lost", 0)),
            avg_response_time=float(
                summary.get("avg_response_time", 0.0)
            ),
            rt_std=0.0,
            max_response_time=0.0,
            loss_fraction=float(summary.get("loss_fraction", 0.0)),
            gc_count=int(summary.get("gc_count", 0)),
            rejuvenations=int(summary.get("rejuvenations", 0)),
            sim_duration_s=float(summary.get("sim_duration_s", 0.0)),
            rejuvenation_times=triggers,
        )
        faults = view.records(types=(FAULT_INJECTED, FAULT_CLEARED))
        replications.append((tag, faults, result))
    return replications


def score_records(source) -> Tuple[PolicyScore, ...]:
    """Robustness scores from a trace, horizon-free.

    Each replication is scored against ground truth derived from its
    *own* aging fault events (:func:`degraded_intervals_from_records`),
    so no scenario horizon needs to be supplied -- this is what the
    ``repro report`` robustness section renders.  ``source`` is
    records, a columnar trace, or a query (see
    :func:`campaign_runs_from_records`).  Returns an empty tuple when
    the trace holds no campaign replications.
    """
    from repro.faults.score import score_cell

    cells: Dict[Tuple[str, str], List[RunResult]] = {}
    intervals: Dict[Tuple[str, str], List[Tuple[Tuple[float, float], ...]]] = {}
    for tag, fault_records, result in campaign_runs_from_records(source):
        key = (str(tag[1]), str(tag[2]))
        cells.setdefault(key, []).append(result)
        intervals.setdefault(key, []).append(
            degraded_intervals_from_records(fault_records)
        )
    return tuple(
        score_cell(scenario, policy, cells[key], intervals[key])
        for key in cells
        for scenario, policy in (key,)
    )


def score_trace(
    path: str, horizon_s: float = 3600.0
) -> Tuple[PolicyScore, ...]:
    """Re-score a ``repro faults run --trace`` file (either format).

    Rebuilds each replication's trigger times from its
    ``system.rejuvenation`` span events and its duration from the
    ``run.meta`` summary, groups by the ``("faults", scenario, policy,
    rep)`` job tags, and scores against the built-in scenario's ground
    truth laid out for ``horizon_s`` (pass the value the campaign ran
    with).  The trace may be JSONL or columnar; both score
    identically.
    """
    from repro.obs.columnar.query import load_query

    cells: Dict[Tuple[str, str], List[RunResult]] = {}
    for tag, _fault_records, result in campaign_runs_from_records(
        load_query(path), origin=path
    ):
        cells.setdefault((str(tag[1]), str(tag[2])), []).append(result)

    if not cells:
        raise ValueError(
            f"{path}: no campaign replications found (expected run.meta "
            "tags of the form ('faults', scenario, policy, rep))"
        )
    scores = []
    for (scenario_name, policy_label), results in cells.items():
        scenario = get_scenario(scenario_name, horizon_s)
        scores.append(score_policy(scenario, policy_label, results))
    return tuple(scores)
