"""Policy interface and the batch-averaging buffer.

Every decision rule in this library is a :class:`RejuvenationPolicy`: a
stateful object that consumes the customer-affecting metric one
observation at a time and answers, for each observation, whether software
rejuvenation must be triggered *now*.  The simulator, the monitoring
framework and the experiment harness all program against this interface,
so the paper's algorithms and every baseline are interchangeable.
"""

from __future__ import annotations

import abc
from typing import Iterable, List, Mapping, Optional


class DecisionListener:
    """Observer of a policy's internal decisions (all hooks optional).

    The observability layer (:mod:`repro.obs`) installs one of these on
    a policy via :meth:`RejuvenationPolicy.set_listener` to turn batch
    boundaries, bucket transitions and triggers into structured trace
    events; the base class is a no-op so policies can call every hook
    unconditionally once they have null-checked the listener itself.

    Hooks receive the *policy* first so one listener can serve several
    policies (e.g. per-node policies in a cluster).

    ``wants_batches`` lets a listener decline the :meth:`on_batch`
    firehose (one call per completed batch -- by far the hottest hook)
    so policies skip the call entirely: an always-on telemetry sink
    that only tracks level changes and triggers should not pay a
    Python call per batch.  The other hooks are rare enough that they
    are always delivered.
    """

    #: Whether :meth:`on_batch` should be called at all.  Policies
    #: check this once per batch (a plain attribute load) instead of
    #: making a method call that the listener immediately discards.
    wants_batches: bool = True

    def on_batch(
        self,
        policy: "RejuvenationPolicy",
        batch_mean: float,
        target: float,
        sample_size: int,
        exceeded: bool,
    ) -> None:
        """A batch completed: its mean was compared against ``target``."""

    def on_transition(
        self,
        policy: "RejuvenationPolicy",
        direction: str,
        level: int,
        fill: int,
        target: float,
    ) -> None:
        """The bucket chain moved to a new level (``up`` or ``down``)."""

    def on_trigger(
        self,
        policy: "RejuvenationPolicy",
        batch_mean: float,
        threshold: float,
        level: int,
        sample_size: int,
    ) -> None:
        """Rejuvenation was demanded; arguments carry the full cause."""

    def on_trigger_cause(
        self,
        policy: "RejuvenationPolicy",
        cause: Mapping[str, object],
    ) -> None:
        """Rejuvenation was demanded, with a free-form cause mapping.

        The paper's policies all decide by comparing a batch mean
        against a threshold, which is exactly what :meth:`on_trigger`'s
        positional arguments encode.  The adaptive/learned detectors
        (:mod:`repro.detect`) trigger on other evidence -- an entropy
        shift, a projected trajectory -- so they report their cause as
        a mapping instead.  The base implementation forwards whatever
        numeric essentials the cause carries to :meth:`on_trigger`, so
        a listener that only overrides the classic hook still sees
        every trigger; listeners that want the full cause override
        this hook (the tracing listener records the mapping verbatim).
        """
        self.on_trigger(
            policy,
            float(cause.get("batch_mean", float("nan"))),  # type: ignore[arg-type]
            float(cause.get("threshold", float("nan"))),  # type: ignore[arg-type]
            int(cause.get("level", 0)),  # type: ignore[arg-type]
            int(cause.get("sample_size", 1)),  # type: ignore[arg-type]
        )

    def on_resize(
        self,
        policy: "RejuvenationPolicy",
        old_size: int,
        new_size: int,
        level: int,
    ) -> None:
        """The batch size changed (SARAA's sampling acceleration)."""

    def on_reset(self, policy: "RejuvenationPolicy") -> None:
        """Detection state was cleared externally."""


class RejuvenationPolicy(abc.ABC):
    """A streaming trigger rule over a customer-affecting metric."""

    #: Short machine-readable identifier (used by the factory and tables).
    name: str = "policy"

    #: Optional decision observer (class default keeps subclasses'
    #: ``__init__`` untouched and the unobserved path to one None check).
    _listener: Optional[DecisionListener] = None

    @property
    def listener(self) -> Optional[DecisionListener]:
        """The installed decision listener, if any."""
        return self._listener

    def set_listener(self, listener: Optional[DecisionListener]) -> None:
        """Install (or remove, with ``None``) a decision listener."""
        self._listener = listener

    @abc.abstractmethod
    def observe(self, value: float) -> bool:
        """Consume one metric observation.

        Returns
        -------
        bool
            ``True`` when rejuvenation must be carried out now.  The
            policy resets its own detection state before returning
            ``True`` (the paper's pseudo-code does the same), so the
            caller only has to perform the rejuvenation itself.
        """

    @abc.abstractmethod
    def reset(self) -> None:
        """Forget all detection state (called on external rejuvenation)."""

    def observe_many(self, values: Iterable[float]) -> List[int]:
        """Feed a sequence; return the indices at which triggers fired.

        A convenience for offline/trace analysis -- the simulator uses
        :meth:`observe` directly.
        """
        triggers: List[int] = []
        for index, value in enumerate(values):
            if self.observe(value):
                triggers.append(index)
        return triggers

    def describe(self) -> str:
        """One-line human-readable description."""
        return self.name


class BatchBuffer:
    """Accumulates raw observations into means of ``n`` (the paper's x̄_u).

    SRAA, SARAA and CLTA all decide on *batch means* rather than raw
    values; this buffer implements the shared bookkeeping, including the
    batch-size changes required by SARAA's sampling acceleration.
    """

    def __init__(self, size: int) -> None:
        if size < 1:
            raise ValueError("batch size must be >= 1")
        self.size = int(size)
        self._sum = 0.0
        self._count = 0
        self.batches_completed = 0

    @property
    def pending(self) -> int:
        """Observations accumulated towards the current batch."""
        return self._count

    def push(self, value: float) -> Optional[float]:
        """Add one observation; return the batch mean if it completed."""
        self._sum += float(value)
        self._count += 1
        if self._count < self.size:
            return None
        # Divide by the actual count: after a carry_partial resize to a
        # smaller n, the completing batch may hold more than `size` values.
        mean = self._sum / self._count
        self._sum = 0.0
        self._count = 0
        self.batches_completed += 1
        return mean

    def resize(self, new_size: int, carry_partial: bool = False) -> None:
        """Change the batch size.

        Parameters
        ----------
        new_size:
            The new ``n``.
        carry_partial:
            If ``True``, observations already accumulated keep counting
            towards the next batch (which may complete immediately on the
            next push); if ``False`` (the default, matching the paper's
            pseudo-code which only ever indexes whole batches), the
            partial batch is discarded.
        """
        if new_size < 1:
            raise ValueError("batch size must be >= 1")
        self.size = int(new_size)
        if not carry_partial:
            self._sum = 0.0
            self._count = 0

    def clear(self) -> None:
        """Drop any partially accumulated batch."""
        self._sum = 0.0
        self._count = 0
