"""Name -> experiment lookup used by the CLI and the benchmarks."""

from __future__ import annotations

from typing import Callable, Dict, Tuple, Union

from repro.exec.backends import ExecutionBackend, resolve_backend, use_backend

from repro.experiments.ablations import run_ablations
from repro.experiments.analytical import (
    run_false_alarm,
    run_fig05,
    run_mmc_baseline,
)
from repro.experiments.arl_exp import run_arl
from repro.experiments.autocorr import run_autocorrelation
from repro.experiments.availability_exp import run_availability
from repro.experiments.cluster_exp import run_cluster
from repro.experiments.comparison import run_fig16
from repro.experiments.degradation_exp import run_degradation
from repro.experiments.detectors_exp import run_detectors
from repro.experiments.faults_exp import run_faults
from repro.experiments.fidelity import run_fidelity
from repro.experiments.fleet_exp import run_fleet
from repro.experiments.saraa_fig import run_fig15
from repro.experiments.scale import Scale
from repro.experiments.sraa_figs import (
    run_fig09_10,
    run_fig11,
    run_fig12_13,
    run_fig14,
)
from repro.experiments.tables import ExperimentResult
from repro.experiments.zoo import run_zoo

ExperimentRunner = Callable[[Scale, int], ExperimentResult]

#: Memorable aliases accepted wherever an experiment id is (CLI, API).
_ALIASES: Dict[str, str] = {
    "comparison": "fig16",
    "sraa": "fig09_10",
    "saraa": "fig15",
    "robustness": "faults",
    "erosion": "degradation",
    "rolling": "fleet",
    "head-to-head": "detectors",
}

_REGISTRY: Dict[str, Tuple[str, ExperimentRunner]] = {
    "fig05": (
        "Density of the sample-mean RT vs normal approximation (Fig. 5)",
        run_fig05,
    ),
    "false_alarm": (
        "Exact CLTA false-alarm probabilities (Section 4.1)",
        run_false_alarm,
    ),
    "mmc_baseline": (
        "Analytical M/M/16 RT moments across loads (Section 4.1)",
        run_mmc_baseline,
    ),
    "autocorr": (
        "Lag-1 autocorrelation of simulated RTs (Section 4.1)",
        run_autocorrelation,
    ),
    "fig09_10": (
        "SRAA sweep, n*K*D = 15: RT (Fig. 9) and loss (Fig. 10)",
        run_fig09_10,
    ),
    "fig11": ("SRAA sweep, sample size doubled (Fig. 11)", run_fig11),
    "fig12_13": (
        "SRAA sweep, bucket depth doubled: RT (Fig. 12) and loss (Fig. 13)",
        run_fig12_13,
    ),
    "fig14": ("SRAA sweep, number of buckets doubled (Fig. 14)", run_fig14),
    "fig15": ("SARAA vs SRAA sweep, n*K*D = 30 (Fig. 15)", run_fig15),
    "fig16": ("SRAA vs SARAA vs CLTA comparison (Fig. 16)", run_fig16),
    "ablations": (
        "Sensitivity to under-specified modelling choices",
        run_ablations,
    ),
    "cluster": (
        "Cluster deployment: balancing and rolling restarts (beyond "
        "the paper; companion work [2])",
        run_cluster,
    ),
    "zoo": (
        "Every policy in the library at a low and a high load "
        "(integration study, beyond the paper)",
        run_zoo,
    ),
    "arl": (
        "Exact false-trigger intervals and detection delays of SRAA "
        "configurations (run-length analysis, beyond the paper)",
        run_arl,
    ),
    "fidelity": (
        "Every Section-5 quoted number measured live vs the paper",
        run_fidelity,
    ),
    "degradation": (
        "Detector families on the eroding-capacity substrate of "
        "ref. [3] (beyond the paper)",
        run_degradation,
    ),
    "faults": (
        "Fault-injection campaign: policy robustness across the "
        "adversarial scenario zoo (beyond the paper)",
        run_faults,
    ),
    "detectors": (
        "Detector head-to-head: adaptive/entropy/trend vs "
        "SRAA/SARAA/CLTA across the zoo (beyond the paper)",
        run_detectors,
    ),
    "fleet": (
        "Sharded fleet: rolling/canary rejuvenation schedulers under "
        "a capacity floor (beyond the paper)",
        run_fleet,
    ),
    "availability": (
        "Huang et al. availability planning (analytical, ref. [9]; "
        "beyond the paper)",
        run_availability,
    ),
}


def experiment_ids() -> Tuple[str, ...]:
    """All registered experiment identifiers, in registry order."""
    return tuple(_REGISTRY)


def describe(experiment_id: str) -> str:
    """One-line description of an experiment."""
    return _lookup(experiment_id)[0]


def run_experiment(
    experiment_id: str,
    scale: Scale,
    seed: int = 0,
    backend: Union[ExecutionBackend, str, None] = None,
) -> ExperimentResult:
    """Run one experiment at the given scale.

    ``backend`` (an :class:`~repro.exec.backends.ExecutionBackend`, a
    backend name, or ``None`` for the current default) is installed as
    the default execution backend for the duration of the run, so every
    ``run_replications`` / ``sweep_policies`` inside the experiment
    fans its replication jobs out through it.
    """
    runner = _lookup(experiment_id)[1]
    if backend is None:
        return runner(scale, seed)
    with use_backend(resolve_backend(backend)):
        return runner(scale, seed)


def experiment_spec(experiment_id: str, scale: Scale) -> Dict[str, object]:
    """The canonical (hashable) spec of one experiment invocation.

    This is what a run manifest hashes for ``repro run`` entries: the
    resolved experiment id plus the scale parameters.  Descriptions are
    deliberately excluded -- rewording a docstring must not orphan a
    pinned baseline.
    """
    from repro.obs.ledger.canonical import to_plain

    return {
        "experiment": resolve_experiment_id(experiment_id),
        "scale": to_plain(scale),
    }


def resolve_experiment_id(experiment_id: str) -> str:
    """The canonical id behind a name or alias (raises on unknown)."""
    experiment_id = _ALIASES.get(experiment_id, experiment_id)
    if experiment_id not in _REGISTRY:
        known = ", ".join(experiment_ids())
        aliases = ", ".join(f"{a} -> {t}" for a, t in _ALIASES.items())
        raise ValueError(
            f"unknown experiment {experiment_id!r}; known: {known}; "
            f"aliases: {aliases}"
        )
    return experiment_id


def _lookup(experiment_id: str) -> Tuple[str, ExperimentRunner]:
    return _REGISTRY[resolve_experiment_id(experiment_id)]
