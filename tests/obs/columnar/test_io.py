"""On-disk ``.rcol`` segments: write/read, gzip, sniffing, corruption."""

import gzip
import json

import pytest

from repro.obs.columnar.io import (
    FORMAT_VERSION,
    MAGIC,
    read_columnar,
    read_footer,
    sniff_format,
    write_columnar,
)
from repro.obs.columnar.store import ColumnarTrace, compact_json

RECORDS = [
    {
        "run": 0,
        "tag": ["faults", "aging_onset", "SRAA", 0],
        "seed": 1,
        "ts": 0.0,
        "type": "run.meta",
        "source": "session",
        "data": {"arrivals": 2},
    },
    {
        "ts": 1.0,
        "type": "request.complete",
        "source": "system",
        "data": {"response_time": 0.25},
        "run": 0,
    },
    {
        "ts": 2.0,
        "type": "system.rejuvenation",
        "source": "system",
        "data": {"cause": "policy", "downtime_s": 5.0},
        "run": 0,
    },
]


def _write(path, records):
    write_columnar(ColumnarTrace.from_records(records), str(path))


class TestWriteRead:
    def test_round_trip_plain(self, tmp_path):
        path = tmp_path / "t.rcol"
        _write(path, RECORDS)
        trace = read_columnar(str(path))
        assert list(trace.iter_records()) == RECORDS

    def test_round_trip_gzip(self, tmp_path):
        path = tmp_path / "t.rcol.gz"
        _write(path, RECORDS)
        with open(path, "rb") as handle:
            assert handle.read(2) == b"\x1f\x8b"  # actually gzipped
        trace = read_columnar(str(path))
        assert list(trace.iter_records()) == RECORDS

    def test_write_is_deterministic(self, tmp_path):
        a, b = tmp_path / "a.rcol", tmp_path / "b.rcol"
        _write(a, RECORDS)
        _write(b, RECORDS)
        assert a.read_bytes() == b.read_bytes()

    def test_magic_leads_the_file(self, tmp_path):
        path = tmp_path / "t.rcol"
        _write(path, RECORDS)
        assert path.read_bytes().startswith(MAGIC)

    def test_empty_trace_round_trips(self, tmp_path):
        path = tmp_path / "empty.rcol"
        _write(path, [])
        trace = read_columnar(str(path))
        assert len(trace) == 0
        assert list(trace.iter_records()) == []


class TestSniff:
    def test_sniffs_columnar(self, tmp_path):
        path = tmp_path / "t.rcol"
        _write(path, RECORDS)
        assert sniff_format(str(path)) == "columnar"

    def test_sniffs_columnar_gz(self, tmp_path):
        path = tmp_path / "t.rcol.gz"
        _write(path, RECORDS)
        assert sniff_format(str(path)) == "columnar"

    def test_sniffs_jsonl(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text(
            "".join(compact_json(r) + "\n" for r in RECORDS),
            encoding="utf-8",
        )
        assert sniff_format(str(path)) == "jsonl"

    def test_sniffs_jsonl_gz(self, tmp_path):
        path = tmp_path / "t.jsonl.gz"
        with gzip.open(path, "wt", encoding="utf-8") as handle:
            for record in RECORDS:
                handle.write(compact_json(record) + "\n")
        assert sniff_format(str(path)) == "jsonl"


class TestFooter:
    def test_footer_shape(self, tmp_path):
        path = tmp_path / "t.rcol"
        _write(path, RECORDS)
        footer = read_footer(str(path))
        assert footer["version"] == FORMAT_VERSION
        for key in ("arrays", "segments", "shapes", "strings", "types"):
            assert key in footer
        assert isinstance(footer["segments"], list)
        segment = footer["segments"][0]
        assert segment["rows"] == [0, len(RECORDS)]
        assert segment["ts_min"] == 0.0
        assert segment["ts_max"] == 2.0

    def test_footer_is_json(self, tmp_path):
        # read_footer must not need to decode the column arrays.
        path = tmp_path / "t.rcol"
        _write(path, RECORDS)
        footer = read_footer(str(path))
        json.dumps(footer)  # fully JSON-serialisable


class TestCorruption:
    def test_bad_magic_raises(self, tmp_path):
        path = tmp_path / "bad.rcol"
        path.write_bytes(b"NOTACOLF" + b"\x00" * 64)
        with pytest.raises(ValueError, match="bad magic"):
            read_columnar(str(path))

    def test_truncated_file_raises(self, tmp_path):
        path = tmp_path / "trunc.rcol"
        _write(path, RECORDS)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises((ValueError, EOFError, OSError)):
            read_columnar(str(path))
