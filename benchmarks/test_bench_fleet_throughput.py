"""Fleet substrate: scheduler shape assertions and raw throughput.

Two measurements ride here: the ``fleet`` registry experiment (the
scheduler grid, timed like every other figure regeneration) and a raw
fleet-throughput point -- simulated transactions per wall-clock second
of a 100-node sharded run -- whose trajectory accumulates in
``BENCH_fleet_throughput.json`` (see ``repro runs bench``;
``REPRO_BENCH_DIR`` relocates the files, and the CI smoke job keeps a
committed trajectory under ``ci/bench/``).
"""

import sys
import time

from conftest import BENCH_SEED, assertions_enabled, regenerate

UNRESTRICTED = "unrestricted grants"
ROLLING = "rolling (floor 0.8)"
CANARY = "canary (120s soak, floor 0.8)"
HIGH = 9.0
LOW = 2.0

#: The fixed throughput workload (independent of REPRO_SCALE so the
#: trajectory stays comparable across sessions).
THROUGHPUT_NODES = 100
THROUGHPUT_SHARDS = 4
THROUGHPUT_TRANSACTIONS = 40_000


def test_fleet_experiment(benchmark):
    result = regenerate(benchmark, "fleet")
    if not assertions_enabled():
        return
    rt, loss, down = result.tables
    # The capacity floor caps how much serving capacity rejuvenation
    # may take away at once.
    assert down.get_series(ROLLING).value_at(HIGH) <= down.get_series(
        UNRESTRICTED
    ).value_at(HIGH)
    assert down.get_series(CANARY).value_at(HIGH) <= down.get_series(
        UNRESTRICTED
    ).value_at(HIGH)
    # Bounding concurrent downtime keeps refusals (lost work) in check.
    assert loss.get_series(ROLLING).value_at(HIGH) <= loss.get_series(
        UNRESTRICTED
    ).value_at(HIGH)
    # At low per-node load nothing ages hard enough to matter.
    for label in (UNRESTRICTED, ROLLING, CANARY):
        assert loss.get_series(label).value_at(LOW) < 0.005


def _run_throughput_fleet():
    from repro.core.spec import PolicySpec
    from repro.ecommerce.config import PAPER_CONFIG
    from repro.ecommerce.spec import ArrivalSpec
    from repro.systems import FleetSpec, SchedulerSpec

    spec = FleetSpec(
        n_nodes=THROUGHPUT_NODES,
        shards=THROUGHPUT_SHARDS,
        scheduler=SchedulerSpec.rolling(capacity_floor=0.9),
    )
    fleet = spec.build(
        PAPER_CONFIG,
        ArrivalSpec.poisson(1.8),
        PolicySpec.sraa(2, 5, 3),
        seed=BENCH_SEED,
    )
    return fleet.run(THROUGHPUT_TRANSACTIONS)


def test_fleet_throughput(benchmark):
    started = time.perf_counter()
    result = benchmark.pedantic(
        _run_throughput_fleet, rounds=1, iterations=1
    )
    elapsed = time.perf_counter() - started
    assert result.arrivals == THROUGHPUT_TRANSACTIONS
    assert result.completed + result.lost == THROUGHPUT_TRANSACTIONS
    throughput = THROUGHPUT_TRANSACTIONS / elapsed
    print(
        f"\nfleet throughput: {throughput:,.0f} transactions/s "
        f"({THROUGHPUT_NODES} nodes, {THROUGHPUT_SHARDS} shards, "
        f"{elapsed:.2f}s wall)"
    )
    try:
        from repro.obs.ledger import record_bench_point

        record_bench_point(
            "fleet_throughput",
            throughput,
            units="txn/s",
            seed=BENCH_SEED,
        )
    except Exception as error:  # pragma: no cover - diagnostics only
        print(f"bench trajectory not recorded: {error}", file=sys.stderr)
    # A 100-node fleet must stay comfortably inside the smoke budget.
    assert elapsed < 120.0
