"""E2 -- Section 4.1: exact CLTA false-alarm probabilities."""

import pytest

from conftest import regenerate


def test_false_alarm_probabilities(benchmark):
    result = regenerate(benchmark, "false_alarm")
    exact = result.tables[0].get_series("exact tail [eq. 4 chain]")
    # Paper values: 3.69 % (n=15) and 3.37 % (n=30).
    assert exact.value_at(15) == pytest.approx(0.0369, abs=0.0005)
    assert exact.value_at(30) == pytest.approx(0.0337, abs=0.0005)
    # Inflated above the nominal 2.5 %, decreasing in n.
    values = [exact.value_at(n) for n in (5, 15, 30, 60)]
    assert all(v > 0.025 for v in values)
    assert values == sorted(values, reverse=True)
