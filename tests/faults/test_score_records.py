"""Horizon-free scoring from trace records (the report's robustness
table): ground truth recovered from each run's own fault events."""

import math

import pytest

from repro.faults.campaign import (
    AGING_FAULT_KINDS,
    campaign_runs_from_records,
    degraded_intervals_from_records,
    score_records,
)


def _meta(run, scenario="aging_onset", policy="SRAA", rep=0, **summary):
    data = {
        "arrivals": 100,
        "completed": 90,
        "lost": 10,
        "avg_response_time": 5.0,
        "loss_fraction": 0.1,
        "gc_count": 0,
        "rejuvenations": 0,
        "sim_duration_s": 3600.0,
    }
    data.update(summary)
    return {
        "run": run,
        "ts": 0.0,
        "type": "run.meta",
        "tag": ["faults", scenario, policy, rep],
        "data": data,
    }


def _fault(run, ts, kind, cleared=False):
    return {
        "run": run,
        "ts": ts,
        "type": "fault.cleared" if cleared else "fault.injected",
        "data": {"kind": kind},
    }


def _rejuvenation(run, ts):
    return {"run": run, "ts": ts, "type": "system.rejuvenation", "data": {}}


class TestDegradedIntervals:
    def test_aging_kinds_open_intervals(self):
        assert AGING_FAULT_KINDS == ("aging", "contamination", "slowdown")
        records = [_fault(0, 100.0, "slowdown")]
        assert degraded_intervals_from_records(records) == (
            (100.0, math.inf),
        )

    def test_cleared_fault_closes_the_interval(self):
        records = [
            _fault(0, 100.0, "contamination"),
            _fault(0, 400.0, "contamination", cleared=True),
        ]
        assert degraded_intervals_from_records(records) == ((100.0, 400.0),)

    def test_workload_faults_are_healthy_ground_truth(self):
        records = [
            _fault(0, 50.0, "workload_shift"),
            _fault(0, 60.0, "workload_ramp"),
            _fault(0, 70.0, "surge"),
            _fault(0, 80.0, "crash"),
            _fault(0, 90.0, "hang"),
        ]
        assert degraded_intervals_from_records(records) == ()


class TestScoreRecords:
    def test_detection_and_false_alarm_split(self):
        records = [
            _meta(0, rejuvenations=2),
            _fault(0, 1000.0, "slowdown"),
            _rejuvenation(0, 200.0),  # before the fault: false alarm
            _rejuvenation(0, 1150.0),  # inside: detection, 150 s latency
        ]
        (score,) = score_records(records)
        assert (score.scenario, score.policy) == ("aging_onset", "SRAA")
        assert score.detected == 1 and score.missed == 0
        assert score.mean_detection_latency_s == pytest.approx(150.0)
        assert score.false_alarms == 1
        # Healthy time is everything outside [1000 s, end of run].
        assert score.false_alarms_per_healthy_hour == pytest.approx(3.6)

    def test_groups_cells_across_replications(self):
        records = [
            _meta(0, policy="SRAA", rep=0),
            _fault(0, 1000.0, "slowdown"),
            _meta(1, policy="SRAA", rep=1),
            _fault(1, 1000.0, "slowdown"),
            _meta(2, policy="ADAPTIVE", rep=0),
        ]
        scores = {(s.scenario, s.policy): s for s in score_records(records)}
        assert scores[("aging_onset", "SRAA")].replications == 2
        assert scores[("aging_onset", "SRAA")].missed == 2
        assert scores[("aging_onset", "ADAPTIVE")].replications == 1

    def test_non_campaign_runs_are_skipped(self):
        records = [
            {"run": 0, "ts": 0.0, "type": "run.meta", "tag": None, "data": {}},
        ]
        assert score_records(records) == ()
        assert campaign_runs_from_records(records) == []

    def test_missing_rejuvenation_events_raise(self):
        records = [_meta(0, rejuvenations=3)]
        with pytest.raises(ValueError, match="trace-level"):
            score_records(records)
