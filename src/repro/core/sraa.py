"""SRAA -- the static rejuvenation algorithm with averaging (Fig. 6).

SRAA tracks the *batch mean* of every ``n`` consecutive observations
through the :class:`~repro.core.buckets.BucketChain`.  Bucket ``N`` uses
the target value ``mu_X + N * sigma_X`` -- one full standard deviation of
the *underlying* metric per bucket, independent of the batch size -- so a
trigger always certifies evidence for a right-shift of the metric's
distribution by ``K - 1`` standard deviations.  Setting ``n = 1``
recovers the original static rejuvenation algorithm of Avritzer, Bondi &
Weyuker (WOSP 2005), which this paper uses as its starting point.
"""

from __future__ import annotations

from repro.core.base import BatchBuffer, RejuvenationPolicy
from repro.core.buckets import BucketChain, Transition
from repro.core.sla import ServiceLevelObjective


class SRAA(RejuvenationPolicy):
    """Static rejuvenation with averaging.

    Parameters
    ----------
    slo:
        Healthy-behaviour mean and standard deviation (``mu_X, sigma_X``).
    sample_size:
        ``n`` -- observations averaged per decision.
    n_buckets:
        ``K`` -- buckets to climb before triggering.
    depth:
        ``D`` -- bucket depth.

    Examples
    --------
    The paper's best trade-off configuration (Section 5.4):

    >>> from repro.core.sla import PAPER_SLO
    >>> policy = SRAA(PAPER_SLO, sample_size=3, n_buckets=2, depth=5)
    >>> policy.observe(20.0)        # first of a batch of 3: no decision yet
    False
    """

    name = "sraa"

    def __init__(
        self,
        slo: ServiceLevelObjective,
        sample_size: int,
        n_buckets: int,
        depth: int,
    ) -> None:
        if sample_size < 1:
            raise ValueError("sample size must be >= 1")
        self.slo = slo
        self.sample_size = int(sample_size)
        self.buffer = BatchBuffer(self.sample_size)
        self.chain = BucketChain(n_buckets=n_buckets, depth=depth)

    # ------------------------------------------------------------------
    @property
    def level(self) -> int:
        """Current bucket index ``N``."""
        return self.chain.level

    def current_target(self) -> float:
        """The active decision threshold ``mu_X + N * sigma_X``."""
        return self.slo.shift_threshold(self.chain.level)

    def observe(self, value: float) -> bool:
        """Feed one raw observation; decide on each completed batch mean."""
        batch_mean = self.buffer.push(value)
        if batch_mean is None:
            return False
        target = self.current_target()
        exceeded = batch_mean > target
        level_before = self.chain.level
        transition = self.chain.record(exceeded)
        listener = self._listener
        if listener is not None:
            if listener.wants_batches:
                listener.on_batch(
                    self, batch_mean, target, self.sample_size, exceeded
                )
            if transition in (Transition.LEVEL_UP, Transition.LEVEL_DOWN):
                listener.on_transition(
                    self,
                    "up" if transition is Transition.LEVEL_UP else "down",
                    self.chain.level,
                    self.chain.fill,
                    self.current_target(),
                )
        if transition is Transition.TRIGGER:
            # The chain reset itself; also drop the (empty) buffer so an
            # external caller sees a pristine policy.
            self.buffer.clear()
            if listener is not None:
                listener.on_trigger(
                    self, batch_mean, target, level_before, self.sample_size
                )
            return True
        return False

    def reset(self) -> None:
        """Forget buckets and any partial batch."""
        self.chain.reset()
        self.buffer.clear()
        if self._listener is not None:
            self._listener.on_reset(self)

    def describe(self) -> str:
        return (
            f"SRAA(n={self.sample_size}, K={self.chain.n_buckets}, "
            f"D={self.chain.depth})"
        )


class StaticRejuvenation(SRAA):
    """The original static algorithm of [1]: SRAA with ``n = 1``.

    Kept as a distinct class so experiments can name the baseline
    explicitly.
    """

    name = "static"

    def __init__(
        self, slo: ServiceLevelObjective, n_buckets: int, depth: int
    ) -> None:
        super().__init__(slo, sample_size=1, n_buckets=n_buckets, depth=depth)

    def describe(self) -> str:
        return f"Static(K={self.chain.n_buckets}, D={self.chain.depth})"
