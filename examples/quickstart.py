"""Quickstart: watch a response-time stream and trigger rejuvenation.

The minimal end-to-end use of the library: build a policy from the
service-level objective, wrap it in a monitor, feed it the
customer-affecting metric, and act on triggers.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import PAPER_SLO, RejuvenationMonitor, SRAA


def main() -> None:
    # The SLA says: healthy response times have mean 5 s, std 5 s.
    # SRAA(n=3, K=2, D=5) was the paper's best loss/RT trade-off family.
    policy = SRAA(PAPER_SLO, sample_size=3, n_buckets=2, depth=5)

    def restart_service(time: float) -> None:
        print(f"  -> rejuvenation triggered at observation {time:.0f}")

    monitor = RejuvenationMonitor(policy, on_rejuvenate=restart_service)

    rng = np.random.default_rng(7)

    print("Phase 1: healthy traffic (exponential, mean 5 s) ...")
    for value in rng.exponential(5.0, size=600):
        monitor.feed(value)
    print(f"  triggers so far: {monitor.triggers} (should be 0)")

    print("Phase 2: a short arrival burst (mean 12 s for 30 requests) ...")
    for value in rng.exponential(12.0, size=30):
        monitor.feed(value)
    for value in rng.exponential(5.0, size=300):
        monitor.feed(value)
    print(f"  triggers so far: {monitor.triggers} (buckets absorbed the burst)")

    print("Phase 3: software aging (mean drifts 5 -> 25 s and stays) ...")
    for step in range(400):
        mean = 5.0 + min(20.0, step * 0.25)
        monitor.feed(rng.exponential(mean))

    report = monitor.report()
    print(f"\nObservations: {report.observations}")
    print(f"Rejuvenations: {report.triggers}")
    print(f"Metric mean over the whole run: {report.metric_mean:.2f} s")
    assert report.triggers >= 1, "sustained degradation must be caught"


if __name__ == "__main__":
    main()
