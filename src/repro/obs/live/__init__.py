"""Live telemetry: constant-memory observability for unbounded runs.

Where :mod:`repro.obs` tracing buffers *every* event for post-hoc
analysis, the live layer consumes the same emit stream with bounded
memory whatever the horizon:

- :mod:`~repro.obs.live.sketches` -- mergeable streaming aggregators
  (GK quantile sketch, rolling window, EWMA rate meter);
- :mod:`~repro.obs.live.tap` -- the tracer-protocol sink feeding them,
  plus submission-order merging across process-pool workers;
- :mod:`~repro.obs.live.recorder` -- the always-on flight recorder
  ring with severity-triggered dumps;
- :mod:`~repro.obs.live.profiler` -- per-subsystem wall-clock and
  event-count attribution for the DES;
- :mod:`~repro.obs.live.report` / :mod:`~repro.obs.live.top` -- the
  ``repro report`` HTML dashboard and the ``repro top`` terminal view.
"""

from repro.obs.live.profiler import (
    DESProfiler,
    Profile,
    ProfileEntry,
    merge_profiles,
    subsystem_of,
)
from repro.obs.live.recorder import (
    DEFAULT_TRIGGERS,
    FlightDump,
    FlightRecorder,
    RecorderSpec,
    write_flight_jsonl,
)
from repro.obs.live.report import render_report, write_report
from repro.obs.live.sketches import (
    DEFAULT_EPS,
    MERGED_ERROR_FACTOR,
    EwmaRate,
    GKSketch,
    RollingWindow,
)
from repro.obs.live.tap import (
    DEFAULT_QUANTILES,
    LiveAggregator,
    LiveSpec,
    LiveTap,
    TeeTracer,
    compose_tracers,
    live_outcome,
    merge_live,
)
from repro.obs.live.top import (
    LiveDisplay,
    follow_snapshots,
    read_snapshot_source,
    render_snapshot,
)

__all__ = [
    "DEFAULT_EPS",
    "DEFAULT_QUANTILES",
    "DEFAULT_TRIGGERS",
    "DESProfiler",
    "EwmaRate",
    "FlightDump",
    "FlightRecorder",
    "GKSketch",
    "LiveAggregator",
    "LiveDisplay",
    "LiveSpec",
    "LiveTap",
    "MERGED_ERROR_FACTOR",
    "Profile",
    "ProfileEntry",
    "RecorderSpec",
    "RollingWindow",
    "TeeTracer",
    "compose_tracers",
    "live_outcome",
    "follow_snapshots",
    "merge_live",
    "merge_profiles",
    "read_snapshot_source",
    "render_report",
    "render_snapshot",
    "subsystem_of",
    "write_flight_jsonl",
    "write_report",
]
