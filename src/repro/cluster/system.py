"""A cluster of Section-3 nodes behind a load balancer.

Arrivals hit a front-end balancer which dispatches each transaction to
one node; each node runs the full Section-3 mechanics (its own CPUs,
heap, GC clock) and has its *own* rejuvenation policy watching its own
response times -- the deployment studied in the companion paper [2].
A :class:`~repro.cluster.coordinator.RollingCoordinator` arbitrates
triggers so restarts roll through the cluster.

Transactions arriving while every node is down (only possible with a
positive rejuvenation downtime) are refused and counted lost.

The cluster implements the full :mod:`repro.systems` protocol surface:
an optional tracer (per-node GC/rejuvenation spans plus front-end
request events, decision listeners on every node's policy), the fault
surface (``set_arrivals`` / ``inject_crash`` / ``emit_fault`` /
``fault_nodes``) with per-node targeting, granted-trigger recording in
``rejuvenation_times``, and optional response-time collection.  A
:class:`~repro.systems.fleet.FleetSystem` shard is exactly one of
these with a ``first_node_index`` offset into the fleet's global node
numbering.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from repro.core.base import RejuvenationPolicy
from repro.cluster.balancer import LoadBalancer, RoundRobin
from repro.cluster.coordinator import RollingCoordinator, UnrestrictedCoordinator
from repro.cluster.metrics import ClusterResult, NodeStats
from repro.des.engine import Simulator
from repro.des.random_streams import RandomStreams
from repro.ecommerce.config import SystemConfig
from repro.ecommerce.node import Job, ProcessingNode
from repro.ecommerce.workload import ArrivalProcess
from repro.stats.running import OnlineMoments

PolicyFactory = Callable[[], Optional[RejuvenationPolicy]]


class _NodeAccounting:
    """Mutable per-node counters (frozen into NodeStats at the end)."""

    __slots__ = ("dispatched", "completed", "lost", "moments", "down_until")

    def __init__(self) -> None:
        self.dispatched = 0
        self.completed = 0
        self.lost = 0
        self.moments = OnlineMoments()
        self.down_until = 0.0


class ClusterSystem:
    """N e-commerce nodes behind a balancer with per-node policies.

    Parameters
    ----------
    config:
        Per-node system parameters -- one ``SystemConfig`` applied to
        every node (the homogeneous cluster of [2]), or a sequence of
        ``n_nodes`` configs for a heterogeneous cluster (e.g. one node
        with a smaller heap that ages faster, paired with a
        :class:`~repro.cluster.balancer.WeightedRoundRobin` matching
        the capacities).
    n_nodes:
        Cluster size.
    arrivals:
        The aggregate arrival process hitting the front end.
    policy_factory:
        Builds one fresh policy per node (or returns ``None``).
    balancer:
        Dispatching strategy; defaults to round-robin.
    coordinator:
        Trigger arbitration; defaults to unrestricted (independent
        nodes).  Any object speaking ``reset()`` / ``request(node,
        now, downtime_s)`` works -- including the fleet schedulers of
        :mod:`repro.systems.schedulers`.
    seed:
        Master seed; each node gets an independent service stream.
    tracer:
        Optional :class:`repro.obs.tracer.Tracer`-protocol sink.  With
        ``spans`` on, the front end emits request arrival/completion/
        loss events (source ``cluster``, with the node index) and each
        node its GC/rejuvenation spans; with ``decisions`` on, a
        tracing listener driven by the simulation clock is installed
        on every node's policy.
    faults:
        Optional fault scenario (an object with ``injections`` or a
        plain sequence); armed at the start of every :meth:`run`
        against this cluster, so injections reach every node -- or one
        node, via their ``node`` target -- through the fault surface.
    profiler:
        Optional DES profiler installed on the simulator; policy
        ``observe`` calls are additionally bracketed under
        ``policy.observe``.
    arrival_scale:
        Every inter-arrival draw is divided by this factor.  The
        declarative specs use it to keep scenario arrival processes in
        *per-node* units: a cluster spec scales the baseline process
        (and any process a fault injector swaps in later) by its node
        count, so per-node offered load matches the single-node
        scenario.  Exact for Poisson processes (superposition).
    first_node_index:
        Global index of this cluster's first node.  Nodes are named
        ``node{first_node_index + i}`` and fault targeting uses global
        indices -- a fleet shard covering nodes 250..499 passes 250.
    total_nodes:
        Global fleet size for fault-target validation (defaults to
        ``first_node_index + n_nodes``); a global node index outside
        this range is an error, one outside *this* cluster's slice is
        simply not local (``fault_nodes`` returns nothing).

    Examples
    --------
    >>> from repro.core import SRAA, PAPER_SLO
    >>> from repro.ecommerce import PAPER_CONFIG, PoissonArrivals
    >>> cluster = ClusterSystem(
    ...     PAPER_CONFIG,
    ...     n_nodes=4,
    ...     arrivals=PoissonArrivals(rate=4 * 1.6),
    ...     policy_factory=lambda: SRAA(PAPER_SLO, 2, 5, 3),
    ...     seed=1,
    ... )
    >>> result = cluster.run(4_000)
    >>> result.completed + result.lost
    4000
    """

    def __init__(
        self,
        config: "SystemConfig | Sequence[SystemConfig]",
        n_nodes: int,
        arrivals: ArrivalProcess,
        policy_factory: PolicyFactory,
        balancer: Optional[LoadBalancer] = None,
        coordinator: Optional[RollingCoordinator] = None,
        seed: Optional[int] = None,
        tracer: Optional[object] = None,
        faults: Optional[object] = None,
        profiler: Optional[object] = None,
        arrival_scale: float = 1.0,
        first_node_index: int = 0,
        total_nodes: Optional[int] = None,
    ) -> None:
        if n_nodes < 1:
            raise ValueError("a cluster needs at least one node")
        if arrival_scale <= 0:
            raise ValueError("arrival scale must be positive")
        if first_node_index < 0:
            raise ValueError("first node index must be non-negative")
        if isinstance(config, SystemConfig):
            self.node_configs: List[SystemConfig] = [config] * n_nodes
        else:
            self.node_configs = list(config)
            if len(self.node_configs) != n_nodes:
                raise ValueError(
                    f"got {len(self.node_configs)} configs for "
                    f"{n_nodes} nodes"
                )
        self.arrivals = arrivals
        self._base_arrivals = arrivals
        self.arrival_scale = float(arrival_scale)
        self.first_node_index = int(first_node_index)
        self._total_nodes = (
            int(total_nodes)
            if total_nodes is not None
            else self.first_node_index + n_nodes
        )
        self.balancer = balancer if balancer is not None else RoundRobin()
        self.coordinator = (
            coordinator if coordinator is not None else UnrestrictedCoordinator()
        )
        self.faults = faults
        self.tracer = tracer
        self.profiler = profiler
        self._span_tracer = (
            tracer if tracer is not None and tracer.spans else None
        )
        self._life_tracer = (
            self._span_tracer
            if self._span_tracer is not None
            and getattr(tracer, "lifecycle", True)
            else None
        )
        self.streams = RandomStreams(seed)
        self.sim = Simulator(tracer=tracer, profiler=profiler)
        self.nodes: List[ProcessingNode] = []
        self.policies: List[Optional[RejuvenationPolicy]] = []
        self._accounting: List[_NodeAccounting] = []
        trace_decisions = tracer is not None and tracer.decisions
        for i in range(n_nodes):
            node = ProcessingNode(
                self.node_configs[i],
                self.sim,
                self.streams[f"service.{i}"],
                on_complete=lambda job, rt, i=i: self._on_complete(i, job, rt),
                on_loss=lambda job, i=i: self._on_loss(i, job),
                name=f"node{self.first_node_index + i}",
                tracer=tracer,
            )
            self.nodes.append(node)
            policy = policy_factory()
            if trace_decisions and policy is not None:
                # Deferred import: repro.obs is optional machinery on
                # top of the simulator, not a model dependency.
                from repro.obs.listener import TracingDecisionListener

                policy.set_listener(
                    TracingDecisionListener(
                        tracer, clock=lambda: self.sim.now
                    )
                )
            self.policies.append(policy)
            self._accounting.append(_NodeAccounting())
        self._all_nodes = list(range(n_nodes))
        self._reset_counters()

    # ------------------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        return len(self.nodes)

    @property
    def measured_moments(self) -> OnlineMoments:
        """Running moments of measured response times (for merging)."""
        return self._moments

    @property
    def measured_lost(self) -> int:
        """Lost transactions after the warm-up cut (for merging)."""
        return self._measured_lost

    @property
    def collected_response_times(self) -> Optional[List[float]]:
        """Measured response times in completion order, when collected."""
        return self._collected

    def _reset_counters(self) -> None:
        self._arrivals_generated = 0
        self._n_target = 0
        self._completed = 0
        self._lost = 0
        self._refused = 0
        self._warmup = 0
        self._measured_lost = 0
        self._moments = OnlineMoments()
        self._collected: Optional[List[float]] = None
        self.rejuvenation_times: List[float] = []
        #: Latest down_until over all nodes: while the clock is past
        #: it, no node is down and eligibility is O(1).
        self._latest_down_until = 0.0

    def _eligible_nodes(self) -> List[int]:
        now = self.sim.now
        if self._latest_down_until <= now:
            return self._all_nodes
        return [
            i
            for i, acc in enumerate(self._accounting)
            if acc.down_until <= now
        ]

    def _mark_down(self, node_index: int, until: float) -> None:
        accounting = self._accounting[node_index]
        if until > accounting.down_until:
            accounting.down_until = until
        if until > self._latest_down_until:
            self._latest_down_until = until

    # ------------------------------------------------------------------
    # Event handlers
    # ------------------------------------------------------------------
    def _schedule_next_arrival(self) -> None:
        if self._arrivals_generated >= self._n_target:
            return
        gap = self.arrivals.interarrival(self.streams["arrivals"])
        if self.arrival_scale != 1.0:
            gap /= self.arrival_scale
        self.sim.schedule(gap, self._on_arrival, kind="arrival")

    def _on_arrival(self) -> None:
        now = self.sim.now
        index = self._arrivals_generated
        self._arrivals_generated += 1
        self._schedule_next_arrival()
        tracer = self._life_tracer
        if tracer is not None:
            tracer.emit(now, "request.arrival", "cluster", index=index)
        eligible = self._eligible_nodes()
        if not eligible:
            # Whole cluster in downtime: the request is refused.
            self._refused += 1
            self._count_loss(index, node_index=None, reason="downtime")
            return
        target = self.balancer.select(self.nodes, eligible, self.streams["lb"])
        if target not in eligible:
            raise AssertionError(
                f"balancer picked ineligible node {target}"
            )  # pragma: no cover - balancer contract
        self._accounting[target].dispatched += 1
        self.nodes[target].submit(Job(now, index))

    def _on_complete(self, node_index: int, job: Job, response_time: float):
        accounting = self._accounting[node_index]
        accounting.completed += 1
        accounting.moments.push(response_time)
        self._completed += 1
        if job.index >= self._warmup:
            self._moments.push(response_time)
            if self._collected is not None:
                self._collected.append(response_time)
        tracer = self._span_tracer
        if tracer is not None:
            tracer.emit(
                self.sim.now,
                "request.complete",
                "cluster",
                index=job.index,
                node=self.first_node_index + node_index,
                response_time=response_time,
            )
        policy = self.policies[node_index]
        if policy is None:
            return
        profiler = self.profiler
        if profiler is None:
            triggered = policy.observe(response_time)
        else:
            clock = profiler.clock
            started = clock()
            try:
                triggered = policy.observe(response_time)
            finally:
                profiler.account("policy.observe", clock() - started)
        if triggered:
            self._request_rejuvenation(node_index)

    def _on_loss(self, node_index: int, job: Job) -> None:
        self._count_loss(job.index, node_index, reason="rejuvenation")

    def _count_loss(
        self,
        index: int,
        node_index: Optional[int],
        reason: str = "rejuvenation",
    ) -> None:
        self._lost += 1
        if node_index is not None:
            self._accounting[node_index].lost += 1
        if index >= self._warmup:
            self._measured_lost += 1
        tracer = self._span_tracer
        if tracer is not None:
            tracer.emit(
                self.sim.now,
                "request.loss",
                "cluster",
                index=index,
                reason=reason,
            )

    def _request_rejuvenation(self, node_index: int) -> None:
        now = self.sim.now
        downtime = self.node_configs[node_index].rejuvenation_downtime_s
        if not self.coordinator.request(node_index, now, downtime):
            return
        self.rejuvenation_times.append(now)
        self.nodes[node_index].rejuvenate()
        if downtime > 0.0:
            self._mark_down(node_index, now + downtime)

    # ------------------------------------------------------------------
    # Fault-injection surface (see repro.systems protocol)
    # ------------------------------------------------------------------
    def set_arrivals(self, process: ArrivalProcess) -> ArrivalProcess:
        """Swap the front-end arrival process; returns the previous one.

        The swap affects the *next* inter-arrival draw.  The incoming
        process is interpreted in per-node units -- ``arrival_scale``
        keeps applying, so a workload-shift injector written for the
        single-node scenarios shifts every node's offered load alike.
        """
        previous = self.arrivals
        self.arrivals = process
        return previous

    def _local_indices(self, node: Optional[int]) -> List[int]:
        """Local indices targeted by a global node index (or all)."""
        if node is None:
            return self._all_nodes
        if not 0 <= node < self._total_nodes:
            raise ValueError(
                f"node index {node} out of range for a "
                f"{self._total_nodes}-node system"
            )
        local = node - self.first_node_index
        if 0 <= local < len(self.nodes):
            return [local]
        return []

    def fault_nodes(self, node: Optional[int] = None) -> List[ProcessingNode]:
        """The processing nodes a fault should touch.

        ``None`` targets every node; a global index targets one node
        -- possibly none, when that index lives in another shard of a
        fleet.  Out-of-range indices raise.
        """
        return [self.nodes[i] for i in self._local_indices(node)]

    def inject_crash(
        self, restart_s: float = 0.0, node: Optional[int] = None
    ) -> int:
        """Crash every targeted node; returns transactions lost.

        Requests routed to a crashed node during its ``restart_s``
        restart window are dispatched elsewhere (the balancer skips
        down nodes); with *every* node crashed, arrivals are refused.
        Each crashed node's policy is reset -- a restarted monitor
        starts from scratch.  Crashes are not rejuvenations: they are
        neither counted nor recorded in ``rejuvenation_times``.
        """
        if restart_s < 0:
            raise ValueError("restart time must be non-negative")
        now = self.sim.now
        lost = 0
        for i in self._local_indices(node):
            lost += self.nodes[i].crash()
            if restart_s > 0.0:
                self._mark_down(i, now + restart_s)
            policy = self.policies[i]
            if policy is not None:
                policy.reset()
        return lost

    def emit_fault(self, kind: str, cleared: bool = False, **data) -> None:
        """Emit a ``fault.injected`` / ``fault.cleared`` trace event."""
        tracer = self._span_tracer
        if tracer is not None:
            tracer.emit(
                self.sim.now,
                "fault.cleared" if cleared else "fault.injected",
                "fault",
                kind=kind,
                **data,
            )

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    def run(
        self,
        n_transactions: int,
        warmup: int = 0,
        collect_response_times: bool = False,
    ) -> ClusterResult:
        """Generate ``n_transactions`` arrivals; run until all resolve."""
        if n_transactions < 1:
            raise ValueError("need at least one transaction")
        if not 0 <= warmup < n_transactions:
            raise ValueError("warmup must lie in [0, n_transactions)")
        self.sim.reset()
        # Fault injectors may have swapped the arrival process in a
        # previous run; every run starts from the constructor's process.
        self.arrivals = self._base_arrivals
        self.arrivals.reset()
        self.balancer.reset()
        self.coordinator.reset()
        if self.tracer is not None:
            self.tracer.clear()
        if self.profiler is not None:
            self.profiler.clear()
        for i, node in enumerate(self.nodes):
            node.reset()
            policy = self.policies[i]
            if policy is not None:
                policy.reset()
            self._accounting[i] = _NodeAccounting()
        self._reset_counters()
        self._warmup = warmup
        self._n_target = n_transactions
        if collect_response_times:
            self._collected = []
        if self.faults is not None:
            injections = getattr(self.faults, "injections", self.faults)
            for injection in injections:
                injection.arm(self)
        self._schedule_next_arrival()
        self.sim.run()
        resolved = self._completed + self._lost
        if resolved != n_transactions:  # pragma: no cover - invariant
            raise AssertionError(
                f"cluster run resolved {resolved} of {n_transactions}"
            )
        node_stats = tuple(
            NodeStats(
                name=node.name,
                dispatched=acc.dispatched,
                completed=acc.completed,
                lost=acc.lost,
                avg_response_time=acc.moments.mean if acc.moments.count else 0.0,
                rejuvenations=node.rejuvenations,
                gc_count=node.gc_count,
            )
            for node, acc in zip(self.nodes, self._accounting)
        )
        measured_total = n_transactions - warmup
        return ClusterResult(
            arrivals=self._arrivals_generated,
            completed=self._completed,
            lost=self._lost,
            refused=self._refused,
            avg_response_time=self._moments.mean if self._moments.count else 0.0,
            rt_std=self._moments.std,
            loss_fraction=self._measured_lost / measured_total,
            rejuvenations=sum(node.rejuvenations for node in self.nodes),
            gc_count=sum(node.gc_count for node in self.nodes),
            sim_duration_s=self.sim.now,
            nodes=node_stats,
        )
