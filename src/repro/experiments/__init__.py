"""Per-figure experiment definitions and the sweep harness.

Every table and figure in the paper's evaluation has a registered
experiment here (see DESIGN.md's per-experiment index).  Run them from
Python::

    from repro.experiments import Scale, run_experiment
    print(run_experiment("fig16", Scale.quick()).format_text())

or from the command line: ``python -m repro run fig16 --scale quick``.
"""

from repro.experiments.registry import (
    describe,
    experiment_ids,
    run_experiment,
)
from repro.experiments.scale import PAPER_LOADS, Scale
from repro.experiments.sweep import (
    PolicyConfig,
    SweepResult,
    sraa_config,
    sweep_jobs,
    sweep_policies,
)
from repro.experiments.tables import ExperimentResult, Series, Table

__all__ = [
    "ExperimentResult",
    "PAPER_LOADS",
    "PolicyConfig",
    "Scale",
    "Series",
    "SweepResult",
    "Table",
    "describe",
    "experiment_ids",
    "run_experiment",
    "sraa_config",
    "sweep_jobs",
    "sweep_policies",
]
