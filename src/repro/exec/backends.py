"""Execution backends: where replication jobs actually run.

Every backend maps a picklable function over a sequence of job items
and returns the results **in submission order**, whatever order the
jobs finish in -- so a run is bit-identical across backends for the
same seeds (asserted by ``tests/exec/test_determinism.py``).

Selection: pass a backend (or its name) explicitly, or set the
``REPRO_WORKERS`` / ``REPRO_BACKEND`` environment variables and let
:func:`make_backend` resolve them.  ``repro run --workers N`` and
``--backend`` thread through here.
"""

from __future__ import annotations

import abc
import os
import pickle
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from contextlib import contextmanager
from typing import Any, Callable, Iterable, Iterator, List, Optional, Union

from repro.exec.progress import JobEvent, ProgressHook

#: Backend names accepted by :func:`make_backend` (besides "auto").
BACKEND_NAMES = ("serial", "process")


class ExecutionBackend(abc.ABC):
    """Maps a function over job items, preserving submission order."""

    name: str = "abstract"

    def __init__(self, progress: Optional[ProgressHook] = None) -> None:
        #: Default progress hook for ``map`` calls that pass none.
        self.progress = progress

    @abc.abstractmethod
    def map(
        self,
        fn: Callable[[Any], Any],
        items: Iterable[Any],
        progress: Optional[ProgressHook] = None,
    ) -> List[Any]:
        """``[fn(item) for item in items]``, possibly in parallel."""

    def _resolve_hook(
        self, progress: Optional[ProgressHook]
    ) -> Optional[ProgressHook]:
        return progress if progress is not None else self.progress

    def describe(self) -> dict:
        """Plain execution metadata for run manifests (never hashed)."""
        return {
            "backend": self.name,
            "workers": int(getattr(self, "workers", 1)),
        }


def _emit(
    hook: Optional[ProgressHook],
    index: int,
    done: int,
    total: int,
    started: float,
    job_s: float,
    item: Any,
) -> None:
    if hook is None:
        return
    hook(
        JobEvent(
            index=index,
            done=done,
            total=total,
            elapsed_s=time.perf_counter() - started,
            job_s=job_s,
            tag=getattr(item, "tag", ()),
        )
    )


class SerialBackend(ExecutionBackend):
    """In-process, one job at a time -- the reference backend."""

    name = "serial"

    def map(
        self,
        fn: Callable[[Any], Any],
        items: Iterable[Any],
        progress: Optional[ProgressHook] = None,
    ) -> List[Any]:
        hook = self._resolve_hook(progress)
        work = list(items)
        started = time.perf_counter()
        results = []
        for index, item in enumerate(work):
            job_started = time.perf_counter()
            results.append(fn(item))
            job_s = time.perf_counter() - job_started
            _emit(hook, index, index + 1, len(work), started, job_s, item)
        return results


def _timed_call(fn: Callable[[Any], Any], item: Any) -> tuple:
    """Worker-side wrapper measuring per-job wall-clock."""
    job_started = time.perf_counter()
    return fn(item), time.perf_counter() - job_started


def _init_worker() -> None:
    """Pool workers run their own jobs serially (no nested pools)."""
    os.environ["REPRO_WORKERS"] = "1"
    os.environ["REPRO_BACKEND"] = "serial"


def _is_picklable(payload: Any) -> bool:
    try:
        pickle.dumps(payload)
        return True
    except Exception:
        return False


class ProcessPoolBackend(ExecutionBackend):
    """Fans jobs out over ``workers`` OS processes.

    Jobs that cannot be pickled (e.g. built from closure factories
    instead of specs) are executed in the parent process while the pool
    works on the rest; results are reassembled in submission order
    either way.
    """

    name = "process"

    def __init__(
        self, workers: int, progress: Optional[ProgressHook] = None
    ) -> None:
        if workers < 1:
            raise ValueError("need at least one worker")
        super().__init__(progress)
        self.workers = int(workers)

    def map(
        self,
        fn: Callable[[Any], Any],
        items: Iterable[Any],
        progress: Optional[ProgressHook] = None,
    ) -> List[Any]:
        hook = self._resolve_hook(progress)
        work = list(items)
        if not work:
            return []
        started = time.perf_counter()
        results: List[Any] = [None] * len(work)
        remote: List[int] = []
        local: List[int] = []
        for index, item in enumerate(work):
            if _is_picklable((fn, item)):
                remote.append(index)
            else:
                local.append(index)
        done = 0
        if not remote:
            # Nothing can cross the process boundary; degrade to serial.
            for index in local:
                result, job_s = _timed_call(fn, work[index])
                results[index] = result
                done += 1
                _emit(hook, index, done, len(work), started, job_s, work[index])
            return results
        with ProcessPoolExecutor(
            max_workers=self.workers, initializer=_init_worker
        ) as pool:
            futures = {
                pool.submit(_timed_call, fn, work[index]): index
                for index in remote
            }
            # Unpicklable stragglers run here while the pool is busy.
            for index in local:
                result, job_s = _timed_call(fn, work[index])
                results[index] = result
                done += 1
                _emit(hook, index, done, len(work), started, job_s, work[index])
            pending = set(futures)
            while pending:
                finished, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in finished:
                    index = futures[future]
                    results[index], job_s = future.result()
                    done += 1
                    _emit(
                        hook, index, done, len(work), started, job_s,
                        work[index],
                    )
        return results


# ----------------------------------------------------------------------
# Selection
# ----------------------------------------------------------------------
def workers_from_env(default: int = 1) -> int:
    """Worker count from ``REPRO_WORKERS`` (>= 1; bad values rejected)."""
    raw = os.environ.get("REPRO_WORKERS", "").strip()
    if not raw:
        return default
    try:
        workers = int(raw)
    except ValueError:
        raise ValueError(
            f"REPRO_WORKERS must be an integer, got {raw!r}"
        ) from None
    if workers < 1:
        raise ValueError(f"REPRO_WORKERS must be >= 1, got {workers}")
    return workers


def make_backend(
    name: Optional[str] = None,
    workers: Optional[int] = None,
    progress: Optional[ProgressHook] = None,
) -> ExecutionBackend:
    """Build a backend by name, with env-variable fallbacks.

    ``name=None`` reads ``REPRO_BACKEND`` (default ``auto``);
    ``workers=None`` reads ``REPRO_WORKERS`` (default 1).  ``auto``
    picks the process pool when more than one worker is requested and
    the serial backend otherwise.
    """
    if workers is None:
        workers = workers_from_env()
    if name is None:
        name = os.environ.get("REPRO_BACKEND", "auto")
    name = name.strip().lower()
    if name == "auto":
        name = "process" if workers > 1 else "serial"
    if name == "serial":
        return SerialBackend(progress=progress)
    if name == "process":
        return ProcessPoolBackend(workers, progress=progress)
    raise ValueError(
        f"unknown backend {name!r}; expected one of "
        f"{('auto',) + BACKEND_NAMES}"
    )


#: Stack of backends installed by :func:`use_backend` (innermost last).
_DEFAULT_STACK: List[ExecutionBackend] = []


@contextmanager
def use_backend(backend: ExecutionBackend) -> Iterator[ExecutionBackend]:
    """Install ``backend`` as the default within the ``with`` block.

    ``run_replications`` / ``sweep_policies`` calls that do not receive
    an explicit backend use the innermost installed one, which is how
    ``repro run --workers N`` parallelises experiments without every
    experiment function having to thread a backend parameter through.
    """
    _DEFAULT_STACK.append(backend)
    try:
        yield backend
    finally:
        _DEFAULT_STACK.pop()


def current_backend() -> ExecutionBackend:
    """The innermost :func:`use_backend` backend, else the env default."""
    if _DEFAULT_STACK:
        return _DEFAULT_STACK[-1]
    return make_backend()


def resolve_backend(
    backend: Union[ExecutionBackend, str, None],
) -> ExecutionBackend:
    """Normalise a backend argument: instance, name, or None (default)."""
    if backend is None:
        return current_backend()
    if isinstance(backend, ExecutionBackend):
        return backend
    if isinstance(backend, str):
        return make_backend(backend)
    raise TypeError(
        f"backend must be an ExecutionBackend, a name, or None, got "
        f"{backend!r}"
    )
