"""The append-only alert ledger (``alerts.jsonl``).

Same discipline as the run ledger: one JSON object per line, append
only, human-greppable.  Each record is an incident *transition*
(``{"action": "open"|"close", "incident": {...}}``) wrapped in an
envelope carrying the ledger sequence number and a wall-clock stamp.
The wall clock lives **only** in the envelope -- incident bodies are a
pure function of the observation stream, so tests diff them exactly
while operators still see when a page actually happened.
"""

from __future__ import annotations

import json
import os
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Dict, List, Optional

__all__ = ["AlertLedger", "DEFAULT_ALERTS_DIR"]

#: Where alerts live unless overridden (sibling of the run ledger).
DEFAULT_ALERTS_DIR = os.path.join(".repro", "alerts")

#: Environment override for the alerts directory.
ALERTS_DIR_ENV = "REPRO_ALERTS_DIR"


class AlertLedger:
    """Append-only JSONL store of incident transitions."""

    def __init__(self, root: Optional[str] = None):
        if root is None:
            root = os.environ.get(ALERTS_DIR_ENV) or DEFAULT_ALERTS_DIR
        self.root = Path(root)

    @property
    def path(self) -> Path:
        return self.root / "alerts.jsonl"

    # ------------------------------------------------------------------
    def append(self, record: Dict[str, Any]) -> Dict[str, Any]:
        """Append one transition; returns the stamped envelope."""
        self.root.mkdir(parents=True, exist_ok=True)
        envelope = {
            "seq": self._next_seq(),
            "created_utc": datetime.now(timezone.utc).isoformat(
                timespec="seconds"
            ),
        }
        envelope.update(record)
        with self.path.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps(envelope, sort_keys=True) + "\n")
        return envelope

    def records(self) -> List[Dict[str, Any]]:
        """Every transition, in append order."""
        if not self.path.exists():
            return []
        out = []
        with self.path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    out.append(json.loads(line))
        return out

    def _next_seq(self) -> int:
        records = self.records()
        return (records[-1]["seq"] + 1) if records else 1

    # ------------------------------------------------------------------
    def incidents(self) -> List[Dict[str, Any]]:
        """Latest state of every incident mentioned, in id order.

        Replays the transition log: a ``close`` supersedes its ``open``.
        """
        latest: Dict[str, Dict[str, Any]] = {}
        for record in self.records():
            incident = record.get("incident")
            if incident and "id" in incident:
                latest[incident["id"]] = incident
        return [latest[key] for key in sorted(latest)]

    def open_incidents(self) -> List[Dict[str, Any]]:
        return [i for i in self.incidents() if i.get("status") == "open"]
