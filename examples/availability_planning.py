"""Availability planning: from measured triggers to downtime budgets.

The simulation-based policies answer *when* to rejuvenate; the Huang
et al. (1995) CTMC (the paper's ref. [9]) answers the planning-level
questions around them.  This example connects the two layers:

1. price rejuvenation analytically -- availability and yearly downtime
   as a function of the rejuvenation rate, and the cost-optimal rate
   under different outage pricings;
2. measure the rejuvenation rate SRAA actually produces on the
   simulated system, and read off what that operating point means in
   availability terms if each restart cost a 30-second outage.

Run:  python examples/availability_planning.py
"""

from repro import (
    PAPER_CONFIG,
    PAPER_SLO,
    SRAA,
    HuangRejuvenationModel,
    PoissonArrivals,
    run_once,
)

# Rates per hour: the system ages over ~2 days, an aged system crashes
# within ~8 hours, a crash costs 2 h of repair, a rejuvenation 30 min
# (a slow, conservative restart -- fast restarts make rejuvenation
# dominate trivially).
MODEL = HuangRejuvenationModel(
    aging_rate=1 / 48,
    failure_rate=1 / 8,
    repair_rate=1 / 2,
    rejuvenation_completion_rate=2.0,
)


def analytical_table() -> None:
    print("Huang model: availability vs rejuvenation rate (per hour)")
    print(f"{'rate':>8} {'availability':>13} {'downtime h/yr':>14}")
    for rate in (0.0, 0.05, 0.2, 1.0, 5.0):
        print(
            f"{rate:>8.2f} {MODEL.availability(rate):>13.6f} "
            f"{MODEL.downtime_hours_per_year(rate):>14.2f}"
        )
    for c_fail, c_rej, story in (
        (100.0, 1.0, "crash 100x costlier than a planned restart"),
        (1.0, 3.0, "restart hours priced 3x crash hours"),
        (1.0, 4.0, "restart hours priced 4x crash hours"),
    ):
        rate = MODEL.optimal_rejuvenation_rate(c_fail, c_rej, max_rate=30.0)
        verdict = f"{rate:.3f}/h" if rate > 0 else "never"
        print(f"  optimal rate when {story}: {verdict}")
    print(
        "  (the policy is bang-bang: for this model the cost rate is "
        "monotone in the\n   rejuvenation rate, so the optimum sits at "
        "'as fast as allowed' or 'never' --\n   the interesting control "
        "is *when*, which is the simulation-based policies' job)"
    )


def measured_operating_point() -> None:
    print("\nMeasured SRAA(2,5,3) operating point at 9 CPUs:")
    result = run_once(
        PAPER_CONFIG,
        PoissonArrivals(1.8),
        SRAA(PAPER_SLO, 2, 5, 3),
        n_transactions=20_000,
        seed=33,
    )
    hours = result.sim_duration_s / 3600.0
    rate_per_hour = result.rejuvenations / hours
    print(
        f"  {result.rejuvenations} rejuvenations over {hours:.2f} simulated "
        f"hours -> {rate_per_hour:.2f}/hour"
    )
    outage_s = 30.0
    scheduled_downtime = result.rejuvenations * outage_s
    fraction = scheduled_downtime / result.sim_duration_s
    print(
        f"  if each restart cost {outage_s:.0f} s, scheduled downtime "
        f"would be {fraction * 100:.2f} % of wall clock"
        f" ({fraction * 8760:.1f} h/year)"
    )
    print(
        "  -> the measurement-driven trigger earns that budget back by "
        "preventing the soft-failure\n     episodes that would otherwise "
        "dominate both response time and unscheduled downtime."
    )


def main() -> None:
    analytical_table()
    measured_operating_point()


if __name__ == "__main__":
    main()
